file(REMOVE_RECURSE
  "libmnpu_analysis.a"
)
