# Empty compiler generated dependencies file for mnpu_analysis.
# This may be replaced when dependencies are built.
