file(REMOVE_RECURSE
  "CMakeFiles/mnpu_analysis.dir/experiment.cc.o"
  "CMakeFiles/mnpu_analysis.dir/experiment.cc.o.d"
  "CMakeFiles/mnpu_analysis.dir/metrics.cc.o"
  "CMakeFiles/mnpu_analysis.dir/metrics.cc.o.d"
  "CMakeFiles/mnpu_analysis.dir/mixes.cc.o"
  "CMakeFiles/mnpu_analysis.dir/mixes.cc.o.d"
  "CMakeFiles/mnpu_analysis.dir/predictor.cc.o"
  "CMakeFiles/mnpu_analysis.dir/predictor.cc.o.d"
  "CMakeFiles/mnpu_analysis.dir/regression.cc.o"
  "CMakeFiles/mnpu_analysis.dir/regression.cc.o.d"
  "libmnpu_analysis.a"
  "libmnpu_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnpu_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
