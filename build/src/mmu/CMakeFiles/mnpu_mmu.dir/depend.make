# Empty dependencies file for mnpu_mmu.
# This may be replaced when dependencies are built.
