file(REMOVE_RECURSE
  "CMakeFiles/mnpu_mmu.dir/mmu.cc.o"
  "CMakeFiles/mnpu_mmu.dir/mmu.cc.o.d"
  "CMakeFiles/mnpu_mmu.dir/paging.cc.o"
  "CMakeFiles/mnpu_mmu.dir/paging.cc.o.d"
  "CMakeFiles/mnpu_mmu.dir/tlb.cc.o"
  "CMakeFiles/mnpu_mmu.dir/tlb.cc.o.d"
  "libmnpu_mmu.a"
  "libmnpu_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnpu_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
