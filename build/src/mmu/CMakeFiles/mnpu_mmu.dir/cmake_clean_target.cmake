file(REMOVE_RECURSE
  "libmnpu_mmu.a"
)
