# Empty dependencies file for mnpusim.
# This may be replaced when dependencies are built.
