file(REMOVE_RECURSE
  "../mnpusim"
  "../mnpusim.pdb"
  "CMakeFiles/mnpusim.dir/tools/mnpusim_main.cc.o"
  "CMakeFiles/mnpusim.dir/tools/mnpusim_main.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
