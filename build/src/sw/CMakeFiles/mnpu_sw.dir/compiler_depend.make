# Empty compiler generated dependencies file for mnpu_sw.
# This may be replaced when dependencies are built.
