file(REMOVE_RECURSE
  "libmnpu_sw.a"
)
