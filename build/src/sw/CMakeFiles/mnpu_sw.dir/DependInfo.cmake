
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sw/arch_config.cc" "src/sw/CMakeFiles/mnpu_sw.dir/arch_config.cc.o" "gcc" "src/sw/CMakeFiles/mnpu_sw.dir/arch_config.cc.o.d"
  "/root/repo/src/sw/gemm_mapping.cc" "src/sw/CMakeFiles/mnpu_sw.dir/gemm_mapping.cc.o" "gcc" "src/sw/CMakeFiles/mnpu_sw.dir/gemm_mapping.cc.o.d"
  "/root/repo/src/sw/network.cc" "src/sw/CMakeFiles/mnpu_sw.dir/network.cc.o" "gcc" "src/sw/CMakeFiles/mnpu_sw.dir/network.cc.o.d"
  "/root/repo/src/sw/trace_generator.cc" "src/sw/CMakeFiles/mnpu_sw.dir/trace_generator.cc.o" "gcc" "src/sw/CMakeFiles/mnpu_sw.dir/trace_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mnpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
