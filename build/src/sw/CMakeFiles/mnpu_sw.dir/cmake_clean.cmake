file(REMOVE_RECURSE
  "CMakeFiles/mnpu_sw.dir/arch_config.cc.o"
  "CMakeFiles/mnpu_sw.dir/arch_config.cc.o.d"
  "CMakeFiles/mnpu_sw.dir/gemm_mapping.cc.o"
  "CMakeFiles/mnpu_sw.dir/gemm_mapping.cc.o.d"
  "CMakeFiles/mnpu_sw.dir/network.cc.o"
  "CMakeFiles/mnpu_sw.dir/network.cc.o.d"
  "CMakeFiles/mnpu_sw.dir/trace_generator.cc.o"
  "CMakeFiles/mnpu_sw.dir/trace_generator.cc.o.d"
  "libmnpu_sw.a"
  "libmnpu_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnpu_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
