file(REMOVE_RECURSE
  "CMakeFiles/mnpu_sim.dir/cli.cc.o"
  "CMakeFiles/mnpu_sim.dir/cli.cc.o.d"
  "CMakeFiles/mnpu_sim.dir/multi_core_system.cc.o"
  "CMakeFiles/mnpu_sim.dir/multi_core_system.cc.o.d"
  "libmnpu_sim.a"
  "libmnpu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnpu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
