# Empty dependencies file for mnpu_sim.
# This may be replaced when dependencies are built.
