file(REMOVE_RECURSE
  "libmnpu_sim.a"
)
