# Empty compiler generated dependencies file for mnpu_workloads.
# This may be replaced when dependencies are built.
