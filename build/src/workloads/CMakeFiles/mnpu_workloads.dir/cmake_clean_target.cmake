file(REMOVE_RECURSE
  "libmnpu_workloads.a"
)
