file(REMOVE_RECURSE
  "CMakeFiles/mnpu_workloads.dir/models.cc.o"
  "CMakeFiles/mnpu_workloads.dir/models.cc.o.d"
  "CMakeFiles/mnpu_workloads.dir/random_network.cc.o"
  "CMakeFiles/mnpu_workloads.dir/random_network.cc.o.d"
  "libmnpu_workloads.a"
  "libmnpu_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnpu_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
