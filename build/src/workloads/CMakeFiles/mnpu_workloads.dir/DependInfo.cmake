
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/models.cc" "src/workloads/CMakeFiles/mnpu_workloads.dir/models.cc.o" "gcc" "src/workloads/CMakeFiles/mnpu_workloads.dir/models.cc.o.d"
  "/root/repo/src/workloads/random_network.cc" "src/workloads/CMakeFiles/mnpu_workloads.dir/random_network.cc.o" "gcc" "src/workloads/CMakeFiles/mnpu_workloads.dir/random_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mnpu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/mnpu_sw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
