file(REMOVE_RECURSE
  "CMakeFiles/mnpu_core.dir/npu_core.cc.o"
  "CMakeFiles/mnpu_core.dir/npu_core.cc.o.d"
  "libmnpu_core.a"
  "libmnpu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnpu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
