file(REMOVE_RECURSE
  "libmnpu_core.a"
)
