
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/npu_core.cc" "src/core/CMakeFiles/mnpu_core.dir/npu_core.cc.o" "gcc" "src/core/CMakeFiles/mnpu_core.dir/npu_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mnpu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/mnpu_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/mnpu_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/mnpu_sw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
