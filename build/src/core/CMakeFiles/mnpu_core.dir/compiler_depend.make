# Empty compiler generated dependencies file for mnpu_core.
# This may be replaced when dependencies are built.
