file(REMOVE_RECURSE
  "CMakeFiles/mnpu_dram.dir/address_mapping.cc.o"
  "CMakeFiles/mnpu_dram.dir/address_mapping.cc.o.d"
  "CMakeFiles/mnpu_dram.dir/dram_channel.cc.o"
  "CMakeFiles/mnpu_dram.dir/dram_channel.cc.o.d"
  "CMakeFiles/mnpu_dram.dir/dram_system.cc.o"
  "CMakeFiles/mnpu_dram.dir/dram_system.cc.o.d"
  "CMakeFiles/mnpu_dram.dir/dram_timing.cc.o"
  "CMakeFiles/mnpu_dram.dir/dram_timing.cc.o.d"
  "libmnpu_dram.a"
  "libmnpu_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnpu_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
