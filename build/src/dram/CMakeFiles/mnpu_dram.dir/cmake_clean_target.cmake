file(REMOVE_RECURSE
  "libmnpu_dram.a"
)
