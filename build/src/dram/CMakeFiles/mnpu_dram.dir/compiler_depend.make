# Empty compiler generated dependencies file for mnpu_dram.
# This may be replaced when dependencies are built.
