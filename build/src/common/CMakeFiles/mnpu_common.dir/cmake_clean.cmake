file(REMOVE_RECURSE
  "CMakeFiles/mnpu_common.dir/clock_domain.cc.o"
  "CMakeFiles/mnpu_common.dir/clock_domain.cc.o.d"
  "CMakeFiles/mnpu_common.dir/config.cc.o"
  "CMakeFiles/mnpu_common.dir/config.cc.o.d"
  "CMakeFiles/mnpu_common.dir/interval_tracer.cc.o"
  "CMakeFiles/mnpu_common.dir/interval_tracer.cc.o.d"
  "CMakeFiles/mnpu_common.dir/logging.cc.o"
  "CMakeFiles/mnpu_common.dir/logging.cc.o.d"
  "CMakeFiles/mnpu_common.dir/request_log.cc.o"
  "CMakeFiles/mnpu_common.dir/request_log.cc.o.d"
  "CMakeFiles/mnpu_common.dir/stats.cc.o"
  "CMakeFiles/mnpu_common.dir/stats.cc.o.d"
  "libmnpu_common.a"
  "libmnpu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnpu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
