file(REMOVE_RECURSE
  "libmnpu_common.a"
)
