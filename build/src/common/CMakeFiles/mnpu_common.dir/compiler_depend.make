# Empty compiler generated dependencies file for mnpu_common.
# This may be replaced when dependencies are built.
