file(REMOVE_RECURSE
  "CMakeFiles/dual_core_contention.dir/dual_core_contention.cpp.o"
  "CMakeFiles/dual_core_contention.dir/dual_core_contention.cpp.o.d"
  "dual_core_contention"
  "dual_core_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_core_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
