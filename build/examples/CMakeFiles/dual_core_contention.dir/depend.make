# Empty dependencies file for dual_core_contention.
# This may be replaced when dependencies are built.
