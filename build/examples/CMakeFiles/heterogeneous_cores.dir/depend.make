# Empty dependencies file for heterogeneous_cores.
# This may be replaced when dependencies are built.
