file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_cores.dir/heterogeneous_cores.cpp.o"
  "CMakeFiles/heterogeneous_cores.dir/heterogeneous_cores.cpp.o.d"
  "heterogeneous_cores"
  "heterogeneous_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
