file(REMOVE_RECURSE
  "CMakeFiles/mnpu_tests.dir/test_analysis.cc.o"
  "CMakeFiles/mnpu_tests.dir/test_analysis.cc.o.d"
  "CMakeFiles/mnpu_tests.dir/test_cli_features.cc.o"
  "CMakeFiles/mnpu_tests.dir/test_cli_features.cc.o.d"
  "CMakeFiles/mnpu_tests.dir/test_clockdomain_dma.cc.o"
  "CMakeFiles/mnpu_tests.dir/test_clockdomain_dma.cc.o.d"
  "CMakeFiles/mnpu_tests.dir/test_common.cc.o"
  "CMakeFiles/mnpu_tests.dir/test_common.cc.o.d"
  "CMakeFiles/mnpu_tests.dir/test_core_sim.cc.o"
  "CMakeFiles/mnpu_tests.dir/test_core_sim.cc.o.d"
  "CMakeFiles/mnpu_tests.dir/test_dram.cc.o"
  "CMakeFiles/mnpu_tests.dir/test_dram.cc.o.d"
  "CMakeFiles/mnpu_tests.dir/test_integration_smoke.cc.o"
  "CMakeFiles/mnpu_tests.dir/test_integration_smoke.cc.o.d"
  "CMakeFiles/mnpu_tests.dir/test_mmu.cc.o"
  "CMakeFiles/mnpu_tests.dir/test_mmu.cc.o.d"
  "CMakeFiles/mnpu_tests.dir/test_properties.cc.o"
  "CMakeFiles/mnpu_tests.dir/test_properties.cc.o.d"
  "CMakeFiles/mnpu_tests.dir/test_stress.cc.o"
  "CMakeFiles/mnpu_tests.dir/test_stress.cc.o.d"
  "CMakeFiles/mnpu_tests.dir/test_sw.cc.o"
  "CMakeFiles/mnpu_tests.dir/test_sw.cc.o.d"
  "CMakeFiles/mnpu_tests.dir/test_workloads.cc.o"
  "CMakeFiles/mnpu_tests.dir/test_workloads.cc.o.d"
  "mnpu_tests"
  "mnpu_tests.pdb"
  "mnpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
