
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/mnpu_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/mnpu_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_cli_features.cc" "tests/CMakeFiles/mnpu_tests.dir/test_cli_features.cc.o" "gcc" "tests/CMakeFiles/mnpu_tests.dir/test_cli_features.cc.o.d"
  "/root/repo/tests/test_clockdomain_dma.cc" "tests/CMakeFiles/mnpu_tests.dir/test_clockdomain_dma.cc.o" "gcc" "tests/CMakeFiles/mnpu_tests.dir/test_clockdomain_dma.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/mnpu_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/mnpu_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_core_sim.cc" "tests/CMakeFiles/mnpu_tests.dir/test_core_sim.cc.o" "gcc" "tests/CMakeFiles/mnpu_tests.dir/test_core_sim.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/mnpu_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/mnpu_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_integration_smoke.cc" "tests/CMakeFiles/mnpu_tests.dir/test_integration_smoke.cc.o" "gcc" "tests/CMakeFiles/mnpu_tests.dir/test_integration_smoke.cc.o.d"
  "/root/repo/tests/test_mmu.cc" "tests/CMakeFiles/mnpu_tests.dir/test_mmu.cc.o" "gcc" "tests/CMakeFiles/mnpu_tests.dir/test_mmu.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/mnpu_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/mnpu_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/mnpu_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/mnpu_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_sw.cc" "tests/CMakeFiles/mnpu_tests.dir/test_sw.cc.o" "gcc" "tests/CMakeFiles/mnpu_tests.dir/test_sw.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/mnpu_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/mnpu_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mnpu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mnpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mnpu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/mnpu_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/mnpu_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/mnpu_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mnpu_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mnpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
