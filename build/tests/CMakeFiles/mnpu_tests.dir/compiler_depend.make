# Empty compiler generated dependencies file for mnpu_tests.
# This may be replaced when dependencies are built.
