file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_bw_partition.dir/bench_fig09_bw_partition.cc.o"
  "CMakeFiles/bench_fig09_bw_partition.dir/bench_fig09_bw_partition.cc.o.d"
  "bench_fig09_bw_partition"
  "bench_fig09_bw_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_bw_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
