# Empty compiler generated dependencies file for bench_fig09_bw_partition.
# This may be replaced when dependencies are built.
