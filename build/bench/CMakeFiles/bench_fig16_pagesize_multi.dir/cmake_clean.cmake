file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_pagesize_multi.dir/bench_fig16_pagesize_multi.cc.o"
  "CMakeFiles/bench_fig16_pagesize_multi.dir/bench_fig16_pagesize_multi.cc.o.d"
  "bench_fig16_pagesize_multi"
  "bench_fig16_pagesize_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_pagesize_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
