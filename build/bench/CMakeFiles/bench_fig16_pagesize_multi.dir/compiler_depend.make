# Empty compiler generated dependencies file for bench_fig16_pagesize_multi.
# This may be replaced when dependencies are built.
