# Empty dependencies file for bench_fig06_dual_fairness.
# This may be replaced when dependencies are built.
