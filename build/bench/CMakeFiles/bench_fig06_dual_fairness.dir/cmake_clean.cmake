file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_dual_fairness.dir/bench_fig06_dual_fairness.cc.o"
  "CMakeFiles/bench_fig06_dual_fairness.dir/bench_fig06_dual_fairness.cc.o.d"
  "bench_fig06_dual_fairness"
  "bench_fig06_dual_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_dual_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
