# Empty compiler generated dependencies file for bench_fig12_bw_timeline.
# This may be replaced when dependencies are built.
