
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_components.cc" "bench/CMakeFiles/bench_micro_components.dir/bench_micro_components.cc.o" "gcc" "bench/CMakeFiles/bench_micro_components.dir/bench_micro_components.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mnpu_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mnpu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mnpu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/mnpu_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/mnpu_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/mnpu_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mnpu_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mnpu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
