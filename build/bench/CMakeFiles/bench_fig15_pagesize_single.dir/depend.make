# Empty dependencies file for bench_fig15_pagesize_single.
# This may be replaced when dependencies are built.
