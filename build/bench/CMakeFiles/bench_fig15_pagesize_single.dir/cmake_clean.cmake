file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_pagesize_single.dir/bench_fig15_pagesize_single.cc.o"
  "CMakeFiles/bench_fig15_pagesize_single.dir/bench_fig15_pagesize_single.cc.o.d"
  "bench_fig15_pagesize_single"
  "bench_fig15_pagesize_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_pagesize_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
