# Empty dependencies file for bench_fig17_mapping.
# This may be replaced when dependencies are built.
