file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_mapping.dir/bench_fig17_mapping.cc.o"
  "CMakeFiles/bench_fig17_mapping.dir/bench_fig17_mapping.cc.o.d"
  "bench_fig17_mapping"
  "bench_fig17_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
