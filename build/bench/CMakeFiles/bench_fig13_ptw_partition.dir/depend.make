# Empty dependencies file for bench_fig13_ptw_partition.
# This may be replaced when dependencies are built.
