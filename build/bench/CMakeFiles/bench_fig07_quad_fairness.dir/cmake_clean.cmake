file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_quad_fairness.dir/bench_fig07_quad_fairness.cc.o"
  "CMakeFiles/bench_fig07_quad_fairness.dir/bench_fig07_quad_fairness.cc.o.d"
  "bench_fig07_quad_fairness"
  "bench_fig07_quad_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_quad_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
