# Empty dependencies file for bench_fig07_quad_fairness.
# This may be replaced when dependencies are built.
