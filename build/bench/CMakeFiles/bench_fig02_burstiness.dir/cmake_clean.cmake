file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_burstiness.dir/bench_fig02_burstiness.cc.o"
  "CMakeFiles/bench_fig02_burstiness.dir/bench_fig02_burstiness.cc.o.d"
  "bench_fig02_burstiness"
  "bench_fig02_burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
