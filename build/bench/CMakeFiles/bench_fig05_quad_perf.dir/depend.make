# Empty dependencies file for bench_fig05_quad_perf.
# This may be replaced when dependencies are built.
