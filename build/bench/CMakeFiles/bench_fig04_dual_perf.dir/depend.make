# Empty dependencies file for bench_fig04_dual_perf.
# This may be replaced when dependencies are built.
