#include "workloads/random_network.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mnpu
{

Network
randomNetwork(Rng &rng, const RandomNetOptions &options)
{
    if (options.minLayers == 0 || options.minLayers > options.maxLayers)
        fatal("randomNetwork: bad layer count range");

    Network net;
    net.name =
        "rand" + std::to_string(rng.range(0, 0xffffff));
    std::uint32_t layers = static_cast<std::uint32_t>(
        rng.range(options.minLayers, options.maxLayers));

    for (std::uint32_t i = 0; i < layers; ++i) {
        std::string name = "L" + std::to_string(i);
        if (rng.uniform() < options.convProbability) {
            const std::uint32_t kernels[] = {1, 3, 3, 5};
            std::uint32_t k = kernels[rng.range(0, 3)];
            std::uint32_t spatial = static_cast<std::uint32_t>(
                rng.range(options.minSpatial, options.maxSpatial));
            spatial = std::max(spatial, k);
            std::uint32_t in_c = static_cast<std::uint32_t>(
                rng.range(options.minChannels, options.maxChannels));
            std::uint32_t out_c = static_cast<std::uint32_t>(
                rng.range(options.minChannels, options.maxChannels));
            std::uint32_t stride =
                (spatial > 2 * k && rng.uniform() < 0.25) ? 2 : 1;
            net.layers.push_back(Layer::conv(name, spatial, spatial, in_c,
                                             k, out_c, stride, k / 2));
        } else {
            std::uint64_t m =
                rng.range(options.minGemmDim, options.maxGemmDim);
            std::uint64_t n =
                rng.range(options.minGemmDim, options.maxGemmDim);
            std::uint64_t k =
                rng.range(options.minGemmDim, options.maxGemmDim);
            // Occasionally force the skinny (M=1) memory-bound shape
            // RNN-style workloads exhibit.
            if (rng.uniform() < 0.2)
                m = 1;
            net.layers.push_back(Layer::gemm(name, m, n, k));
        }
    }
    net.validate();
    return net;
}

} // namespace mnpu
