#include "workloads/models.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mnpu
{

namespace
{

/**
 * ResNet-50: conv1 + four bottleneck stages + the classifier.
 * @p blocks gives the bottleneck count per stage; @p input the spatial
 * size of the 3-channel input.
 */
Network
resnet(const std::string &name, std::uint32_t input,
       const std::vector<std::uint32_t> &blocks)
{
    Network net;
    net.name = name;
    std::uint32_t spatial = input / 2; // conv1 stride 2
    net.layers.push_back(
        Layer::conv("conv1", input, input, 3, 7, 64, 2, 3));
    spatial /= 2; // 3x3 max-pool stride 2 (folded into dimensions)

    struct Stage
    {
        std::uint32_t mid, out, stride;
    };
    const Stage stages[] = {
        {64, 256, 1}, {128, 512, 2}, {256, 1024, 2}, {512, 2048, 2}};
    std::uint32_t in_c = 64;
    for (std::size_t s = 0; s < 4; ++s) {
        const Stage &stage = stages[s];
        for (std::uint32_t b = 0; b < blocks[s]; ++b) {
            std::uint32_t stride = (b == 0) ? stage.stride : 1;
            std::string base =
                "s" + std::to_string(s + 2) + "b" + std::to_string(b + 1);
            net.layers.push_back(Layer::conv(base + "_1x1a", spatial,
                                             spatial, in_c, 1, stage.mid,
                                             stride, 0));
            std::uint32_t mid_spatial = spatial / stride;
            net.layers.push_back(Layer::conv(base + "_3x3", mid_spatial,
                                             mid_spatial, stage.mid, 3,
                                             stage.mid, 1, 1));
            net.layers.push_back(Layer::conv(base + "_1x1b", mid_spatial,
                                             mid_spatial, stage.mid, 1,
                                             stage.out, 1, 0));
            if (b == 0) {
                net.layers.push_back(Layer::conv(base + "_down", spatial,
                                                 spatial, in_c, 1,
                                                 stage.out, stride, 0));
            }
            in_c = stage.out;
            spatial = mid_spatial;
        }
    }
    net.layers.push_back(Layer::fullyConnected("fc", in_c, 1000));
    return net;
}

/** YOLOv2-tiny backbone; max-pools folded into the spatial dims. */
Network
yoloTiny(const std::string &name, std::uint32_t input,
         std::uint32_t depth)
{
    struct Spec
    {
        std::uint32_t div, in_c, out_c;
    };
    // (input / div) spatial, 3x3 convs, channel doubling chain.
    const Spec specs[] = {{1, 3, 16},     {2, 16, 32},   {4, 32, 64},
                          {8, 64, 128},   {16, 128, 256}, {32, 256, 512},
                          {32, 512, 1024}, {32, 1024, 1024}};
    Network net;
    net.name = name;
    for (std::uint32_t i = 0; i < depth && i < std::size(specs); ++i) {
        const Spec &spec = specs[i];
        std::uint32_t spatial = input / spec.div;
        net.layers.push_back(Layer::conv("conv" + std::to_string(i + 1),
                                         spatial, spatial, spec.in_c, 3,
                                         spec.out_c, 1, 1));
    }
    // Detection head: 1x1 to 125 channels (5 anchors x 25).
    std::uint32_t head_spatial = input / 32;
    std::uint32_t head_in = net.layers.back().outC;
    net.layers.push_back(Layer::conv("head", head_spatial, head_spatial,
                                     head_in, 1, 125, 1, 0));
    return net;
}

Network
alexnet(const std::string &name)
{
    Network net;
    net.name = name;
    net.layers = {
        Layer::conv("conv1", 227, 227, 3, 11, 96, 4, 0),
        Layer::conv("conv2", 27, 27, 96, 5, 256, 1, 2),
        Layer::conv("conv3", 13, 13, 256, 3, 384, 1, 1),
        Layer::conv("conv4", 13, 13, 384, 3, 384, 1, 1),
        Layer::conv("conv5", 13, 13, 384, 3, 256, 1, 1),
        Layer::fullyConnected("fc6", 9216, 4096),
        Layer::fullyConnected("fc7", 4096, 4096),
        Layer::fullyConnected("fc8", 4096, 1000),
    };
    return net;
}

/**
 * Selfish-RNN: stacked LSTM language model (hidden size h). Each
 * timestep is one M=1 GEMM against the cell's 2h x 4h weight, shared
 * across timesteps via weightTag — extremely memory-bound, as the weight
 * matrix re-streams from DRAM every step.
 */
Network
selfishRnn(const std::string &name, std::uint32_t hidden,
           std::uint32_t layers, std::uint32_t steps)
{
    Network net;
    net.name = name;
    for (std::uint32_t l = 0; l < layers; ++l) {
        std::string tag = "lstm" + std::to_string(l);
        for (std::uint32_t t = 0; t < steps; ++t) {
            Layer layer = Layer::gemm(
                tag + "_t" + std::to_string(t), 1,
                static_cast<std::uint64_t>(4) * hidden,
                static_cast<std::uint64_t>(2) * hidden);
            layer.weightTag = tag;
            net.layers.push_back(layer);
        }
    }
    net.layers.push_back(Layer::fullyConnected("decoder", hidden, 10000));
    return net;
}

/**
 * DeepSpeech2: per-layer time-batched input GEMM plus sequential
 * recurrent GEMMs with shared weights (bidirectional GRU flavor).
 */
Network
deepspeech2(const std::string &name, std::uint32_t hidden,
            std::uint32_t layers, std::uint32_t time_batch,
            std::uint32_t rec_steps)
{
    Network net;
    net.name = name;
    std::uint32_t input_features = 2 * hidden;
    for (std::uint32_t l = 0; l < layers; ++l) {
        std::string tag = "gru" + std::to_string(l);
        net.layers.push_back(Layer::gemm(
            tag + "_in", time_batch, static_cast<std::uint64_t>(3) * hidden,
            input_features));
        for (std::uint32_t t = 0; t < rec_steps; ++t) {
            Layer rec = Layer::gemm(
                tag + "_rec" + std::to_string(t), 1,
                static_cast<std::uint64_t>(3) * hidden, hidden);
            rec.weightTag = tag + "_rec";
            net.layers.push_back(rec);
        }
        input_features = hidden;
    }
    net.layers.push_back(
        Layer::fullyConnected("ctc", hidden, 29, time_batch));
    return net;
}

/** DLRM: multi-hot embedding gathers + bottom/top MLPs over a batch. */
Network
dlrm(const std::string &name, std::uint32_t tables,
     std::uint64_t table_rows, std::uint32_t lookups_per_sample,
     std::uint32_t batch)
{
    Network net;
    net.name = name;
    constexpr std::uint32_t dim = 64;
    for (std::uint32_t t = 0; t < tables; ++t) {
        net.layers.push_back(
            Layer::embedding("emb" + std::to_string(t), table_rows, dim,
                             lookups_per_sample, batch));
    }
    net.layers.push_back(Layer::fullyConnected("bot0", 13, 512, batch));
    net.layers.push_back(Layer::fullyConnected("bot1", 512, 256, batch));
    net.layers.push_back(Layer::fullyConnected("bot2", 256, dim, batch));
    net.layers.push_back(Layer::fullyConnected("top0", 367, 512, batch));
    net.layers.push_back(Layer::fullyConnected("top1", 512, 256, batch));
    net.layers.push_back(Layer::fullyConnected("top2", 256, 1, batch));
    return net;
}

/** NCF (NeuMF): two embeddings + MLP tower over a scoring batch. */
Network
ncf(const std::string &name, std::uint64_t users, std::uint64_t items,
    std::uint32_t batch)
{
    Network net;
    net.name = name;
    constexpr std::uint32_t dim = 64;
    net.layers.push_back(
        Layer::embedding("emb_user", users, dim, 1, batch));
    net.layers.push_back(
        Layer::embedding("emb_item", items, dim, 1, batch));
    net.layers.push_back(
        Layer::fullyConnected("mlp0", 2 * dim, 256, batch));
    net.layers.push_back(Layer::fullyConnected("mlp1", 256, 128, batch));
    net.layers.push_back(Layer::fullyConnected("mlp2", 128, 64, batch));
    net.layers.push_back(Layer::fullyConnected("predict", 64, 1, batch));
    return net;
}

/**
 * GPT-2: decoder blocks at sequence length S, d_model 768. Attention
 * score/context products are folded into MAC-equivalent GEMMs.
 */
Network
gpt2(const std::string &name, std::uint32_t seq, std::uint32_t blocks,
     std::uint32_t vocab)
{
    Network net;
    net.name = name;
    constexpr std::uint32_t d = 768;
    for (std::uint32_t b = 0; b < blocks; ++b) {
        std::string base = "blk" + std::to_string(b);
        net.layers.push_back(Layer::gemm(base + "_qkv", seq, 3 * d, d));
        net.layers.push_back(Layer::gemm(base + "_scores", seq, seq, d));
        net.layers.push_back(Layer::gemm(base + "_ctx", seq, d, seq));
        net.layers.push_back(Layer::gemm(base + "_proj", seq, d, d));
        net.layers.push_back(Layer::gemm(base + "_mlp1", seq, 4 * d, d));
        net.layers.push_back(Layer::gemm(base + "_mlp2", seq, d, 4 * d));
    }
    net.layers.push_back(Layer::gemm("lm_head", seq, vocab, d));
    return net;
}

/** Decoder geometry per scale; matches the batch gpt2() builders. */
struct Gpt2Geometry
{
    std::uint32_t d, blocks, vocab;
};

Gpt2Geometry
gpt2Geometry(ModelScale scale)
{
    return scale == ModelScale::Full ? Gpt2Geometry{768, 12, 50257}
                                     : Gpt2Geometry{768, 2, 8192};
}

} // namespace

void
appendGpt2Prefill(Network &net, const std::string &request_prefix,
                  std::uint32_t prompt_tokens, ModelScale scale)
{
    const Gpt2Geometry g = gpt2Geometry(scale);
    const std::uint32_t seq = std::max<std::uint32_t>(1, prompt_tokens);
    for (std::uint32_t b = 0; b < g.blocks; ++b) {
        std::string base = request_prefix + "_blk" + std::to_string(b);
        std::string tag = "gpt2w_blk" + std::to_string(b);
        Layer qkv = Layer::gemm(base + "_qkv", seq, 3 * g.d, g.d);
        qkv.weightTag = tag + "_qkv";
        net.layers.push_back(qkv);
        // Attention score/context products read this request's own
        // K / V tensors — per-request, never shared.
        net.layers.push_back(Layer::gemm(base + "_scores", seq, seq, g.d));
        net.layers.push_back(Layer::gemm(base + "_ctx", seq, g.d, seq));
        Layer proj = Layer::gemm(base + "_proj", seq, g.d, g.d);
        proj.weightTag = tag + "_proj";
        net.layers.push_back(proj);
        Layer mlp1 = Layer::gemm(base + "_mlp1", seq, 4 * g.d, g.d);
        mlp1.weightTag = tag + "_mlp1";
        net.layers.push_back(mlp1);
        Layer mlp2 = Layer::gemm(base + "_mlp2", seq, g.d, 4 * g.d);
        mlp2.weightTag = tag + "_mlp2";
        net.layers.push_back(mlp2);
    }
    Layer head = Layer::gemm(request_prefix + "_lm_head", seq, g.vocab,
                             g.d);
    head.weightTag = "gpt2w_lm_head";
    net.layers.push_back(head);
}

void
appendGpt2DecodeStep(Network &net, const std::string &request_prefix,
                     std::uint32_t context_tokens, ModelScale scale)
{
    const Gpt2Geometry g = gpt2Geometry(scale);
    const std::uint32_t ctx = std::max<std::uint32_t>(1, context_tokens);
    for (std::uint32_t b = 0; b < g.blocks; ++b) {
        std::string base = request_prefix + "_blk" + std::to_string(b);
        std::string tag = "gpt2w_blk" + std::to_string(b);
        Layer qkv = Layer::gemm(base + "_qkv", 1, 3 * g.d, g.d);
        qkv.weightTag = tag + "_qkv";
        net.layers.push_back(qkv);
        // M=1 against the growing KV cache: the B operands (K then V,
        // ctx x d each) re-stream from DRAM every generated token.
        net.layers.push_back(Layer::gemm(base + "_scores", 1, ctx, g.d));
        net.layers.push_back(Layer::gemm(base + "_ctx", 1, g.d, ctx));
        Layer proj = Layer::gemm(base + "_proj", 1, g.d, g.d);
        proj.weightTag = tag + "_proj";
        net.layers.push_back(proj);
        Layer mlp1 = Layer::gemm(base + "_mlp1", 1, 4 * g.d, g.d);
        mlp1.weightTag = tag + "_mlp1";
        net.layers.push_back(mlp1);
        Layer mlp2 = Layer::gemm(base + "_mlp2", 1, g.d, 4 * g.d);
        mlp2.weightTag = tag + "_mlp2";
        net.layers.push_back(mlp2);
    }
    Layer head = Layer::gemm(request_prefix + "_lm_head", 1, g.vocab,
                             g.d);
    head.weightTag = "gpt2w_lm_head";
    net.layers.push_back(head);
}

std::uint64_t
gpt2KvBytesPerDecodeStep(std::uint32_t context_tokens, ModelScale scale,
                         std::uint32_t data_bytes)
{
    const Gpt2Geometry g = gpt2Geometry(scale);
    return 2ULL * g.blocks * context_tokens * g.d * data_bytes;
}

const std::vector<std::string> &
modelNames()
{
    static const std::vector<std::string> names = {
        "res", "yt", "alex", "sfrnn", "ds2", "dlrm", "ncf", "gpt2"};
    return names;
}

Network
buildModel(const std::string &short_name, ModelScale scale)
{
    const bool full = scale == ModelScale::Full;
    if (short_name == "res") {
        return full ? resnet("res", 224, {3, 4, 6, 3})
                    : resnet("res", 224, {1, 1, 1, 1});
    }
    if (short_name == "yt") {
        return full ? yoloTiny("yt", 416, 8) : yoloTiny("yt", 208, 6);
    }
    if (short_name == "alex") {
        if (full)
            return alexnet("alex");
        // Mini: the conv stack intact, FC towers halved so the weight
        // streaming stays dominant without dwarfing the other minis.
        Network net = alexnet("alex");
        net.layers[5] = Layer::fullyConnected("fc6", 9216, 1024);
        net.layers[6] = Layer::fullyConnected("fc7", 1024, 1024);
        net.layers[7] = Layer::fullyConnected("fc8", 1024, 1000);
        return net;
    }
    if (short_name == "sfrnn") {
        return full ? selfishRnn("sfrnn", 1500, 2, 35)
                    : selfishRnn("sfrnn", 1024, 2, 8);
    }
    if (short_name == "ds2") {
        return full ? deepspeech2("ds2", 800, 5, 150, 30)
                    : deepspeech2("ds2", 640, 2, 64, 8);
    }
    if (short_name == "dlrm") {
        // The gather share is kept moderate: the paper's topologies are
        // SCALE-Sim-based (MLP GEMMs), so the skinny MLPs — not the
        // embedding gathers — carry most of DLRM's memory intensity.
        return full ? dlrm("dlrm", 13, 2'000'000, 8, 4096)
                    : dlrm("dlrm", 2, 200'000, 2, 4096);
    }
    if (short_name == "ncf") {
        return full ? ncf("ncf", 138'000, 27'000, 16384)
                    : ncf("ncf", 100'000, 20'000, 4096);
    }
    if (short_name == "gpt2") {
        return full ? gpt2("gpt2", 512, 12, 50257)
                    : gpt2("gpt2", 128, 2, 8192);
    }
    fatal("unknown model '", short_name, "' (expected one of res, yt, ",
          "alex, sfrnn, ds2, dlrm, ncf, gpt2)");
}

std::vector<Network>
buildAllModels(ModelScale scale)
{
    std::vector<Network> models;
    models.reserve(modelNames().size());
    for (const auto &name : modelNames())
        models.push_back(buildModel(name, scale));
    return models;
}

} // namespace mnpu
