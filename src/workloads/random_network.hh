/**
 * @file
 * DeepSniffer-style random network generator (§4.6.1 of the paper): the
 * co-runner performance predictor is trained on randomly generated
 * conv/GEMM stacks with dimensions in realistic ranges, disjoint from
 * the eight evaluation models.
 */

#ifndef MNPU_WORKLOADS_RANDOM_NETWORK_HH
#define MNPU_WORKLOADS_RANDOM_NETWORK_HH

#include <cstdint>

#include "common/rng.hh"
#include "sw/network.hh"

namespace mnpu
{

struct RandomNetOptions
{
    std::uint32_t minLayers = 3;
    std::uint32_t maxLayers = 10;
    std::uint32_t minSpatial = 14;   //!< conv input sizes
    std::uint32_t maxSpatial = 112;
    std::uint32_t minChannels = 16;
    std::uint32_t maxChannels = 384;
    std::uint64_t minGemmDim = 64;   //!< GEMM M/N/K range
    std::uint64_t maxGemmDim = 2048;
    double convProbability = 0.5;    //!< conv vs GEMM per layer
};

/** Generate a random topology; deterministic for a given RNG state. */
Network randomNetwork(Rng &rng, const RandomNetOptions &options = {});

} // namespace mnpu

#endif // MNPU_WORKLOADS_RANDOM_NETWORK_HH
