/**
 * @file
 * Built-in topologies for the paper's eight benchmark models (Table 1):
 * ResNet-50 (res), YOLO-tiny (yt), AlexNet (alex), Selfish-RNN (sfrnn),
 * DeepSpeech2 (ds2), DLRM (dlrm), NCF (ncf), and GPT-2 (gpt2).
 *
 * The layer dimensions are written from the public model descriptions
 * (the paper bases its versions on SCALE-Sim topologies). Each model has
 * two scales:
 *  - Full: the published dimensions (batch 1 / inference settings);
 *  - Mini: proportionally reduced depth/width used by the bench harness
 *    so the full mix sweeps run on a laptop. Mini variants keep each
 *    model's compute/memory character (convs stay compute-bound, RNN and
 *    recommendation models stay memory/translation-bound).
 */

#ifndef MNPU_WORKLOADS_MODELS_HH
#define MNPU_WORKLOADS_MODELS_HH

#include <string>
#include <vector>

#include "sw/network.hh"

namespace mnpu
{

enum class ModelScale { Full, Mini };

/** The paper's eight model short names, in Table 1 order. */
const std::vector<std::string> &modelNames();

/** Build a model by short name; fatal() for unknown names. */
Network buildModel(const std::string &short_name, ModelScale scale);

/** All eight models at the given scale, in modelNames() order. */
std::vector<Network> buildAllModels(ModelScale scale);

/**
 * Serving-phase GPT-2 builders (LLM request-level workloads).
 *
 * appendGpt2Prefill() appends one request's prefill pass over
 * @p prompt_tokens positions; appendGpt2DecodeStep() appends one
 * request's single-token decode step against a KV cache of
 * @p context_tokens positions. Layer names are prefixed with
 * @p request_prefix so several requests can share one Network; model
 * weights (QKV / proj / MLP / lm_head) carry request-independent
 * weightTags so co-batched requests address one shared weight tensor
 * (one footprint, shared translation and row-buffer locality — the
 * bytes still stream per request, as for Selfish-RNN), while the
 * attention score/context GEMMs read per-request KV-cache tensors
 * (unique names, no tag) — that growing stream is what makes decode
 * memory-bound.
 */
void appendGpt2Prefill(Network &net, const std::string &request_prefix,
                       std::uint32_t prompt_tokens, ModelScale scale);
void appendGpt2DecodeStep(Network &net, const std::string &request_prefix,
                          std::uint32_t context_tokens, ModelScale scale);

/**
 * Bytes of KV cache one decode step streams (the score/context B
 * operands): 2 tensors x blocks x context_tokens x d_model x data
 * bytes. Used for the serving.kv_read_bytes metric.
 */
std::uint64_t gpt2KvBytesPerDecodeStep(std::uint32_t context_tokens,
                                       ModelScale scale,
                                       std::uint32_t data_bytes);

} // namespace mnpu

#endif // MNPU_WORKLOADS_MODELS_HH
