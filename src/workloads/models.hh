/**
 * @file
 * Built-in topologies for the paper's eight benchmark models (Table 1):
 * ResNet-50 (res), YOLO-tiny (yt), AlexNet (alex), Selfish-RNN (sfrnn),
 * DeepSpeech2 (ds2), DLRM (dlrm), NCF (ncf), and GPT-2 (gpt2).
 *
 * The layer dimensions are written from the public model descriptions
 * (the paper bases its versions on SCALE-Sim topologies). Each model has
 * two scales:
 *  - Full: the published dimensions (batch 1 / inference settings);
 *  - Mini: proportionally reduced depth/width used by the bench harness
 *    so the full mix sweeps run on a laptop. Mini variants keep each
 *    model's compute/memory character (convs stay compute-bound, RNN and
 *    recommendation models stay memory/translation-bound).
 */

#ifndef MNPU_WORKLOADS_MODELS_HH
#define MNPU_WORKLOADS_MODELS_HH

#include <string>
#include <vector>

#include "sw/network.hh"

namespace mnpu
{

enum class ModelScale { Full, Mini };

/** The paper's eight model short names, in Table 1 order. */
const std::vector<std::string> &modelNames();

/** Build a model by short name; fatal() for unknown names. */
Network buildModel(const std::string &short_name, ModelScale scale);

/** All eight models at the given scale, in modelNames() order. */
std::vector<Network> buildAllModels(ModelScale scale);

} // namespace mnpu

#endif // MNPU_WORKLOADS_MODELS_HH
