/**
 * @file
 * Deterministic PRNG (SplitMix64 + xoshiro256**). The simulator never uses
 * std::random_device or time-based seeds so every run is reproducible.
 */

#ifndef MNPU_COMMON_RNG_HH
#define MNPU_COMMON_RNG_HH

#include <cstdint>

#include "common/logging.hh"

namespace mnpu
{

/** xoshiro256** seeded via SplitMix64; small, fast, and deterministic. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the 4-word state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        mnpu_assert(lo <= hi);
        std::uint64_t span = hi - lo + 1;
        if (span == 0) // full 64-bit range
            return next();
        return lo + next() % span;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_[4];
};

} // namespace mnpu

#endif // MNPU_COMMON_RNG_HH
