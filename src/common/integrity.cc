#include "common/integrity.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <utility>

#include "common/logging.hh"

namespace mnpu
{

const char *
toString(CheckLevel level)
{
    switch (level) {
      case CheckLevel::Off:
        return "off";
      case CheckLevel::Cheap:
        return "cheap";
      case CheckLevel::Full:
        return "full";
    }
    return "?";
}

CheckLevel
parseCheckLevel(const std::string &text)
{
    if (text == "off")
        return CheckLevel::Off;
    if (text == "cheap")
        return CheckLevel::Cheap;
    if (text == "full")
        return CheckLevel::Full;
    fatal("unknown check level '", text, "'; expected off, cheap or full");
}

namespace
{

/** Process default from --check; -1 = unset. */
std::atomic<int> g_check_default{-1};

} // namespace

void
setCheckLevelDefault(CheckLevel level)
{
    g_check_default.store(static_cast<int>(level));
}

void
clearCheckLevelDefault()
{
    g_check_default.store(-1);
}

CheckLevel
effectiveCheckLevel(const std::optional<CheckLevel> &configured)
{
    if (configured)
        return *configured;
    const int fallback = g_check_default.load();
    if (fallback >= 0)
        return static_cast<CheckLevel>(fallback);
    const char *env = std::getenv("MNPU_CHECK");
    if (env != nullptr && *env != '\0')
        return parseCheckLevel(env);
    return CheckLevel::Off;
}

// --- DramProtocolChecker ---

DramProtocolChecker::DramProtocolChecker(const DramTiming &timing,
                                         std::string name)
    : timing_(timing),
      name_(std::move(name)),
      banks_(timing.ranks * timing.banksPerRank()),
      ranks_(timing.ranks)
{
    for (auto &rank : ranks_)
        rank.refreshDueAt = timing_.tREFI;
}

void
DramProtocolChecker::violation(const char *constraint,
                               const std::string &detail) const
{
    throw SimulationError(
        SimErrorKind::ProtocolViolation,
        name_ + ": DRAM protocol violation [" + constraint + "] " + detail +
            " (timing preset '" + timing_.name + "')");
}

void
DramProtocolChecker::checkPrechargeable(const BankShadow &bank, Cycle at,
                                        const char *what) const
{
    if (bank.openRow != -1 && at < bank.actAt + timing_.tRAS)
        violation("tRAS", std::string(what) + " at cycle " +
                              std::to_string(at) + " only " +
                              std::to_string(at - bank.actAt) +
                              " cycles after ACT (tRAS=" +
                              std::to_string(timing_.tRAS) + ")");
    if (bank.writeDoneAt != 0 && at < bank.writeDoneAt + timing_.tWR)
        violation("tWR", std::string(what) + " at cycle " +
                             std::to_string(at) +
                             " before write recovery; write data ended at " +
                             std::to_string(bank.writeDoneAt) + " (tWR=" +
                             std::to_string(timing_.tWR) + ")");
    if (bank.lastReadAt != 0 && at < bank.lastReadAt + timing_.tRTP)
        violation("tRTP", std::string(what) + " at cycle " +
                              std::to_string(at) + " only " +
                              std::to_string(at - bank.lastReadAt) +
                              " cycles after a read (tRTP=" +
                              std::to_string(timing_.tRTP) + ")");
}

void
DramProtocolChecker::mixCommand(std::uint64_t kind, std::uint64_t where,
                                std::uint64_t row, Cycle at)
{
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    for (std::uint64_t word : {kind, where, row, at}) {
        for (int byte = 0; byte < 8; ++byte) {
            streamHash_ ^= (word >> (byte * 8)) & 0xffu;
            streamHash_ *= kPrime;
        }
    }
}

void
DramProtocolChecker::onActivate(std::uint32_t rank_index,
                                std::uint32_t flat_bank, std::uint64_t row,
                                Cycle now)
{
    BankShadow &bank = banks_.at(flat_bank);
    RankShadow &rank = ranks_.at(rank_index);
    ++commands_;
    mixCommand(1, flat_bank, row, now);
    if (now < rank.refreshingUntil)
        violation("tRFC", "ACT at cycle " + std::to_string(now) +
                              " while rank " + std::to_string(rank_index) +
                              " refreshes until " +
                              std::to_string(rank.refreshingUntil));
    if (now >= rank.refreshDueAt)
        violation("tREFI", "ACT at cycle " + std::to_string(now) +
                               " while rank " + std::to_string(rank_index) +
                               " refresh was due at " +
                               std::to_string(rank.refreshDueAt));
    if (bank.openRow != -1)
        violation("row-state", "ACT on bank " + std::to_string(flat_bank) +
                                   " at cycle " + std::to_string(now) +
                                   " with row " +
                                   std::to_string(bank.openRow) +
                                   " still open");
    if (now < bank.actAllowedAt)
        violation("tRP", "ACT on bank " + std::to_string(flat_bank) +
                             " at cycle " + std::to_string(now) +
                             " before precharge completes at " +
                             std::to_string(bank.actAllowedAt));
    if (now < rank.nextActAllowedAt)
        violation("tRRD", "ACT at cycle " + std::to_string(now) +
                              " only " +
                              std::to_string(now + timing_.tRRD -
                                             rank.nextActAllowedAt) +
                              " cycles after the previous ACT (tRRD=" +
                              std::to_string(timing_.tRRD) + ")");
    // tFAW: the 4th-previous ACT must be at least tFAW old. Mirrors the
    // channel's leniency of treating a cycle-0 slot as unfilled.
    const Cycle oldest = rank.actWindow[rank.actPtr];
    if (oldest != 0 && now < oldest + timing_.tFAW)
        violation("tFAW", "5th ACT in " + std::to_string(now - oldest) +
                              " cycles at cycle " + std::to_string(now) +
                              " (tFAW=" + std::to_string(timing_.tFAW) +
                              ")");
    rank.actWindow[rank.actPtr] = now;
    rank.actPtr = (rank.actPtr + 1) % rank.actWindow.size();
    rank.nextActAllowedAt = now + timing_.tRRD;
    bank.openRow = static_cast<std::int64_t>(row);
    bank.actAt = now;
    bank.lastReadAt = 0;
    bank.writeDoneAt = 0;
}

void
DramProtocolChecker::onPrecharge(std::uint32_t flat_bank, Cycle now)
{
    BankShadow &bank = banks_.at(flat_bank);
    ++commands_;
    mixCommand(2, flat_bank, 0, now);
    if (bank.openRow == -1)
        violation("row-state", "PRE on bank " + std::to_string(flat_bank) +
                                   " at cycle " + std::to_string(now) +
                                   " with no row open");
    checkPrechargeable(bank, now, "PRE");
    bank.openRow = -1;
    bank.actAllowedAt = now + timing_.tRP;
    bank.preEffectiveAt = now;
    bank.lastReadAt = 0;
    bank.writeDoneAt = 0;
}

void
DramProtocolChecker::onAutoPrecharge(std::uint32_t flat_bank,
                                     Cycle effective_at)
{
    BankShadow &bank = banks_.at(flat_bank);
    ++commands_;
    mixCommand(3, flat_bank, 0, effective_at);
    if (bank.openRow == -1)
        violation("row-state", "auto-precharge on bank " +
                                   std::to_string(flat_bank) +
                                   " with no row open");
    checkPrechargeable(bank, effective_at, "auto-precharge");
    bank.openRow = -1;
    bank.actAllowedAt = effective_at + timing_.tRP;
    bank.preEffectiveAt = effective_at;
    bank.lastReadAt = 0;
    bank.writeDoneAt = 0;
}

void
DramProtocolChecker::onColumn(std::uint32_t rank_index,
                              std::uint32_t flat_bank, std::uint64_t row,
                              bool is_write, Cycle now)
{
    BankShadow &bank = banks_.at(flat_bank);
    RankShadow &rank = ranks_.at(rank_index);
    ++commands_;
    mixCommand(is_write ? 5 : 4, flat_bank, row, now);
    const char *op = is_write ? "WR" : "RD";
    if (now < rank.refreshingUntil)
        violation("tRFC", std::string(op) + " at cycle " +
                              std::to_string(now) + " while rank " +
                              std::to_string(rank_index) +
                              " refreshes until " +
                              std::to_string(rank.refreshingUntil));
    if (now >= rank.refreshDueAt)
        violation("tREFI", std::string(op) + " at cycle " +
                               std::to_string(now) + " while rank " +
                               std::to_string(rank_index) +
                               " refresh was overdue since " +
                               std::to_string(rank.refreshDueAt));
    if (bank.openRow != static_cast<std::int64_t>(row))
        violation("row-conflict",
                  std::string(op) + " to row " + std::to_string(row) +
                      " of bank " + std::to_string(flat_bank) +
                      " at cycle " + std::to_string(now) + " while row " +
                      (bank.openRow == -1 ? std::string("<none>")
                                          : std::to_string(bank.openRow)) +
                      " is open");
    if (now < bank.actAt + timing_.tRCD)
        violation("tRCD", std::string(op) + " at cycle " +
                              std::to_string(now) + " only " +
                              std::to_string(now - bank.actAt) +
                              " cycles after ACT (tRCD=" +
                              std::to_string(timing_.tRCD) + ")");
    const Cycle bus_gap =
        std::max<Cycle>(timing_.tCCD, timing_.burstCycles());
    if (haveColumn_) {
        if (now < lastColumnAt_ + bus_gap)
            violation("tCCD", std::string(op) + " at cycle " +
                                  std::to_string(now) +
                                  " within the bus occupancy of the "
                                  "column at " +
                                  std::to_string(lastColumnAt_) +
                                  " (gap=" + std::to_string(bus_gap) + ")");
        if (is_write != lastColumnWasWrite_) {
            const Cycle turnaround =
                lastColumnWasWrite_ ? timing_.tWTR : timing_.tRTW;
            if (now < lastColumnAt_ + bus_gap + turnaround)
                violation(lastColumnWasWrite_ ? "tWTR" : "tRTW",
                          std::string(op) + " at cycle " +
                              std::to_string(now) +
                              " inside the turnaround window of the " +
                              (lastColumnWasWrite_ ? "write" : "read") +
                              " at " + std::to_string(lastColumnAt_));
        }
    }
    lastColumnAt_ = now;
    lastColumnWasWrite_ = is_write;
    haveColumn_ = true;
    if (is_write)
        bank.writeDoneAt = now + timing_.tCWL + timing_.burstCycles();
    else
        bank.lastReadAt = now;
}

void
DramProtocolChecker::onRefresh(std::uint32_t rank_index, Cycle now)
{
    RankShadow &rank = ranks_.at(rank_index);
    ++commands_;
    mixCommand(6, rank_index, 0, now);
    if (now < rank.refreshingUntil)
        violation("tRFC", "REF at cycle " + std::to_string(now) +
                              " while rank " + std::to_string(rank_index) +
                              " still refreshes until " +
                              std::to_string(rank.refreshingUntil));
    const std::uint32_t base = rank_index * timing_.banksPerRank();
    for (std::uint32_t b = 0; b < timing_.banksPerRank(); ++b) {
        BankShadow &bank = banks_.at(base + b);
        if (now < bank.preEffectiveAt)
            violation("precharge-in-flight",
                      "REF at cycle " + std::to_string(now) + " while bank " +
                          std::to_string(base + b) +
                          " precharges until " +
                          std::to_string(bank.preEffectiveAt));
        checkPrechargeable(bank, now, "REF");
        bank.openRow = -1;
        bank.preEffectiveAt = now;
        bank.lastReadAt = 0;
        bank.writeDoneAt = 0;
    }
    rank.refreshingUntil = now + timing_.tRFC;
    rank.refreshDueAt += timing_.tREFI;
}

void
DramProtocolChecker::onRefreshDeadline(std::uint32_t rank_index, Cycle due)
{
    ranks_.at(rank_index).refreshDueAt = due;
}

// --- RequestLifecycleTracker ---

RequestLifecycleTracker::RequestLifecycleTracker(Addr phys_capacity,
                                                 std::uint32_t tx_bytes,
                                                 std::uint32_t num_cores)
    : physCapacity_(phys_capacity),
      txBytes_(tx_bytes),
      dataCompleted_(num_cores, 0),
      walkCompleted_(num_cores, 0),
      expectedDataTx_(num_cores, kNoExpectation)
{}

std::uint64_t
RequestLifecycleTracker::onIssue(Addr paddr, CoreId core, bool walk,
                                 Cycle now)
{
    if (paddr >= physCapacity_ || physCapacity_ - paddr < txBytes_)
        throw SimulationError(
            SimErrorKind::RequestLifecycle,
            std::string("out-of-range ") + (walk ? "walk" : "data") +
                " request from core " + std::to_string(core) +
                " at cycle " + std::to_string(now) + ": paddr " +
                std::to_string(paddr) + " beyond physical capacity " +
                std::to_string(physCapacity_));
    const std::uint64_t id = nextId_++;
    pending_.emplace(id, Pending{paddr, core, walk});
    return id;
}

void
RequestLifecycleTracker::onComplete(std::uint64_t id, Addr paddr,
                                    CoreId core, bool walk, Cycle at)
{
    auto found = pending_.find(id);
    if (found == pending_.end())
        throw SimulationError(
            SimErrorKind::RequestLifecycle,
            "duplicated or unknown DRAM response (integrity id " +
                std::to_string(id) + ") for core " + std::to_string(core) +
                " at cycle " + std::to_string(at) +
                (id == 0 || id >= nextId_
                     ? ": never issued"
                     : ": already completed once"));
    const Pending &issued = found->second;
    if (issued.paddr != paddr || issued.core != core || issued.walk != walk)
        throw SimulationError(
            SimErrorKind::RequestLifecycle,
            "DRAM response does not match its issue record (integrity id " +
                std::to_string(id) + "): issued paddr=" +
                std::to_string(issued.paddr) + " core=" +
                std::to_string(issued.core) + " walk=" +
                std::to_string(issued.walk) + ", completed paddr=" +
                std::to_string(paddr) + " core=" + std::to_string(core) +
                " walk=" + std::to_string(walk));
    if (core < dataCompleted_.size()) {
        if (walk)
            ++walkCompleted_[core];
        else
            ++dataCompleted_[core];
    }
    pending_.erase(found);
}

SimulationError
RequestLifecycleTracker::lostResponseError(Cycle now) const
{
    std::string message =
        "lost DRAM response: " + std::to_string(pending_.size()) +
        " issued transaction(s) never completed and the DRAM system is "
        "idle at cycle " +
        std::to_string(now);
    std::size_t listed = 0;
    for (const auto &entry : pending_) {
        if (++listed > 4) {
            message += ", ...";
            break;
        }
        message += (listed == 1 ? ": " : ", ");
        message += "[id " + std::to_string(entry.first) + " core " +
                   std::to_string(entry.second.core) +
                   (entry.second.walk ? " walk" : " data") + "]";
    }
    return SimulationError(SimErrorKind::RequestLifecycle, message);
}

void
RequestLifecycleTracker::setExpectedDataTransactions(CoreId core,
                                                     std::uint64_t count)
{
    if (core < expectedDataTx_.size())
        expectedDataTx_[core] = count;
}

void
RequestLifecycleTracker::finalAudit(
    const std::vector<std::uint64_t> &core_bytes,
    const std::vector<std::uint64_t> &core_walk_bytes,
    const std::vector<std::uint64_t> &mmu_walk_steps) const
{
    if (!pending_.empty())
        throw lostResponseError(0);
    for (CoreId core = 0; core < dataCompleted_.size(); ++core) {
        const std::uint64_t bytes =
            core < core_bytes.size() ? core_bytes[core] : 0;
        const std::uint64_t walk_bytes =
            core < core_walk_bytes.size() ? core_walk_bytes[core] : 0;
        const std::uint64_t data_bytes = bytes - walk_bytes;
        if (dataCompleted_[core] * txBytes_ != data_bytes)
            throw SimulationError(
                SimErrorKind::RequestLifecycle,
                "leak audit: core " + std::to_string(core) + " completed " +
                    std::to_string(dataCompleted_[core]) +
                    " data transactions (x" + std::to_string(txBytes_) +
                    " B) but the DRAM system accounted " +
                    std::to_string(data_bytes) + " data bytes");
        if (walkCompleted_[core] * txBytes_ != walk_bytes)
            throw SimulationError(
                SimErrorKind::MmuConsistency,
                "leak audit: core " + std::to_string(core) + " completed " +
                    std::to_string(walkCompleted_[core]) +
                    " walk transactions (x" + std::to_string(txBytes_) +
                    " B) but the DRAM system accounted " +
                    std::to_string(walk_bytes) + " walk bytes");
        if (core < mmu_walk_steps.size() &&
            walkCompleted_[core] != mmu_walk_steps[core])
            throw SimulationError(
                SimErrorKind::MmuConsistency,
                "walk reconciliation: core " + std::to_string(core) +
                    " completed " + std::to_string(walkCompleted_[core]) +
                    " walk transactions but the MMU issued " +
                    std::to_string(mmu_walk_steps[core]) + " walk steps");
        if (expectedDataTx_[core] != kNoExpectation &&
            dataCompleted_[core] != expectedDataTx_[core])
            throw SimulationError(
                SimErrorKind::RequestLifecycle,
                "trace reconciliation: core " + std::to_string(core) +
                    " completed " + std::to_string(dataCompleted_[core]) +
                    " data transactions but the SW trace emits " +
                    std::to_string(expectedDataTx_[core]));
    }
}

void
DramProtocolChecker::saveState(StateWriter &out) const
{
    out.section("PCHK");
    out.u64(banks_.size());
    for (const BankShadow &bank : banks_) {
        out.i64(bank.openRow);
        out.u64(bank.actAt);
        out.u64(bank.actAllowedAt);
        out.u64(bank.preEffectiveAt);
        out.u64(bank.lastReadAt);
        out.u64(bank.writeDoneAt);
    }
    out.u64(ranks_.size());
    for (const RankShadow &rank : ranks_) {
        for (Cycle at : rank.actWindow)
            out.u64(at);
        out.u64(rank.actPtr);
        out.u64(rank.nextActAllowedAt);
        out.u64(rank.refreshDueAt);
        out.u64(rank.refreshingUntil);
    }
    out.u64(lastColumnAt_);
    out.b(lastColumnWasWrite_);
    out.b(haveColumn_);
    out.u64(commands_);
    out.u64(streamHash_);
}

void
DramProtocolChecker::loadState(StateReader &in)
{
    in.section("PCHK");
    if (in.u64() != banks_.size())
        throw SnapshotError("protocol checker bank count mismatch");
    for (BankShadow &bank : banks_) {
        bank.openRow = in.i64();
        bank.actAt = in.u64();
        bank.actAllowedAt = in.u64();
        bank.preEffectiveAt = in.u64();
        bank.lastReadAt = in.u64();
        bank.writeDoneAt = in.u64();
    }
    if (in.u64() != ranks_.size())
        throw SnapshotError("protocol checker rank count mismatch");
    for (RankShadow &rank : ranks_) {
        for (Cycle &at : rank.actWindow)
            at = in.u64();
        rank.actPtr = static_cast<std::size_t>(in.u64());
        if (rank.actPtr >= rank.actWindow.size())
            throw SnapshotError("protocol checker actPtr out of range");
        rank.nextActAllowedAt = in.u64();
        rank.refreshDueAt = in.u64();
        rank.refreshingUntil = in.u64();
    }
    lastColumnAt_ = in.u64();
    lastColumnWasWrite_ = in.b();
    haveColumn_ = in.b();
    commands_ = in.u64();
    streamHash_ = in.u64();
}

void
RequestLifecycleTracker::saveState(StateWriter &out) const
{
    out.section("LIFE");
    out.u64(nextId_);
    std::vector<std::uint64_t> ids;
    ids.reserve(pending_.size());
    for (const auto &[id, unused] : pending_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    out.u64(ids.size());
    for (std::uint64_t id : ids) {
        const Pending &entry = pending_.at(id);
        out.u64(id);
        out.u64(entry.paddr);
        out.u32(entry.core);
        out.b(entry.walk);
    }
    out.u64Vec(dataCompleted_);
    out.u64Vec(walkCompleted_);
}

void
RequestLifecycleTracker::loadState(StateReader &in)
{
    in.section("LIFE");
    nextId_ = in.u64();
    std::uint64_t n = in.u64();
    pending_.clear();
    pending_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t id = in.u64();
        Pending entry{};
        entry.paddr = in.u64();
        entry.core = in.u32();
        entry.walk = in.b();
        pending_[id] = entry;
    }
    std::vector<std::uint64_t> data = in.u64Vec();
    std::vector<std::uint64_t> walk = in.u64Vec();
    if (data.size() != dataCompleted_.size() ||
        walk.size() != walkCompleted_.size())
        throw SnapshotError("lifecycle tracker core count mismatch");
    dataCompleted_ = std::move(data);
    walkCompleted_ = std::move(walk);
}

} // namespace mnpu
