#include "common/stop_signal.hh"

#include <csignal>

#ifdef _WIN32
#error "stop_signal.cc requires a POSIX platform"
#endif

#include <unistd.h>

namespace mnpu
{

namespace
{

std::atomic<bool> g_stop_requested{false};
// sig_atomic_t escalation counter: everything the handler touches must
// be async-signal-safe (lock-free atomics + write()).
std::atomic<int> g_signals_seen{0};
std::atomic<bool> g_installed{false};

extern "C" void
stopSignalHandler(int)
{
    int seen = g_signals_seen.fetch_add(1, std::memory_order_relaxed);
    if (seen == 0) {
        g_stop_requested.store(true, std::memory_order_relaxed);
        static const char message[] =
            "\n[mnpu] stop requested: cancelling in-flight jobs "
            "(checkpoint stays resumable); signal again to force-exit\n";
        // write() is async-signal-safe; the return value only tells us
        // stderr is gone, in which case there is nobody to inform.
        ssize_t ignored =
            write(STDERR_FILENO, message, sizeof(message) - 1);
        (void)ignored;
    } else {
        _exit(kInterruptedExitCode);
    }
}

} // namespace

void
installStopSignalHandlers()
{
    if (g_installed.exchange(true))
        return;
    struct sigaction action = {};
    action.sa_handler = stopSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // no SA_RESTART: interrupt blocking reads too
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

const std::atomic<bool> *
stopSignalToken()
{
    return &g_stop_requested;
}

bool
stopSignalRaised()
{
    return g_stop_requested.load(std::memory_order_relaxed);
}

void
resetStopSignalForTesting()
{
    g_stop_requested.store(false);
    g_signals_seen.store(0);
}

} // namespace mnpu
