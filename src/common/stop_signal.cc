#include "common/stop_signal.hh"

#include <csignal>
#include <cstring>

#ifdef _WIN32
#error "stop_signal.cc requires a POSIX platform"
#endif

#include <unistd.h>

namespace mnpu
{

namespace
{

std::atomic<bool> g_stop_requested{false};
// sig_atomic_t escalation counter: everything the handler touches must
// be async-signal-safe (lock-free atomics + write() + unlink()).
std::atomic<int> g_signals_seen{0};
std::atomic<bool> g_installed{false};

// Force-exit cleanup: a fixed buffer (no allocation in the handler's
// reach) holding the one in-flight tmp file to unlink before _exit.
// The writer fills the buffer first and only then publishes via the
// armed flag (release); the handler observes the flag (acquire) before
// touching the buffer, so it never reads a half-written path.
constexpr std::size_t kCleanupPathMax = 4096;
char g_cleanup_path[kCleanupPathMax];
std::atomic<bool> g_cleanup_armed{false};

extern "C" void
stopSignalHandler(int)
{
    int seen = g_signals_seen.fetch_add(1, std::memory_order_relaxed);
    if (seen == 0) {
        g_stop_requested.store(true, std::memory_order_relaxed);
        static const char message[] =
            "\n[mnpu] stop requested: cancelling in-flight jobs "
            "(checkpoint stays resumable); signal again to force-exit\n";
        // write() is async-signal-safe; the return value only tells us
        // stderr is gone, in which case there is nobody to inform.
        ssize_t ignored =
            write(STDERR_FILENO, message, sizeof(message) - 1);
        (void)ignored;
    } else {
        // Force exit. If a snapshot tmp file is mid-write, unlink it:
        // leaving a partial `.snap.tmp` behind wastes disk and, worse,
        // a later crash between its creation and the force-exit could
        // confuse forensic cleanup. unlink() is async-signal-safe;
        // ENOENT (already renamed) is fine.
        if (g_cleanup_armed.load(std::memory_order_acquire))
            unlink(g_cleanup_path);
        _exit(kInterruptedExitCode);
    }
}

} // namespace

void
installStopSignalHandlers()
{
    if (g_installed.exchange(true))
        return;
    struct sigaction action = {};
    action.sa_handler = stopSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // no SA_RESTART: interrupt blocking reads too
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

const std::atomic<bool> *
stopSignalToken()
{
    return &g_stop_requested;
}

bool
stopSignalRaised()
{
    return g_stop_requested.load(std::memory_order_relaxed);
}

void
resetStopSignalForTesting()
{
    g_stop_requested.store(false);
    g_signals_seen.store(0);
    g_cleanup_armed.store(false);
}

void
setForceExitCleanupPath(const char *path)
{
    std::size_t len = std::strlen(path);
    if (len + 1 > kCleanupPathMax)
        return; // too long to register; the write proceeds unguarded
    std::memcpy(g_cleanup_path, path, len + 1);
    g_cleanup_armed.store(true, std::memory_order_release);
}

void
clearForceExitCleanupPath()
{
    g_cleanup_armed.store(false, std::memory_order_release);
}

} // namespace mnpu
