/**
 * @file
 * Lightweight statistics registry: scalar counters, averages, histograms,
 * and a formatter. Components own a StatGroup and register stats with it;
 * the simulator aggregates groups for the final report.
 */

#ifndef MNPU_COMMON_STATS_HH
#define MNPU_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/snapshot.hh"

namespace mnpu
{

/** A named 64-bit event counter. */
class Counter
{
  public:
    void inc(std::uint64_t amount = 1) { total_ += amount; }
    void reset() { total_ = 0; }
    std::uint64_t value() const { return total_; }

    void saveState(StateWriter &out) const { out.u64(total_); }
    void loadState(StateReader &in) { total_ = in.u64(); }

  private:
    std::uint64_t total_ = 0;
};

/** A running mean/min/max over sampled values (e.g. latencies). */
class Distribution
{
  public:
    void sample(double value);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Population standard deviation. */
    double stddev() const;

    void saveState(StateWriter &out) const;
    void loadState(StateReader &in);

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSquares_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width bucket histogram over [0, bucketWidth * numBuckets). */
class Histogram
{
  public:
    Histogram(double bucket_width, std::size_t num_buckets);

    void sample(double value);
    void reset();

    double bucketWidth() const { return bucketWidth_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t count() const { return count_; }

  private:
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * A named collection of statistics. Stats register by name; dump() prints
 * `group.name value` lines in registration order, gem5-stats style.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create (or fetch) a counter registered under @p stat_name. */
    Counter &counter(const std::string &stat_name);

    /** Create (or fetch) a distribution registered under @p stat_name. */
    Distribution &distribution(const std::string &stat_name);

    /** Read a counter by name; 0 if absent. */
    std::uint64_t counterValue(const std::string &stat_name) const;

    /** Stat names in registration order (counters and distributions). */
    const std::vector<std::string> &order() const { return order_; }

    /** Look up a counter by name; nullptr if absent. */
    const Counter *findCounter(const std::string &stat_name) const;

    /** Look up a distribution by name; nullptr if absent. */
    const Distribution *findDistribution(const std::string &stat_name) const;

    const std::string &name() const { return name_; }

    /** Print all stats as `group.stat value` lines. */
    void dump(std::ostream &out) const;

    /** Zero every registered stat. */
    void resetAll();

    /**
     * Snapshot every registered stat (by name, in registration
     * order). loadState requires the identical registration set —
     * component constructors register statically, so a mismatch means
     * the snapshot came from a different configuration and throws
     * SnapshotError (discard + from-scratch).
     */
    void saveState(StateWriter &out) const;
    void loadState(StateReader &in);

  private:
    std::string name_;
    std::vector<std::string> order_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
};

} // namespace mnpu

#endif // MNPU_COMMON_STATS_HH
