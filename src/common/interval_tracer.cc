#include "common/interval_tracer.hh"

#include "common/logging.hh"

namespace mnpu
{

IntervalTracer::IntervalTracer(Cycle window_cycles) : window_(window_cycles)
{
    if (window_cycles == 0)
        fatal("IntervalTracer window must be nonzero");
}

void
IntervalTracer::record(Cycle now, std::uint64_t amount)
{
    mnpu_assert(!finalized_, "record() after finalize()");
    auto index = static_cast<std::size_t>(now / window_);
    if (index < currentIndex_) {
        // Out-of-order within an already-closed window: fold into the
        // closed total; completions may retire slightly out of order.
        if (index < totals_.size()) {
            totals_[index] += amount;
            return;
        }
        index = currentIndex_;
    }
    while (currentIndex_ < index) {
        totals_.push_back(currentTotal_);
        currentTotal_ = 0;
        ++currentIndex_;
    }
    currentTotal_ += amount;
}

void
IntervalTracer::finalize()
{
    if (finalized_)
        return;
    totals_.push_back(currentTotal_);
    currentTotal_ = 0;
    finalized_ = true;
}

std::vector<double>
IntervalTracer::movingAverage(std::size_t span) const
{
    std::vector<double> averaged;
    if (span == 0 || totals_.empty())
        return averaged;
    averaged.reserve(totals_.size());
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < totals_.size(); ++i) {
        running += totals_[i];
        if (i >= span)
            running -= totals_[i - span];
        std::size_t denom = i + 1 < span ? i + 1 : span;
        averaged.push_back(static_cast<double>(running) / denom);
    }
    return averaged;
}

void
IntervalTracer::saveState(StateWriter &out) const
{
    out.section("ITRC");
    out.u64(window_);
    out.u64(currentIndex_);
    out.u64(currentTotal_);
    out.b(finalized_);
    out.u64Vec(totals_);
}

void
IntervalTracer::loadState(StateReader &in)
{
    in.section("ITRC");
    if (in.u64() != window_)
        throw SnapshotError("interval tracer window mismatch");
    currentIndex_ = static_cast<std::size_t>(in.u64());
    currentTotal_ = in.u64();
    finalized_ = in.b();
    totals_ = in.u64Vec();
}

} // namespace mnpu
