/**
 * @file
 * Unified metrics registry: components register named readers for
 * counters, gauges, and windowed time series under stable dotted names
 * (`dram.ch0.row_hits`, `core1.tlb.misses`), and a snapshot() call
 * materializes them all into one TelemetrySnapshot — the single view
 * that SimResult/MixOutcome consumers read instead of reaching into
 * component internals.
 *
 * The registry holds *readers* (std::function closures over component
 * state), not values: registration happens once at system construction,
 * costs nothing while the simulation runs, and snapshot() is only
 * called after the run completes. This keeps the observability layer
 * passive in the PR 3/4 sense — it cannot perturb simulated timing
 * because it never executes inside the simulated loop.
 *
 * Stable metric-name schema (documented in DESIGN.md §9):
 *   sim.global_cycles            run length in global (DRAM) cycles
 *   sched.loop_iterations        main-loop iterations (scheduler-dependent,
 *                                excluded from golden comparisons)
 *   core<i>.local_cycles         per-core completion time, local cycles
 *   core<i>.finished_at_global   per-core completion time, global cycles
 *   core<i>.pe_utilization       gauge in [0, 1]
 *   core<i>.traffic_bytes        data DRAM traffic
 *   core<i>.walk_bytes           page-walk DRAM traffic
 *   core<i>.read_tx / write_tx / xlat_retries / dram_retries
 *   core<i>.tlb.hits / tlb.misses / walks
 *   mmu.translations / tlb_hits / tlb_misses / walks / mshr_attaches
 *   mmu.walk_latency.{count,mean,min,max}   (and walk_queue_delay.*)
 *   dram.reads / writes / bytes / row_hits / row_misses / activates /
 *        refreshes               totals over all channels
 *   dram.energy_pj               gauge (DRAMPower-style estimate)
 *   dram.ch<c>.*                 per-channel counters + queue_latency.*
 * Series (present when windowed telemetry is enabled):
 *   dram.total.bytes             bytes delivered per window
 *   dram.core<i>.bytes           per-core bytes per window
 *   core<i>.requests             requests issued per window
 */

#ifndef MNPU_COMMON_METRICS_REGISTRY_HH
#define MNPU_COMMON_METRICS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mnpu
{

class StatGroup;

/**
 * A materialized, value-semantic view of every registered metric at one
 * point in time. Cheap to copy, compare, and serialize; carried on
 * SimResult so downstream consumers (benches, sweeps, checkpoints)
 * never touch live components.
 */
struct TelemetrySnapshot
{
    struct Metric
    {
        std::string name;
        /** true → integer counter (value in counter); false → gauge. */
        bool isCounter = true;
        std::uint64_t counter = 0;
        double gauge = 0.0;

        bool operator==(const Metric &) const = default;
    };

    struct Series
    {
        std::string name;
        /** Window span in global cycles. */
        Cycle windowCycles = 0;
        std::vector<std::uint64_t> values;

        /** Trailing moving average over @p span windows (span >= 1). */
        std::vector<double> movingAverage(std::size_t span) const;

        bool operator==(const Series &) const = default;
    };

    /** In registration order, so two identical runs serialize alike. */
    std::vector<Metric> metrics;
    std::vector<Series> series;

    bool empty() const { return metrics.empty() && series.empty(); }

    bool has(const std::string &name) const;

    /** Counter value by name; fatal() if absent or not a counter, so a
     *  schema typo fails loudly instead of reading as zero. */
    std::uint64_t counter(const std::string &name) const;

    /** Gauge value by name; fatal() if absent or not a gauge. */
    double gauge(const std::string &name) const;

    /** Series by name; nullptr when absent (series are conditional on
     *  windowed telemetry being enabled, unlike scalar metrics). */
    const Series *findSeries(const std::string &name) const;

    bool operator==(const TelemetrySnapshot &) const = default;

    /** Long-form CSV: kind,name,window_cycles,window_index,value. */
    void writeCsv(std::ostream &out) const;

    /** JSONL: one {"kind":...,"name":...} object per metric/series. */
    void writeJsonl(std::ostream &out) const;

    /** Write to @p path — ".csv" suffix selects CSV, else JSONL. */
    void writeFile(const std::string &path) const;
};

/**
 * Registration side of the observability layer. Components (or the
 * system that owns them) add readers once at construction; names must
 * be unique — a duplicate is a wiring bug and fatal()s.
 */
class MetricsRegistry
{
  public:
    using CounterReader = std::function<std::uint64_t()>;
    using GaugeReader = std::function<double()>;
    using SeriesReader = std::function<std::vector<std::uint64_t>()>;

    void addCounter(std::string name, CounterReader read);
    void addGauge(std::string name, GaugeReader read);

    /**
     * Register every stat in @p group under `group.name().<stat>`:
     * counters directly, distributions as four gauges
     * (.count/.mean/.min/.max, with .count an integer counter).
     * The group must outlive the registry.
     */
    void addGroup(const StatGroup &group);

    /** Register a windowed time series with @p window_cycles span. */
    void addSeries(std::string name, Cycle window_cycles, SeriesReader read);

    std::size_t metricCount() const { return metrics_.size(); }
    std::size_t seriesCount() const { return series_.size(); }

    /** Evaluate every reader into a value snapshot. */
    TelemetrySnapshot snapshot() const;

  private:
    struct MetricEntry
    {
        std::string name;
        bool isCounter;
        CounterReader counter;
        GaugeReader gauge;
    };

    struct SeriesEntry
    {
        std::string name;
        Cycle windowCycles;
        SeriesReader read;
    };

    void checkUnique(const std::string &name) const;

    std::vector<MetricEntry> metrics_;
    std::vector<SeriesEntry> series_;
};

} // namespace mnpu

#endif // MNPU_COMMON_METRICS_REGISTRY_HH
