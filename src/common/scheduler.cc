#include "common/scheduler.hh"

#include <atomic>
#include <cstdlib>

#include "common/logging.hh"

namespace mnpu
{

const char *
toString(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Cycle:
        return "cycle";
      case SchedulerKind::Event:
        return "event";
    }
    return "?";
}

SchedulerKind
parseSchedulerKind(const std::string &text)
{
    if (text == "cycle")
        return SchedulerKind::Cycle;
    if (text == "event")
        return SchedulerKind::Event;
    fatal("unknown scheduler '", text, "'; expected cycle or event");
}

namespace
{

/** Process default from --sched; -1 = unset. */
std::atomic<int> g_sched_default{-1};

} // namespace

void
setSchedulerDefault(SchedulerKind kind)
{
    g_sched_default.store(static_cast<int>(kind));
}

void
clearSchedulerDefault()
{
    g_sched_default.store(-1);
}

SchedulerKind
effectiveSchedulerKind(const std::optional<SchedulerKind> &configured)
{
    if (configured)
        return *configured;
    const int fallback = g_sched_default.load();
    if (fallback >= 0)
        return static_cast<SchedulerKind>(fallback);
    const char *env = std::getenv("MNPU_SCHED");
    if (env != nullptr && *env != '\0')
        return parseSchedulerKind(env);
    return SchedulerKind::Event;
}

} // namespace mnpu
