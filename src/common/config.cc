#include "common/config.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace mnpu
{

std::string
trim(const std::string &text)
{
    auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    auto begin = std::find_if_not(text.begin(), text.end(), is_space);
    auto end = std::find_if_not(text.rbegin(), text.rend(), is_space).base();
    return begin < end ? std::string(begin, end) : std::string();
}

std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> pieces;
    std::string piece;
    std::istringstream stream(text);
    while (std::getline(stream, piece, delim))
        pieces.push_back(trim(piece));
    return pieces;
}

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

namespace
{

/** Strip a trailing comment that starts with '#' or ';'. */
std::string
stripComment(const std::string &line)
{
    auto pos = line.find_first_of("#;");
    return pos == std::string::npos ? line : line.substr(0, pos);
}

} // namespace

ConfigFile
ConfigFile::fromFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot open config file '", path, "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    ConfigFile config;
    config.parseLines(buffer.str(), path);
    return config;
}

ConfigFile
ConfigFile::fromString(const std::string &text)
{
    ConfigFile config;
    config.parseLines(text, "<string>");
    return config;
}

void
ConfigFile::parseLines(const std::string &text, const std::string &origin)
{
    std::istringstream stream(text);
    std::string line;
    std::string section;
    int lineno = 0;
    while (std::getline(stream, line)) {
        ++lineno;
        line = trim(stripComment(line));
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']') {
                fatal(origin, ":", lineno, ": malformed section header '",
                      line, "'");
            }
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }
        auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal(origin, ":", lineno, ": expected 'key = value', got '",
                  line, "'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal(origin, ":", lineno, ": empty key");
        if (!section.empty())
            key = section + "." + key;
        set(key, value);
    }
}

void
ConfigFile::set(const std::string &key, const std::string &value)
{
    if (values.find(key) == values.end())
        order.push_back(key);
    values[key] = value;
}

bool
ConfigFile::has(const std::string &key) const
{
    return values.find(key) != values.end();
}

std::optional<std::string>
ConfigFile::lookup(const std::string &key) const
{
    auto it = values.find(key);
    if (it == values.end())
        return std::nullopt;
    return it->second;
}

std::string
ConfigFile::getString(const std::string &key,
                      const std::string &defaultValue) const
{
    return lookup(key).value_or(defaultValue);
}

std::string
ConfigFile::requireString(const std::string &key) const
{
    auto value = lookup(key);
    if (!value)
        fatal("missing required config key '", key, "'");
    return *value;
}

namespace
{

std::int64_t
parseInt(const std::string &key, const std::string &text)
{
    std::string body = trim(text);
    if (body.empty())
        fatal("config key '", key, "': empty integer");
    std::int64_t multiplier = 1;
    char last = static_cast<char>(
        std::tolower(static_cast<unsigned char>(body.back())));
    if (last == 'k' || last == 'm' || last == 'g') {
        multiplier = last == 'k' ? 1000 : last == 'm' ? 1000000 : 1000000000;
        body.pop_back();
    }
    std::int64_t value = 0;
    try {
        std::size_t used = 0;
        value = std::stoll(body, &used, 0);
        if (used != body.size())
            throw std::invalid_argument(body);
    } catch (const std::out_of_range &) {
        fatal("config key '", key, "': integer '", text,
              "' is out of range");
    } catch (const std::exception &) {
        fatal("config key '", key, "': malformed integer '", text, "'");
    }
    std::int64_t scaled = 0;
    if (__builtin_mul_overflow(value, multiplier, &scaled))
        fatal("config key '", key, "': integer '", text,
              "' overflows 64 bits after its suffix");
    return scaled;
}

} // namespace

std::int64_t
ConfigFile::getInt(const std::string &key, std::int64_t defaultValue) const
{
    auto value = lookup(key);
    return value ? parseInt(key, *value) : defaultValue;
}

std::int64_t
ConfigFile::requireInt(const std::string &key) const
{
    return parseInt(key, requireString(key));
}

std::uint64_t
ConfigFile::getUint(const std::string &key, std::uint64_t defaultValue) const
{
    auto value = lookup(key);
    if (!value)
        return defaultValue;
    std::int64_t parsed = parseInt(key, *value);
    if (parsed < 0)
        fatal("config key '", key, "': expected non-negative value");
    return static_cast<std::uint64_t>(parsed);
}

std::uint64_t
ConfigFile::requireUint(const std::string &key) const
{
    std::int64_t parsed = requireInt(key);
    if (parsed < 0)
        fatal("config key '", key, "': expected non-negative value");
    return static_cast<std::uint64_t>(parsed);
}

double
ConfigFile::getDouble(const std::string &key, double defaultValue) const
{
    auto value = lookup(key);
    if (!value)
        return defaultValue;
    try {
        std::size_t used = 0;
        double parsed = std::stod(*value, &used);
        if (used != value->size())
            throw std::invalid_argument(*value);
        return parsed;
    } catch (const std::exception &) {
        fatal("config key '", key, "': malformed double '", *value, "'");
    }
}

double
ConfigFile::requireDouble(const std::string &key) const
{
    requireString(key);
    return getDouble(key, 0.0);
}

bool
ConfigFile::getBool(const std::string &key, bool defaultValue) const
{
    auto value = lookup(key);
    if (!value)
        return defaultValue;
    const std::string &text = *value;
    if (iequals(text, "true") || text == "1" || iequals(text, "yes") ||
        iequals(text, "on")) {
        return true;
    }
    if (iequals(text, "false") || text == "0" || iequals(text, "no") ||
        iequals(text, "off")) {
        return false;
    }
    fatal("config key '", key, "': malformed boolean '", text, "'");
}

std::uint64_t
ConfigFile::parseSize(const std::string &text)
{
    std::string body = trim(text);
    std::size_t pos = 0;
    while (pos < body.size() &&
           (std::isdigit(static_cast<unsigned char>(body[pos])) != 0)) {
        ++pos;
    }
    if (pos == 0)
        fatal("malformed size '", text, "'");
    std::uint64_t value = 0;
    try {
        value = std::stoull(body.substr(0, pos));
    } catch (const std::out_of_range &) {
        fatal("size '", text, "' is out of range");
    }
    std::string unit = trim(body.substr(pos));
    std::string lower;
    for (char c : unit)
        lower.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    unsigned shift = 0;
    if (lower.empty() || lower == "b")
        shift = 0;
    else if (lower == "kb" || lower == "kib" || lower == "k")
        shift = 10;
    else if (lower == "mb" || lower == "mib" || lower == "m")
        shift = 20;
    else if (lower == "gb" || lower == "gib" || lower == "g")
        shift = 30;
    else
        fatal("malformed size unit in '", text, "'");
    if (shift != 0 &&
        value > (std::numeric_limits<std::uint64_t>::max() >> shift))
        fatal("size '", text, "' overflows 64 bits");
    return value << shift;
}

std::vector<std::vector<std::string>>
CsvReader::fromFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot open CSV file '", path, "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return fromString(buffer.str());
}

std::vector<std::vector<std::string>>
CsvReader::fromString(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        rows.push_back(split(line, ','));
    }
    return rows;
}

} // namespace mnpu
