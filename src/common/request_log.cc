#include "common/request_log.hh"

#include <filesystem>

#include "common/logging.hh"

namespace mnpu
{

void
RequestLog::open(const std::string &path, const std::string &header)
{
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
        if (ec)
            fatal("cannot create log directory '",
                  p.parent_path().string(), "': ", ec.message());
    }
    file_.open(path);
    if (!file_)
        fatal("cannot open request log '", path, "'");
    file_ << header << '\n';
}

void
RequestLog::flush()
{
    if (file_)
        file_.flush();
}

} // namespace mnpu
