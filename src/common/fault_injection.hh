/**
 * @file
 * Deterministic fault injection for exercising the integrity layer
 * (integrity.hh). A FaultPlan names one fault site and the ordinal
 * opportunity at which it fires; the FaultInjector counts
 * opportunities in simulation order and triggers exactly once, so a
 * given (config, plan) pair always perturbs the same request on every
 * run — the trigger index is the "seed".
 *
 * Fault injection is a drill for the checkers: run it with
 * --check=cheap/full so the perturbation is detected and contained as
 * a SimulationError instead of silently corrupting results (or, for
 * duplicate responses with checks off, tripping an mnpu_assert abort
 * in the client).
 */

#ifndef MNPU_COMMON_FAULT_INJECTION_HH
#define MNPU_COMMON_FAULT_INJECTION_HH

#include <cstdint>
#include <string>

#include "common/snapshot.hh"
#include "common/types.hh"

namespace mnpu
{

/**
 * Where a planned fault strikes. The Dram-, Pte-, and CoreStall
 * sites perturb the simulation itself; the Worker* sites instead drill the
 * process-isolation layer (analysis/process_pool.hh): they fire in
 * the forked sweep worker, outside any checker's reach, and are inert
 * under --isolate thread (nothing in-process ever reports their
 * opportunity — deliberately, since firing them would take down the
 * whole campaign, which is exactly what process mode exists to
 * prevent).
 */
enum class FaultSite
{
    None,       //!< no injection (the default plan)
    DramDrop,   //!< swallow a DRAM completion (response lost)
    DramDup,    //!< deliver a DRAM completion twice
    DramDelay,  //!< hold a DRAM completion for delayCycles
    PteCorrupt, //!< flip a frame bit in one translation result
    CoreStall,  //!< freeze one core's pipeline forever
    WorkerCrash, //!< hard-kill the sweep worker process (see below)
    WorkerHog,   //!< worker allocates unboundedly until a rlimit kills it
    /**
     * Snapshot drills (process-isolated workers only): SnapshotKill
     * SIGKILLs the worker right after its Nth snapshot persists, so
     * the retry must resume from that snapshot; SnapshotCorrupt
     * additionally bit-flips the snapshot at rest first, so the retry
     * must *reject* it by checksum and complete from scratch. Both
     * fire only on the first attempt (retries run undrilled) and both
     * are inert outside process mode, like the Worker* sites.
     */
    SnapshotKill,
    SnapshotCorrupt,
};

const char *toString(FaultSite site);

/**
 * Whether an armed @p site changes simulated results. The Dram-,
 * Pte-, and CoreStall sites do; the Worker* and Snapshot* sites only
 * change *which process* the (identical) simulation runs in and whether
 * it survives, so they neither feed sweepJobKey() nor force the
 * exact-fidelity fallback — a job that crashes, retries, and completes
 * (from a snapshot or from scratch) is bit-identical to a clean run
 * and may share its checkpoint records.
 */
bool perturbsSimulation(FaultSite site);

/**
 * Whether @p site drills the worker *process* (crash/hog/snapshot
 * drills) rather than the simulation. These sites never arm the
 * in-simulation FaultInjector: an armed injector disables event-mode
 * gating and the fast-fidelity resolution, which would perturb a run
 * whose results must stay bit-identical to an undrilled one.
 */
bool firesInWorkerProcess(FaultSite site);

/** One planned, deterministic fault. */
struct FaultPlan
{
    FaultSite site = FaultSite::None;

    /**
     * Fire at the Nth opportunity of @c site (1-based). For the
     * Worker* sites the opportunity counter is the worker *attempt*
     * (each attempt is a fresh process, so an in-process counter
     * would reset): the fault fires on every attempt <= triggerCount.
     * worker-crash:1 therefore crashes once and succeeds on the
     * supervisor's retry, while a large count (worker-crash:99)
     * crashes every attempt and drills the permanent-quarantine path.
     */
    std::uint64_t triggerCount = 1;

    /**
     * Hold time for DramDelay. For WorkerCrash this field instead
     * selects the flavor: a valid signal number (1..31) is raised
     * (e.g. worker-crash:1:11 dies of SIGSEGV); anything else —
     * including the default — calls abort() (SIGABRT).
     */
    Cycle delayCycles = 5000;
};

/**
 * Parse "<site>[:<n>[:<delay>]]", e.g. "dram-drop:3" or
 * "dram-delay:1:200". Sites: dram-drop, dram-dup, dram-delay,
 * pte-corrupt, core-stall, worker-crash, worker-hog, snapshot-kill,
 * snapshot-corrupt, none. For the snapshot drills the count selects
 * the Nth written snapshot. Throws FatalError on a malformed spec.
 */
FaultPlan parseFaultPlan(const std::string &spec);

/**
 * Counts opportunities for the planned site and fires exactly once.
 * Owned by one MultiCoreSystem; not thread-safe (each simulation is
 * single-threaded).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan) : plan_(plan) {}

    /**
     * Report one opportunity for @p site; true exactly when this is
     * the plan's site and its triggerCount'th opportunity.
     */
    bool
    fire(FaultSite site)
    {
        if (site != plan_.site || fired_)
            return false;
        if (++seen_ < plan_.triggerCount)
            return false;
        fired_ = true;
        return true;
    }

    const FaultPlan &plan() const { return plan_; }
    bool fired() const { return fired_; }

    /**
     * Snapshot the opportunity counter so a restored run fires (or
     * refrains from firing) the planned fault exactly as the
     * uninterrupted run would have.
     */
    void
    saveState(StateWriter &out) const
    {
        out.u64(seen_);
        out.b(fired_);
    }
    void
    loadState(StateReader &in)
    {
        seen_ = in.u64();
        fired_ = in.b();
    }

  private:
    FaultPlan plan_;
    std::uint64_t seen_ = 0;
    bool fired_ = false;
};

} // namespace mnpu

#endif // MNPU_COMMON_FAULT_INJECTION_HH
