#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mnpu
{

namespace
{
std::atomic<bool> quietFlag{false};

/**
 * Serializes stderr output: parallel sweep workers warn() and inform()
 * concurrently, and without the lock (plus the single fwrite below)
 * partial lines interleave into garbage.
 */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Emit one complete line to stderr as a single write, under the lock. */
void
writeLine(const char *prefix, const std::string &message)
{
    std::string line;
    line.reserve(message.size() + 16);
    line += prefix;
    line += message;
    line += '\n';
    std::lock_guard<std::mutex> lock(logMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail
{

void
panicImpl(const std::string &message, const char *file, int line)
{
    writeLine("panic: ",
              concat(message, " (", file, ":", line, ")"));
    std::abort();
}

void
warnImpl(const std::string &message)
{
    writeLine("warn: ", message);
}

void
informImpl(const std::string &message)
{
    if (!isQuiet())
        writeLine("info: ", message);
}

} // namespace detail

} // namespace mnpu
