#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace mnpu
{

namespace
{
std::atomic<bool> quietFlag{false};
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail
{

void
panicImpl(const std::string &message, const char *file, int line)
{
    std::cerr << "panic: " << message << " (" << file << ":" << line << ")"
              << std::endl;
    std::abort();
}

void
warnImpl(const std::string &message)
{
    std::cerr << "warn: " << message << std::endl;
}

void
informImpl(const std::string &message)
{
    if (!isQuiet())
        std::cerr << "info: " << message << std::endl;
}

} // namespace detail

} // namespace mnpu
