/**
 * @file
 * Windowed event tracer: accumulates an event count (or byte count) per
 * fixed-size cycle window, producing the time series behind Figure 2(b)
 * (memory requests per 1000-cycle window) and Figure 12 (DRAM bandwidth
 * utilization over time) of the paper.
 */

#ifndef MNPU_COMMON_INTERVAL_TRACER_HH
#define MNPU_COMMON_INTERVAL_TRACER_HH

#include <cstdint>
#include <vector>

#include "common/snapshot.hh"
#include "common/types.hh"

namespace mnpu
{

/** Accumulates per-window totals of a recorded quantity over cycles. */
class IntervalTracer
{
  public:
    /** @param window_cycles size of each accumulation window (>0). */
    explicit IntervalTracer(Cycle window_cycles);

    /** Record @p amount units of activity at global cycle @p now. */
    void record(Cycle now, std::uint64_t amount = 1);

    /** Flush the in-progress window (call once at end of simulation). */
    void finalize();

    Cycle windowCycles() const { return window_; }

    /** Completed windows, index w covers [w*window, (w+1)*window). */
    const std::vector<std::uint64_t> &windows() const { return totals_; }

    /**
     * Moving average of the per-window totals over @p span windows,
     * matching the paper's "moving average during 1000 cycles window".
     */
    std::vector<double> movingAverage(std::size_t span) const;

    void saveState(StateWriter &out) const;
    void loadState(StateReader &in);

  private:
    Cycle window_;
    std::size_t currentIndex_ = 0;
    std::uint64_t currentTotal_ = 0;
    bool finalized_ = false;
    std::vector<std::uint64_t> totals_;
};

} // namespace mnpu

#endif // MNPU_COMMON_INTERVAL_TRACER_HH
