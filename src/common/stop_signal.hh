/**
 * @file
 * Graceful SIGINT/SIGTERM handling for campaign binaries (mnpusim and
 * every bench). The first signal raises a process-wide cooperative
 * stop token — the same std::atomic<bool> the sweep layer already
 * understands (SweepOptions::stopToken / RunBudget::stopToken) — so an
 * interrupted sweep cancels in-flight mixes at their next watchdog
 * check, leaves the checkpoint resumable, and exits with the
 * conventional code 130 (128 + SIGINT). A second signal force-exits
 * immediately (also 130) for the case where a run is wedged beyond
 * cooperation.
 *
 * The process-isolation supervisor (analysis/process_pool.hh) polls
 * the same token and forwards SIGTERM to live worker subprocesses, so
 * an interrupted process-mode campaign leaves no orphans.
 */

#ifndef MNPU_COMMON_STOP_SIGNAL_HH
#define MNPU_COMMON_STOP_SIGNAL_HH

#include <atomic>

namespace mnpu
{

/** Conventional exit code for an interrupted (SIGINT/SIGTERM) run. */
constexpr int kInterruptedExitCode = 130;

/**
 * Install the two-stage SIGINT/SIGTERM handler (idempotent). Call
 * once at process entry, before any sweep starts.
 */
void installStopSignalHandlers();

/**
 * The token the handler raises; wire it into SweepOptions::stopToken
 * or RunBudget::stopToken. Valid for the process lifetime.
 */
const std::atomic<bool> *stopSignalToken();

/** Whether a stop signal has been received since installation. */
bool stopSignalRaised();

/**
 * Clear the raised flag and re-arm the two-stage escalation (test
 * hygiene only; real runs never need this).
 */
void resetStopSignalForTesting();

/**
 * Register one path for the force-exit path to unlink() before
 * _exit(). The snapshot writer arms this around its tmp-file write so
 * a second SIGINT arriving mid-write cannot leave a partial
 * `.snap.tmp` behind (the final rename is atomic, so a half-renamed
 * snapshot is impossible either way). The path is copied into a fixed
 * async-signal-safe buffer; paths longer than the buffer are ignored
 * (the write still proceeds, just without crash cleanup). Call
 * clearForceExitCleanupPath() once the file has been renamed away.
 */
void setForceExitCleanupPath(const char *path);

/** Disarm the force-exit cleanup registered above. */
void clearForceExitCleanupPath();

} // namespace mnpu

#endif // MNPU_COMMON_STOP_SIGNAL_HH
