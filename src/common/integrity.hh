/**
 * @file
 * Opt-in simulation integrity layer: machine-checked invariants that
 * turn silent mis-simulation into loud, contained failures. A paper
 * reproduction whose contribution is contention-dependent timing
 * cannot rely on end-metric eyeballing — a scheduler bug in the
 * FR-FCFS engine or a lost DMA completion produces *plausible* cycle
 * counts, which is the worst failure mode. Three checker families:
 *
 *   DramProtocolChecker  — re-derives every DRAM timing constraint
 *       (tRCD, tRP, tRAS, tCCD, tWR, tRTP, tRRD, the 4-activation
 *       tFAW window, tWTR/tRTW turnaround, tRFC/tREFI refresh
 *       deadlines) from the observed ACT/PRE/RD/WR/REF command stream
 *       using its own shadow bank/rank state, independent of the
 *       channel's scheduling bookkeeping. Violations throw
 *       SimulationError{ProtocolViolation}.
 *
 *   RequestLifecycleTracker — tags every off-chip transaction the
 *       DRAM system accepts with a monotonic ID and audits
 *       issue→completion: duplicated or unknown responses, physical
 *       addresses outside DRAM capacity, responses that never arrive
 *       (lost), and an end-of-run leak audit reconciling per-core
 *       trafficBytes/walkBytes against the SW trace generator's
 *       transaction totals and the MMU's walk-step count. Violations
 *       throw SimulationError{RequestLifecycle} (or MmuConsistency
 *       for the walk-side reconciliation).
 *
 *   MMU translation re-check — lives in Mmu itself (the checker needs
 *       the page table): every completed translation is re-derived
 *       from the page allocator and compared, so a corrupted PTE (or
 *       a stale TLB entry) throws SimulationError{MmuConsistency}.
 *
 * Cost model: CheckLevel::Cheap enables only the lifecycle tracker
 * (one hash-map op per off-chip transaction); CheckLevel::Full adds
 * the per-command protocol checker and the per-translation MMU
 * re-check. CheckLevel::Off (default) compiles to a few null-pointer
 * tests on the hot path.
 *
 * Soundness note: where DramChannel is deliberately lenient (the
 * tFAW window treats a cycle-0 slot as unfilled), the checker mirrors
 * the leniency so a channel-legal schedule never trips it.
 */

#ifndef MNPU_COMMON_INTEGRITY_HH
#define MNPU_COMMON_INTEGRITY_HH

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/errors.hh"
#include "common/snapshot.hh"
#include "common/types.hh"
#include "dram/dram_timing.hh"

namespace mnpu
{

/** How much runtime self-checking a simulation performs. */
enum class CheckLevel
{
    Off,   //!< no checking (default; no measurable overhead)
    Cheap, //!< request-lifecycle tracking + end-of-run leak audit
    Full,  //!< + DRAM protocol checker + MMU translation re-check
};

const char *toString(CheckLevel level);

/** Parse "off" | "cheap" | "full"; throws FatalError otherwise. */
CheckLevel parseCheckLevel(const std::string &text);

/**
 * Process-wide default used when a SystemConfig does not pin a level
 * (set from --check on the CLI/bench command line).
 */
void setCheckLevelDefault(CheckLevel level);

/** Undo setCheckLevelDefault (test hygiene). */
void clearCheckLevelDefault();

/**
 * Resolve the level a system should run at: an explicitly configured
 * level wins, then the process default (--check), then the MNPU_CHECK
 * environment variable, then Off.
 */
CheckLevel effectiveCheckLevel(const std::optional<CheckLevel> &configured);

/**
 * Shadow re-derivation of one channel's DRAM timing constraints from
 * the observed command stream. The channel reports each command it
 * issues (and each refresh-deadline catch-up after an idle gap); the
 * checker keeps its own bank/rank state and throws
 * SimulationError{ProtocolViolation} naming the violated parameter.
 */
class DramProtocolChecker
{
  public:
    DramProtocolChecker(const DramTiming &timing, std::string name);

    /** ACT @p row on @p flat_bank of @p rank at cycle @p now. */
    void onActivate(std::uint32_t rank, std::uint32_t flat_bank,
                    std::uint64_t row, Cycle now);

    /** Explicit PRE issued at cycle @p now. */
    void onPrecharge(std::uint32_t flat_bank, Cycle now);

    /**
     * Closed-page auto-precharge scheduled to take effect at
     * @p effective_at (>= the reporting cycle).
     */
    void onAutoPrecharge(std::uint32_t flat_bank, Cycle effective_at);

    /** RD/WR column command to @p row at cycle @p now. */
    void onColumn(std::uint32_t rank, std::uint32_t flat_bank,
                  std::uint64_t row, bool is_write, Cycle now);

    /** All-bank REF on @p rank at cycle @p now. */
    void onRefresh(std::uint32_t rank, Cycle now);

    /** Idle-gap catch-up: the rank's refresh deadline moved to @p due. */
    void onRefreshDeadline(std::uint32_t rank, Cycle due);

    /** Commands validated so far (proof the checker observed traffic). */
    std::uint64_t commandsChecked() const { return commands_; }

    /**
     * Order-sensitive FNV-1a hash of the observed command stream
     * (kind, rank/bank, row, cycle of every ACT/PRE/auto-PRE/RD/WR/
     * REF). Equal hashes mean the channel issued the identical
     * command sequence — the witness the differential scheduler test
     * uses to prove cycle and event mode agree below the counters.
     */
    std::uint64_t streamHash() const { return streamHash_; }

    /**
     * Snapshot the shadow bank/rank state, the running stream hash,
     * and the command count, so a restored run's final streamHash()
     * equals the uninterrupted run's — the cross-restore witness the
     * snapshot equivalence tests assert on.
     */
    void saveState(StateWriter &out) const;
    void loadState(StateReader &in);

  private:
    struct BankShadow
    {
        std::int64_t openRow = -1;
        Cycle actAt = 0;          //!< valid while openRow != -1
        Cycle actAllowedAt = 0;   //!< precharge + tRP gate
        Cycle preEffectiveAt = 0; //!< when the last precharge completed
        Cycle lastReadAt = 0;     //!< 0 = no read since last precharge
        Cycle writeDoneAt = 0;    //!< write data end; 0 = no write
    };

    struct RankShadow
    {
        std::array<Cycle, 4> actWindow{}; //!< tFAW history (0 = empty)
        std::size_t actPtr = 0;
        Cycle nextActAllowedAt = 0; //!< tRRD gate
        Cycle refreshDueAt = 0;
        Cycle refreshingUntil = 0;
    };

    [[noreturn]] void violation(const char *constraint,
                                const std::string &detail) const;
    void checkPrechargeable(const BankShadow &bank, Cycle at,
                            const char *what) const;
    void mixCommand(std::uint64_t kind, std::uint64_t where,
                    std::uint64_t row, Cycle at);

    DramTiming timing_;
    std::string name_;
    std::vector<BankShadow> banks_;
    std::vector<RankShadow> ranks_;
    Cycle lastColumnAt_ = 0;
    bool lastColumnWasWrite_ = false;
    bool haveColumn_ = false;
    std::uint64_t commands_ = 0;
    std::uint64_t streamHash_ = 14695981039346656037ULL; //!< FNV-1a basis
};

/**
 * Monotonic-ID audit of every off-chip transaction accepted by the
 * DRAM system: detects duplicated/unknown and mis-addressed
 * responses online, lost responses via outstanding(), and reconciles
 * end-of-run byte totals against the SW trace and the MMU.
 */
class RequestLifecycleTracker
{
  public:
    /**
     * @param phys_capacity  total physical bytes backing the system
     * @param tx_bytes       bytes one DRAM transaction transfers
     * @param num_cores      cores whose traffic is tracked
     */
    RequestLifecycleTracker(Addr phys_capacity, std::uint32_t tx_bytes,
                            std::uint32_t num_cores);

    /**
     * Register an accepted transaction; returns its integrity ID
     * (> 0). Throws if @p paddr lies outside physical capacity.
     */
    std::uint64_t onIssue(Addr paddr, CoreId core, bool walk, Cycle now);

    /**
     * Match a completion against its issue record. Throws on an
     * unknown/duplicated ID or a mismatched address/core/class.
     */
    void onComplete(std::uint64_t id, Addr paddr, CoreId core, bool walk,
                    Cycle at);

    /** Issued-but-uncompleted transactions (lost when DRAM is idle). */
    std::size_t outstanding() const { return pending_.size(); }

    /** Error describing the currently outstanding (lost) requests. */
    SimulationError lostResponseError(Cycle now) const;

    /**
     * Expected per-core data-transaction count from the SW trace
     * (per-iteration count x iterations). Unset cores skip the trace
     * reconciliation.
     */
    void setExpectedDataTransactions(CoreId core, std::uint64_t count);

    /**
     * End-of-run leak audit: no outstanding transactions; per-core
     * completed counts x tx_bytes match the DRAM system's
     * trafficBytes/walkBytes counters; data counts match the SW trace
     * expectation; walk counts match the MMU's issued walk steps.
     */
    void finalAudit(const std::vector<std::uint64_t> &core_bytes,
                    const std::vector<std::uint64_t> &core_walk_bytes,
                    const std::vector<std::uint64_t> &mmu_walk_steps) const;

    std::uint64_t issuedCount() const { return nextId_ - 1; }

    /**
     * Snapshot the in-flight transaction table (sorted by ID for
     * deterministic bytes) and the per-core completion totals. The
     * trace expectations are reconstructed from config at build time
     * and deliberately not serialized.
     */
    void saveState(StateWriter &out) const;
    void loadState(StateReader &in);

  private:
    struct Pending
    {
        Addr paddr;
        CoreId core;
        bool walk;
    };

    static constexpr std::uint64_t kNoExpectation =
        std::numeric_limits<std::uint64_t>::max();

    Addr physCapacity_;
    std::uint32_t txBytes_;
    std::uint64_t nextId_ = 1;
    std::unordered_map<std::uint64_t, Pending> pending_;
    std::vector<std::uint64_t> dataCompleted_;
    std::vector<std::uint64_t> walkCompleted_;
    std::vector<std::uint64_t> expectedDataTx_;
};

} // namespace mnpu

#endif // MNPU_COMMON_INTEGRITY_HH
