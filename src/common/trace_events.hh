/**
 * @file
 * Span-based lifecycle tracing in the Chrome trace_event JSON format.
 *
 * A TraceEventSink buffers "complete" spans (ph:"X") and instant events
 * (ph:"i") keyed by a (pid, tid) track, then serializes them as a
 * `{"traceEvents":[...]}` document that chrome://tracing and Perfetto
 * (https://ui.perfetto.dev) open directly. Timestamps are global
 * DRAM-clock cycles; the viewer displays them as microseconds, so the
 * timeline is correct relatively (1 displayed µs == 1 DRAM cycle).
 *
 * The sink is a *passive observer* with the same discipline as the
 * integrity checkers (DESIGN.md §7): components hold a nullable pointer
 * to it and emission only ever reads simulation state, so a run with
 * tracing enabled is bit-identical to one without, and the disabled
 * fast path is a single pointer check.
 *
 * Track conventions (process metadata is emitted by MultiCoreSystem):
 *   pid 0..N-1    core <i>            tid 0 = compute (layer + tile spans)
 *   pid 100       DRAM                tid <c>       = per-core request spans
 *                                     tid 1000+<ch> = per-channel command
 *                                                     instants (ACT/PRE/RD/
 *                                                     WR/REF)
 *   pid 200       MMU / page walker   tid <c> = per-core walk spans
 */

#ifndef MNPU_COMMON_TRACE_EVENTS_HH
#define MNPU_COMMON_TRACE_EVENTS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mnpu
{

/**
 * Detail level for --trace-out, coarsest to finest. Each level includes
 * everything below it: Layers = per-layer spans only; Tiles adds
 * per-tile compute spans; Requests adds per-DRAM-request spans, page
 * walk spans, and per-channel command instants.
 */
enum class TraceLevel
{
    Off = 0,
    Layers = 1,
    Tiles = 2,
    Requests = 3,
};

const char *toString(TraceLevel level);

/** Parse "off|layers|tiles|requests"; fatal() on anything else. */
TraceLevel parseTraceLevel(const std::string &text);

/**
 * Per-run observability settings, carried in SystemConfig. All fields
 * are excluded from the sweep checkpoint key: observers never change
 * simulated behavior, so a resumed record is valid regardless of what
 * was traced when it was produced.
 */
struct ObservabilityConfig
{
    /** Chrome trace_event JSON output path; empty disables tracing. */
    std::string traceOutPath;

    /** Span detail for traceOutPath (--obs-level). Off disables tracing
     *  even when a path is set. */
    TraceLevel traceLevel = TraceLevel::Tiles;

    /** Windowed metrics + final snapshot output; ".csv" selects CSV,
     *  anything else JSONL. Empty disables the export. */
    std::string metricsOutPath;

    /** Window (global cycles) for time series enabled on behalf of
     *  metricsOutPath when the run didn't already request telemetry. */
    Cycle metricsWindow = 1000;

    bool traceEnabled() const
    {
        return !traceOutPath.empty() && traceLevel != TraceLevel::Off;
    }

    bool metricsEnabled() const { return !metricsOutPath.empty(); }

    bool anyEnabled() const { return traceEnabled() || metricsEnabled(); }
};

/**
 * Fill unset fields of @p base from the environment: MNPU_TRACE →
 * traceOutPath, MNPU_METRICS → metricsOutPath, MNPU_OBS_LEVEL →
 * traceLevel (only when the caller left the default, so an explicit
 * --obs-level flag wins). Called at CLI/bench entry — never inside
 * MultiCoreSystem, so concurrent sweep jobs can't race on one output
 * file.
 */
ObservabilityConfig observabilityFromEnv(ObservabilityConfig base = {});

/** Buffered Chrome trace_event writer. See file header for semantics. */
class TraceEventSink
{
  public:
    /** DRAM process id in the emitted trace (cores are 0..N-1). */
    static constexpr std::uint32_t kDramPid = 100;
    /** MMU / page-walker process id. */
    static constexpr std::uint32_t kMmuPid = 200;
    /** tid offset for per-channel DRAM command tracks. */
    static constexpr std::uint32_t kChannelTidBase = 1000;

    explicit TraceEventSink(TraceLevel level) : level_(level) {}

    TraceLevel level() const { return level_; }

    /** @return whether events at @p at_least detail should be emitted. */
    bool wants(TraceLevel at_least) const { return level_ >= at_least; }

    /** Name a process track (ph:"M" process_name metadata). */
    void processName(std::uint32_t pid, const std::string &name);

    /** Name a thread track (ph:"M" thread_name metadata). */
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    const std::string &name);

    /**
     * Record a complete span (ph:"X") covering global cycles
     * [@p start, @p end]. Spans may be recorded in any order; the
     * writer leaves sorting to the viewer, as the format allows.
     */
    void complete(std::uint32_t pid, std::uint32_t tid, const char *category,
                  std::string name, Cycle start, Cycle end);

    /** Record an instant event (ph:"i", thread scope) at @p at. */
    void instant(std::uint32_t pid, std::uint32_t tid, const char *category,
                 std::string name, Cycle at);

    std::size_t eventCount() const { return events_.size(); }

    /** Serialize the full `{"traceEvents":[...]}` document. */
    void write(std::ostream &out) const;

    /** write() to @p path; fatal() if the file can't be created. */
    void writeFile(const std::string &path) const;

  private:
    struct Event
    {
        char phase;        // 'X', 'i', or 'M'
        std::uint32_t pid;
        std::uint32_t tid;
        const char *category; // static string; null for metadata
        std::string name;
        Cycle ts;
        Cycle dur;         // 'X' only
    };

    TraceLevel level_;
    std::vector<Event> events_;
};

} // namespace mnpu

#endif // MNPU_COMMON_TRACE_EVENTS_HH
