#include "common/clock_domain.hh"

#include <numeric>

#include "common/logging.hh"

namespace mnpu
{

ClockDomain::ClockDomain(std::uint64_t local_mhz, std::uint64_t global_mhz)
    : localMhz_(local_mhz), globalMhz_(global_mhz)
{
    if (local_mhz == 0 || global_mhz == 0)
        fatal("clock domain frequencies must be nonzero (local=",
              local_mhz, " global=", global_mhz, ")");
    // t_global = t_local  =>  g_cycles / globalMhz = l_cycles / localMhz
    // g_cycles = l_cycles * globalMhz / localMhz = l_cycles * num / den
    std::uint64_t g = std::gcd(global_mhz, local_mhz);
    num_ = global_mhz / g;
    den_ = local_mhz / g;
}

Cycle
ClockDomain::toGlobal(Cycle local) const
{
    if (local == kCycleNever)
        return kCycleNever;
    return (local * num_ + den_ - 1) / den_;
}

Cycle
ClockDomain::toLocal(Cycle global) const
{
    if (global == kCycleNever)
        return kCycleNever;
    return (global * den_ + num_ - 1) / num_;
}

Cycle
ClockDomain::toLocalFloor(Cycle global) const
{
    if (global == kCycleNever)
        return kCycleNever;
    return (global * den_) / num_;
}

} // namespace mnpu
