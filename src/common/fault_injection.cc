#include "common/fault_injection.hh"

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace mnpu
{

const char *
toString(FaultSite site)
{
    switch (site) {
      case FaultSite::None:
        return "none";
      case FaultSite::DramDrop:
        return "dram-drop";
      case FaultSite::DramDup:
        return "dram-dup";
      case FaultSite::DramDelay:
        return "dram-delay";
      case FaultSite::PteCorrupt:
        return "pte-corrupt";
      case FaultSite::CoreStall:
        return "core-stall";
      case FaultSite::WorkerCrash:
        return "worker-crash";
      case FaultSite::WorkerHog:
        return "worker-hog";
      case FaultSite::SnapshotKill:
        return "snapshot-kill";
      case FaultSite::SnapshotCorrupt:
        return "snapshot-corrupt";
    }
    return "?";
}

bool
perturbsSimulation(FaultSite site)
{
    switch (site) {
      case FaultSite::None:
      case FaultSite::WorkerCrash:
      case FaultSite::WorkerHog:
      case FaultSite::SnapshotKill:
      case FaultSite::SnapshotCorrupt:
        return false;
      case FaultSite::DramDrop:
      case FaultSite::DramDup:
      case FaultSite::DramDelay:
      case FaultSite::PteCorrupt:
      case FaultSite::CoreStall:
        return true;
    }
    return true;
}

bool
firesInWorkerProcess(FaultSite site)
{
    switch (site) {
      case FaultSite::WorkerCrash:
      case FaultSite::WorkerHog:
      case FaultSite::SnapshotKill:
      case FaultSite::SnapshotCorrupt:
        return true;
      default:
        return false;
    }
}

namespace
{

FaultSite
parseFaultSite(const std::string &text)
{
    static const std::vector<FaultSite> sites = {
        FaultSite::None,         FaultSite::DramDrop,
        FaultSite::DramDup,      FaultSite::DramDelay,
        FaultSite::PteCorrupt,   FaultSite::CoreStall,
        FaultSite::WorkerCrash,  FaultSite::WorkerHog,
        FaultSite::SnapshotKill, FaultSite::SnapshotCorrupt,
    };
    for (FaultSite site : sites)
        if (text == toString(site))
            return site;
    fatal("unknown fault site '", text,
          "'; expected one of none, dram-drop, dram-dup, dram-delay, "
          "pte-corrupt, core-stall, worker-crash, worker-hog, "
          "snapshot-kill, snapshot-corrupt");
}

std::uint64_t
parseCount(const std::string &spec, const std::string &text)
{
    std::size_t used = 0;
    std::uint64_t value = 0;
    try {
        value = std::stoull(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != text.size() || value == 0)
        fatal("bad count '", text, "' in fault spec '", spec,
              "'; expected a positive integer");
    return value;
}

} // namespace

FaultPlan
parseFaultPlan(const std::string &spec)
{
    FaultPlan plan;
    const std::size_t first = spec.find(':');
    plan.site = parseFaultSite(spec.substr(0, first));
    if (first == std::string::npos)
        return plan;
    const std::size_t second = spec.find(':', first + 1);
    plan.triggerCount = parseCount(
        spec, spec.substr(first + 1, second == std::string::npos
                                         ? std::string::npos
                                         : second - first - 1));
    if (second != std::string::npos)
        plan.delayCycles = parseCount(spec, spec.substr(second + 1));
    return plan;
}

} // namespace mnpu
