/**
 * @file
 * Fidelity selection for MultiCoreSystem::run(): cycle-exact component
 * models versus the analytic tile-level fast path.
 *
 * Unlike the scheduler choice (which is proven bit-identical and
 * therefore passive), fast fidelity *changes results*: cores advance a
 * whole tile per event using a closed-form latency model, and DRAM
 * transfers are batched per tile instead of per 64-byte transaction.
 * The deviation from exact is measured and committed per golden mix in
 * tests/golden/fidelity_envelope.json and enforced by
 * test_fidelity_envelope. Because results differ, fast fidelity feeds
 * the sweep checkpoint key (exact does not, preserving pre-existing
 * checkpoints); see resolvedFidelityKind() and sweepJobKey().
 */

#ifndef MNPU_COMMON_FIDELITY_HH
#define MNPU_COMMON_FIDELITY_HH

#include <optional>
#include <string>

#include "common/integrity.hh"

namespace mnpu
{

/** Which component-model fidelity MultiCoreSystem::run() uses. */
enum class FidelityKind
{
    Exact, //!< cycle-exact models, golden-ratcheted (default)
    Fast,  //!< analytic tile latency + batched DRAM transfers
};

const char *toString(FidelityKind kind);

/** Parse "exact" | "fast"; throws FatalError otherwise. */
FidelityKind parseFidelityKind(const std::string &text);

/**
 * Process-wide default used when a SystemConfig does not pin a
 * fidelity (set from --fidelity on the CLI/bench command line).
 */
void setFidelityDefault(FidelityKind kind);

/** Undo setFidelityDefault (test hygiene). */
void clearFidelityDefault();

/**
 * Resolve the fidelity a system *requests*: an explicitly configured
 * kind wins, then the process default (--fidelity), then the
 * MNPU_FIDELITY environment variable, then Exact.
 */
FidelityKind
effectiveFidelityKind(const std::optional<FidelityKind> &configured);

/**
 * Resolve the fidelity a system actually *runs* at. Fast silently
 * falls back to Exact when a fault injector is armed or any integrity
 * checking is on: the analytic path produces no per-transaction
 * lifecycle events, so even the Cheap tracker's transaction-count
 * audit (not just --check full's protocol checkers) would spuriously
 * fire. This resolved value — not the requested one — is what
 * sweepJobKey() feeds, so a fast-keyed checkpoint record can never
 * hold exact-fallback results.
 */
FidelityKind
resolvedFidelityKind(const std::optional<FidelityKind> &configured,
                     bool fault_armed, CheckLevel check_level);

} // namespace mnpu

#endif // MNPU_COMMON_FIDELITY_HH
