/**
 * @file
 * Recoverable simulation-failure taxonomy, distinct from both
 * FatalError (a user configuration mistake, logging.hh) and
 * mnpu_panic (a simulator bug, which still aborts):
 *
 *   SimulationError — one simulation run could not finish, but the
 *   process and every other run are fine. Deadlock, a blown cycle
 *   budget, a wall-clock timeout, and cooperative cancellation all
 *   land here so that sweep layers can contain the failure per job
 *   instead of losing the whole campaign.
 */

#ifndef MNPU_COMMON_ERRORS_HH
#define MNPU_COMMON_ERRORS_HH

#include <stdexcept>
#include <string>

namespace mnpu
{

/** Why a simulation run stopped without completing. */
enum class SimErrorKind
{
    Deadlock,         //!< no future event while cores are unfinished
    CycleBudget,      //!< exceeded the global-cycle cap
    WallClockTimeout, //!< exceeded the wall-clock deadline (watchdog)
    Cancelled,        //!< external stop token was raised
    ProtocolViolation, //!< DRAM command stream broke a timing constraint
    RequestLifecycle,  //!< lost/duplicated/mis-addressed off-chip request
    MmuConsistency,    //!< translation or walk accounting disagreed
    WorkerCrash,       //!< isolated sweep worker process died hard
                       //!< (signal/abort/rlimit); raised by the
                       //!< process-pool supervisor, never in-process
};

const char *toString(SimErrorKind kind);

/** A single run failed in a contained, recoverable way. */
class SimulationError : public std::runtime_error
{
  public:
    SimulationError(SimErrorKind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {}

    SimErrorKind kind() const { return kind_; }

    /** Whether a retry with a larger budget could plausibly succeed. */
    bool isBudget() const
    {
        return kind_ == SimErrorKind::CycleBudget ||
               kind_ == SimErrorKind::WallClockTimeout;
    }

  private:
    SimErrorKind kind_;
};

} // namespace mnpu

#endif // MNPU_COMMON_ERRORS_HH
