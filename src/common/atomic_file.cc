#include "common/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

namespace mnpu
{

bool
atomicWriteFile(const std::string &path, const std::string &content,
                std::string *error)
{
    const std::string tmp = path + ".tmp";
    const char *step = nullptr;
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        step = "open";
    } else {
        if (std::fwrite(content.data(), 1, content.size(), f) !=
            content.size())
            step = "write";
        if (!step && std::fflush(f) != 0)
            step = "flush";
        if (!step && ::fsync(fileno(f)) != 0)
            step = "fsync";
        if (std::fclose(f) != 0 && !step)
            step = "close";
    }
    if (!step && std::rename(tmp.c_str(), path.c_str()) != 0)
        step = "rename";
    if (step) {
        int saved = errno;
        ::unlink(tmp.c_str());
        if (error) {
            *error = std::string(step) + " failed: " +
                     std::strerror(saved);
        }
        return false;
    }
    return true;
}

} // namespace mnpu
