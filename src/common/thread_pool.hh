/**
 * @file
 * A small reusable fixed-size worker pool for embarrassingly parallel
 * sweeps. Tasks are plain std::function<void()>; parallelFor() runs an
 * index range and blocks until every index completed, rethrowing the
 * first task exception (FatalError from fatal() included) on the
 * calling thread.
 *
 * Worker-count resolution (defaultJobCount()):
 *   1. an explicit setDefaultJobCount() (e.g. a --jobs CLI flag), else
 *   2. the MNPU_JOBS environment variable, else
 *   3. std::thread::hardware_concurrency().
 *
 * A pool constructed with jobs == 1 runs everything inline on the
 * calling thread (no workers are spawned), which keeps the serial
 * reference path trivially single-threaded for determinism checks.
 */

#ifndef MNPU_COMMON_THREAD_POOL_HH
#define MNPU_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mnpu
{

/** Resolved worker count: override, then MNPU_JOBS, then hardware. */
std::size_t defaultJobCount();

/**
 * Process-wide override for defaultJobCount(); 0 clears the override.
 * Set from --jobs style CLI flags before any pool is constructed.
 */
void setDefaultJobCount(std::size_t jobs);

class ThreadPool
{
  public:
    /** @param jobs worker count; 0 means defaultJobCount(). */
    explicit ThreadPool(std::size_t jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Workers this pool runs on (>= 1); 1 means inline execution. */
    std::size_t jobs() const { return jobs_; }

    /**
     * Run fn(0) ... fn(count - 1) across the workers and block until
     * all completed. Indices are claimed in order, so with one worker
     * (or jobs() == 1) the execution order is exactly 0, 1, 2, ...
     * The first exception thrown by any fn(i) is rethrown here after
     * the remaining indices have been drained.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Failure-containment variant of parallelFor(): every index runs
     * to completion regardless of other indices' exceptions, and the
     * result holds fn(i)'s exception at slot i (null when it
     * succeeded). Nothing is rethrown — the caller decides what a
     * per-task failure means.
     */
    std::vector<std::exception_ptr>
    parallelForCollect(std::size_t count,
                       const std::function<void(std::size_t)> &fn);

  private:
    struct Batch;

    void workerLoop();
    void runBatch(Batch &batch);

    std::size_t jobs_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::deque<Batch *> queue_;
    bool stopping_ = false;
};

} // namespace mnpu

#endif // MNPU_COMMON_THREAD_POOL_HH
