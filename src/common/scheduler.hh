/**
 * @file
 * Scheduler selection for MultiCoreSystem::run(): the classic
 * per-cycle loop versus the event-driven cycle-skipping loop.
 *
 * Both schedulers execute the *same* component tick() functions in the
 * same order at every visited cycle; they differ only in which cycles
 * are visited. Cycle mode visits every global cycle (each component's
 * conservative nextTickCycle() bound collapses to now+1 whenever the
 * component is busy). Event mode asks each component for a sharp
 * nextEventCycle() lower bound on its next state change and jumps the
 * clock straight to the minimum. The bound contract (see DESIGN.md §8)
 * guarantees that every cycle skipped by event mode would have been a
 * no-op under cycle mode, so all telemetry — cycle counts, per-core
 * counters, even the DRAM command stream — is bit-identical. The
 * golden-trace and differential test suites enforce exactly that.
 */

#ifndef MNPU_COMMON_SCHEDULER_HH
#define MNPU_COMMON_SCHEDULER_HH

#include <optional>
#include <string>

namespace mnpu
{

/** Which main-loop stepping strategy MultiCoreSystem::run() uses. */
enum class SchedulerKind
{
    Cycle, //!< visit every global cycle (the original loop)
    Event, //!< skip to the minimum component event bound (default)
};

const char *toString(SchedulerKind kind);

/** Parse "cycle" | "event"; throws FatalError otherwise. */
SchedulerKind parseSchedulerKind(const std::string &text);

/**
 * Process-wide default used when a SystemConfig does not pin a
 * scheduler (set from --sched on the CLI/bench command line).
 */
void setSchedulerDefault(SchedulerKind kind);

/** Undo setSchedulerDefault (test hygiene). */
void clearSchedulerDefault();

/**
 * Resolve the scheduler a system should run with: an explicitly
 * configured kind wins, then the process default (--sched), then the
 * MNPU_SCHED environment variable, then Event.
 */
SchedulerKind
effectiveSchedulerKind(const std::optional<SchedulerKind> &configured);

} // namespace mnpu

#endif // MNPU_COMMON_SCHEDULER_HH
