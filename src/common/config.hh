/**
 * @file
 * Minimal ini-style configuration file reader and a CSV reader.
 *
 * mNPUsim takes five kinds of configuration files (network, arch, npumem,
 * dram, misc). All of them use the same `key = value` syntax with optional
 * `[section]` headers and `#`/`;` comments. Network topologies may instead
 * be given as SCALE-Sim-style CSV files, handled by CsvReader.
 */

#ifndef MNPU_COMMON_CONFIG_HH
#define MNPU_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mnpu
{

/** Trim ASCII whitespace from both ends of @p text. */
std::string trim(const std::string &text);

/** Split @p text on @p delim, trimming each piece. */
std::vector<std::string> split(const std::string &text, char delim);

/** Case-insensitive string equality (ASCII). */
bool iequals(const std::string &a, const std::string &b);

/**
 * An in-memory `[section] key = value` configuration.
 *
 * Keys are looked up as "section.key"; entries before any section header
 * live in the "" section and are looked up by bare key. Typed getters
 * either return a default or fatal() when a required key is missing or
 * malformed.
 */
class ConfigFile
{
  public:
    ConfigFile() = default;

    /** Parse from a file on disk; fatal() if unreadable. */
    static ConfigFile fromFile(const std::string &path);

    /** Parse from an in-memory string (used heavily by tests). */
    static ConfigFile fromString(const std::string &text);

    /** Insert or overwrite a value programmatically. */
    void set(const std::string &key, const std::string &value);

    /** @return true if @p key exists. */
    bool has(const std::string &key) const;

    /** Raw string accessors. */
    std::string getString(const std::string &key,
                          const std::string &defaultValue) const;
    std::string requireString(const std::string &key) const;

    /** Integer accessors; accept decimal, 0x-hex, and k/m/g suffixes. */
    std::int64_t getInt(const std::string &key,
                        std::int64_t defaultValue) const;
    std::int64_t requireInt(const std::string &key) const;

    /** Unsigned convenience wrappers (fatal on negative values). */
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t defaultValue) const;
    std::uint64_t requireUint(const std::string &key) const;

    double getDouble(const std::string &key, double defaultValue) const;
    double requireDouble(const std::string &key) const;

    /** Boolean accessor; accepts true/false/1/0/yes/no/on/off. */
    bool getBool(const std::string &key, bool defaultValue) const;

    /** All keys, in insertion order (for round-tripping and debugging). */
    const std::vector<std::string> &keys() const { return order; }

    /**
     * Parse a size string such as "36MB", "4kb", "128", "2GiB".
     * @return the size in bytes; fatal() on malformed input.
     */
    static std::uint64_t parseSize(const std::string &text);

  private:
    std::optional<std::string> lookup(const std::string &key) const;
    void parseLines(const std::string &text, const std::string &origin);

    std::map<std::string, std::string> values;
    std::vector<std::string> order;
};

/**
 * A tiny CSV reader: comma-separated rows, `#` comments, blank lines
 * skipped, cells trimmed. Used for SCALE-Sim-style network topologies.
 */
class CsvReader
{
  public:
    static std::vector<std::vector<std::string>>
    fromFile(const std::string &path);

    static std::vector<std::vector<std::string>>
    fromString(const std::string &text);
};

} // namespace mnpu

#endif // MNPU_COMMON_CONFIG_HH
