#include "common/metrics_registry.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace mnpu
{

namespace
{

/** Shortest round-trip decimal form, matching checkpoint serialization
 *  style so exported gauges compare bit-exactly across runs. */
std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

void
writeCsvString(std::ostream &out, const std::string &text)
{
    // Metric names are generated (dotted identifiers) but quote
    // defensively so a future name can't silently corrupt the CSV.
    out << '"';
    for (char c : text) {
        if (c == '"')
            out << "\"\"";
        else
            out << c;
    }
    out << '"';
}

void
writeJsonString(std::ostream &out, const std::string &text)
{
    out << '"';
    for (char c : text) {
        if (c == '"' || c == '\\')
            out << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            out << ' ';
        else
            out << c;
    }
    out << '"';
}

} // namespace

std::vector<double>
TelemetrySnapshot::Series::movingAverage(std::size_t span) const
{
    mnpu_assert(span >= 1, "moving average span must be >= 1");
    std::vector<double> out;
    out.reserve(values.size());
    double window_sum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        window_sum += static_cast<double>(values[i]);
        if (i >= span)
            window_sum -= static_cast<double>(values[i - span]);
        std::size_t denom = i + 1 < span ? i + 1 : span;
        out.push_back(window_sum / static_cast<double>(denom));
    }
    return out;
}

bool
TelemetrySnapshot::has(const std::string &name) const
{
    for (const Metric &metric : metrics) {
        if (metric.name == name)
            return true;
    }
    return false;
}

std::uint64_t
TelemetrySnapshot::counter(const std::string &name) const
{
    for (const Metric &metric : metrics) {
        if (metric.name != name)
            continue;
        if (!metric.isCounter)
            fatal("telemetry metric '", name,
                  "' is a gauge; read it with gauge()");
        return metric.counter;
    }
    fatal("unknown telemetry counter '", name,
          "' (see DESIGN.md §9 for the metric-name schema)");
}

double
TelemetrySnapshot::gauge(const std::string &name) const
{
    for (const Metric &metric : metrics) {
        if (metric.name != name)
            continue;
        if (metric.isCounter)
            fatal("telemetry metric '", name,
                  "' is a counter; read it with counter()");
        return metric.gauge;
    }
    fatal("unknown telemetry gauge '", name,
          "' (see DESIGN.md §9 for the metric-name schema)");
}

const TelemetrySnapshot::Series *
TelemetrySnapshot::findSeries(const std::string &name) const
{
    for (const Series &entry : series) {
        if (entry.name == name)
            return &entry;
    }
    return nullptr;
}

void
TelemetrySnapshot::writeCsv(std::ostream &out) const
{
    out << "kind,name,window_cycles,window_index,value\n";
    for (const Metric &metric : metrics) {
        out << (metric.isCounter ? "counter" : "gauge") << ',';
        writeCsvString(out, metric.name);
        out << ",,,";
        if (metric.isCounter)
            out << metric.counter;
        else
            out << formatDouble(metric.gauge);
        out << '\n';
    }
    for (const Series &entry : series) {
        for (std::size_t i = 0; i < entry.values.size(); ++i) {
            out << "series,";
            writeCsvString(out, entry.name);
            out << ',' << entry.windowCycles << ',' << i << ','
                << entry.values[i] << '\n';
        }
    }
}

void
TelemetrySnapshot::writeJsonl(std::ostream &out) const
{
    for (const Metric &metric : metrics) {
        out << "{\"kind\":\"" << (metric.isCounter ? "counter" : "gauge")
            << "\",\"name\":";
        writeJsonString(out, metric.name);
        out << ",\"value\":";
        if (metric.isCounter)
            out << metric.counter;
        else
            out << formatDouble(metric.gauge);
        out << "}\n";
    }
    for (const Series &entry : series) {
        out << "{\"kind\":\"series\",\"name\":";
        writeJsonString(out, entry.name);
        out << ",\"window_cycles\":" << entry.windowCycles << ",\"values\":[";
        for (std::size_t i = 0; i < entry.values.size(); ++i) {
            if (i)
                out << ',';
            out << entry.values[i];
        }
        out << "]}\n";
    }
}

void
TelemetrySnapshot::writeFile(const std::string &path) const
{
    // Render fully in memory, then publish atomically so a process
    // dying mid-write cannot leave a truncated artifact behind.
    std::ostringstream out;
    bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv)
        writeCsv(out);
    else
        writeJsonl(out);
    std::string error;
    if (!atomicWriteFile(path, out.str(), &error))
        fatal("cannot write metrics output file '", path, "': ", error);
}

void
MetricsRegistry::checkUnique(const std::string &name) const
{
    for (const MetricEntry &entry : metrics_) {
        if (entry.name == name)
            fatal("duplicate telemetry metric name '", name, "'");
    }
    for (const SeriesEntry &entry : series_) {
        if (entry.name == name)
            fatal("duplicate telemetry series name '", name, "'");
    }
}

void
MetricsRegistry::addCounter(std::string name, CounterReader read)
{
    mnpu_assert(read, "counter reader for '", name, "' is empty");
    checkUnique(name);
    metrics_.push_back(
        MetricEntry{std::move(name), true, std::move(read), nullptr});
}

void
MetricsRegistry::addGauge(std::string name, GaugeReader read)
{
    mnpu_assert(read, "gauge reader for '", name, "' is empty");
    checkUnique(name);
    metrics_.push_back(
        MetricEntry{std::move(name), false, nullptr, std::move(read)});
}

void
MetricsRegistry::addGroup(const StatGroup &group)
{
    const std::string prefix = group.name() + ".";
    for (const std::string &stat_name : group.order()) {
        if (const Counter *counter = group.findCounter(stat_name)) {
            addCounter(prefix + stat_name,
                       [counter] { return counter->value(); });
        } else if (const Distribution *dist =
                       group.findDistribution(stat_name)) {
            addCounter(prefix + stat_name + ".count",
                       [dist] { return dist->count(); });
            addGauge(prefix + stat_name + ".mean",
                     [dist] { return dist->mean(); });
            addGauge(prefix + stat_name + ".min",
                     [dist] { return dist->min(); });
            addGauge(prefix + stat_name + ".max",
                     [dist] { return dist->max(); });
        }
    }
}

void
MetricsRegistry::addSeries(std::string name, Cycle window_cycles,
                           SeriesReader read)
{
    mnpu_assert(read, "series reader for '", name, "' is empty");
    checkUnique(name);
    series_.push_back(
        SeriesEntry{std::move(name), window_cycles, std::move(read)});
}

TelemetrySnapshot
MetricsRegistry::snapshot() const
{
    TelemetrySnapshot snap;
    snap.metrics.reserve(metrics_.size());
    for (const MetricEntry &entry : metrics_) {
        TelemetrySnapshot::Metric metric;
        metric.name = entry.name;
        metric.isCounter = entry.isCounter;
        if (entry.isCounter)
            metric.counter = entry.counter();
        else
            metric.gauge = entry.gauge();
        snap.metrics.push_back(std::move(metric));
    }
    snap.series.reserve(series_.size());
    for (const SeriesEntry &entry : series_) {
        TelemetrySnapshot::Series series;
        series.name = entry.name;
        series.windowCycles = entry.windowCycles;
        series.values = entry.read();
        snap.series.push_back(std::move(series));
    }
    return snap;
}

} // namespace mnpu
