#include "common/errors.hh"

namespace mnpu
{

const char *
toString(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Deadlock:
        return "deadlock";
      case SimErrorKind::CycleBudget:
        return "cycle-budget";
      case SimErrorKind::WallClockTimeout:
        return "wall-clock-timeout";
      case SimErrorKind::Cancelled:
        return "cancelled";
      case SimErrorKind::ProtocolViolation:
        return "protocol-violation";
      case SimErrorKind::RequestLifecycle:
        return "request-lifecycle";
      case SimErrorKind::MmuConsistency:
        return "mmu-consistency";
      case SimErrorKind::WorkerCrash:
        return "worker-crash";
    }
    return "?";
}

} // namespace mnpu
