/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal()  — user-caused condition (bad configuration); throws FatalError
 *            so that library embedders and tests can recover.
 * panic()  — simulator-internal invariant violation; aborts.
 * warn()   — prints a warning to stderr and continues.
 * inform() — status output, silenced when quiet mode is enabled.
 */

#ifndef MNPU_COMMON_LOGGING_HH
#define MNPU_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace mnpu
{

/** Exception thrown by fatal(): an unrecoverable *user* error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &message)
        : std::runtime_error(message)
    {}
};

namespace detail
{

/** Concatenate all arguments through an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream stream;
    (stream << ... << std::forward<Args>(args));
    return stream.str();
}

[[noreturn]] void panicImpl(const std::string &message,
                            const char *file, int line);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);

} // namespace detail

/** Globally silence inform() output (warnings still print). */
void setQuiet(bool quiet);

/** @return whether inform() output is currently silenced. */
bool isQuiet();

/** Report a configuration/user error; always throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/** Print a warning to stderr and continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print a status message to stderr unless quiet mode is on. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Abort on an internal invariant violation (simulator bug). */
#define mnpu_panic(...) \
    ::mnpu::detail::panicImpl(::mnpu::detail::concat(__VA_ARGS__), \
                              __FILE__, __LINE__)

/** Cheap always-on invariant check; panics with the condition text. */
#define mnpu_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            mnpu_panic("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (false)

} // namespace mnpu

#endif // MNPU_COMMON_LOGGING_HH
