#include "common/stats.hh"

#include <algorithm>
#include <cmath>

namespace mnpu
{

void
Distribution::sample(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    sumSquares_ += value * value;
}

void
Distribution::reset()
{
    *this = Distribution();
}

double
Distribution::stddev() const
{
    if (count_ == 0)
        return 0.0;
    double m = mean();
    double variance = sumSquares_ / count_ - m * m;
    return variance > 0.0 ? std::sqrt(variance) : 0.0;
}

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
}

void
Histogram::sample(double value)
{
    ++count_;
    if (value < 0) {
        ++overflow_;
        return;
    }
    auto index = static_cast<std::size_t>(value / bucketWidth_);
    if (index >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[index];
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
}

Counter &
StatGroup::counter(const std::string &stat_name)
{
    auto it = counters_.find(stat_name);
    if (it == counters_.end()) {
        order_.push_back(stat_name);
        it = counters_.emplace(stat_name, Counter()).first;
    }
    return it->second;
}

Distribution &
StatGroup::distribution(const std::string &stat_name)
{
    auto it = distributions_.find(stat_name);
    if (it == distributions_.end()) {
        order_.push_back(stat_name);
        it = distributions_.emplace(stat_name, Distribution()).first;
    }
    return it->second;
}

std::uint64_t
StatGroup::counterValue(const std::string &stat_name) const
{
    auto it = counters_.find(stat_name);
    return it == counters_.end() ? 0 : it->second.value();
}

const Counter *
StatGroup::findCounter(const std::string &stat_name) const
{
    auto it = counters_.find(stat_name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Distribution *
StatGroup::findDistribution(const std::string &stat_name) const
{
    auto it = distributions_.find(stat_name);
    return it == distributions_.end() ? nullptr : &it->second;
}

void
StatGroup::dump(std::ostream &out) const
{
    for (const auto &stat_name : order_) {
        if (auto it = counters_.find(stat_name); it != counters_.end()) {
            out << name_ << "." << stat_name << " " << it->second.value()
                << "\n";
        } else if (auto dit = distributions_.find(stat_name);
                   dit != distributions_.end()) {
            const Distribution &d = dit->second;
            out << name_ << "." << stat_name << ".count " << d.count()
                << "\n";
            out << name_ << "." << stat_name << ".mean " << d.mean() << "\n";
            out << name_ << "." << stat_name << ".min " << d.min() << "\n";
            out << name_ << "." << stat_name << ".max " << d.max() << "\n";
        }
    }
}

void
StatGroup::resetAll()
{
    for (auto &[unused_name, c] : counters_)
        c.reset();
    for (auto &[unused_name, d] : distributions_)
        d.reset();
}

void
Distribution::saveState(StateWriter &out) const
{
    out.u64(count_);
    out.d(sum_);
    out.d(sumSquares_);
    out.d(min_);
    out.d(max_);
}

void
Distribution::loadState(StateReader &in)
{
    count_ = in.u64();
    sum_ = in.d();
    sumSquares_ = in.d();
    min_ = in.d();
    max_ = in.d();
}

void
StatGroup::saveState(StateWriter &out) const
{
    out.section("STAT");
    out.u64(order_.size());
    for (const auto &stat_name : order_) {
        out.str(stat_name);
        if (auto it = counters_.find(stat_name); it != counters_.end()) {
            out.u8('C');
            it->second.saveState(out);
        } else {
            out.u8('D');
            distributions_.at(stat_name).saveState(out);
        }
    }
}

void
StatGroup::loadState(StateReader &in)
{
    in.section("STAT");
    std::uint64_t n = in.u64();
    if (n != order_.size())
        throw SnapshotError("stat group '" + name_ +
                            "': registration count mismatch");
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string stat_name = in.str();
        std::uint8_t kind = in.u8();
        if (kind == 'C') {
            auto it = counters_.find(stat_name);
            if (it == counters_.end())
                throw SnapshotError("stat group '" + name_ +
                                    "': unknown counter '" + stat_name +
                                    "'");
            it->second.loadState(in);
        } else if (kind == 'D') {
            auto it = distributions_.find(stat_name);
            if (it == distributions_.end())
                throw SnapshotError("stat group '" + name_ +
                                    "': unknown distribution '" +
                                    stat_name + "'");
            it->second.loadState(in);
        } else {
            throw SnapshotError("stat group '" + name_ +
                                "': bad stat kind");
        }
    }
}

} // namespace mnpu
