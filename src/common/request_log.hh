/**
 * @file
 * Opt-in request logging (§3.2.2 of the paper): mNPUsim emits logs of
 * every shareable-resource access — DRAM requests (start and end
 * cycle), TLB lookups, and page-table-walk lifetimes — with fields
 * cycle, address, NPU index, and channel where applicable.
 *
 * A disabled RequestLog is free: every logging call is guarded by a
 * single branch on the open flag.
 */

#ifndef MNPU_COMMON_REQUEST_LOG_HH
#define MNPU_COMMON_REQUEST_LOG_HH

#include <fstream>
#include <string>

#include "common/types.hh"

namespace mnpu
{

class RequestLog
{
  public:
    RequestLog() = default;

    RequestLog(const RequestLog &) = delete;
    RequestLog &operator=(const RequestLog &) = delete;
    RequestLog(RequestLog &&) = default;
    RequestLog &operator=(RequestLog &&) = default;

    /** Open @p path and write the CSV @p header line. fatal() on I/O. */
    void open(const std::string &path, const std::string &header);

    bool enabled() const { return file_.is_open(); }

    /** Append one CSV row; no-op while disabled. */
    template <typename... Fields>
    void
    row(Fields &&...fields)
    {
        if (!file_)
            return;
        bool first = true;
        ((writeField(first, std::forward<Fields>(fields))), ...);
        file_ << '\n';
    }

    /** Flush buffered rows to disk. */
    void flush();

  private:
    template <typename Field>
    void
    writeField(bool &first, Field &&field)
    {
        if (!first)
            file_ << ',';
        first = false;
        file_ << field;
    }

    std::ofstream file_;
};

} // namespace mnpu

#endif // MNPU_COMMON_REQUEST_LOG_HH
