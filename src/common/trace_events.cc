#include "common/trace_events.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"

namespace mnpu
{

const char *
toString(TraceLevel level)
{
    switch (level) {
      case TraceLevel::Off:
        return "off";
      case TraceLevel::Layers:
        return "layers";
      case TraceLevel::Tiles:
        return "tiles";
      case TraceLevel::Requests:
        return "requests";
    }
    return "off";
}

TraceLevel
parseTraceLevel(const std::string &text)
{
    if (text == "off")
        return TraceLevel::Off;
    if (text == "layers")
        return TraceLevel::Layers;
    if (text == "tiles")
        return TraceLevel::Tiles;
    if (text == "requests")
        return TraceLevel::Requests;
    fatal("unknown trace level '", text,
          "' (expected off, layers, tiles, or requests)");
}

ObservabilityConfig
observabilityFromEnv(ObservabilityConfig base)
{
    if (base.traceOutPath.empty()) {
        if (const char *env = std::getenv("MNPU_TRACE"); env && *env)
            base.traceOutPath = env;
    }
    if (base.metricsOutPath.empty()) {
        if (const char *env = std::getenv("MNPU_METRICS"); env && *env)
            base.metricsOutPath = env;
    }
    if (base.traceLevel == TraceLevel::Tiles) {
        if (const char *env = std::getenv("MNPU_OBS_LEVEL"); env && *env)
            base.traceLevel = parseTraceLevel(env);
    }
    return base;
}

void
TraceEventSink::processName(std::uint32_t pid, const std::string &name)
{
    events_.push_back(Event{'M', pid, 0, nullptr, name, 0, 0});
}

void
TraceEventSink::threadName(std::uint32_t pid, std::uint32_t tid,
                           const std::string &name)
{
    // Distinguished from process_name at write time by tid != 0 never
    // being enough (tid 0 is a real thread), so carry it in the phase:
    // 'M' + null category = process_name, 'M' + non-null = thread_name.
    events_.push_back(Event{'M', pid, tid, "t", name, 0, 0});
}

void
TraceEventSink::complete(std::uint32_t pid, std::uint32_t tid,
                         const char *category, std::string name, Cycle start,
                         Cycle end)
{
    Cycle dur = end >= start ? end - start : 0;
    events_.push_back(
        Event{'X', pid, tid, category, std::move(name), start, dur});
}

void
TraceEventSink::instant(std::uint32_t pid, std::uint32_t tid,
                        const char *category, std::string name, Cycle at)
{
    events_.push_back(Event{'i', pid, tid, category, std::move(name), at, 0});
}

namespace
{

void
writeJsonString(std::ostream &out, const std::string &text)
{
    out << '"';
    for (char c : text) {
        switch (c) {
          case '"':
            out << "\\\"";
            break;
          case '\\':
            out << "\\\\";
            break;
          case '\n':
            out << "\\n";
            break;
          case '\t':
            out << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out << buffer;
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

} // namespace

void
TraceEventSink::write(std::ostream &out) const
{
    out << "{\"traceEvents\":[";
    bool first = true;
    for (const Event &event : events_) {
        if (!first)
            out << ",\n";
        first = false;
        if (event.phase == 'M') {
            const char *metadata_name =
                event.category ? "thread_name" : "process_name";
            out << "{\"ph\":\"M\",\"pid\":" << event.pid
                << ",\"tid\":" << event.tid << ",\"name\":\"" << metadata_name
                << "\",\"args\":{\"name\":";
            writeJsonString(out, event.name);
            out << "}}";
            continue;
        }
        out << "{\"ph\":\"" << event.phase << "\",\"pid\":" << event.pid
            << ",\"tid\":" << event.tid << ",\"cat\":\""
            << (event.category ? event.category : "") << "\",\"name\":";
        writeJsonString(out, event.name);
        out << ",\"ts\":" << event.ts;
        if (event.phase == 'X')
            out << ",\"dur\":" << event.dur;
        else
            out << ",\"s\":\"t\"";
        out << "}";
    }
    // displayTimeUnit is cosmetic; timestamps are DRAM-clock cycles.
    out << "],\"displayTimeUnit\":\"ns\"}\n";
}

void
TraceEventSink::writeFile(const std::string &path) const
{
    // Render fully in memory, then publish atomically: the event
    // array is always finalized (closing brackets present), and a
    // process dying mid-write can never leave a truncated JSON file
    // at the published path.
    std::ostringstream out;
    write(out);
    std::string error;
    if (!atomicWriteFile(path, out.str(), &error))
        fatal("cannot write trace output file '", path, "': ", error);
}

} // namespace mnpu
