#include "common/fidelity.hh"

#include <atomic>
#include <cstdlib>

#include "common/logging.hh"

namespace mnpu
{

const char *
toString(FidelityKind kind)
{
    switch (kind) {
      case FidelityKind::Exact:
        return "exact";
      case FidelityKind::Fast:
        return "fast";
    }
    return "?";
}

FidelityKind
parseFidelityKind(const std::string &text)
{
    if (text == "exact")
        return FidelityKind::Exact;
    if (text == "fast")
        return FidelityKind::Fast;
    fatal("unknown fidelity '", text, "'; expected exact or fast");
}

namespace
{

/** Process default from --fidelity; -1 = unset. */
std::atomic<int> g_fidelity_default{-1};

} // namespace

void
setFidelityDefault(FidelityKind kind)
{
    g_fidelity_default.store(static_cast<int>(kind));
}

void
clearFidelityDefault()
{
    g_fidelity_default.store(-1);
}

FidelityKind
effectiveFidelityKind(const std::optional<FidelityKind> &configured)
{
    if (configured)
        return *configured;
    const int fallback = g_fidelity_default.load();
    if (fallback >= 0)
        return static_cast<FidelityKind>(fallback);
    const char *env = std::getenv("MNPU_FIDELITY");
    if (env != nullptr && *env != '\0')
        return parseFidelityKind(env);
    return FidelityKind::Exact;
}

FidelityKind
resolvedFidelityKind(const std::optional<FidelityKind> &configured,
                     bool fault_armed, CheckLevel check_level)
{
    FidelityKind requested = effectiveFidelityKind(configured);
    if (requested == FidelityKind::Fast &&
        (fault_armed || check_level != CheckLevel::Off))
        return FidelityKind::Exact;
    return requested;
}

} // namespace mnpu
