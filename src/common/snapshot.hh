/**
 * @file
 * Durable in-flight simulation snapshots (DESIGN.md §12).
 *
 * A snapshot is a versioned, checksummed binary image of the full
 * mutable state of a running MultiCoreSystem, written periodically
 * (`--snapshot-every`) and on the first SIGINT/SIGTERM so that a
 * killed, crashed, or preempted run can resume from its latest
 * snapshot instead of from cycle zero — bit-identically: a restored
 * run must produce byte-identical checkpoint-v2 telemetry and an
 * identical DRAM command-stream hash versus the uninterrupted run.
 *
 * This header owns the three layers every component shares:
 *
 *  - StateWriter / StateReader: a little-endian byte-stream codec.
 *    Doubles travel as raw IEEE-754 bit patterns (bit-exact round
 *    trip); every read is bounds-checked and throws SnapshotError on
 *    underflow, so a truncated or hostile payload can never walk the
 *    loader out of bounds. Section tags (4 ASCII bytes) delimit each
 *    component's state and turn "loader drifted out of sync" into a
 *    precise error instead of garbage state.
 *
 *  - The file format: magic "MNPUSNAP", a format version, the payload
 *    length, and an FNV-1a checksum over the payload. Loading rejects
 *    a bad magic, an unknown version, a short file, or a checksum
 *    mismatch by returning "no snapshot" (with a warning) — never by
 *    aborting. A rejected snapshot simply means a from-scratch run.
 *
 *  - SnapshotPolicy: where and how often a run snapshots, threaded
 *    through RunBudget so every entry point (CLI, benches, the sweep
 *    runner's thread and process workers) shares one implementation.
 *
 * Snapshot writes are passive: they serialize via const reads only,
 * so a run that writes snapshots stays bit-identical to one that
 * does not (enforced by the snapshot tests).
 */

#ifndef MNPU_COMMON_SNAPSHOT_HH
#define MNPU_COMMON_SNAPSHOT_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mnpu
{

/**
 * A malformed, truncated, or structurally mismatched snapshot
 * payload. Always contained: loaders catch it, discard the snapshot,
 * and fall back to a from-scratch run.
 */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Current snapshot file format version (see DESIGN.md §12). v2 added
 * the MMU's per-core attribution counters; v3 added the per-request
 * memory-region byte (tiered routing) to every serialized DramRequest
 * plus the PCM/XBar backend sections. Older-version snapshots are
 * rejected and their runs restart from scratch (the documented
 * contract) — as are same-version snapshots whose config fingerprint
 * (which now covers the backend kind and fabric knobs) differs.
 */
inline constexpr std::uint32_t kSnapshotFormatVersion = 3;

/** FNV-1a over a byte range; the snapshot payload checksum. */
std::uint64_t snapshotChecksum(const void *data, std::size_t size);

/** Little-endian serializer for snapshot payloads (append-only). */
class StateWriter
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    /** Raw IEEE-754 bit pattern: the round trip is bit-exact. */
    void d(double v);
    void str(const std::string &s);

    /** Write a 4-byte section tag delimiting one component's state. */
    void section(const char (&tag)[5]);

    void u64Vec(const std::vector<std::uint64_t> &v);

    const std::string &bytes() const { return bytes_; }

  private:
    std::string bytes_;
};

/** Bounds-checked little-endian deserializer; throws SnapshotError. */
class StateReader
{
  public:
    explicit StateReader(std::string payload) : bytes_(std::move(payload)) {}

    std::uint8_t u8();
    bool b() { return u8() != 0; }
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double d();
    std::string str();

    /** Read and verify a section tag; mismatch throws SnapshotError. */
    void section(const char (&tag)[5]);

    std::vector<std::uint64_t> u64Vec();

    bool atEnd() const { return pos_ == bytes_.size(); }

  private:
    const char *take(std::size_t n);

    std::string bytes_;
    std::size_t pos_ = 0;
};

/**
 * Persist @p payload to @p path with the snapshot header, atomically:
 * write `<path>.tmp`, fsync, rename over @p path. The tmp path is
 * registered with the stop-signal force-exit cleanup hook for the
 * duration of the write, so a second SIGINT mid-write unlinks the
 * partial tmp instead of leaving it behind (rename itself is atomic,
 * so a half-renamed snapshot can never be observed). Returns false
 * (with a warning) on I/O failure; a run never dies for its snapshot.
 */
bool writeSnapshotFile(const std::string &path, const std::string &payload);

/**
 * Load and validate a snapshot file. Returns the payload, or
 * std::nullopt when the file is missing, short, has a bad magic, an
 * unknown format version, or a checksum mismatch. Every rejection of
 * an *existing* file warns with the reason; none ever aborts —
 * unknown-version and corrupt snapshots mean "run from scratch".
 */
std::optional<std::string> readSnapshotFile(const std::string &path);

/**
 * Fault-drill helper (`snapshot-corrupt`): flip one byte inside the
 * payload region of the snapshot at @p path, at rest. The next
 * readSnapshotFile must reject it by checksum. Returns false if the
 * file cannot be rewritten.
 */
bool corruptSnapshotAtRest(const std::string &path);

/**
 * Where and how often a run writes snapshots. Threaded through
 * RunBudget; an empty path disables snapshotting entirely. The
 * cadence knobs are durability policy, not simulated behavior: they
 * are deliberately excluded from sweepJobKey and cannot change
 * simulation results (snapshot writes are passive).
 */
struct SnapshotPolicy
{
    /** Snapshot file; `<path>.tmp` is used for the atomic write. */
    std::string path;
    /** Write a snapshot every this many global cycles (0 = off). */
    Cycle everyCycles = 0;
    /** Write a snapshot every this many wall seconds (0 = off). */
    double everySeconds = 0;
    /** Also snapshot when a stop token cancels the run (first ^C). */
    bool onCancel = true;
    /** Remove the snapshot once the run completes successfully. */
    bool removeOnSuccess = true;

    // --- Fault-drill knobs (process-isolated workers only). ---
    /** Corrupt the Nth written snapshot at rest, then SIGKILL. */
    std::uint64_t corruptNth = 0;
    /** SIGKILL the process right after the Nth snapshot persists. */
    std::uint64_t killNth = 0;

    bool enabled() const { return !path.empty(); }
};

} // namespace mnpu

#endif // MNPU_COMMON_SNAPSHOT_HH
