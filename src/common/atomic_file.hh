/**
 * @file
 * Crash-safe file publication: write a tmp file, fsync, rename.
 *
 * Every JSON artifact the simulator emits (`--metrics-out`,
 * `--trace-out`, `--baseline-out`, simulation snapshots) goes through
 * this helper so a process dying mid-write can never leave a
 * truncated/invalid file at the published path — readers either see
 * the previous complete artifact or the new complete one, never a
 * half-written hybrid. The tmp path (`<path>.tmp`) is unlinked on any
 * failure.
 */

#ifndef MNPU_COMMON_ATOMIC_FILE_HH
#define MNPU_COMMON_ATOMIC_FILE_HH

#include <string>

namespace mnpu
{

/**
 * Atomically publish @p content at @p path via `<path>.tmp` + fsync +
 * rename. Returns false (after cleaning up the tmp file) on any I/O
 * failure; @p error, when non-null, receives the failing step.
 */
bool atomicWriteFile(const std::string &path, const std::string &content,
                     std::string *error = nullptr);

} // namespace mnpu

#endif // MNPU_COMMON_ATOMIC_FILE_HH
