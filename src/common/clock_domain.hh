/**
 * @file
 * Clock-domain translation between a component's local clock and the
 * simulator's global clock (the DRAM clock, per the mNPUsim paper §3.1).
 *
 * Frequencies are held as an exact integer ratio so translation never
 * accumulates floating-point drift: global cycles = local * gNum / gDen.
 */

#ifndef MNPU_COMMON_CLOCK_DOMAIN_HH
#define MNPU_COMMON_CLOCK_DOMAIN_HH

#include <cstdint>

#include "common/types.hh"

namespace mnpu
{

/**
 * Converts cycle counts between a local clock of @p localMhz and the
 * global clock of @p globalMhz. Both conversions round such that an event
 * never completes earlier than it would in its own domain (ceiling).
 */
class ClockDomain
{
  public:
    /** Both frequencies must be nonzero. */
    ClockDomain(std::uint64_t local_mhz, std::uint64_t global_mhz);

    std::uint64_t localMhz() const { return localMhz_; }
    std::uint64_t globalMhz() const { return globalMhz_; }

    /** Global cycle at (or just after) the given local cycle boundary. */
    Cycle toGlobal(Cycle local) const;

    /** Local cycle at (or just after) the given global cycle boundary. */
    Cycle toLocal(Cycle global) const;

    /** Index of the local cycle in progress at global cycle (floor). */
    Cycle toLocalFloor(Cycle global) const;

    /** True when local and global tick 1:1. */
    bool isUnity() const { return localMhz_ == globalMhz_; }

  private:
    std::uint64_t localMhz_;
    std::uint64_t globalMhz_;
    // Reduced ratio: local_period / global_period = globalMhz / localMhz.
    std::uint64_t num_; // global cycles per `den_` local cycles
    std::uint64_t den_;
};

} // namespace mnpu

#endif // MNPU_COMMON_CLOCK_DOMAIN_HH
