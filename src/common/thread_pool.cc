#include "common/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace mnpu
{

namespace
{

std::atomic<std::size_t> jobOverride{0};

} // namespace

void
setDefaultJobCount(std::size_t jobs)
{
    jobOverride.store(jobs, std::memory_order_relaxed);
}

std::size_t
defaultJobCount()
{
    if (std::size_t jobs = jobOverride.load(std::memory_order_relaxed))
        return jobs;
    if (const char *env = std::getenv("MNPU_JOBS")) {
        char *end = nullptr;
        unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0)
            return static_cast<std::size_t>(parsed);
        warn("ignoring malformed MNPU_JOBS='", env, "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

/** One parallelFor() invocation, owned by the calling frame. */
struct ThreadPool::Batch
{
    const std::function<void(std::size_t)> *fn = nullptr;
    std::size_t count = 0;
    std::size_t next = 0;      //!< next unclaimed index (under mutex_)
    std::size_t completed = 0; //!< finished indices (under mutex_)
    std::exception_ptr error;  //!< first task exception (under mutex_)
    /** Collect mode: per-index exception slots instead of `error`. */
    std::vector<std::exception_ptr> *collected = nullptr;
    std::condition_variable done;
};

ThreadPool::ThreadPool(std::size_t jobs)
    : jobs_(jobs != 0 ? jobs : defaultJobCount())
{
    if (jobs_ < 2)
        return; // inline mode: parallelFor runs on the caller
    workers_.reserve(jobs_);
    for (std::size_t i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workReady_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        Batch *batch = queue_.front();
        if (batch->next >= batch->count) {
            // Fully claimed; retire it from the queue.
            queue_.pop_front();
            continue;
        }
        const std::size_t index = batch->next++;
        lock.unlock();
        std::exception_ptr error;
        try {
            (*batch->fn)(index);
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        if (error) {
            if (batch->collected)
                (*batch->collected)[index] = error;
            else if (!batch->error)
                batch->error = error;
        }
        if (++batch->completed == batch->count)
            batch->done.notify_all();
    }
}

void
ThreadPool::runBatch(Batch &batch)
{
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(&batch);
    workReady_.notify_all();
    batch.done.wait(lock, [&] { return batch.completed == batch.count; });
    // The batch may still sit (fully claimed) in the queue; drop the
    // pointer before this frame's Batch goes out of scope.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == &batch) {
            queue_.erase(it);
            break;
        }
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    Batch batch;
    batch.fn = &fn;
    batch.count = count;
    runBatch(batch);
    if (batch.error)
        std::rethrow_exception(batch.error);
}

std::vector<std::exception_ptr>
ThreadPool::parallelForCollect(std::size_t count,
                               const std::function<void(std::size_t)> &fn)
{
    std::vector<std::exception_ptr> errors(count);
    if (count == 0)
        return errors;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < count; ++i) {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
        return errors;
    }
    Batch batch;
    batch.fn = &fn;
    batch.count = count;
    batch.collected = &errors;
    runBatch(batch);
    return errors;
}

} // namespace mnpu
