#include "common/snapshot.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/stop_signal.hh"

namespace mnpu
{

namespace
{

/** 8-byte file magic; also catches endianness/format confusion. */
constexpr char kSnapshotMagic[8] = {'M', 'N', 'P', 'U',
                                    'S', 'N', 'A', 'P'};
constexpr std::size_t kHeaderBytes =
    sizeof(kSnapshotMagic) + sizeof(std::uint32_t) +
    2 * sizeof(std::uint64_t);

void
putLe32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putLe64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getLe32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
getLe64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

/** Flush + fsync a directory so the rename itself is durable. */
void
fsyncParentDir(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : path.substr(0, slash == 0 ? 1 : slash);
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0)
        return; // durability best-effort; the data file was fsynced
    ::fsync(fd);
    ::close(fd);
}

} // namespace

std::uint64_t
snapshotChecksum(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = 14695981039346656037ULL;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

void
StateWriter::u32(std::uint32_t v)
{
    putLe32(bytes_, v);
}

void
StateWriter::u64(std::uint64_t v)
{
    putLe64(bytes_, v);
}

void
StateWriter::d(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
StateWriter::str(const std::string &s)
{
    u64(s.size());
    bytes_.append(s);
}

void
StateWriter::section(const char (&tag)[5])
{
    bytes_.append(tag, 4);
}

void
StateWriter::u64Vec(const std::vector<std::uint64_t> &v)
{
    u64(v.size());
    for (std::uint64_t x : v)
        u64(x);
}

const char *
StateReader::take(std::size_t n)
{
    if (n > bytes_.size() - pos_)
        throw SnapshotError("snapshot payload truncated");
    const char *p = bytes_.data() + pos_;
    pos_ += n;
    return p;
}

std::uint8_t
StateReader::u8()
{
    return static_cast<std::uint8_t>(
        static_cast<unsigned char>(*take(1)));
}

std::uint32_t
StateReader::u32()
{
    return getLe32(take(4));
}

std::uint64_t
StateReader::u64()
{
    return getLe64(take(8));
}

double
StateReader::d()
{
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
StateReader::str()
{
    std::uint64_t n = u64();
    if (n > bytes_.size() - pos_)
        throw SnapshotError("snapshot string truncated");
    return std::string(take(static_cast<std::size_t>(n)),
                       static_cast<std::size_t>(n));
}

void
StateReader::section(const char (&tag)[5])
{
    const char *p = take(4);
    if (std::memcmp(p, tag, 4) != 0) {
        throw SnapshotError(std::string("snapshot section mismatch: "
                                        "expected '") +
                            tag + "', found '" + std::string(p, 4) + "'");
    }
}

std::vector<std::uint64_t>
StateReader::u64Vec()
{
    std::uint64_t n = u64();
    if (n > (bytes_.size() - pos_) / 8)
        throw SnapshotError("snapshot vector truncated");
    std::vector<std::uint64_t> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(u64());
    return v;
}

bool
writeSnapshotFile(const std::string &path, const std::string &payload)
{
    std::string blob;
    blob.reserve(kHeaderBytes + payload.size());
    blob.append(kSnapshotMagic, sizeof(kSnapshotMagic));
    putLe32(blob, kSnapshotFormatVersion);
    putLe64(blob, payload.size());
    putLe64(blob, snapshotChecksum(payload.data(), payload.size()));
    blob.append(payload);

    const std::string tmp = path + ".tmp";
    // A stale tmp from an earlier hard kill must not survive the new
    // write's failure paths either; start clean.
    ::unlink(tmp.c_str());
    // Arm cleanup *before* creating the file: once armed, any force
    // exit between here and the rename unlinks the partial tmp.
    setForceExitCleanupPath(tmp.c_str());
    bool ok = false;
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f) {
        ok = std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
        ok = std::fflush(f) == 0 && ok;
        ok = ::fsync(fileno(f)) == 0 && ok;
        ok = std::fclose(f) == 0 && ok;
    }
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0)
        ok = false;
    if (!ok) {
        int saved = errno;
        ::unlink(tmp.c_str());
        clearForceExitCleanupPath();
        warn("snapshot write to ", path,
             " failed: ", std::strerror(saved),
             "; continuing without a snapshot");
        return false;
    }
    clearForceExitCleanupPath();
    fsyncParentDir(path);
    return true;
}

std::optional<std::string>
readSnapshotFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt; // no snapshot: the normal from-scratch case

    std::string blob;
    char buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        blob.append(buf, got);
    bool read_ok = std::ferror(f) == 0;
    std::fclose(f);

    const char *why = nullptr;
    if (!read_ok) {
        why = "read error";
    } else if (blob.size() < kHeaderBytes) {
        why = "file shorter than the snapshot header";
    } else if (std::memcmp(blob.data(), kSnapshotMagic,
                           sizeof(kSnapshotMagic)) != 0) {
        why = "bad magic";
    } else {
        const char *p = blob.data() + sizeof(kSnapshotMagic);
        std::uint32_t version = getLe32(p);
        std::uint64_t size = getLe64(p + 4);
        std::uint64_t checksum = getLe64(p + 12);
        if (version != kSnapshotFormatVersion) {
            // Version policy (DESIGN.md §12): unknown version means a
            // snapshot from a different build generation — discard and
            // run from scratch, never attempt a cross-version load.
            why = "unknown format version";
        } else if (blob.size() - kHeaderBytes != size) {
            why = "payload length mismatch";
        } else if (snapshotChecksum(blob.data() + kHeaderBytes, size) !=
                   checksum) {
            why = "checksum mismatch";
        }
    }
    if (why) {
        warn("discarding snapshot ", path, ": ", why,
             "; running from scratch");
        return std::nullopt;
    }
    return blob.substr(kHeaderBytes);
}

bool
corruptSnapshotAtRest(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        return false;
    // Flip one bit in the first payload byte: past the header, so the
    // magic and length stay plausible and only the checksum can catch
    // it — exactly the at-rest corruption the drill wants to prove
    // detectable.
    bool ok = std::fseek(f, static_cast<long>(kHeaderBytes), SEEK_SET) == 0;
    int c = ok ? std::fgetc(f) : EOF;
    ok = ok && c != EOF;
    ok = ok &&
         std::fseek(f, static_cast<long>(kHeaderBytes), SEEK_SET) == 0;
    ok = ok && std::fputc((c ^ 0x01) & 0xff, f) != EOF;
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace mnpu
