/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef MNPU_COMMON_TYPES_HH
#define MNPU_COMMON_TYPES_HH

#include <cstdint>
#include <limits>
#include <string>

namespace mnpu
{

/** A simulated address (virtual or physical), byte-granular. */
using Addr = std::uint64_t;

/** A cycle count in some clock domain. */
using Cycle = std::uint64_t;

/** Identifier of an NPU core within a multi-core system. */
using CoreId = std::uint32_t;

/** Address-space identifier; one per workload/core in this simulator. */
using Asid = std::uint32_t;

/** Sentinel for "no cycle scheduled / never". */
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Sentinel for an invalid address. */
inline constexpr Addr kAddrInvalid = std::numeric_limits<Addr>::max();

/** Sentinel for an invalid core id. */
inline constexpr CoreId kCoreInvalid = std::numeric_limits<CoreId>::max();

/** Direction of an off-chip memory request. */
enum class MemOp : std::uint8_t { Read, Write };

/** Human-readable name of a MemOp. */
inline const char *
toString(MemOp op)
{
    return op == MemOp::Read ? "read" : "write";
}

/**
 * Placement class of a memory access, derived from the workload's
 * tensor allocation map (TraceGenerator::regionOf). Tiered memory
 * backends route on it: weights (read-mostly, capacity-bound) go to
 * the cold tier, activations and page-table walks stay hot.
 */
enum class MemRegion : std::uint8_t { Activation = 0, Weight = 1 };

/** Human-readable name of a MemRegion. */
inline const char *
toString(MemRegion region)
{
    return region == MemRegion::Activation ? "activation" : "weight";
}

/** One off-chip memory request as emitted by the SW request generator. */
struct MemRequest
{
    Addr vaddr = kAddrInvalid;  //!< virtual address (SPM-side is virtual)
    std::uint32_t size = 0;     //!< bytes; the DMA splits to bus width
    MemOp op = MemOp::Read;
};

/** Round @p value up to the next multiple of @p align (power of two). */
inline constexpr Addr
alignUp(Addr value, Addr align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of @p align (power of two). */
inline constexpr Addr
alignDown(Addr value, Addr align)
{
    return value & ~(align - 1);
}

/** True iff @p value is a power of two (and nonzero). */
inline constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); @p value must be nonzero. */
inline constexpr std::uint32_t
floorLog2(std::uint64_t value)
{
    std::uint32_t result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

/** Integer ceiling division. */
inline constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace mnpu

#endif // MNPU_COMMON_TYPES_HH
