/**
 * @file
 * Per-core NPU hardware parameters (the paper's arch_config): systolic
 * array geometry, scratchpad size, data width, clock, and DMA limits.
 */

#ifndef MNPU_SW_ARCH_CONFIG_HH
#define MNPU_SW_ARCH_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/config.hh"

namespace mnpu
{

/**
 * Dataflows of the systolic array. The paper implements output
 * stationary and lists weight stationary as future work; this library
 * provides both (see gemm_mapping.hh for the cycle models).
 */
enum class Dataflow { OutputStationary, WeightStationary };

const char *toString(Dataflow dataflow);

struct ArchConfig
{
    std::string name = "tpu";
    std::uint32_t arrayRows = 128;    //!< systolic array height (M dim)
    std::uint32_t arrayCols = 128;    //!< systolic array width (N dim)
    std::uint64_t spmBytes = 36ULL << 20; //!< on-chip scratchpad
    std::uint32_t dataBytes = 1;      //!< element size (int8 default)
    std::uint64_t freqMhz = 1000;     //!< NPU core clock
    Dataflow dataflow = Dataflow::OutputStationary;

    // DMA engine limits (per core, local-clock cycles).
    std::uint32_t dmaIssueWidth = 16;     //!< translations issued/cycle
    std::uint32_t dmaMaxOutstanding = 4096; //!< in-flight transactions
    std::uint32_t busBytes = 64;          //!< transaction granularity

    /** Half of the SPM: the double-buffering working-set budget. */
    std::uint64_t halfSpmBytes() const { return spmBytes / 2; }

    void validate() const;

    /** The paper's Table 2 cloud-scale NPU (TPUv4-like). */
    static ArchConfig cloudNpu();

    /**
     * Laptop-scale profile used by the bench harness: same array but a
     * 4 MB SPM so tiles (and simulations) shrink proportionally while
     * pages-per-tile stays far above the walker count.
     */
    static ArchConfig miniNpu();

    /** Build from ini-style keys under @p prefix (e.g. "arch."). */
    static ArchConfig fromConfig(const ConfigFile &config,
                                 const std::string &prefix = "arch.");
};

} // namespace mnpu

#endif // MNPU_SW_ARCH_CONFIG_HH
