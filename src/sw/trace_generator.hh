/**
 * @file
 * The SW request generator (Figure 3 of the paper): lowers a Network on
 * an ArchConfig into per-tile traces — compute cycles plus the exact
 * virtual-address ranges the DMA must read before and write after each
 * tile. The HW simulator consumes these traces.
 *
 * Tensor placement: every layer's operands (im2col'd activations,
 * weights, outputs, embedding tables) get fresh page-aligned regions in
 * the core's virtual address space, matching the paper's "early im2col
 * computation on CPU" convention.
 */

#ifndef MNPU_SW_TRACE_GENERATOR_HH
#define MNPU_SW_TRACE_GENERATOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sw/arch_config.hh"
#include "sw/gemm_mapping.hh"
#include "sw/network.hh"

namespace mnpu
{

/** A contiguous virtual-address range accessed by a tile. */
struct AccessRange
{
    Addr vaddr = 0;
    std::uint64_t bytes = 0;
};

/** One double-buffered execution unit: loads, compute, stores. */
struct TileTrace
{
    std::uint32_t layerIndex = 0;
    Cycle computeCycles = 0; //!< NPU local-clock cycles
    std::uint64_t macs = 0;
    std::vector<AccessRange> reads;
    std::vector<AccessRange> writes;

    std::uint64_t readBytes = 0;  //!< sum of reads[].bytes
    std::uint64_t writeBytes = 0; //!< sum of writes[].bytes
};

/** Aggregates for one layer (per-layer execution cycle reporting). */
struct LayerTrace
{
    std::string name;
    std::size_t firstTile = 0;
    std::size_t tileCount = 0;
    std::uint64_t macs = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t writeBytes = 0;
    Cycle computeCycles = 0;
};

/**
 * Immutable after construction: the constructor lowers the whole
 * network and every accessor is const, so one instance can feed any
 * number of MultiCoreSystems — including concurrently from several
 * threads (the SweepRunner relies on this).
 */
class TraceGenerator
{
  public:
    TraceGenerator(const ArchConfig &arch, const Network &network);

    const std::vector<TileTrace> &tiles() const { return tiles_; }
    const std::vector<LayerTrace> &layers() const { return layers_; }
    const ArchConfig &arch() const { return arch_; }
    const std::string &networkName() const { return networkName_; }

    /** Bytes of virtual address space the workload touches. */
    std::uint64_t footprintBytes() const { return cursor_; }

    std::uint64_t totalMacs() const { return totalMacs_; }
    Cycle totalComputeCycles() const { return totalComputeCycles_; }

    /** Total DMA traffic (reads + writes) in bytes. */
    std::uint64_t totalTrafficBytes() const { return totalTraffic_; }

    /**
     * Compute-only lower bound on execution: the sum of tile compute
     * cycles (a perfectly hidden memory system).
     */
    Cycle computeLowerBoundCycles() const { return totalComputeCycles_; }

    /**
     * Placement class of @p vaddr per the tensor allocation map:
     * Weight inside a weight tensor (GEMM B operands, shared RNN
     * weights, embedding tables), Activation everywhere else. Tiered
     * memory backends route requests on this; cores stamp it per
     * transaction at issue time.
     */
    MemRegion regionOf(Addr vaddr) const;

    /** The recorded weight-tensor intervals (sorted, disjoint). */
    const std::vector<AccessRange> &weightRanges() const
    {
        return weightRanges_;
    }

  private:
    Addr allocTensor(std::uint64_t bytes);
    void recordWeightRange(Addr base, std::uint64_t bytes);
    void emitGemmLayer(std::uint32_t layer_index, const Layer &layer);
    void emitEmbeddingLayer(std::uint32_t layer_index, const Layer &layer);
    void appendRange(std::vector<AccessRange> &ranges, Addr vaddr,
                     std::uint64_t bytes) const;
    void finishTile(TileTrace &&tile);

    ArchConfig arch_;
    std::string networkName_;
    Addr cursor_ = 0;
    std::map<std::string, std::pair<Addr, std::uint64_t>> sharedWeights_;
    std::vector<AccessRange> weightRanges_; //!< sorted by vaddr
    std::vector<TileTrace> tiles_;
    std::vector<LayerTrace> layers_;
    std::uint64_t totalMacs_ = 0;
    std::uint64_t totalTraffic_ = 0;
    Cycle totalComputeCycles_ = 0;
};

} // namespace mnpu

#endif // MNPU_SW_TRACE_GENERATOR_HH
