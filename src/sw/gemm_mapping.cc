#include "sw/gemm_mapping.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/types.hh"

namespace mnpu
{

std::uint64_t
GemmTiling::tilesM(const GemmShape &shape) const
{
    return ceilDiv(shape.m, tileM);
}

std::uint64_t
GemmTiling::tilesN(const GemmShape &shape) const
{
    return ceilDiv(shape.n, tileN);
}

std::uint64_t
GemmTiling::tilesK(const GemmShape &shape) const
{
    return ceilDiv(shape.k, tileK);
}

std::uint64_t
GemmTiling::totalTiles(const GemmShape &shape) const
{
    return tilesM(shape) * tilesN(shape) * tilesK(shape);
}

std::uint64_t
GemmTiling::footprintBytes(std::uint32_t data_bytes) const
{
    return (tileM * tileK + tileK * tileN + tileM * tileN) * data_bytes;
}

GemmTiling
chooseTiling(const GemmShape &shape, const ArchConfig &arch)
{
    const std::uint64_t budget = arch.halfSpmBytes();
    const std::uint64_t bytes = arch.dataBytes;

    GemmTiling tiling;
    tiling.tileM = std::min<std::uint64_t>(shape.m, arch.arrayRows);
    tiling.tileN = std::min<std::uint64_t>(shape.n, arch.arrayCols);
    tiling.tileK = shape.k;

    auto fits = [&](const GemmTiling &t) {
        return t.footprintBytes(arch.dataBytes) <= budget;
    };

    // Shrink K until one systolic tile's streams fit.
    while (!fits(tiling) && tiling.tileK > 1) {
        std::uint64_t per_k = (tiling.tileM + tiling.tileN) * bytes;
        std::uint64_t fixed = tiling.tileM * tiling.tileN * bytes;
        std::uint64_t max_k =
            budget > fixed ? (budget - fixed) / per_k : 1;
        tiling.tileK = std::max<std::uint64_t>(
            1, std::min(tiling.tileK - 1, max_k));
    }
    if (!fits(tiling)) {
        fatal("GEMM tile of even one systolic pass (", tiling.tileM, "x",
              tiling.tileN, "x1) cannot fit half the SPM (", budget,
              " B); enlarge the SPM or shrink the array");
    }

    // Grow M and N in array-sized steps while the footprint allows;
    // prefer square-ish growth for reuse balance.
    bool grew = true;
    while (grew) {
        grew = false;
        if (tiling.tileM < shape.m) {
            GemmTiling bigger = tiling;
            bigger.tileM = std::min<std::uint64_t>(
                shape.m, tiling.tileM + arch.arrayRows);
            if (fits(bigger) && bigger.tileM != tiling.tileM) {
                tiling = bigger;
                grew = true;
            }
        }
        if (tiling.tileN < shape.n) {
            GemmTiling bigger = tiling;
            bigger.tileN = std::min<std::uint64_t>(
                shape.n, tiling.tileN + arch.arrayCols);
            if (fits(bigger) && bigger.tileN != tiling.tileN) {
                tiling = bigger;
                grew = true;
            }
        }
    }
    return tiling;
}

namespace
{

/**
 * Output stationary: each array-sized output sub-tile accumulates its
 * K products in place; cycles = tk stream + skew fill/drain.
 */
std::uint64_t
outputStationaryCycles(std::uint64_t tm, std::uint64_t tn,
                       std::uint64_t tk, const ArchConfig &arch)
{
    std::uint64_t cycles = 0;
    for (std::uint64_t r = 0; r < tm; r += arch.arrayRows) {
        std::uint64_t sub_rows = std::min<std::uint64_t>(
            arch.arrayRows, tm - r);
        for (std::uint64_t c = 0; c < tn; c += arch.arrayCols) {
            std::uint64_t sub_cols = std::min<std::uint64_t>(
                arch.arrayCols, tn - c);
            cycles += tk + sub_rows + sub_cols - 2;
        }
    }
    return cycles;
}

/**
 * Weight stationary: an arrayRows x arrayCols block of B (K rows by N
 * cols) is pinned in the PEs; all tm activation rows stream through
 * before the next weight fold loads. Per fold:
 *   cycles = sub_k (weight fill) + tm (stream) + sub_n - 1 (drain).
 */
std::uint64_t
weightStationaryCycles(std::uint64_t tm, std::uint64_t tn,
                       std::uint64_t tk, const ArchConfig &arch)
{
    std::uint64_t cycles = 0;
    for (std::uint64_t k = 0; k < tk; k += arch.arrayRows) {
        std::uint64_t sub_k = std::min<std::uint64_t>(
            arch.arrayRows, tk - k);
        for (std::uint64_t c = 0; c < tn; c += arch.arrayCols) {
            std::uint64_t sub_n = std::min<std::uint64_t>(
                arch.arrayCols, tn - c);
            cycles += sub_k + tm + sub_n - 1;
        }
    }
    return cycles;
}

} // namespace

std::uint64_t
tileComputeCycles(std::uint64_t tm, std::uint64_t tn, std::uint64_t tk,
                  const ArchConfig &arch)
{
    switch (arch.dataflow) {
      case Dataflow::OutputStationary:
        return outputStationaryCycles(tm, tn, tk, arch);
      case Dataflow::WeightStationary:
        return weightStationaryCycles(tm, tn, tk, arch);
    }
    return outputStationaryCycles(tm, tn, tk, arch);
}

} // namespace mnpu
