#include "sw/network.hh"

#include <fstream>
#include <sstream>

#include "common/config.hh"
#include "common/logging.hh"

namespace mnpu
{

const char *
toString(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv:
        return "conv";
      case LayerKind::FullyConnected:
        return "fc";
      case LayerKind::Gemm:
        return "gemm";
      case LayerKind::Embedding:
        return "embedding";
    }
    return "?";
}

std::uint32_t
Layer::outH() const
{
    return (inH + 2 * padH - kH) / strideH + 1;
}

std::uint32_t
Layer::outW() const
{
    return (inW + 2 * padW - kW) / strideW + 1;
}

void
Layer::validate() const
{
    switch (kind) {
      case LayerKind::Conv:
        if (inH == 0 || inW == 0 || inC == 0 || kH == 0 || kW == 0 ||
            outC == 0 || strideH == 0 || strideW == 0 || batch == 0) {
            fatal("conv layer '", name, "' has a zero dimension");
        }
        if (inH + 2 * padH < kH || inW + 2 * padW < kW)
            fatal("conv layer '", name, "' kernel larger than padded input");
        break;
      case LayerKind::FullyConnected:
        if (inFeatures == 0 || outFeatures == 0 || batch == 0)
            fatal("fc layer '", name, "' has a zero dimension");
        break;
      case LayerKind::Gemm:
        if (gemmM == 0 || gemmN == 0 || gemmK == 0)
            fatal("gemm layer '", name, "' has a zero dimension");
        break;
      case LayerKind::Embedding:
        if (tableRows == 0 || rowElems == 0 || numLookups == 0 ||
            batch == 0) {
            fatal("embedding layer '", name, "' has a zero dimension");
        }
        break;
    }
}

Layer
Layer::conv(std::string name, std::uint32_t in_h, std::uint32_t in_w,
            std::uint32_t in_c, std::uint32_t k, std::uint32_t out_c,
            std::uint32_t stride, std::uint32_t pad, std::uint32_t batch)
{
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::Conv;
    layer.inH = in_h;
    layer.inW = in_w;
    layer.inC = in_c;
    layer.kH = k;
    layer.kW = k;
    layer.outC = out_c;
    layer.strideH = stride;
    layer.strideW = stride;
    layer.padH = pad;
    layer.padW = pad;
    layer.batch = batch;
    layer.validate();
    return layer;
}

Layer
Layer::fullyConnected(std::string name, std::uint32_t in_features,
                      std::uint32_t out_features, std::uint32_t batch)
{
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::FullyConnected;
    layer.inFeatures = in_features;
    layer.outFeatures = out_features;
    layer.batch = batch;
    layer.validate();
    return layer;
}

Layer
Layer::gemm(std::string name, std::uint64_t m, std::uint64_t n,
            std::uint64_t k)
{
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::Gemm;
    layer.gemmM = m;
    layer.gemmN = n;
    layer.gemmK = k;
    layer.validate();
    return layer;
}

Layer
Layer::embedding(std::string name, std::uint64_t table_rows,
                 std::uint32_t row_elems, std::uint32_t num_lookups,
                 std::uint32_t batch)
{
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::Embedding;
    layer.tableRows = table_rows;
    layer.rowElems = row_elems;
    layer.numLookups = num_lookups;
    layer.batch = batch;
    layer.validate();
    return layer;
}

void
Network::validate() const
{
    if (layers.empty())
        fatal("network '", name, "' has no layers");
    for (const auto &layer : layers)
        layer.validate();
}

std::uint64_t
Network::totalMacs() const
{
    std::uint64_t total = 0;
    for (const auto &layer : layers) {
        if (layer.kind == LayerKind::Embedding) {
            // Gathers perform no MACs; count element moves as 1 op each.
            total += static_cast<std::uint64_t>(layer.numLookups) *
                     layer.rowElems * layer.batch;
        } else {
            total += toGemm(layer).macs();
        }
    }
    return total;
}

GemmShape
toGemm(const Layer &layer)
{
    GemmShape shape;
    switch (layer.kind) {
      case LayerKind::Conv:
        shape.m = static_cast<std::uint64_t>(layer.outH()) * layer.outW() *
                  layer.batch;
        shape.n = layer.outC;
        shape.k = static_cast<std::uint64_t>(layer.kH) * layer.kW *
                  layer.inC;
        break;
      case LayerKind::FullyConnected:
        shape.m = layer.batch;
        shape.n = layer.outFeatures;
        shape.k = layer.inFeatures;
        break;
      case LayerKind::Gemm:
        shape.m = layer.gemmM;
        shape.n = layer.gemmN;
        shape.k = layer.gemmK;
        break;
      case LayerKind::Embedding:
        fatal("embedding layer '", layer.name, "' has no GEMM form");
    }
    return shape;
}

namespace
{

std::uint64_t
cellUint(const std::vector<std::string> &row, std::size_t index,
         const std::string &context)
{
    if (index >= row.size())
        fatal("CSV layer '", context, "': missing column ", index);
    try {
        return std::stoull(row[index]);
    } catch (const std::exception &) {
        fatal("CSV layer '", context, "': bad number '", row[index], "'");
    }
}

std::uint64_t
cellUintOr(const std::vector<std::string> &row, std::size_t index,
           std::uint64_t fallback, const std::string &context)
{
    if (index >= row.size() || row[index].empty())
        return fallback;
    return cellUint(row, index, context);
}

} // namespace

Network
Network::fromCsvString(const std::string &text,
                       const std::string &network_name)
{
    Network network;
    network.name = network_name;
    for (const auto &row : CsvReader::fromString(text)) {
        if (row.size() < 2)
            fatal("CSV network '", network_name, "': row too short");
        const std::string &layer_name = row[0];
        if (iequals(layer_name, "name")) // header row
            continue;
        const std::string &kind = row[1];
        if (iequals(kind, "conv")) {
            auto layer = Layer::conv(
                layer_name,
                static_cast<std::uint32_t>(cellUint(row, 2, layer_name)),
                static_cast<std::uint32_t>(cellUint(row, 3, layer_name)),
                static_cast<std::uint32_t>(cellUint(row, 4, layer_name)),
                static_cast<std::uint32_t>(cellUint(row, 5, layer_name)),
                static_cast<std::uint32_t>(cellUint(row, 6, layer_name)),
                static_cast<std::uint32_t>(
                    cellUintOr(row, 7, 1, layer_name)),
                static_cast<std::uint32_t>(
                    cellUintOr(row, 8, 0, layer_name)),
                static_cast<std::uint32_t>(
                    cellUintOr(row, 9, 1, layer_name)));
            network.layers.push_back(layer);
        } else if (iequals(kind, "fc")) {
            network.layers.push_back(Layer::fullyConnected(
                layer_name,
                static_cast<std::uint32_t>(cellUint(row, 2, layer_name)),
                static_cast<std::uint32_t>(cellUint(row, 3, layer_name)),
                static_cast<std::uint32_t>(
                    cellUintOr(row, 4, 1, layer_name))));
        } else if (iequals(kind, "gemm")) {
            network.layers.push_back(
                Layer::gemm(layer_name, cellUint(row, 2, layer_name),
                            cellUint(row, 3, layer_name),
                            cellUint(row, 4, layer_name)));
        } else if (iequals(kind, "embedding")) {
            network.layers.push_back(Layer::embedding(
                layer_name, cellUint(row, 2, layer_name),
                static_cast<std::uint32_t>(cellUint(row, 3, layer_name)),
                static_cast<std::uint32_t>(cellUint(row, 4, layer_name)),
                static_cast<std::uint32_t>(
                    cellUintOr(row, 5, 1, layer_name))));
        } else {
            fatal("CSV network '", network_name, "': unknown layer kind '",
                  kind, "'");
        }
    }
    network.validate();
    return network;
}

Network
Network::fromCsvFile(const std::string &path)
{
    std::string network_name = path;
    auto slash = network_name.find_last_of('/');
    if (slash != std::string::npos)
        network_name = network_name.substr(slash + 1);
    auto dot = network_name.find_last_of('.');
    if (dot != std::string::npos)
        network_name = network_name.substr(0, dot);

    std::ostringstream unused;
    Network network;
    // Reuse the string path for parsing; CsvReader handles file errors.
    std::string text;
    {
        std::ifstream file(path);
        if (!file)
            fatal("cannot open network CSV '", path, "'");
        std::ostringstream buffer;
        buffer << file.rdbuf();
        text = buffer.str();
    }
    return fromCsvString(text, network_name);
}

} // namespace mnpu
