#include "sw/arch_config.hh"

#include "common/logging.hh"
#include "common/types.hh"

namespace mnpu
{

void
ArchConfig::validate() const
{
    if (arrayRows == 0 || arrayCols == 0)
        fatal("systolic array dimensions must be nonzero");
    if (spmBytes < 2 * busBytes)
        fatal("SPM too small for double buffering");
    if (dataBytes == 0 || dataBytes > 8)
        fatal("data element size must be 1..8 bytes");
    if (freqMhz == 0)
        fatal("NPU frequency must be nonzero");
    if (dmaIssueWidth == 0 || dmaMaxOutstanding == 0)
        fatal("DMA limits must be nonzero");
    if (!isPowerOfTwo(busBytes))
        fatal("DMA bus width must be a power of two");
}

ArchConfig
ArchConfig::cloudNpu()
{
    ArchConfig arch;
    arch.name = "tpu";
    arch.arrayRows = 128;
    arch.arrayCols = 128;
    arch.spmBytes = 36ULL << 20;
    arch.dataBytes = 1;
    arch.freqMhz = 1000;
    arch.validate();
    return arch;
}

ArchConfig
ArchConfig::miniNpu()
{
    ArchConfig arch;
    arch.name = "tpu_mini";
    arch.arrayRows = 128;
    arch.arrayCols = 128;
    arch.spmBytes = 8ULL << 20;
    arch.dataBytes = 1;
    arch.freqMhz = 1000;
    arch.validate();
    return arch;
}

ArchConfig
ArchConfig::fromConfig(const ConfigFile &config, const std::string &prefix)
{
    ArchConfig arch;
    arch.name = config.getString(prefix + "name", arch.name);
    arch.arrayRows = static_cast<std::uint32_t>(
        config.getUint(prefix + "array_rows", arch.arrayRows));
    arch.arrayCols = static_cast<std::uint32_t>(
        config.getUint(prefix + "array_cols", arch.arrayCols));
    if (config.has(prefix + "spm_size")) {
        arch.spmBytes =
            ConfigFile::parseSize(config.requireString(prefix + "spm_size"));
    }
    arch.dataBytes = static_cast<std::uint32_t>(
        config.getUint(prefix + "data_bytes", arch.dataBytes));
    arch.freqMhz = config.getUint(prefix + "freq_mhz", arch.freqMhz);
    arch.dmaIssueWidth = static_cast<std::uint32_t>(
        config.getUint(prefix + "dma_issue_width", arch.dmaIssueWidth));
    arch.dmaMaxOutstanding = static_cast<std::uint32_t>(config.getUint(
        prefix + "dma_max_outstanding", arch.dmaMaxOutstanding));
    arch.busBytes = static_cast<std::uint32_t>(
        config.getUint(prefix + "bus_bytes", arch.busBytes));
    std::string dataflow =
        config.getString(prefix + "dataflow", "output_stationary");
    if (iequals(dataflow, "output_stationary") || iequals(dataflow, "os")) {
        arch.dataflow = Dataflow::OutputStationary;
    } else if (iequals(dataflow, "weight_stationary") ||
               iequals(dataflow, "ws")) {
        arch.dataflow = Dataflow::WeightStationary;
    } else {
        fatal("unsupported dataflow '", dataflow,
              "' (expected output_stationary or weight_stationary)");
    }
    arch.validate();
    return arch;
}

const char *
toString(Dataflow dataflow)
{
    switch (dataflow) {
      case Dataflow::OutputStationary:
        return "output_stationary";
      case Dataflow::WeightStationary:
        return "weight_stationary";
    }
    return "?";
}

} // namespace mnpu
