#include "sw/trace_generator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mnpu
{

namespace
{

/** Tensor regions are page-aligned at the smallest supported page. */
constexpr Addr kTensorAlign = 4096;

/** Deterministic hash for embedding row selection. */
std::uint64_t
mixHash(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

TraceGenerator::TraceGenerator(const ArchConfig &arch, const Network &network)
    : arch_(arch), networkName_(network.name)
{
    arch.validate();
    network.validate();
    layers_.reserve(network.layers.size());
    for (std::uint32_t i = 0; i < network.layers.size(); ++i) {
        const Layer &layer = network.layers[i];
        LayerTrace layer_trace;
        layer_trace.name = layer.name;
        layer_trace.firstTile = tiles_.size();
        layers_.push_back(layer_trace);
        if (layer.kind == LayerKind::Embedding)
            emitEmbeddingLayer(i, layer);
        else
            emitGemmLayer(i, layer);
        layers_.back().tileCount = tiles_.size() - layers_.back().firstTile;
    }
    if (tiles_.empty())
        fatal("network '", network.name, "' produced no tiles");
}

Addr
TraceGenerator::allocTensor(std::uint64_t bytes)
{
    Addr base = cursor_;
    cursor_ = alignUp(cursor_ + bytes, kTensorAlign);
    return base;
}

void
TraceGenerator::recordWeightRange(Addr base, std::uint64_t bytes)
{
    // Allocation order is address order (cursor_ is monotonic), so the
    // list stays sorted and disjoint; regionOf binary-searches it.
    weightRanges_.push_back(AccessRange{base, bytes});
}

MemRegion
TraceGenerator::regionOf(Addr vaddr) const
{
    auto it = std::upper_bound(weightRanges_.begin(), weightRanges_.end(),
                               vaddr,
                               [](Addr addr, const AccessRange &range) {
                                   return addr < range.vaddr;
                               });
    if (it == weightRanges_.begin())
        return MemRegion::Activation;
    --it;
    return vaddr < it->vaddr + it->bytes ? MemRegion::Weight
                                         : MemRegion::Activation;
}

void
TraceGenerator::appendRange(std::vector<AccessRange> &ranges, Addr vaddr,
                            std::uint64_t bytes) const
{
    if (bytes == 0)
        return;
    if (!ranges.empty()) {
        AccessRange &last = ranges.back();
        if (last.vaddr + last.bytes == vaddr) {
            last.bytes += bytes;
            return;
        }
    }
    ranges.push_back(AccessRange{vaddr, bytes});
}

void
TraceGenerator::finishTile(TileTrace &&tile)
{
    for (const auto &range : tile.reads)
        tile.readBytes += range.bytes;
    for (const auto &range : tile.writes)
        tile.writeBytes += range.bytes;

    LayerTrace &layer = layers_.back();
    layer.macs += tile.macs;
    layer.readBytes += tile.readBytes;
    layer.writeBytes += tile.writeBytes;
    layer.computeCycles += tile.computeCycles;

    totalMacs_ += tile.macs;
    totalTraffic_ += tile.readBytes + tile.writeBytes;
    totalComputeCycles_ += tile.computeCycles;
    tiles_.push_back(std::move(tile));
}

void
TraceGenerator::emitGemmLayer(std::uint32_t layer_index, const Layer &layer)
{
    const GemmShape shape = toGemm(layer);
    const GemmTiling tiling = chooseTiling(shape, arch_);
    const std::uint64_t bytes = arch_.dataBytes;

    // Fresh tensors per layer: A (im2col'd input), B (weights), C (out).
    // Layers sharing a weightTag reuse one B tensor (RNN cells etc.).
    const Addr a_base = allocTensor(shape.m * shape.k * bytes);
    const std::uint64_t b_bytes = shape.k * shape.n * bytes;
    Addr b_base;
    if (layer.weightTag.empty()) {
        b_base = allocTensor(b_bytes);
        recordWeightRange(b_base, b_bytes);
    } else {
        auto [it, inserted] = sharedWeights_.try_emplace(
            layer.weightTag, std::pair<Addr, std::uint64_t>{0, b_bytes});
        if (inserted) {
            it->second.first = allocTensor(b_bytes);
            recordWeightRange(it->second.first, b_bytes);
        } else if (it->second.second != b_bytes) {
            fatal("layer '", layer.name, "': weightTag '", layer.weightTag,
                  "' reused with a different weight shape");
        }
        b_base = it->second.first;
    }
    const Addr c_base = allocTensor(shape.m * shape.n * bytes);

    const std::uint64_t tiles_k = tiling.tilesK(shape);
    for (std::uint64_t mt = 0; mt < tiling.tilesM(shape); ++mt) {
        const std::uint64_t m0 = mt * tiling.tileM;
        const std::uint64_t mw =
            std::min(tiling.tileM, shape.m - m0);
        for (std::uint64_t nt = 0; nt < tiling.tilesN(shape); ++nt) {
            const std::uint64_t n0 = nt * tiling.tileN;
            const std::uint64_t nw =
                std::min(tiling.tileN, shape.n - n0);
            for (std::uint64_t kt = 0; kt < tiles_k; ++kt) {
                const std::uint64_t k0 = kt * tiling.tileK;
                const std::uint64_t kw =
                    std::min(tiling.tileK, shape.k - k0);

                TileTrace tile;
                tile.layerIndex = layer_index;
                tile.computeCycles =
                    tileComputeCycles(mw, nw, kw, arch_);
                tile.macs = tileMacs(mw, nw, kw);

                // A block: rows [m0, m0+mw), cols [k0, k0+kw).
                for (std::uint64_t r = 0; r < mw; ++r) {
                    appendRange(tile.reads,
                                a_base + ((m0 + r) * shape.k + k0) * bytes,
                                kw * bytes);
                }
                // B block: rows [k0, k0+kw), cols [n0, n0+nw).
                for (std::uint64_t r = 0; r < kw; ++r) {
                    appendRange(tile.reads,
                                b_base + ((k0 + r) * shape.n + n0) * bytes,
                                nw * bytes);
                }
                // C block written back on the last K step only.
                if (kt + 1 == tiles_k) {
                    for (std::uint64_t r = 0; r < mw; ++r) {
                        appendRange(
                            tile.writes,
                            c_base + ((m0 + r) * shape.n + n0) * bytes,
                            nw * bytes);
                    }
                }
                finishTile(std::move(tile));
            }
        }
    }
}

void
TraceGenerator::emitEmbeddingLayer(std::uint32_t layer_index,
                                   const Layer &layer)
{
    const std::uint64_t bytes = arch_.dataBytes;
    const std::uint64_t row_bytes =
        static_cast<std::uint64_t>(layer.rowElems) * bytes;
    const Addr table_base = allocTensor(layer.tableRows * row_bytes);
    recordWeightRange(table_base, layer.tableRows * row_bytes);
    const std::uint64_t lookups =
        static_cast<std::uint64_t>(layer.numLookups) * layer.batch;
    const Addr out_base = allocTensor(lookups * row_bytes);

    // Group gathers so the in+out working set fits half the SPM.
    std::uint64_t per_lookup = 2 * row_bytes;
    std::uint64_t group = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(arch_.halfSpmBytes() / per_lookup,
                                   4096));
    for (std::uint64_t base = 0; base < lookups; base += group) {
        std::uint64_t count = std::min(group, lookups - base);
        TileTrace tile;
        tile.layerIndex = layer_index;
        // Gathers run at vector rate: one row element per lane per cycle.
        tile.computeCycles = ceilDiv(count * layer.rowElems,
                                     arch_.arrayCols);
        tile.macs = count * layer.rowElems; // element moves, not MACs
        for (std::uint64_t i = 0; i < count; ++i) {
            std::uint64_t row = mixHash(layer_index * 1000003ULL + base,
                                        i) %
                                layer.tableRows;
            appendRange(tile.reads, table_base + row * row_bytes,
                        row_bytes);
        }
        appendRange(tile.writes, out_base + base * row_bytes,
                    count * row_bytes);
        finishTile(std::move(tile));
    }
}

} // namespace mnpu
