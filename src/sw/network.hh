/**
 * @file
 * DNN topology intermediate representation (the paper's network_config).
 *
 * A Network is an ordered list of layers. Convolution and fully-connected
 * layers lower to GEMM via im2col (§3.1 of the paper, "early im2col on
 * CPU"); embedding layers model the gather-dominated access pattern of
 * recommendation models (DLRM/NCF). Topologies can be built in code or
 * parsed from SCALE-Sim-style CSV.
 */

#ifndef MNPU_SW_NETWORK_HH
#define MNPU_SW_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mnpu
{

enum class LayerKind { Conv, FullyConnected, Gemm, Embedding };

const char *toString(LayerKind kind);

/**
 * One layer. Only the fields of the active kind are meaningful; the
 * factory functions below keep construction mistake-proof.
 */
struct Layer
{
    std::string name;
    LayerKind kind = LayerKind::Gemm;

    // Conv fields.
    std::uint32_t inH = 0, inW = 0, inC = 0;
    std::uint32_t kH = 0, kW = 0;
    std::uint32_t outC = 0;
    std::uint32_t strideH = 1, strideW = 1;
    std::uint32_t padH = 0, padW = 0;

    // FullyConnected fields.
    std::uint32_t inFeatures = 0, outFeatures = 0;

    // Gemm fields.
    std::uint64_t gemmM = 0, gemmN = 0, gemmK = 0;

    // Embedding fields.
    std::uint64_t tableRows = 0;   //!< rows in the embedding table
    std::uint32_t rowElems = 0;    //!< elements per row
    std::uint32_t numLookups = 0;  //!< gathers per inference

    std::uint32_t batch = 1;

    /**
     * Layers with the same non-empty tag share one weight tensor (e.g.
     * an RNN cell applied every timestep); their K x N shapes must match.
     */
    std::string weightTag;

    std::uint32_t outH() const;
    std::uint32_t outW() const;

    /** Validate dimensional sanity; fatal() with the layer name. */
    void validate() const;

    static Layer conv(std::string name, std::uint32_t in_h,
                      std::uint32_t in_w, std::uint32_t in_c,
                      std::uint32_t k, std::uint32_t out_c,
                      std::uint32_t stride = 1, std::uint32_t pad = 0,
                      std::uint32_t batch = 1);
    static Layer fullyConnected(std::string name, std::uint32_t in_features,
                                std::uint32_t out_features,
                                std::uint32_t batch = 1);
    static Layer gemm(std::string name, std::uint64_t m, std::uint64_t n,
                      std::uint64_t k);
    static Layer embedding(std::string name, std::uint64_t table_rows,
                           std::uint32_t row_elems,
                           std::uint32_t num_lookups,
                           std::uint32_t batch = 1);
};

/** An ordered DNN topology. */
struct Network
{
    std::string name;
    std::vector<Layer> layers;

    /** Validate every layer. */
    void validate() const;

    /** Total multiply-accumulates over all layers. */
    std::uint64_t totalMacs() const;

    /**
     * Parse a CSV topology. Row formats (header row optional):
     *   name, conv, inH, inW, inC, k, outC, stride, pad[, batch]
     *   name, fc, inFeatures, outFeatures[, batch]
     *   name, gemm, M, N, K
     *   name, embedding, tableRows, rowElems, numLookups[, batch]
     */
    static Network fromCsvString(const std::string &text,
                                 const std::string &network_name);
    static Network fromCsvFile(const std::string &path);
};

/** GEMM dimensions after im2col lowering. */
struct GemmShape
{
    std::uint64_t m = 0;
    std::uint64_t n = 0;
    std::uint64_t k = 0;

    std::uint64_t macs() const { return m * n * k; }
};

/**
 * Lower a Conv/FC/Gemm layer to GEMM dimensions (im2col for conv:
 * M = outH*outW*batch, K = kH*kW*inC, N = outC). fatal() for Embedding.
 */
GemmShape toGemm(const Layer &layer);

} // namespace mnpu

#endif // MNPU_SW_NETWORK_HH
