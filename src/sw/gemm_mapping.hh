/**
 * @file
 * GEMM tiling for the double-buffered scratchpad and the SCALE-Sim-style
 * output-stationary cycle model.
 *
 * A GEMM (M x K) * (K x N) is blocked into (Tm, Tn, Tk) tiles whose
 * streaming working set — A block + B block + C block — fits in half of
 * the SPM (the other half prefetches the next tile, §2.3 of the paper).
 * The K loop runs innermost so partial sums stay resident; C is written
 * back on the last K step only.
 */

#ifndef MNPU_SW_GEMM_MAPPING_HH
#define MNPU_SW_GEMM_MAPPING_HH

#include <cstdint>

#include "sw/arch_config.hh"
#include "sw/network.hh"

namespace mnpu
{

/** Chosen blocking factors for one GEMM. */
struct GemmTiling
{
    std::uint64_t tileM = 0;
    std::uint64_t tileN = 0;
    std::uint64_t tileK = 0;

    std::uint64_t tilesM(const GemmShape &shape) const;
    std::uint64_t tilesN(const GemmShape &shape) const;
    std::uint64_t tilesK(const GemmShape &shape) const;

    /** Total tiles in the loop nest. */
    std::uint64_t totalTiles(const GemmShape &shape) const;

    /** Streaming footprint of a full tile in bytes. */
    std::uint64_t footprintBytes(std::uint32_t data_bytes) const;
};

/**
 * Choose blocking factors for @p shape on @p arch.
 *
 * Policy: start from one systolic tile (arrayRows x arrayCols) with the
 * whole K; shrink K until the footprint fits half the SPM; then grow Tm
 * and Tn in array-sized steps while it still fits. Guarantees the result
 * fits halfSpmBytes() (or is the minimal legal tile if even that does
 * not fit, which validate()d configs prevent).
 */
GemmTiling chooseTiling(const GemmShape &shape, const ArchConfig &arch);

/**
 * Compute cycles for one (tm x tn x tk) tile under the arch's dataflow.
 *
 * Output stationary: array-sized output sub-tiles, each streaming tk
 * MACs per PE plus skew fill/drain: cycles(sub) = tk + rows + cols - 2.
 *
 * Weight stationary: array-sized K x N weight folds pinned in the PEs;
 * all tm activation rows stream per fold:
 * cycles(fold) = subK + tm + subN - 1.
 */
std::uint64_t tileComputeCycles(std::uint64_t tm, std::uint64_t tn,
                                std::uint64_t tk, const ArchConfig &arch);

/** Exact MAC count of a (tm x tn x tk) tile. */
inline std::uint64_t
tileMacs(std::uint64_t tm, std::uint64_t tn, std::uint64_t tk)
{
    return tm * tn * tk;
}

} // namespace mnpu

#endif // MNPU_SW_GEMM_MAPPING_HH
