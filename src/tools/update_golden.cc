/**
 * @file
 * Golden-trace fixture maintenance tool.
 *
 * Default mode is a dry run: simulate every golden case (cycle
 * scheduler, MNPU_CHECK-independent) and report, per fixture, whether
 * tests/golden/<name>.json matches the current behavior — without
 * writing anything. Pass --update-golden to rewrite the fixtures that
 * differ (or don't exist yet); the resulting JSON diff is reviewed and
 * committed like any other source change.
 *
 * With --envelope the tool instead maintains the fast-fidelity error
 * envelope (tests/golden/fidelity_envelope.json): every golden case is
 * run in both fidelities under the cycle scheduler and the measured
 * relative cycle deviation plus its committed bound are written as one
 * JSON line per case. Same dry-run/--update-golden semantics.
 *
 * Usage: update_golden [--update-golden] [--envelope] [--dir PATH]
 *                      [--case NAME]
 *   --dir PATH   fixture directory (default: tests/golden next to the
 *                source tree, baked in at configure time)
 *   --case NAME  restrict to one golden case (fixture mode only)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/golden.hh"
#include "common/logging.hh"

#ifndef MNPU_GOLDEN_DIR
#define MNPU_GOLDEN_DIR "tests/golden"
#endif

namespace
{

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::string{};
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mnpu;

    bool update = false;
    bool envelope = false;
    std::string dir = MNPU_GOLDEN_DIR;
    std::string only;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--update-golden") {
            update = true;
        } else if (arg == "--envelope") {
            envelope = true;
        } else if (arg == "--dir" && i + 1 < argc) {
            dir = argv[++i];
        } else if (arg == "--case" && i + 1 < argc) {
            only = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--update-golden] [--envelope] "
                         "[--dir PATH] [--case NAME]\n",
                         argv[0]);
            return 2;
        }
    }

    if (envelope) {
        // One file covering every case: regenerate the whole text and
        // compare/rewrite it as a unit, so a partial update can't leave
        // rows measured against different source revisions.
        std::string fresh;
        for (const GoldenCase &golden : goldenCases()) {
            FidelityEnvelopeEntry entry;
            try {
                entry = measureFidelityEnvelope(golden);
            } catch (const std::exception &error) {
                std::fprintf(stderr, "%-32s ERROR: %s\n",
                             golden.name.c_str(), error.what());
                return 1;
            }
            std::printf("%-32s deviation %.6f bound %.6f\n",
                        golden.name.c_str(), entry.deviation,
                        entry.bound);
            fresh += fidelityEnvelopeLine(entry);
        }
        std::string path = fidelityEnvelopePath(dir);
        std::string committed = readFileOrEmpty(path);
        if (committed == fresh) {
            std::printf("%-32s up to date\n", "fidelity_envelope");
            return 0;
        }
        const char *why = committed.empty() ? "missing" : "differs";
        if (!update) {
            std::printf("%-32s STALE (%s)\n", "fidelity_envelope", why);
            std::fprintf(stderr,
                         "envelope stale; rerun with --update-golden "
                         "to rewrite\n");
            return 1;
        }
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        out << fresh;
        std::printf("%-32s rewritten (%s)\n", "fidelity_envelope", why);
        return 0;
    }

    int stale = 0;
    int checked = 0;
    // Batch and serving cases share one dry-run/update cycle; the
    // regenerated text for each comes from its own runner.
    auto refresh = [&](const std::string &name,
                       const std::string &fresh) -> int {
        std::string path = goldenFixturePath(dir, name);
        std::string committed = readFileOrEmpty(path);
        if (committed == fresh) {
            std::printf("%-32s up to date\n", name.c_str());
            return 0;
        }
        ++stale;
        const char *why = committed.empty() ? "missing" : "differs";
        if (!update) {
            std::printf("%-32s STALE (%s)\n", name.c_str(), why);
            return 0;
        }
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        out << fresh;
        std::printf("%-32s rewritten (%s)\n", name.c_str(), why);
        return 0;
    };
    for (const GoldenCase &golden : goldenCases()) {
        if (!only.empty() && golden.name != only)
            continue;
        ++checked;
        std::string fresh;
        try {
            fresh = goldenFixtureText(
                runGoldenCase(golden, SchedulerKind::Cycle));
        } catch (const std::exception &error) {
            std::fprintf(stderr, "%-32s ERROR: %s\n", golden.name.c_str(),
                         error.what());
            return 1;
        }
        if (refresh(golden.name, fresh) != 0)
            return 1;
    }
    for (const ServingGoldenCase &golden : servingGoldenCases()) {
        if (!only.empty() && golden.name != only)
            continue;
        ++checked;
        std::string fresh;
        try {
            fresh = goldenFixtureText(
                runServingGoldenCase(golden, SchedulerKind::Cycle));
        } catch (const std::exception &error) {
            std::fprintf(stderr, "%-32s ERROR: %s\n", golden.name.c_str(),
                         error.what());
            return 1;
        }
        if (refresh(golden.name, fresh) != 0)
            return 1;
    }

    if (checked == 0) {
        std::fprintf(stderr, "no golden case matches \"%s\"\n",
                     only.c_str());
        return 2;
    }
    if (stale && !update) {
        std::fprintf(stderr,
                     "%d fixture(s) stale; rerun with --update-golden "
                     "to rewrite\n",
                     stale);
        return 1;
    }
    return 0;
}
