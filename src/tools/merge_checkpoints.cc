/**
 * @file
 * merge_checkpoints: union the JSONL checkpoint shards of a
 * distributed sweep campaign into one file that --resume can restore.
 *
 * Usage: merge_checkpoints -o merged.jsonl shard0.jsonl shard1.jsonl...
 *
 * Same-key resolution is ok-wins then newest-wins (later file / later
 * line); two *ok* records for the same key with different payloads
 * (ignoring the wall clock) are a conflict — a determinism bug or a
 * mis-partitioned campaign — reported per key on stderr and in the
 * exit code, though the merge still completes with the newest record
 * so a campaign can be salvaged deliberately.
 *
 * Exit codes: 0 clean merge, 1 I/O or usage-level fatal, 2 usage,
 * 4 merge completed but with conflicts.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/sweep_checkpoint.hh"
#include "common/logging.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [-o OUT.jsonl] SHARD.jsonl [SHARD.jsonl ...]\n"
        "  Unions sweep checkpoint shards (ok-wins, then newest-wins)\n"
        "  into OUT.jsonl (default: merged.jsonl), preserving the\n"
        "  first-seen key order. The output is a valid checkpoint:\n"
        "  pointing a full un-sharded campaign at it with --resume\n"
        "  restores every ok record bit-identically and re-executes\n"
        "  only what no shard completed.\n"
        "exit codes: 0 clean merge, 1 error, 2 usage,\n"
        "            4 merged despite same-key ok-record conflicts\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "merged.jsonl";
    std::vector<std::string> shards;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o" || arg == "--out") {
            if (i + 1 >= argc)
                return usage(argv[0]);
            out_path = argv[++i];
        } else if (arg == "-h" || arg == "--help") {
            return usage(argv[0]);
        } else {
            shards.push_back(arg);
        }
    }
    if (shards.empty())
        return usage(argv[0]);

    try {
        mnpu::CheckpointMergeStats stats;
        const auto merged = mnpu::mergeSweepCheckpoints(shards, &stats);
        {
            // The writer takes the checkpoint lock, fixes a torn
            // tail, and appends — but a merge target must start
            // empty, so truncate first (refusing to would make
            // re-running the merge after adding a shard needlessly
            // awkward).
            std::FILE *reset = std::fopen(out_path.c_str(), "wb");
            if (!reset)
                mnpu::fatal("cannot create '", out_path, "'");
            std::fclose(reset);
            mnpu::SweepCheckpointWriter writer(out_path);
            for (const auto &record : merged)
                writer.append(record);
        }
        std::printf(
            "merged %zu shard(s): %zu record(s) -> %s "
            "(%zu duplicate(s) superseded, %zu malformed line(s) "
            "skipped, %zu conflict(s))\n",
            stats.files, stats.records, out_path.c_str(),
            stats.duplicates, stats.malformed, stats.conflicts);
        if (stats.conflicts) {
            std::fprintf(stderr,
                         "warning: %zu same-key ok-record conflict(s) "
                         "— see warnings above; the newest record won\n",
                         stats.conflicts);
            return 4;
        }
        return 0;
    } catch (const mnpu::FatalError &error) {
        std::fprintf(stderr, "fatal: %s\n", error.what());
        return 1;
    }
}
