/**
 * @file
 * The mnpusim executable: six positional parameters as documented in
 * the paper's artifact appendix (§7.3).
 */

#include "sim/cli.hh"

int
main(int argc, char **argv)
{
    return mnpu::mnpusimMain(argc, argv);
}
