/**
 * @file
 * The mnpusim executable: six positional parameters as documented in
 * the paper's artifact appendix (§7.3), or the flag-driven request-
 * level serving mode when the first argument is --serve.
 */

#include <cstring>

#include "serving/serving_cli.hh"
#include "sim/cli.hh"

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--serve") == 0)
        return mnpu::servingMain(argc, argv);
    return mnpu::mnpusimMain(argc, argv);
}
