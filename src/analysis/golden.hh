/**
 * @file
 * Golden-trace fixtures: a small committed set of seed mixes whose
 * full telemetry snapshot (checkpoint v2 fields — per-core cycles,
 * traffic, TLB/walk counters, layer finishes, system cycles, DRAM
 * energy and row stats) is serialized to one JSON line per case and
 * compared bit-exactly against tests/golden/<name>.json.
 *
 * The fixtures pin simulated *behavior*, not wall clock: any change to
 * core, MMU, DRAM, or scheduler code that shifts a single counter in
 * any case fails test_golden_trace loudly, instead of drifting the
 * paper's figures silently. Intentional behavior changes regenerate
 * the fixtures with the update_golden tool (--update-golden) and the
 * diff is reviewed like any other source change.
 *
 * The case list spans both DRAM protocols (HBM2, DDR4), dual and quad
 * co-runs, every sharing level the sweeps exercise, an explicit
 * bandwidth-partition case (token buckets), and all eight built-in
 * models — small enough to run in seconds at Mini scale, wide enough
 * that a regression in any subsystem moves at least one fixture.
 */

#ifndef MNPU_ANALYSIS_GOLDEN_HH
#define MNPU_ANALYSIS_GOLDEN_HH

#include <optional>
#include <string>
#include <vector>

#include "analysis/sweep_checkpoint.hh"
#include "common/scheduler.hh"
#include "sim/system_config.hh"

namespace mnpu
{

/** One committed golden case: a mix and the config it runs under. */
struct GoldenCase
{
    std::string name;     //!< fixture file stem (tests/golden/<name>.json)
    std::string protocol; //!< DramTiming preset: "hbm2" | "ddr4"
    SharingLevel level = SharingLevel::ShareDWT;
    std::vector<std::string> models; //!< built-in model names (2 or 4)
    /** Optional Fig. 9-style static bandwidth split (token buckets). */
    std::optional<std::vector<std::uint32_t>> dramBandwidthShares;
};

/** The committed fixture set (stable order, stable names). */
const std::vector<GoldenCase> &goldenCases();

/**
 * One committed serving golden case (DESIGN.md §13): a fixed-seed
 * open-loop scenario on a GPT-2 serving system. Kept in a separate
 * list from goldenCases() so the batch-only harnesses (scheduler
 * differential, fidelity envelope) never iterate serving scenarios,
 * and the eight batch fixtures stay byte-identical.
 */
struct ServingGoldenCase
{
    std::string name;     //!< fixture file stem (tests/golden/<name>.json)
    std::string protocol; //!< DramTiming preset: "hbm2" | "ddr4"
    SharingLevel level = SharingLevel::ShareDWT;
    std::uint32_t cores = 2;
    ServingConfig serving;
};

/** The committed serving fixture set (stable order, stable names). */
const std::vector<ServingGoldenCase> &servingGoldenCases();

/** Look up a case by name; throws FatalError when unknown. */
const GoldenCase &goldenCase(const std::string &name);

/**
 * Run one case under @p sched at Mini scale and flatten the outcome
 * into its checkpoint-v2 record, keyed by the case name, with
 * wallSeconds pinned to zero so the serialized line is deterministic.
 * @p obs optionally enables observability outputs for the run — the
 * record must be byte-identical either way (observers are passive;
 * tests/test_observability.cc holds this as an invariant).
 * @p fidelity defaults to Exact and is pinned in the config (not left
 * to the MNPU_FIDELITY process default), so fixture comparisons stay
 * bit-exact regardless of the environment; pass Fast explicitly to
 * measure the analytic model against the committed error envelope.
 */
SweepCheckpointRecord runGoldenCase(const GoldenCase &golden,
                                    SchedulerKind sched,
                                    const ObservabilityConfig &obs = {},
                                    FidelityKind fidelity =
                                        FidelityKind::Exact);

/**
 * Run one serving case under @p sched at Mini scale and flatten it
 * into its checkpoint record (including the flat serving_* fields),
 * keyed by the case name with wallSeconds pinned to zero. Fidelity is
 * always Exact: serving scenarios are pinned bit-exactly and stay out
 * of the fast-fidelity envelope.
 */
SweepCheckpointRecord runServingGoldenCase(const ServingGoldenCase &golden,
                                           SchedulerKind sched);

/** Serialized fixture content: the record's JSON line + newline. */
std::string goldenFixtureText(const SweepCheckpointRecord &record);

/** tests/golden/<name>.json under @p dir. */
std::string goldenFixturePath(const std::string &dir,
                              const std::string &name);

/**
 * Field-by-field comparison of two records; returns an empty string
 * when identical, else a human-readable description of the first
 * difference (for test failure messages — a raw JSON diff of 300
 * numbers is unreadable).
 */
std::string describeGoldenDiff(const SweepCheckpointRecord &expected,
                               const SweepCheckpointRecord &actual);

/**
 * One row of the committed fast-fidelity error envelope
 * (tests/golden/fidelity_envelope.json, one JSON line per golden
 * case). `deviation` is the measured relative cycle-count error of
 * the analytic model against the exact run — the max over global
 * cycles and every core's local cycles — and `bound` is the committed
 * tolerance test_fidelity_envelope enforces: deviation * 1.25 + 0.01,
 * floored at 0.05, so the ratchet has slack for small drift but a
 * fast-model regression that doubles the error still fails.
 */
struct FidelityEnvelopeEntry
{
    std::string name;
    std::uint64_t exactCycles = 0; //!< exact-run global cycles
    std::uint64_t fastCycles = 0;  //!< fast-run global cycles
    double deviation = 0;
    double bound = 0;
};

/**
 * Run @p golden under the cycle scheduler in both fidelities and
 * measure the analytic model's relative cycle error. Deterministic:
 * the same sources always produce the same entry.
 */
FidelityEnvelopeEntry measureFidelityEnvelope(const GoldenCase &golden);

/**
 * Serialize one envelope row as a JSON line (fixed 6-decimal doubles,
 * so regeneration is byte-stable across platforms).
 */
std::string fidelityEnvelopeLine(const FidelityEnvelopeEntry &entry);

/** tests/golden/fidelity_envelope.json under @p dir. */
std::string fidelityEnvelopePath(const std::string &dir);

/** Parse one line written by fidelityEnvelopeLine; false on mismatch. */
bool parseFidelityEnvelopeLine(const std::string &line,
                               FidelityEnvelopeEntry &out);

} // namespace mnpu

#endif // MNPU_ANALYSIS_GOLDEN_HH
