/**
 * @file
 * Workload-mix enumeration (§4.1.1): all multisets of size k drawn from
 * n models — M(8,2) = 36 dual-core mixes, M(8,4) = 330 quad-core mixes,
 * M(8,8) = 6435 mapping-study sets — plus the pairings of an 8-workload
 * set onto four dual-core NPUs (§4.6).
 */

#ifndef MNPU_ANALYSIS_MIXES_HH
#define MNPU_ANALYSIS_MIXES_HH

#include <array>
#include <cstdint>
#include <vector>

namespace mnpu
{

/**
 * All non-decreasing index tuples of length @p k over [0, n): the
 * repeated combinations C(n+k-1, k).
 */
std::vector<std::vector<std::uint32_t>>
enumerateMultisets(std::uint32_t n, std::uint32_t k);

/** C(n+k-1, k), the count enumerateMultisets() returns. */
std::uint64_t multisetCount(std::uint32_t n, std::uint32_t k);

/** One way to split 8 workload slots into 4 unordered pairs. */
using Pairing = std::array<std::array<std::uint32_t, 2>, 4>;

/**
 * All 105 perfect matchings of the 8 slots {0..7}. Duplicate-looking
 * pairings (when the multiset has repeated workloads) are kept: they are
 * distinct slot assignments with identical cost, which leaves the
 * distribution over mappings unbiased.
 */
const std::vector<Pairing> &allPairingsOf8();

} // namespace mnpu

#endif // MNPU_ANALYSIS_MIXES_HH
