#include "analysis/mixes.hh"

#include "common/logging.hh"

namespace mnpu
{

namespace
{

void
multisetRecurse(std::uint32_t n, std::uint32_t k, std::uint32_t start,
                std::vector<std::uint32_t> &current,
                std::vector<std::vector<std::uint32_t>> &out)
{
    if (current.size() == k) {
        out.push_back(current);
        return;
    }
    for (std::uint32_t i = start; i < n; ++i) {
        current.push_back(i);
        multisetRecurse(n, k, i, current, out);
        current.pop_back();
    }
}

void
pairingRecurse(std::uint32_t used_mask, std::size_t depth,
               Pairing &current, std::vector<Pairing> &out)
{
    if (depth == 4) {
        out.push_back(current);
        return;
    }
    // Pair the lowest unused slot with every later unused slot.
    std::uint32_t first = 0;
    while (used_mask & (1u << first))
        ++first;
    for (std::uint32_t second = first + 1; second < 8; ++second) {
        if (used_mask & (1u << second))
            continue;
        current[depth] = {first, second};
        pairingRecurse(used_mask | (1u << first) | (1u << second),
                       depth + 1, current, out);
    }
}

} // namespace

std::vector<std::vector<std::uint32_t>>
enumerateMultisets(std::uint32_t n, std::uint32_t k)
{
    if (n == 0 || k == 0)
        fatal("enumerateMultisets needs n, k >= 1");
    std::vector<std::vector<std::uint32_t>> out;
    std::vector<std::uint32_t> current;
    current.reserve(k);
    multisetRecurse(n, k, 0, current, out);
    return out;
}

std::uint64_t
multisetCount(std::uint32_t n, std::uint32_t k)
{
    // C(n+k-1, k) computed incrementally. Each partial product
    // result * (n + i - 1) is itself a binomial-coefficient multiple,
    // so checking the multiplication catches every overflow.
    if (n == 0)
        return k == 0 ? 1 : 0; // keep the factor below nonzero
    std::uint64_t result = 1;
    for (std::uint32_t i = 1; i <= k; ++i) {
        const std::uint64_t factor =
            static_cast<std::uint64_t>(n) + i - 1;
        if (result > UINT64_MAX / factor) {
            fatal("multisetCount(", n, ", ", k,
                  ") overflows uint64_t at term ", i);
        }
        result = result * factor / i;
    }
    return result;
}

const std::vector<Pairing> &
allPairingsOf8()
{
    static const std::vector<Pairing> pairings = [] {
        std::vector<Pairing> out;
        Pairing current{};
        pairingRecurse(0, 0, current, out);
        mnpu_assert(out.size() == 105, "expected 7!! = 105 pairings");
        return out;
    }();
    return pairings;
}

} // namespace mnpu
