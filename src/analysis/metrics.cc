#include "analysis/metrics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mnpu
{

double
speedup(double ideal_cycles, double observed_cycles)
{
    if (ideal_cycles <= 0 || observed_cycles <= 0)
        fatal("speedup: cycle counts must be positive");
    return ideal_cycles / observed_cycles;
}

double
slowdown(double ideal_cycles, double observed_cycles)
{
    return 1.0 / speedup(ideal_cycles, observed_cycles);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        fatal("geomean of empty set");
    double log_sum = 0.0;
    for (double value : values) {
        if (value <= 0.0)
            fatal("geomean requires positive values, got ", value);
        log_sum += std::log(value);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        fatal("mean of empty set");
    double sum = 0.0;
    for (double value : values)
        sum += value;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    double mu = mean(values);
    double acc = 0.0;
    for (double value : values)
        acc += (value - mu) * (value - mu);
    double variance = acc / static_cast<double>(values.size());
    return variance > 0.0 ? std::sqrt(variance) : 0.0;
}

double
fairness(const std::vector<double> &slowdowns)
{
    double mu = mean(slowdowns);
    if (mu <= 0.0)
        fatal("fairness: mean slowdown must be positive");
    return 1.0 - stddev(slowdowns) / mu;
}

double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        fatal("quantile of empty set");
    if (q <= 0.0)
        return sorted.front();
    if (q >= 1.0)
        return sorted.back();
    double position = q * static_cast<double>(sorted.size() - 1);
    auto lower = static_cast<std::size_t>(position);
    double fraction = position - static_cast<double>(lower);
    if (lower + 1 >= sorted.size())
        return sorted.back();
    return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

BoxStats
boxStats(std::vector<double> values)
{
    if (values.empty())
        fatal("boxStats of empty set");
    std::sort(values.begin(), values.end());
    BoxStats stats;
    stats.min = values.front();
    stats.q1 = quantileSorted(values, 0.25);
    stats.median = quantileSorted(values, 0.5);
    stats.q3 = quantileSorted(values, 0.75);
    stats.max = values.back();
    return stats;
}

std::vector<CdfPoint>
cdf(std::vector<double> values)
{
    if (values.empty())
        fatal("cdf of empty set");
    std::sort(values.begin(), values.end());
    std::vector<CdfPoint> points;
    points.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        points.push_back(CdfPoint{
            values[i],
            static_cast<double>(i + 1) /
                static_cast<double>(values.size())});
    }
    return points;
}

} // namespace mnpu
