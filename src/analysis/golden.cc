#include "analysis/golden.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "analysis/experiment.hh"
#include "analysis/sweep_runner.hh"
#include "common/logging.hh"
#include "sw/arch_config.hh"

namespace mnpu
{

const std::vector<GoldenCase> &
goldenCases()
{
    // Editing this list (or anything that changes a case's outcome)
    // requires regenerating the fixtures: build update_golden and run
    // it with --update-golden, then review the JSON diff.
    static const std::vector<GoldenCase> cases = {
        {"hbm2-dual-res-ncf-dwt", "hbm2", SharingLevel::ShareDWT,
         {"res", "ncf"}, std::nullopt},
        {"hbm2-dual-yt-alex-d", "hbm2", SharingLevel::ShareD,
         {"yt", "alex"}, std::nullopt},
        {"hbm2-dual-ds2-sfrnn-static", "hbm2", SharingLevel::Static,
         {"ds2", "sfrnn"}, std::nullopt},
        {"hbm2-quad-res-yt-dlrm-ncf-dwt", "hbm2", SharingLevel::ShareDWT,
         {"res", "yt", "dlrm", "ncf"}, std::nullopt},
        {"ddr4-dual-sfrnn-dlrm-dw", "ddr4", SharingLevel::ShareDW,
         {"sfrnn", "dlrm"}, std::nullopt},
        {"ddr4-dual-ds2-gpt2-static", "ddr4", SharingLevel::Static,
         {"ds2", "gpt2"}, std::nullopt},
        {"ddr4-dual-res-gpt2-bwpart", "ddr4", SharingLevel::ShareD,
         {"res", "gpt2"}, std::vector<std::uint32_t>{1, 3}},
        {"ddr4-quad-yt-alex-ds2-gpt2-dw", "ddr4", SharingLevel::ShareDW,
         {"yt", "alex", "ds2", "gpt2"}, std::nullopt},
    };
    return cases;
}

const GoldenCase &
goldenCase(const std::string &name)
{
    for (const GoldenCase &golden : goldenCases()) {
        if (golden.name == name)
            return golden;
    }
    fatal("unknown golden case \"", name, "\"");
}

SweepCheckpointRecord
runGoldenCase(const GoldenCase &golden, SchedulerKind sched,
              const ObservabilityConfig &obs, FidelityKind fidelity)
{
    // Mini scale + mini NPU profile, matching the benches' default
    // (fast) configuration, so fixtures regenerate in seconds.
    NpuMemConfig mem = NpuMemConfig::cloudNpu();
    mem.timing = DramTiming::preset(golden.protocol);
    // Fixtures pin HBM2/DDR4 DRAM behavior; a MNPU_MEM_BACKEND
    // process default must not silently re-base them onto other media.
    mem.backend = MemBackendKind::Dram;
    ExperimentContext context(ArchConfig::miniNpu(), mem,
                              ModelScale::Mini);

    SystemConfig config;
    config.level = golden.level;
    config.dramBandwidthShares = golden.dramBandwidthShares;
    config.scheduler = sched;
    config.fidelity = fidelity;
    config.obs = obs;

    SweepRecord record;
    record.outcome = context.runMix(config, golden.models);
    record.wallSeconds = 0; // pinned: fixtures hold behavior, not time
    record.status = SweepStatus::Ok;
    return checkpointRecordOf(golden.name, record);
}

const std::vector<ServingGoldenCase> &
servingGoldenCases()
{
    // Same regeneration contract as goldenCases(): edits here (or any
    // behavior change under the case) require update_golden
    // --update-golden and a reviewed fixture diff.
    static const std::vector<ServingGoldenCase> cases = [] {
        // Dual-core GPT-2 at a fixed seed and offered load, with SLO
        // thresholds chosen so the goodput accounting is non-trivially
        // pinned (tight enough that a latency regression flips a
        // request out of the SLO-good set).
        ServingGoldenCase dual;
        dual.name = "serving-ddr4-dual-gpt2-dwt";
        dual.protocol = "ddr4";
        dual.level = SharingLevel::ShareDWT;
        dual.cores = 2;
        dual.serving.seed = 5;
        dual.serving.poissonRatePerMcycle = 40.0;
        dual.serving.numRequests = 4;
        dual.serving.meanPromptTokens = 8;
        dual.serving.meanDecodeTokens = 3;
        dual.serving.maxBatchPerCore = 2;
        dual.serving.ttftSloCycles = 1300000;
        dual.serving.tpotSloCycles = 900000;
        return std::vector<ServingGoldenCase>{dual};
    }();
    return cases;
}

SweepCheckpointRecord
runServingGoldenCase(const ServingGoldenCase &golden, SchedulerKind sched)
{
    NpuMemConfig mem = NpuMemConfig::cloudNpu();
    mem.timing = DramTiming::preset(golden.protocol);
    mem.backend = MemBackendKind::Dram; // fixtures pin DRAM media
    ExperimentContext context(ArchConfig::miniNpu(), mem,
                              ModelScale::Mini);

    SystemConfig config;
    config.level = golden.level;
    config.scheduler = sched;
    config.fidelity = FidelityKind::Exact;
    config.serving = golden.serving;

    SweepRecord record;
    record.outcome = context.runMix(
        config, std::vector<std::string>(golden.cores, "gpt2"));
    record.wallSeconds = 0; // pinned: fixtures hold behavior, not time
    record.status = SweepStatus::Ok;
    return checkpointRecordOf(golden.name, record);
}

std::string
goldenFixtureText(const SweepCheckpointRecord &record)
{
    return toJsonLine(record) + "\n";
}

std::string
goldenFixturePath(const std::string &dir, const std::string &name)
{
    return dir + "/" + name + ".json";
}

namespace
{

template <typename T>
bool
reportScalar(std::ostringstream &out, const char *field, const T &expected,
             const T &actual)
{
    if (expected == actual)
        return false;
    out << field << ": expected " << expected << ", got " << actual;
    return true;
}

template <typename T>
bool
reportVector(std::ostringstream &out, const char *field,
             const std::vector<T> &expected, const std::vector<T> &actual)
{
    if (expected == actual)
        return false;
    if (expected.size() != actual.size()) {
        out << field << ": expected " << expected.size()
            << " entries, got " << actual.size();
        return true;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (!(expected[i] == actual[i])) {
            out << field << "[" << i << "]: expected " << expected[i]
                << ", got " << actual[i];
            return true;
        }
    }
    return true;
}

} // namespace

std::string
describeGoldenDiff(const SweepCheckpointRecord &expected,
                   const SweepCheckpointRecord &actual)
{
    std::ostringstream out;
    out.precision(17);
    if (reportScalar(out, "key", expected.key, actual.key))
        return out.str();
    if (reportScalar(out, "version", expected.version, actual.version))
        return out.str();
    if (reportScalar(out, "status", std::string(toString(expected.status)),
                     std::string(toString(actual.status))))
        return out.str();
    if (reportVector(out, "models", expected.models, actual.models))
        return out.str();
    if (reportScalar(out, "global_cycles", expected.globalCycles,
                     actual.globalCycles))
        return out.str();
    if (reportVector(out, "local_cycles", expected.localCycles,
                     actual.localCycles))
        return out.str();
    if (reportVector(out, "finished_at_global", expected.finishedAtGlobal,
                     actual.finishedAtGlobal))
        return out.str();
    if (reportVector(out, "pe_utilization", expected.peUtilization,
                     actual.peUtilization))
        return out.str();
    if (reportVector(out, "traffic_bytes", expected.trafficBytes,
                     actual.trafficBytes))
        return out.str();
    if (reportVector(out, "walk_bytes", expected.walkBytes,
                     actual.walkBytes))
        return out.str();
    if (reportVector(out, "tlb_hits", expected.tlbHits, actual.tlbHits))
        return out.str();
    if (reportVector(out, "tlb_misses", expected.tlbMisses,
                     actual.tlbMisses))
        return out.str();
    if (reportVector(out, "walks", expected.walks, actual.walks))
        return out.str();
    if (reportVector(out, "speedups", expected.speedups, actual.speedups))
        return out.str();
    if (reportVector(out, "slowdowns", expected.slowdowns,
                     actual.slowdowns))
        return out.str();
    if (reportScalar(out, "geomean_speedup", expected.geomeanSpeedup,
                     actual.geomeanSpeedup))
        return out.str();
    if (reportScalar(out, "fairness", expected.fairnessValue,
                     actual.fairnessValue))
        return out.str();
    if (reportScalar(out, "dram_energy_pj", expected.dramEnergyPj,
                     actual.dramEnergyPj))
        return out.str();
    if (reportScalar(out, "dram_row_hits", expected.dramRowHits,
                     actual.dramRowHits))
        return out.str();
    if (reportScalar(out, "dram_row_misses", expected.dramRowMisses,
                     actual.dramRowMisses))
        return out.str();
    if (expected.layerFinishLocal != actual.layerFinishLocal) {
        out << "layer_finish_local differs";
        return out.str();
    }
    if (expected.serving.has_value() != actual.serving.has_value()) {
        out << "serving: expected "
            << (expected.serving ? "engaged" : "absent") << ", got "
            << (actual.serving ? "engaged" : "absent");
        return out.str();
    }
    if (expected.serving && !(*expected.serving == *actual.serving)) {
        out << "serving_* summary differs (makespan expected "
            << expected.serving->makespanCycles << ", got "
            << actual.serving->makespanCycles << ")";
        return out.str();
    }
    return std::string{};
}

namespace
{

double
relativeDeviation(std::uint64_t exact, std::uint64_t fast)
{
    if (exact == 0)
        return fast == 0 ? 0.0 : 1.0;
    return std::fabs(static_cast<double>(fast) -
                     static_cast<double>(exact)) /
           static_cast<double>(exact);
}

bool
findJsonNumber(const std::string &line, const char *key, double &out)
{
    std::string tag = std::string("\"") + key + "\":";
    std::size_t pos = line.find(tag);
    if (pos == std::string::npos)
        return false;
    out = std::strtod(line.c_str() + pos + tag.size(), nullptr);
    return true;
}

} // namespace

FidelityEnvelopeEntry
measureFidelityEnvelope(const GoldenCase &golden)
{
    SweepCheckpointRecord exact =
        runGoldenCase(golden, SchedulerKind::Cycle);
    SweepCheckpointRecord fast = runGoldenCase(
        golden, SchedulerKind::Cycle, {}, FidelityKind::Fast);

    FidelityEnvelopeEntry entry;
    entry.name = golden.name;
    entry.exactCycles = exact.globalCycles;
    entry.fastCycles = fast.globalCycles;
    double dev = relativeDeviation(exact.globalCycles, fast.globalCycles);
    std::size_t cores =
        std::min(exact.localCycles.size(), fast.localCycles.size());
    for (std::size_t i = 0; i < cores; ++i) {
        dev = std::max(dev, relativeDeviation(exact.localCycles[i],
                                              fast.localCycles[i]));
    }
    entry.deviation = dev;
    entry.bound = std::max(0.05, dev * 1.25 + 0.01);
    return entry;
}

std::string
fidelityEnvelopeLine(const FidelityEnvelopeEntry &entry)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"case\":\"%s\",\"exact_cycles\":%llu,"
                  "\"fast_cycles\":%llu,\"deviation\":%.6f,"
                  "\"bound\":%.6f}\n",
                  entry.name.c_str(),
                  static_cast<unsigned long long>(entry.exactCycles),
                  static_cast<unsigned long long>(entry.fastCycles),
                  entry.deviation, entry.bound);
    return std::string(buf);
}

std::string
fidelityEnvelopePath(const std::string &dir)
{
    return dir + "/fidelity_envelope.json";
}

bool
parseFidelityEnvelopeLine(const std::string &line,
                          FidelityEnvelopeEntry &out)
{
    const std::string tag = "\"case\":\"";
    std::size_t pos = line.find(tag);
    if (pos == std::string::npos)
        return false;
    std::size_t end = line.find('"', pos + tag.size());
    if (end == std::string::npos)
        return false;
    out.name = line.substr(pos + tag.size(), end - pos - tag.size());

    double exact = 0, fast = 0;
    if (!findJsonNumber(line, "exact_cycles", exact) ||
        !findJsonNumber(line, "fast_cycles", fast) ||
        !findJsonNumber(line, "deviation", out.deviation) ||
        !findJsonNumber(line, "bound", out.bound)) {
        return false;
    }
    out.exactCycles = static_cast<std::uint64_t>(exact);
    out.fastCycles = static_cast<std::uint64_t>(fast);
    return true;
}

} // namespace mnpu
