/**
 * @file
 * Ordinary least squares by normal equations with a small ridge term,
 * sized for the handful of features the co-runner predictor uses.
 */

#ifndef MNPU_ANALYSIS_REGRESSION_HH
#define MNPU_ANALYSIS_REGRESSION_HH

#include <vector>

namespace mnpu
{

class LinearRegression
{
  public:
    /**
     * Fit weights minimizing ||Xw - y||^2 + ridge*||w||^2.
     * Every row of @p x must have the same width; include a constant-1
     * column yourself if you want an intercept.
     */
    void fit(const std::vector<std::vector<double>> &x,
             const std::vector<double> &y, double ridge = 1e-6);

    /** Predict one sample; fit() must have been called. */
    double predict(const std::vector<double> &features) const;

    const std::vector<double> &weights() const { return weights_; }
    bool fitted() const { return !weights_.empty(); }

    /** Mean squared error over a data set. */
    double mse(const std::vector<std::vector<double>> &x,
               const std::vector<double> &y) const;

  private:
    std::vector<double> weights_;
};

/**
 * Solve the dense symmetric system A w = b with Gaussian elimination and
 * partial pivoting; fatal() when singular.
 */
std::vector<double> solveLinearSystem(std::vector<std::vector<double>> a,
                                      std::vector<double> b);

} // namespace mnpu

#endif // MNPU_ANALYSIS_REGRESSION_HH
