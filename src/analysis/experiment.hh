/**
 * @file
 * Shared experiment harness: caches per-model traces and Ideal-baseline
 * runs so the figure benches don't repeat work, and wraps a mix run into
 * the speedup/fairness outcome the paper reports.
 *
 * One ExperimentContext corresponds to one memory-side configuration
 * (NpuMemConfig); sweeps over page size, bandwidth, or translation mode
 * build one context per point.
 */

#ifndef MNPU_ANALYSIS_EXPERIMENT_HH
#define MNPU_ANALYSIS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/metrics.hh"
#include "sim/multi_core_system.hh"
#include "sw/arch_config.hh"
#include "sw/trace_generator.hh"
#include "workloads/models.hh"

namespace mnpu
{

/** Per-workload and aggregate outcome of one co-run. */
struct MixOutcome
{
    std::vector<std::string> models;
    std::vector<double> speedups;   //!< per workload, vs Ideal
    std::vector<double> slowdowns;
    double geomeanSpeedup = 0;
    double fairnessValue = 0;
    SimResult raw;
};

class ExperimentContext
{
  public:
    ExperimentContext(ArchConfig arch, NpuMemConfig mem,
                      ModelScale scale = ModelScale::Mini);

    /** Cached trace for a built-in model name. */
    std::shared_ptr<const TraceGenerator> trace(const std::string &model);

    /** Register an external network under its name (random nets etc.). */
    std::shared_ptr<const TraceGenerator>
    registerNetwork(const Network &network);

    /**
     * Cached Ideal-baseline cycles for @p model monopolizing
     * @p resource_multiplier NPUs' worth of resources.
     */
    double idealCycles(const std::string &model,
                       std::uint32_t resource_multiplier);

    /** Full Ideal result (for predictor features). */
    const CoreResult &idealResult(const std::string &model,
                                  std::uint32_t resource_multiplier);

    /**
     * Co-run @p models under @p config (level, ratio overrides, ...).
     * config.mem is overwritten with this context's memory config, and
     * bindings are built from the cached traces. Speedups are relative
     * to the Ideal baseline with a multiplier of models.size().
     */
    MixOutcome runMix(SystemConfig config,
                      const std::vector<std::string> &models);

    const ArchConfig &arch() const { return arch_; }
    const NpuMemConfig &mem() const { return mem_; }

  private:
    ArchConfig arch_;
    NpuMemConfig mem_;
    ModelScale scale_;
    std::map<std::string, std::shared_ptr<const TraceGenerator>> traces_;
    std::map<std::string, CoreResult> idealCache_;
};

} // namespace mnpu

#endif // MNPU_ANALYSIS_EXPERIMENT_HH
