/**
 * @file
 * Shared experiment harness: caches per-model traces and Ideal-baseline
 * runs so the figure benches don't repeat work, and wraps a mix run into
 * the speedup/fairness outcome the paper reports.
 *
 * One ExperimentContext corresponds to one memory-side configuration
 * (NpuMemConfig); sweeps over page size, bandwidth, or translation mode
 * build one context per point.
 *
 * Thread safety: one context may serve many threads concurrently (the
 * SweepRunner fans mixes out over a pool). The trace and Ideal caches
 * are mutex-guarded maps with node-stable entries; each entry is
 * computed exactly once via std::call_once, so concurrent misses on the
 * same key block on the first computation instead of duplicating it.
 * A failed computation (e.g. an unknown model) is latched as an
 * exception_ptr and rethrown to every user of the entry — the once
 * callable itself never throws, which keeps exceptions out of
 * std::call_once (throwing through pthread_once wedges the flag under
 * ThreadSanitizer) and makes repeated lookups deterministic.
 * idealResult() hands out references into the node-stable map — they
 * stay valid for the lifetime of the context. TraceGenerator is
 * immutable after construction, so the cached shared_ptr<const
 * TraceGenerator> instances can feed any number of concurrent
 * MultiCoreSystems.
 */

#ifndef MNPU_ANALYSIS_EXPERIMENT_HH
#define MNPU_ANALYSIS_EXPERIMENT_HH

#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <optional>

#include "analysis/metrics.hh"
#include "serving/request.hh"
#include "sim/multi_core_system.hh"
#include "sw/arch_config.hh"
#include "sw/trace_generator.hh"
#include "workloads/models.hh"

namespace mnpu
{

/** Per-workload and aggregate outcome of one co-run. */
struct MixOutcome
{
    std::vector<std::string> models;
    std::vector<double> speedups;   //!< per workload, vs Ideal
    std::vector<double> slowdowns;
    double geomeanSpeedup = 0;
    double fairnessValue = 0;
    SimResult raw;

    /**
     * Engaged for serving jobs (config.serving set): the SLO summary
     * behind the `serving.*` telemetry. Serving has no Ideal baseline,
     * so speedups/slowdowns are pinned at 1.0 and the SLO metrics are
     * the outcome; raw carries the round-aggregated SimResult.
     */
    std::optional<ServingSummary> serving;
};

class ExperimentContext
{
  public:
    ExperimentContext(ArchConfig arch, NpuMemConfig mem,
                      ModelScale scale = ModelScale::Mini);

    /** Cached trace for a built-in model name. Thread-safe. */
    std::shared_ptr<const TraceGenerator> trace(const std::string &model);

    /**
     * Register an external network under its name (random nets etc.).
     * Thread-safe; the first registration under a name wins.
     */
    std::shared_ptr<const TraceGenerator>
    registerNetwork(const Network &network);

    /**
     * Cached Ideal-baseline cycles for @p model monopolizing
     * @p resource_multiplier NPUs' worth of resources. Thread-safe.
     */
    double idealCycles(const std::string &model,
                       std::uint32_t resource_multiplier);

    /**
     * Full Ideal result (for predictor features). The reference points
     * into a node-stable map and stays valid for the lifetime of the
     * context. Thread-safe.
     */
    const CoreResult &idealResult(const std::string &model,
                                  std::uint32_t resource_multiplier);

    /**
     * Co-run @p models under @p config (level, ratio overrides, ...).
     * config.mem is overwritten with this context's memory config, and
     * bindings are built from the cached traces. Speedups are relative
     * to the Ideal baseline with a multiplier of models.size().
     * @p budget is the per-run watchdog (cycles / wall clock / stop
     * token); blowing it throws SimulationError. Thread-safe:
     * concurrent runMix calls only share the read-only trace/Ideal
     * caches.
     */
    MixOutcome runMix(SystemConfig config,
                      const std::vector<std::string> &models,
                      const RunBudget &budget = RunBudget{});

    const ArchConfig &arch() const { return arch_; }
    const NpuMemConfig &mem() const { return mem_; }
    ModelScale scale() const { return scale_; }

  private:
    /**
     * Computed-once cache slot; lives at a stable map-node address.
     * Exactly one of {value, error} is set after the once fires.
     */
    struct TraceEntry
    {
        std::once_flag once;
        std::shared_ptr<const TraceGenerator> trace;
        std::exception_ptr error;
    };
    struct IdealEntry
    {
        std::once_flag once;
        CoreResult result;
        std::exception_ptr error;
    };
    /**
     * (model, multiplier) — a std::pair key instead of the former
     * "model#multiplier" string, which collided for registered network
     * names containing '#'.
     */
    using IdealKey = std::pair<std::string, std::uint32_t>;

    TraceEntry &traceEntry(const std::string &model);

    ArchConfig arch_;
    NpuMemConfig mem_;
    ModelScale scale_;
    std::mutex cacheMutex_; //!< guards map structure, not entry bodies
    std::map<std::string, TraceEntry> traces_;
    std::map<IdealKey, IdealEntry> idealCache_;
};

} // namespace mnpu

#endif // MNPU_ANALYSIS_EXPERIMENT_HH
