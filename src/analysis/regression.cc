#include "analysis/regression.hh"

#include <cmath>

#include "common/logging.hh"

namespace mnpu
{

std::vector<double>
solveLinearSystem(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t n = a.size();
    mnpu_assert(b.size() == n);
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col]))
                pivot = row;
        }
        if (std::fabs(a[pivot][col]) < 1e-12)
            fatal("singular system in linear regression");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (std::size_t row = col + 1; row < n; ++row) {
            double factor = a[row][col] / a[col][col];
            for (std::size_t k = col; k < n; ++k)
                a[row][k] -= factor * a[col][k];
            b[row] -= factor * b[col];
        }
    }
    std::vector<double> w(n, 0.0);
    for (std::size_t row = n; row-- > 0;) {
        double acc = b[row];
        for (std::size_t k = row + 1; k < n; ++k)
            acc -= a[row][k] * w[k];
        w[row] = acc / a[row][row];
    }
    return w;
}

void
LinearRegression::fit(const std::vector<std::vector<double>> &x,
                      const std::vector<double> &y, double ridge)
{
    if (x.empty() || x.size() != y.size())
        fatal("regression: need matching, nonempty X and y");
    const std::size_t d = x[0].size();
    if (d == 0)
        fatal("regression: zero-width features");
    for (const auto &row : x) {
        if (row.size() != d)
            fatal("regression: ragged feature rows");
    }
    std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
    std::vector<double> xty(d, 0.0);
    for (std::size_t s = 0; s < x.size(); ++s) {
        for (std::size_t i = 0; i < d; ++i) {
            xty[i] += x[s][i] * y[s];
            for (std::size_t j = 0; j < d; ++j)
                xtx[i][j] += x[s][i] * x[s][j];
        }
    }
    for (std::size_t i = 0; i < d; ++i)
        xtx[i][i] += ridge;
    weights_ = solveLinearSystem(std::move(xtx), std::move(xty));
}

double
LinearRegression::predict(const std::vector<double> &features) const
{
    if (!fitted())
        fatal("regression: predict before fit");
    if (features.size() != weights_.size())
        fatal("regression: feature width mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < weights_.size(); ++i)
        acc += weights_[i] * features[i];
    return acc;
}

double
LinearRegression::mse(const std::vector<std::vector<double>> &x,
                      const std::vector<double> &y) const
{
    if (x.empty() || x.size() != y.size())
        fatal("regression: need matching, nonempty X and y");
    double acc = 0.0;
    for (std::size_t s = 0; s < x.size(); ++s) {
        double err = predict(x[s]) - y[s];
        acc += err * err;
    }
    return acc / static_cast<double>(x.size());
}

} // namespace mnpu
