/**
 * @file
 * Parallel mix-sweep runner with per-job fault containment. The
 * paper's evaluation is embarrassingly parallel — every workload mix
 * is an independent MultiCoreSystem::run() — so SweepRunner fans a
 * list of SweepJobs out over a ThreadPool and returns the outcomes in
 * deterministic input order regardless of which worker finished first.
 *
 * Fault isolation: a single pathological mix (bad config, deadlock,
 * cycle-budget blowout, livelock) must not take down a multi-hour
 * campaign. With SweepOptions::keepGoing each job's failure is
 * recorded in its SweepRecord (status + message) and every other mix
 * still completes bit-identically to a clean run. A per-job watchdog
 * budget — explicit (jobTimeoutSeconds / jobMaxCycles) or adaptive
 * (budgetMultiplier x the median wall clock of completed jobs) — times
 * a livelocked mix out cooperatively; adaptively budgeted jobs get one
 * escalating-budget retry before the timeout becomes permanent.
 *
 * Crash safety: with SweepOptions::checkpointPath every completed job
 * is appended to a JSONL checkpoint (single write + flush per record),
 * and with resume=true jobs whose config+models key is already
 * checkpointed ok come back as status Skipped with their metrics —
 * derived figures and raw telemetry counters alike — restored
 * bit-identically, so a killed sweep re-executes only the unfinished
 * jobs and benches that aggregate raw counters print the same numbers
 * either way. Records from a pre-telemetry checkpoint format are
 * re-executed (with a warning), never restored incompletely.
 *
 * Determinism: each job builds its own MultiCoreSystem from the
 * context's immutable cached traces, so per-mix metrics are
 * bit-identical to a serial run (tests/test_sweep_runner.cc asserts
 * this). The only shared mutable state is the context's once-computed
 * trace/Ideal caches; runner.run() pre-warms them so the parallel
 * phase is read-only.
 *
 * Timing: every record carries the wall-clock seconds of its own run,
 * and lastStats() reports the end-to-end wall clock plus aggregate
 * throughput and per-status counts, which makes both the parallel
 * speedup and a partial sweep's health directly observable in the
 * bench output.
 */

#ifndef MNPU_ANALYSIS_SWEEP_RUNNER_HH
#define MNPU_ANALYSIS_SWEEP_RUNNER_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "analysis/process_pool.hh"
#include "analysis/sweep_checkpoint.hh"
#include "common/thread_pool.hh"
#include "sim/system_config.hh"

namespace mnpu
{

/** One independent unit of a sweep: a model mix co-run under a config. */
struct SweepJob
{
    SystemConfig config;
    std::vector<std::string> models;
};

/**
 * Stable identity of a job for checkpoint/resume: an FNV-1a hash over
 * the canonical serialization of everything that shapes the simulated
 * outcome — the job's SystemConfig and model list plus the context's
 * effective configuration (@p arch including dataflow, @p mem with
 * the full DRAM timing including row policy, and the model @p scale).
 * Two jobs collide only if they would simulate the same thing, so
 * sweeps over different contexts can safely share one checkpoint
 * file.
 */
std::string sweepJobKey(const SweepJob &job, const ArchConfig &arch,
                        const NpuMemConfig &mem, ModelScale scale);

/**
 * Deterministic shard assignment for distributed campaigns: the
 * 16-hex sweep key parsed as a uint64, modulo @p shardCount. Every
 * host computes the same partition from the job list alone — no
 * coordinator — so N hosts running `--shard i/N` against private
 * checkpoint files cover each job exactly once, and a
 * merge_checkpoints union of the shards resumes as one campaign.
 */
std::uint32_t shardOfSweepKey(const std::string &key,
                              std::uint32_t shardCount);

/** Outcome of one job plus its own wall-clock cost and status. */
struct SweepRecord
{
    MixOutcome outcome;
    double wallSeconds = 0;
    SweepStatus status = SweepStatus::Ok;
    std::string error;          //!< failure message, empty when ok
    std::uint32_t attempts = 1; //!< > 1 when an escalated retry ran
};

/**
 * Flatten one job outcome into its checkpoint form (the full v2
 * telemetry snapshot). Shared by the sweep checkpoint writer and the
 * golden-trace fixtures, which are exactly these records with the
 * wall clock zeroed.
 */
SweepCheckpointRecord checkpointRecordOf(const std::string &key,
                                         const SweepRecord &record);

/** Failure-containment and recovery knobs for one run(). */
struct SweepOptions
{
    /**
     * Contain per-job failures: record status + message and keep
     * going. When false (the default), every record is still filled
     * in, but the first failing job's exception (in input order) is
     * rethrown after the sweep drains.
     */
    bool keepGoing = false;

    /** Explicit per-job wall-clock budget in seconds (0 = none). */
    double jobTimeoutSeconds = 0;

    /** Per-job global-cycle budget (0 = none). */
    Cycle jobMaxCycles = 0;

    /**
     * Adaptive watchdog: once >= 3 jobs completed, each remaining job
     * gets a wall budget of budgetMultiplier x the median completed
     * wall clock (floored at 0.25 s), with one retry at double the
     * budget before the timeout is recorded as permanent. 0 disables.
     * Ignored when jobTimeoutSeconds is set (explicit budgets are
     * hard and not retried).
     */
    double budgetMultiplier = 0;

    /**
     * JSONL checkpoint file: every executed job is appended on
     * completion (ok or not). Empty disables checkpointing.
     */
    std::string checkpointPath;

    /**
     * Skip jobs already checkpointed ok in checkpointPath; their
     * records come back as status Skipped with metrics restored from
     * the checkpoint. Previously failed/timed-out jobs re-execute.
     */
    bool resume = false;

    /**
     * External cooperative stop: raising the token cancels in-flight
     * simulations at their next watchdog check and marks jobs that
     * did not complete as Skipped ("cancelled"); they are not
     * checkpointed, so a later resume re-runs them. In process mode
     * the supervisor additionally forwards SIGTERM to live workers.
     */
    const std::atomic<bool> *stopToken = nullptr;

    /**
     * Worker isolation: Thread (default) fans jobs out over in-process
     * threads; Process forks one single-job worker per attempt so a
     * crash (SIGSEGV, abort, rlimit kill, hard livelock) quarantines
     * that job as SweepStatus::Crashed instead of killing the
     * campaign. Unset resolves via effectiveIsolationMode() (--isolate
     * / MNPU_ISOLATE / Thread). Thread- and process-mode runs of a
     * healthy sweep are bit-identical.
     */
    std::optional<IsolationMode> isolation;

    /** Crash retries per job before quarantine (process mode). */
    std::uint32_t workerRetries = 2;

    /** First crash-retry backoff; doubles per crash, capped at 2 s. */
    double workerBackoffSeconds = 0.05;

    /** RLIMIT_AS per worker in bytes (0 = unlimited; ignored under
     * sanitizer builds and in thread mode). */
    std::uint64_t workerMemoryBytes = 0;

    /** RLIMIT_CPU per worker in seconds (0 = unlimited). */
    std::uint32_t workerCpuSeconds = 0;

    /**
     * Deterministic campaign sharding: with shardCount > 1, only jobs
     * whose shardOfSweepKey(key, shardCount) == shardIndex execute;
     * the rest come back as Skipped ("sharded out"), never
     * checkpointed. Each shard should write its own checkpoint file;
     * merge_checkpoints unions them for a final --resume.
     */
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 0; //!< 0 or 1 = no sharding

    /**
     * Durable in-flight snapshots (DESIGN.md §12): when non-empty,
     * each job writes its snapshot to `<snapshotDir>/<key>.snap` on
     * the cadence below, and a retried or resumed job restores from
     * its latest valid snapshot instead of restarting from cycle
     * zero (bit-identically — snapshot writes are passive, so the
     * cadence is excluded from sweepJobKey). A corrupt or stale
     * snapshot is rejected by checksum/version and the job falls back
     * to a from-scratch run. Snapshots are removed when their job
     * completes, so they never outlive the checkpoint record.
     */
    std::string snapshotDir;
    Cycle snapshotEveryCycles = 0;   //!< 0 = no cycle cadence
    double snapshotEverySeconds = 0; //!< 0 = no wall cadence
};

/** Aggregate timing + outcome counts of the last SweepRunner::run(). */
struct SweepStats
{
    std::size_t workers = 0;
    std::size_t runs = 0;      //!< total records (executed + skipped)
    std::size_t executed = 0;  //!< attempted: ok+failed+timedOut+crashed
    double wallSeconds = 0;    //!< end-to-end, including pre-warm
    double jobSecondsSum = 0;  //!< sum of per-job wall clocks
    double runsPerSecond = 0;  //!< executed / wallSeconds (restored
                               //!< jobs don't inflate throughput)

    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timedOut = 0;
    std::size_t skipped = 0; //!< restored, cancelled, or sharded out
    std::size_t retried = 0; //!< jobs that needed more than one attempt
    std::size_t crashed = 0; //!< quarantined after worker crashes

    /** Total hard worker deaths observed (including ones that a retry
     * later recovered) and the total backoff slept between retries —
     * both zero in thread mode. */
    std::size_t workerCrashes = 0;
    double workerBackoffSeconds = 0;

    /**
     * Aggregate telemetry over every record that carries data (ok +
     * restored): sums of the per-mix snapshots, so a campaign's total
     * simulated work is visible without re-walking the records.
     */
    std::uint64_t totalGlobalCycles = 0;
    std::uint64_t totalTrafficBytes = 0;
    std::uint64_t totalWalkBytes = 0;
    std::uint64_t totalTlbMisses = 0;
    std::uint64_t totalWalks = 0;
    double totalDramEnergyPj = 0;

    /** One-line human-readable summary. */
    std::string summary() const;

    /** One-line aggregate-telemetry summary (sums over ok+restored). */
    std::string telemetrySummary() const;
};

class SweepRunner
{
  public:
    /** @param jobs worker count; 0 means defaultJobCount(). */
    explicit SweepRunner(std::size_t jobs = 0);

    std::size_t workers() const { return pool_.jobs(); }

    /**
     * Run all @p jobs against @p context; records come back in input
     * order. @p progress (optional) is invoked under a lock as
     * progress(done, total) each time a job completes (jobs restored
     * from a checkpoint count as already done).
     */
    std::vector<SweepRecord>
    run(ExperimentContext &context, const std::vector<SweepJob> &jobs,
        const SweepOptions &options,
        const std::function<void(std::size_t, std::size_t)> &progress =
            nullptr);

    /** Back-compat overload: default options (fail-fast, no budget). */
    std::vector<SweepRecord>
    run(ExperimentContext &context, const std::vector<SweepJob> &jobs,
        const std::function<void(std::size_t, std::size_t)> &progress =
            nullptr)
    {
        return run(context, jobs, SweepOptions{}, progress);
    }

    /**
     * Generic deterministic-order parallel map: results[i] = fn(i).
     * For sweep shapes that don't fit SweepJob (per-point contexts,
     * Ideal-only sweeps, ...). R must be default-constructible.
     */
    template <typename R>
    std::vector<R> map(std::size_t count,
                       const std::function<R(std::size_t)> &fn)
    {
        std::vector<R> results(count);
        pool_.parallelFor(count, [&](std::size_t index) {
            results[index] = fn(index);
        });
        return results;
    }

    const SweepStats &lastStats() const { return stats_; }

  private:
    ThreadPool pool_;
    SweepStats stats_;
};

} // namespace mnpu

#endif // MNPU_ANALYSIS_SWEEP_RUNNER_HH
