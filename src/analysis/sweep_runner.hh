/**
 * @file
 * Parallel mix-sweep runner. The paper's evaluation is embarrassingly
 * parallel — every workload mix is an independent MultiCoreSystem::run()
 * — so SweepRunner fans a list of SweepJobs out over a ThreadPool and
 * returns the outcomes in deterministic input order regardless of which
 * worker finished first.
 *
 * Determinism: each job builds its own MultiCoreSystem from the
 * context's immutable cached traces, so per-mix metrics are bit-identical
 * to a serial run (tests/test_sweep_runner.cc asserts this). The only
 * shared mutable state is the context's once-computed trace/Ideal
 * caches; runner.run() pre-warms them so the parallel phase is
 * read-only.
 *
 * Timing: every record carries the wall-clock seconds of its own run,
 * and lastStats() reports the end-to-end wall clock plus aggregate
 * throughput, which makes the parallel speedup directly observable in
 * the bench output.
 */

#ifndef MNPU_ANALYSIS_SWEEP_RUNNER_HH
#define MNPU_ANALYSIS_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "common/thread_pool.hh"
#include "sim/system_config.hh"

namespace mnpu
{

/** One independent unit of a sweep: a model mix co-run under a config. */
struct SweepJob
{
    SystemConfig config;
    std::vector<std::string> models;
};

/** Outcome of one job plus its own wall-clock cost. */
struct SweepRecord
{
    MixOutcome outcome;
    double wallSeconds = 0;
};

/** Aggregate timing of the last SweepRunner::run(). */
struct SweepStats
{
    std::size_t workers = 0;
    std::size_t runs = 0;
    double wallSeconds = 0;    //!< end-to-end, including pre-warm
    double jobSecondsSum = 0;  //!< sum of per-job wall clocks
    double runsPerSecond = 0;

    /** One-line human-readable summary. */
    std::string summary() const;
};

class SweepRunner
{
  public:
    /** @param jobs worker count; 0 means defaultJobCount(). */
    explicit SweepRunner(std::size_t jobs = 0);

    std::size_t workers() const { return pool_.jobs(); }

    /**
     * Run all @p jobs against @p context; records come back in input
     * order. @p progress (optional) is invoked under a lock as
     * progress(done, total) each time a job completes.
     */
    std::vector<SweepRecord>
    run(ExperimentContext &context, const std::vector<SweepJob> &jobs,
        const std::function<void(std::size_t, std::size_t)> &progress =
            nullptr);

    /**
     * Generic deterministic-order parallel map: results[i] = fn(i).
     * For sweep shapes that don't fit SweepJob (per-point contexts,
     * Ideal-only sweeps, ...). R must be default-constructible.
     */
    template <typename R>
    std::vector<R> map(std::size_t count,
                       const std::function<R(std::size_t)> &fn)
    {
        std::vector<R> results(count);
        pool_.parallelFor(count, [&](std::size_t index) {
            results[index] = fn(index);
        });
        return results;
    }

    const SweepStats &lastStats() const { return stats_; }

  private:
    ThreadPool pool_;
    SweepStats stats_;
};

} // namespace mnpu

#endif // MNPU_ANALYSIS_SWEEP_RUNNER_HH
