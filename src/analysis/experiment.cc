#include "analysis/experiment.hh"

#include <filesystem>
#include <memory>

#include "common/logging.hh"
#include "serving/engine.hh"

namespace mnpu
{

ExperimentContext::ExperimentContext(ArchConfig arch, NpuMemConfig mem,
                                     ModelScale scale)
    : arch_(std::move(arch)), mem_(mem), scale_(scale)
{
    arch_.validate();
}

ExperimentContext::TraceEntry &
ExperimentContext::traceEntry(const std::string &model)
{
    // std::map nodes are address-stable, so the reference outlives the
    // lock; the entry body is published by std::call_once.
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return traces_.try_emplace(model).first->second;
}

std::shared_ptr<const TraceGenerator>
ExperimentContext::trace(const std::string &model)
{
    // The once callable must not throw: an exception unwinding through
    // std::call_once leaves the flag wedged "in progress" under TSan's
    // pthread_once interceptor. Latch the error instead and rethrow it
    // to every user of the entry.
    TraceEntry &entry = traceEntry(model);
    std::call_once(entry.once, [&]() noexcept {
        try {
            Network network = buildModel(model, scale_);
            entry.trace =
                std::make_shared<TraceGenerator>(arch_, network);
        } catch (...) {
            entry.error = std::current_exception();
        }
    });
    if (entry.error)
        std::rethrow_exception(entry.error);
    return entry.trace;
}

std::shared_ptr<const TraceGenerator>
ExperimentContext::registerNetwork(const Network &network)
{
    TraceEntry &entry = traceEntry(network.name);
    std::call_once(entry.once, [&]() noexcept {
        try {
            entry.trace =
                std::make_shared<TraceGenerator>(arch_, network);
        } catch (...) {
            entry.error = std::current_exception();
        }
    });
    if (entry.error)
        std::rethrow_exception(entry.error);
    return entry.trace;
}

const CoreResult &
ExperimentContext::idealResult(const std::string &model,
                               std::uint32_t resource_multiplier)
{
    IdealEntry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        entry = &idealCache_
                     .try_emplace(IdealKey(model, resource_multiplier))
                     .first->second;
    }
    std::call_once(entry->once, [&]() noexcept {
        try {
            SimResult result =
                runIdeal(trace(model), resource_multiplier, mem_);
            entry->result = std::move(result.cores[0]);
        } catch (...) {
            entry->error = std::current_exception();
        }
    });
    if (entry->error)
        std::rethrow_exception(entry->error);
    return entry->result;
}

double
ExperimentContext::idealCycles(const std::string &model,
                               std::uint32_t resource_multiplier)
{
    return static_cast<double>(
        idealResult(model, resource_multiplier).localCycles);
}

MixOutcome
ExperimentContext::runMix(SystemConfig config,
                          const std::vector<std::string> &models,
                          const RunBudget &budget)
{
    if (models.empty())
        fatal("runMix: no models");
    config.mem = mem_;
    if (config.serving) {
        // Serving jobs ride the same dispatch point as batch mixes so
        // every SweepRunner feature (--jobs, --keep-going, --resume,
        // process isolation, checkpoints) works unchanged; the models
        // vector gives the core count. Only the GPT-2 serving phases
        // exist today, so every entry must be "gpt2".
        for (const auto &model : models) {
            if (model != "gpt2") {
                fatal("serving jobs are GPT-2 only (got '", model,
                      "')");
            }
        }
        // Sub-round snapshots cannot resume across rounds; serving
        // durability is the sweep checkpoint (engine.hh). Strip the
        // policy rather than hand each round a stale restore path.
        RunBudget serving_budget = budget;
        serving_budget.snapshot = SnapshotPolicy{};
        ServingResult result = runServing(
            arch_, scale_, config,
            static_cast<std::uint32_t>(models.size()), serving_budget);
        MixOutcome outcome;
        outcome.models = models;
        outcome.raw = std::move(result.aggregate);
        outcome.serving = result.summary;
        outcome.speedups.assign(models.size(), 1.0);
        outcome.slowdowns.assign(models.size(), 1.0);
        outcome.geomeanSpeedup = 1.0;
        outcome.fairnessValue = 1.0;
        return outcome;
    }
    auto build = [&]() {
        std::vector<CoreBinding> bindings;
        bindings.reserve(models.size());
        for (const auto &model : models) {
            CoreBinding binding;
            binding.trace = trace(model);
            bindings.push_back(std::move(binding));
        }
        return std::make_unique<MultiCoreSystem>(config,
                                                 std::move(bindings));
    };
    auto system = build();
    if (budget.snapshot.enabled() &&
        std::filesystem::exists(budget.snapshot.path) &&
        !system->tryRestoreSnapshot(budget.snapshot.path)) {
        // Rejected restore (corrupt, stale version, or config
        // mismatch) may leave components partially loaded — the
        // documented contract is to discard the system and build a
        // fresh one, then run from scratch.
        system = build();
    }

    MixOutcome outcome;
    outcome.models = models;
    outcome.raw = system->run(budget);
    const auto multiplier = static_cast<std::uint32_t>(models.size());
    for (std::size_t i = 0; i < models.size(); ++i) {
        double ideal = idealCycles(models[i], multiplier);
        double observed =
            static_cast<double>(outcome.raw.cores[i].localCycles);
        outcome.speedups.push_back(speedup(ideal, observed));
        outcome.slowdowns.push_back(slowdown(ideal, observed));
    }
    outcome.geomeanSpeedup = geomean(outcome.speedups);
    outcome.fairnessValue = fairness(outcome.slowdowns);
    return outcome;
}

} // namespace mnpu
