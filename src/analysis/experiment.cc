#include "analysis/experiment.hh"

#include "common/logging.hh"

namespace mnpu
{

ExperimentContext::ExperimentContext(ArchConfig arch, NpuMemConfig mem,
                                     ModelScale scale)
    : arch_(std::move(arch)), mem_(mem), scale_(scale)
{
    arch_.validate();
}

std::shared_ptr<const TraceGenerator>
ExperimentContext::trace(const std::string &model)
{
    auto it = traces_.find(model);
    if (it != traces_.end())
        return it->second;
    Network network = buildModel(model, scale_);
    auto generated = std::make_shared<TraceGenerator>(arch_, network);
    traces_.emplace(model, generated);
    return generated;
}

std::shared_ptr<const TraceGenerator>
ExperimentContext::registerNetwork(const Network &network)
{
    auto it = traces_.find(network.name);
    if (it != traces_.end())
        return it->second;
    auto generated = std::make_shared<TraceGenerator>(arch_, network);
    traces_.emplace(network.name, generated);
    return generated;
}

const CoreResult &
ExperimentContext::idealResult(const std::string &model,
                               std::uint32_t resource_multiplier)
{
    std::string cache_key =
        model + "#" + std::to_string(resource_multiplier);
    auto it = idealCache_.find(cache_key);
    if (it != idealCache_.end())
        return it->second;
    SimResult result = runIdeal(trace(model), resource_multiplier, mem_);
    auto [inserted, unused] =
        idealCache_.emplace(cache_key, std::move(result.cores[0]));
    return inserted->second;
}

double
ExperimentContext::idealCycles(const std::string &model,
                               std::uint32_t resource_multiplier)
{
    return static_cast<double>(
        idealResult(model, resource_multiplier).localCycles);
}

MixOutcome
ExperimentContext::runMix(SystemConfig config,
                          const std::vector<std::string> &models)
{
    if (models.empty())
        fatal("runMix: no models");
    config.mem = mem_;
    std::vector<CoreBinding> bindings;
    bindings.reserve(models.size());
    for (const auto &model : models) {
        CoreBinding binding;
        binding.trace = trace(model);
        bindings.push_back(std::move(binding));
    }
    MultiCoreSystem system(config, std::move(bindings));

    MixOutcome outcome;
    outcome.models = models;
    outcome.raw = system.run();
    const auto multiplier = static_cast<std::uint32_t>(models.size());
    for (std::size_t i = 0; i < models.size(); ++i) {
        double ideal = idealCycles(models[i], multiplier);
        double observed =
            static_cast<double>(outcome.raw.cores[i].localCycles);
        outcome.speedups.push_back(speedup(ideal, observed));
        outcome.slowdowns.push_back(slowdown(ideal, observed));
    }
    outcome.geomeanSpeedup = geomean(outcome.speedups);
    outcome.fairnessValue = fairness(outcome.slowdowns);
    return outcome;
}

} // namespace mnpu
