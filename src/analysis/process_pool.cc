#include "analysis/process_pool.hh"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <thread>

#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"

namespace mnpu
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double>(SteadyClock::now() - start)
        .count();
}

std::atomic<int> g_isolation_default{-1};

/** This worker child's scratch fd; -1 outside a worker. */
std::atomic<int> g_worker_heartbeat_fd{-1};

} // namespace

void
processPoolHeartbeat()
{
    const int fd = g_worker_heartbeat_fd.load(std::memory_order_relaxed);
    if (fd < 0)
        return;
    // Raw write (not stdio): the run loop calls this and must never
    // block on a locale-aware buffered layer; a short or failed write
    // just means one missed heartbeat.
    static const char line[] = "{\"hb\":0}\n";
    [[maybe_unused]] ssize_t wrote = ::write(fd, line, sizeof(line) - 1);
}

const char *
toString(IsolationMode mode)
{
    switch (mode) {
      case IsolationMode::Thread:
        return "thread";
      case IsolationMode::Process:
        return "process";
    }
    return "?";
}

IsolationMode
parseIsolationMode(const std::string &text)
{
    for (IsolationMode mode :
         {IsolationMode::Thread, IsolationMode::Process}) {
        if (text == toString(mode))
            return mode;
    }
    fatal("unknown isolation mode '", text,
          "'; expected thread or process");
}

void
setIsolationDefault(IsolationMode mode)
{
    g_isolation_default.store(static_cast<int>(mode),
                              std::memory_order_relaxed);
}

void
clearIsolationDefault()
{
    g_isolation_default.store(-1, std::memory_order_relaxed);
}

IsolationMode
effectiveIsolationMode(const std::optional<IsolationMode> &configured)
{
    if (configured)
        return *configured;
    const int fallback =
        g_isolation_default.load(std::memory_order_relaxed);
    if (fallback >= 0)
        return static_cast<IsolationMode>(fallback);
    if (const char *env = std::getenv("MNPU_ISOLATE"))
        return parseIsolationMode(env);
    return IsolationMode::Thread;
}

bool
builtWithSanitizer()
{
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
    return true;
#else
    return false;
#endif
#else
    return false;
#endif
}

namespace
{

/** Best-effort full write; the scratch file is a private tmpfile, so
 * short writes only happen on ENOSPC — then the supervisor just sees
 * a torn line and counts the attempt as a crash. */
void
writeLine(int fd, std::string line)
{
    line.push_back('\n');
    const char *data = line.data();
    std::size_t left = line.size();
    while (left > 0) {
        ssize_t wrote = ::write(fd, data, left);
        if (wrote <= 0) {
            if (wrote < 0 && errno == EINTR)
                continue;
            return;
        }
        data += wrote;
        left -= static_cast<std::size_t>(wrote);
    }
}

void
applyWorkerLimits(const ProcessPoolOptions &options)
{
    // RLIMIT_AS is meaningless under ASan/TSan: the shadow mappings
    // alone reserve terabytes of address space, so any realistic cap
    // would kill every worker at startup.
    if (options.memoryBytes > 0 && !builtWithSanitizer()) {
        rlimit limit;
        limit.rlim_cur = static_cast<rlim_t>(options.memoryBytes);
        limit.rlim_max = static_cast<rlim_t>(options.memoryBytes);
        (void)::setrlimit(RLIMIT_AS, &limit);
    }
    if (options.cpuSeconds > 0) {
        // Soft limit delivers SIGXCPU (default: kill); the hard limit
        // two seconds later is the SIGKILL backstop in case a custom
        // handler ever swallows it.
        rlimit limit;
        limit.rlim_cur = options.cpuSeconds;
        limit.rlim_max = options.cpuSeconds + 2;
        (void)::setrlimit(RLIMIT_CPU, &limit);
    }
}

/** The forked child's entire life. Never returns; never calls exit()
 * (the forked image's static destructors must not run). */
[[noreturn]] void
runChild(std::FILE *scratch, std::size_t index, std::uint32_t attempt,
         double wallBudget, const ProcessPool::Worker &worker,
         const ProcessPoolOptions &options)
{
    // The parent's two-stage SIGINT/SIGTERM handler must not fire in
    // workers: the supervisor forwards SIGTERM to cancel them, and
    // that must kill, not set a flag the child never checks.
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    // Drop the inherited checkpoint-lock descriptors: flock() follows
    // the shared open file description, so keeping them would let an
    // orphaned worker pin the campaign lock after a kill -9'd
    // supervisor and block its own resume.
    closeCheckpointLocksInForkedChild();
    applyWorkerLimits(options);
    const int fd = ::fileno(scratch);
    g_worker_heartbeat_fd.store(fd, std::memory_order_relaxed);
    // Heartbeat: proves the harness started and the wire works. No
    // "key" field, so the record parser skips it by construction.
    writeLine(fd, std::string("{\"hb\":") + std::to_string(attempt) +
                      "}");
    try {
        SweepCheckpointRecord record = worker(index, attempt, wallBudget);
        writeLine(fd, toJsonLine(record));
    } catch (...) {
        // The worker closure is expected to contain job failures in
        // the record itself; an escaping exception is harness-level
        // and counts as a crash.
        ::_exit(81);
    }
    ::_exit(0);
}

/** Everything the supervisor read back from one attempt's scratch. */
struct ScratchResult
{
    bool sawHeartbeat = false;
    bool haveRecord = false;
    SweepCheckpointRecord record;
};

ScratchResult
readScratch(std::FILE *scratch)
{
    ScratchResult result;
    std::fflush(scratch);
    if (std::fseek(scratch, 0, SEEK_END) != 0)
        return result;
    const long size = std::ftell(scratch);
    if (size <= 0 || std::fseek(scratch, 0, SEEK_SET) != 0)
        return result;
    std::string content(static_cast<std::size_t>(size), '\0');
    if (std::fread(content.data(), 1, content.size(), scratch) !=
        content.size())
        return result;
    std::size_t begin = 0;
    while (begin < content.size()) {
        std::size_t end = content.find('\n', begin);
        if (end == std::string::npos)
            end = content.size();
        const std::string line = content.substr(begin, end - begin);
        begin = end + 1;
        if (line.rfind("{\"hb\":", 0) == 0)
            result.sawHeartbeat = true;
        SweepCheckpointRecord record;
        if (parseJsonLine(line, record)) {
            // Last parseable record wins, mirroring checkpoint load.
            result.record = std::move(record);
            result.haveRecord = true;
        }
    }
    return result;
}

std::string
describeCrash(int status, bool deadlineExceeded, double deadline,
              double wallBudget, bool sawHeartbeat)
{
    std::string what;
    if (deadlineExceeded) {
        what = detail::concat(
            "lease deadline exceeded (ran > ", deadline,
            " s against a ", wallBudget,
            " s cooperative budget); killed");
    } else if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        const char *name = ::strsignal(sig);
        what = detail::concat("killed by signal ", sig, " (",
                              name ? name : "?", ")");
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        what = detail::concat("exited with code ", WEXITSTATUS(status),
                              " without a result record");
    } else {
        what = "exited cleanly without a result record";
    }
    if (!sawHeartbeat)
        what += "; no heartbeat — died before the worker harness "
                "started";
    return what;
}

} // namespace

ProcessPool::ProcessPool(const ProcessPoolOptions &options)
    : options_(options)
{
    if (options_.workers == 0)
        options_.workers = 1;
}

std::vector<ProcessPool::Outcome>
ProcessPool::run(std::size_t count, const Worker &worker,
                 const Budget &budget,
                 const RetryReported &retryReported,
                 const Complete &complete)
{
    std::vector<Outcome> outcomes(count);
    if (count == 0)
        return outcomes;

    struct JobState
    {
        std::uint32_t attempt = 0; //!< attempts started so far
        SteadyClock::time_point readyAt{}; //!< backoff gate
        SteadyClock::time_point firstStart{};
        bool started = false;
    };
    struct Lease
    {
        std::size_t index = 0;
        std::uint32_t attempt = 0;
        pid_t pid = -1;
        std::FILE *scratch = nullptr;
        SteadyClock::time_point start{};
        double wallBudget = 0;
        double deadline = 0; //!< seconds; 0 = none
        long scratchSize = 0; //!< last seen size (heartbeat liveness)
    };

    std::vector<JobState> jobs(count);
    std::deque<std::size_t> queue;
    for (std::size_t index = 0; index < count; ++index)
        queue.push_back(index);
    std::vector<Lease> leases;
    leases.reserve(options_.workers);
    std::size_t finished = 0;
    bool cancelling = false;
    SteadyClock::time_point cancelledAt{};
    bool killedAfterCancel = false;

    auto finishJob = [&](std::size_t index) {
        Outcome &outcome = outcomes[index];
        outcome.wallSeconds = jobs[index].started
                                  ? secondsSince(jobs[index].firstStart)
                                  : 0;
        ++finished;
        if (complete)
            complete(index, outcome);
    };

    auto spawn = [&](std::size_t index) {
        JobState &state = jobs[index];
        if (!state.started) {
            state.started = true;
            state.firstStart = SteadyClock::now();
        }
        const std::uint32_t attempt = ++state.attempt;
        const double wallBudget =
            budget ? budget(index, attempt) : 0.0;
        std::FILE *scratch = std::tmpfile();
        if (!scratch)
            fatal("process pool: cannot create worker scratch file: ",
                  std::strerror(errno));
        // Flush stdio before forking so buffered output is not
        // duplicated into the child's exit path.
        std::fflush(stdout);
        std::fflush(stderr);
        const pid_t pid = ::fork();
        if (pid < 0) {
            std::fclose(scratch);
            fatal("process pool: fork failed: ", std::strerror(errno));
        }
        if (pid == 0)
            runChild(scratch, index, attempt, wallBudget, worker,
                     options_); // never returns
        Lease lease;
        lease.index = index;
        lease.attempt = attempt;
        lease.pid = pid;
        lease.scratch = scratch;
        lease.start = SteadyClock::now();
        lease.wallBudget = wallBudget;
        // Floor the deadline so a tiny adaptive budget cannot kill a
        // worker that is merely slow to fork and warm up.
        lease.deadline =
            wallBudget > 0
                ? std::max(options_.graceFactor * wallBudget, 1.0)
                : 0.0;
        leases.push_back(lease);
    };

    auto settleLease = [&](const Lease &lease, int status,
                           bool deadlineExceeded) {
        ScratchResult scratch = readScratch(lease.scratch);
        std::fclose(lease.scratch);
        Outcome &outcome = outcomes[lease.index];
        outcome.attempts = lease.attempt;
        if (cancelling) {
            outcome.cancelled = true;
            finishJob(lease.index);
            return;
        }
        const bool exitedClean = !deadlineExceeded && WIFEXITED(status) &&
                                 WEXITSTATUS(status) == 0;
        if (exitedClean && scratch.haveRecord) {
            if (retryReported &&
                retryReported(lease.index, lease.attempt,
                              scratch.record)) {
                // Worker-reported verdict overruled (e.g. escalating
                // an adaptive-budget timeout): re-lease immediately,
                // no backoff — the worker did not misbehave.
                queue.push_back(lease.index);
                return;
            }
            outcome.reported = true;
            outcome.record = std::move(scratch.record);
            finishJob(lease.index);
            return;
        }
        // A crash: the child died without delivering a verdict.
        ++outcome.crashes;
        outcome.crashError =
            describeCrash(status, deadlineExceeded, lease.deadline,
                          lease.wallBudget, scratch.sawHeartbeat);
        if (lease.attempt <= options_.retries) {
            const double delay = std::min(
                options_.backoffSeconds *
                    std::exp2(static_cast<double>(outcome.crashes - 1)),
                options_.backoffCapSeconds);
            jobs[lease.index].readyAt =
                SteadyClock::now() +
                std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(delay));
            outcome.backoffSeconds += delay;
            queue.push_back(lease.index);
            return;
        }
        outcome.reported = false; // quarantined
        finishJob(lease.index);
    };

    while (finished < count) {
        // Cooperative stop: forward the signal to live workers and
        // report everything not yet finished as cancelled.
        if (!cancelling && options_.stopToken &&
            options_.stopToken->load(std::memory_order_relaxed)) {
            cancelling = true;
            cancelledAt = SteadyClock::now();
            for (const Lease &lease : leases)
                ::kill(lease.pid, SIGTERM);
            while (!queue.empty()) {
                const std::size_t index = queue.front();
                queue.pop_front();
                Outcome &outcome = outcomes[index];
                outcome.cancelled = true;
                outcome.attempts =
                    std::max<std::uint32_t>(1, jobs[index].attempt);
                finishJob(index);
            }
        }
        if (cancelling && !killedAfterCancel && !leases.empty() &&
            secondsSince(cancelledAt) > 2.0) {
            // A worker stuck in uninterruptible state outlives the
            // SIGTERM grace; escalate so cancellation stays prompt.
            killedAfterCancel = true;
            for (const Lease &lease : leases)
                ::kill(lease.pid, SIGKILL);
        }

        if (!cancelling) {
            const auto now = SteadyClock::now();
            for (auto it = queue.begin();
                 it != queue.end() && leases.size() < options_.workers;) {
                if (jobs[*it].readyAt > now) {
                    ++it; // still backing off
                    continue;
                }
                const std::size_t index = *it;
                it = queue.erase(it);
                spawn(index);
            }
        }

        for (std::size_t i = 0; i < leases.size();) {
            Lease lease = leases[i];
            int status = 0;
            const pid_t got = ::waitpid(lease.pid, &status, WNOHANG);
            if (got == lease.pid) {
                leases.erase(leases.begin() +
                             static_cast<std::ptrdiff_t>(i));
                settleLease(lease, status, false);
                continue;
            }
            if (got < 0) {
                // Reaped elsewhere (should not happen): count it as a
                // crash with an unknown cause rather than hang.
                leases.erase(leases.begin() +
                             static_cast<std::ptrdiff_t>(i));
                settleLease(lease, 0x7f, false);
                continue;
            }
            if (!cancelling && lease.deadline > 0) {
                // Heartbeat-aware lease: scratch-file growth (worker
                // heartbeats, snapshot-adjacent progress, the result
                // line) proves the worker is alive, so the lease
                // clock restarts from the last beat instead of the
                // attempt start. A worker livelocked before reaching
                // any watchdog check writes nothing and still blows
                // the deadline.
                struct stat status_buf;
                if (::fstat(::fileno(lease.scratch), &status_buf) == 0 &&
                    static_cast<long>(status_buf.st_size) >
                        lease.scratchSize) {
                    leases[i].scratchSize =
                        static_cast<long>(status_buf.st_size);
                    leases[i].start = SteadyClock::now();
                    lease = leases[i];
                }
                if (secondsSince(lease.start) > lease.deadline) {
                    ::kill(lease.pid, SIGKILL);
                    ::waitpid(lease.pid, &status, 0); // prompt
                    leases.erase(leases.begin() +
                                 static_cast<std::ptrdiff_t>(i));
                    settleLease(lease, status, true);
                    continue;
                }
            }
            ++i;
        }

        if (finished < count)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return outcomes;
}

} // namespace mnpu
