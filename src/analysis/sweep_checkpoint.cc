#include "analysis/sweep_checkpoint.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/config.hh"
#include "common/logging.hh"

namespace mnpu
{

const char *
toString(SweepStatus status)
{
    switch (status) {
      case SweepStatus::Ok:
        return "ok";
      case SweepStatus::Failed:
        return "failed";
      case SweepStatus::TimedOut:
        return "timed_out";
      case SweepStatus::Skipped:
        return "skipped";
    }
    return "?";
}

namespace
{

bool
statusFromString(const std::string &text, SweepStatus &status)
{
    for (SweepStatus candidate :
         {SweepStatus::Ok, SweepStatus::Failed, SweepStatus::TimedOut,
          SweepStatus::Skipped}) {
        if (text == toString(candidate)) {
            status = candidate;
            return true;
        }
    }
    return false;
}

void
appendEscaped(std::string &out, const std::string &text)
{
    out.push_back('"');
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
appendDouble(std::string &out, double value)
{
    // Round-trippable doubles; NaN/inf are not valid JSON, so emit
    // null and read it back as NaN (failed jobs carry NaN metrics).
    if (!std::isfinite(value)) {
        out += "null";
        return;
    }
    std::ostringstream stream;
    stream.precision(17);
    stream << value;
    out += stream.str();
}

/**
 * Minimal JSON reader for the exact subset toJsonLine() emits: one
 * flat object of string keys mapping to strings, numbers, null, or
 * arrays of strings/numbers. No nested objects, no bools.
 */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : text_(text) {}

    bool ok() const { return ok_; }
    void fail() { ok_ = false; }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    char peek()
    {
        skipSpace();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool atEnd()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

    std::string readString()
    {
        std::string out;
        if (!consume('"')) {
            fail();
            return out;
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                char esc = text_[pos_++];
                switch (esc) {
                  case '"':
                  case '\\':
                  case '/':
                    out.push_back(esc);
                    break;
                  case 'n':
                    out.push_back('\n');
                    break;
                  case 't':
                    out.push_back('\t');
                    break;
                  case 'r':
                    out.push_back('\r');
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail();
                        return out;
                    }
                    unsigned code = static_cast<unsigned>(std::strtoul(
                        text_.substr(pos_, 4).c_str(), nullptr, 16));
                    pos_ += 4;
                    // The writer only emits \u00XX control codes.
                    out.push_back(static_cast<char>(code & 0xff));
                    break;
                  }
                  default:
                    fail();
                    return out;
                }
            } else {
                out.push_back(c);
            }
        }
        fail(); // unterminated string
        return out;
    }

    double readNumber()
    {
        skipSpace();
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return std::nan("");
        }
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        double value = std::strtod(begin, &end);
        if (end == begin) {
            fail();
            return 0;
        }
        pos_ += static_cast<std::size_t>(end - begin);
        return value;
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace

std::string
toJsonLine(const SweepCheckpointRecord &record)
{
    std::string out;
    out.reserve(256);
    out += "{\"key\":";
    appendEscaped(out, record.key);
    out += ",\"status\":";
    appendEscaped(out, toString(record.status));
    out += ",\"error\":";
    appendEscaped(out, record.error);
    out += ",\"wall_seconds\":";
    appendDouble(out, record.wallSeconds);
    out += ",\"models\":[";
    for (std::size_t i = 0; i < record.models.size(); ++i) {
        if (i)
            out.push_back(',');
        appendEscaped(out, record.models[i]);
    }
    out += "],\"speedups\":[";
    for (std::size_t i = 0; i < record.speedups.size(); ++i) {
        if (i)
            out.push_back(',');
        appendDouble(out, record.speedups[i]);
    }
    out += "],\"slowdowns\":[";
    for (std::size_t i = 0; i < record.slowdowns.size(); ++i) {
        if (i)
            out.push_back(',');
        appendDouble(out, record.slowdowns[i]);
    }
    out += "],\"geomean_speedup\":";
    appendDouble(out, record.geomeanSpeedup);
    out += ",\"fairness\":";
    appendDouble(out, record.fairnessValue);
    out += ",\"local_cycles\":[";
    for (std::size_t i = 0; i < record.localCycles.size(); ++i) {
        if (i)
            out.push_back(',');
        out += std::to_string(record.localCycles[i]);
    }
    out += "],\"global_cycles\":";
    out += std::to_string(record.globalCycles);
    out += "}";
    return out;
}

bool
parseJsonLine(const std::string &line, SweepCheckpointRecord &record)
{
    JsonReader reader(line);
    if (!reader.consume('{'))
        return false;
    SweepCheckpointRecord parsed;
    bool saw_key = false;
    bool first = true;
    while (reader.ok() && !reader.consume('}')) {
        if (!first && !reader.consume(','))
            return false;
        first = false;
        std::string field = reader.readString();
        if (!reader.ok() || !reader.consume(':'))
            return false;
        if (field == "key") {
            parsed.key = reader.readString();
            saw_key = true;
        } else if (field == "status") {
            if (!statusFromString(reader.readString(), parsed.status))
                return false;
        } else if (field == "error") {
            parsed.error = reader.readString();
        } else if (field == "wall_seconds") {
            parsed.wallSeconds = reader.readNumber();
        } else if (field == "geomean_speedup") {
            parsed.geomeanSpeedup = reader.readNumber();
        } else if (field == "fairness") {
            parsed.fairnessValue = reader.readNumber();
        } else if (field == "global_cycles") {
            parsed.globalCycles =
                static_cast<std::uint64_t>(reader.readNumber());
        } else if (field == "models") {
            if (!reader.consume('['))
                return false;
            while (reader.ok() && !reader.consume(']')) {
                if (!parsed.models.empty() && !reader.consume(','))
                    return false;
                parsed.models.push_back(reader.readString());
            }
        } else if (field == "speedups" || field == "slowdowns" ||
                   field == "local_cycles") {
            if (!reader.consume('['))
                return false;
            bool first_item = true;
            while (reader.ok() && !reader.consume(']')) {
                if (!first_item && !reader.consume(','))
                    return false;
                first_item = false;
                double value = reader.readNumber();
                if (field == "speedups")
                    parsed.speedups.push_back(value);
                else if (field == "slowdowns")
                    parsed.slowdowns.push_back(value);
                else
                    parsed.localCycles.push_back(
                        static_cast<std::uint64_t>(value));
            }
        } else {
            // Unknown field (newer writer): skip its scalar/array value
            // so old readers stay forward-compatible.
            if (reader.peek() == '"') {
                reader.readString();
            } else if (reader.consume('[')) {
                while (reader.ok() && !reader.consume(']')) {
                    if (reader.peek() == '"')
                        reader.readString();
                    else
                        reader.readNumber();
                    reader.consume(',');
                }
            } else {
                reader.readNumber();
            }
        }
    }
    if (!reader.ok() || !saw_key || !reader.atEnd())
        return false;
    record = std::move(parsed);
    return true;
}

SweepCheckpointWriter::SweepCheckpointWriter(const std::string &path)
    : path_(path)
{
    // If a crash tore the previous trailing line, appending right after
    // it would merge the next record into the garbage; start it on a
    // fresh line instead so only the torn record is lost.
    bool needs_newline = false;
    if (std::FILE *existing = std::fopen(path.c_str(), "rb")) {
        if (std::fseek(existing, -1, SEEK_END) == 0) {
            int last = std::fgetc(existing);
            needs_newline = last != EOF && last != '\n';
        }
        std::fclose(existing);
    }
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_)
        fatal("cannot open checkpoint file '", path, "' for appending");
    if (needs_newline)
        std::fputc('\n', file_);
}

SweepCheckpointWriter::~SweepCheckpointWriter()
{
    if (file_)
        std::fclose(file_);
}

void
SweepCheckpointWriter::append(const SweepCheckpointRecord &record)
{
    // Serialize outside the lock; write + flush as one critical
    // section so concurrent workers never tear a line.
    std::string line = toJsonLine(record);
    line.push_back('\n');
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fflush(file_) != 0) {
        fatal("cannot append to checkpoint file '", path_, "'");
    }
}

std::map<std::string, SweepCheckpointRecord>
loadSweepCheckpoint(const std::string &path)
{
    std::map<std::string, SweepCheckpointRecord> records;
    std::ifstream file(path);
    if (!file)
        return records; // no checkpoint yet: nothing completed
    std::string line;
    std::size_t lineno = 0;
    std::size_t malformed = 0;
    while (std::getline(file, line)) {
        ++lineno;
        if (trim(line).empty())
            continue;
        SweepCheckpointRecord record;
        if (parseJsonLine(line, record)) {
            records[record.key] = std::move(record);
        } else {
            ++malformed;
            warn("checkpoint '", path, "' line ", lineno,
                 ": malformed record skipped");
        }
    }
    if (malformed > 1) {
        // One torn trailing line is the expected kill signature; more
        // suggests the file is not a checkpoint at all.
        warn("checkpoint '", path, "': ", malformed,
             " malformed lines — is this really a sweep checkpoint?");
    }
    return records;
}

} // namespace mnpu
