#include "analysis/sweep_checkpoint.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/config.hh"
#include "common/logging.hh"

namespace mnpu
{

const char *
toString(SweepStatus status)
{
    switch (status) {
      case SweepStatus::Ok:
        return "ok";
      case SweepStatus::Failed:
        return "failed";
      case SweepStatus::TimedOut:
        return "timed_out";
      case SweepStatus::Skipped:
        return "skipped";
      case SweepStatus::Crashed:
        return "crashed";
    }
    return "?";
}

namespace
{

bool
statusFromString(const std::string &text, SweepStatus &status)
{
    for (SweepStatus candidate :
         {SweepStatus::Ok, SweepStatus::Failed, SweepStatus::TimedOut,
          SweepStatus::Skipped, SweepStatus::Crashed}) {
        if (text == toString(candidate)) {
            status = candidate;
            return true;
        }
    }
    return false;
}

void
appendEscaped(std::string &out, const std::string &text)
{
    out.push_back('"');
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
appendDouble(std::string &out, double value)
{
    // Round-trippable doubles; NaN/inf are not valid JSON, so emit
    // null and read it back as NaN (failed jobs carry NaN metrics).
    if (!std::isfinite(value)) {
        out += "null";
        return;
    }
    std::ostringstream stream;
    stream.precision(17);
    stream << value;
    out += stream.str();
}

/**
 * Minimal JSON reader for the exact subset toJsonLine() emits: one
 * flat object of string keys mapping to strings, numbers, null, or
 * arrays of strings/numbers. No nested objects, no bools.
 */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : text_(text) {}

    bool ok() const { return ok_; }
    void fail() { ok_ = false; }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    char peek()
    {
        skipSpace();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool atEnd()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

    std::string readString()
    {
        std::string out;
        if (!consume('"')) {
            fail();
            return out;
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                char esc = text_[pos_++];
                switch (esc) {
                  case '"':
                  case '\\':
                  case '/':
                    out.push_back(esc);
                    break;
                  case 'n':
                    out.push_back('\n');
                    break;
                  case 't':
                    out.push_back('\t');
                    break;
                  case 'r':
                    out.push_back('\r');
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail();
                        return out;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char digit = text_[pos_ + static_cast<std::size_t>(i)];
                        unsigned nibble;
                        if (digit >= '0' && digit <= '9')
                            nibble = static_cast<unsigned>(digit - '0');
                        else if (digit >= 'a' && digit <= 'f')
                            nibble = static_cast<unsigned>(digit - 'a') + 10;
                        else if (digit >= 'A' && digit <= 'F')
                            nibble = static_cast<unsigned>(digit - 'A') + 10;
                        else {
                            fail(); // garbage hex: reject the line
                            return out;
                        }
                        code = code << 4 | nibble;
                    }
                    pos_ += 4;
                    // The writer only emits \u00XX control codes; a
                    // larger code point would need UTF-8 encoding this
                    // reader does not do, so reject it rather than
                    // silently mangle a hand-edited file.
                    if (code > 0xff) {
                        fail();
                        return out;
                    }
                    out.push_back(static_cast<char>(code));
                    break;
                  }
                  default:
                    fail();
                    return out;
                }
            } else {
                out.push_back(c);
            }
        }
        fail(); // unterminated string
        return out;
    }

    double readNumber()
    {
        skipSpace();
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return std::nan("");
        }
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        double value = std::strtod(begin, &end);
        if (end == begin) {
            fail();
            return 0;
        }
        pos_ += static_cast<std::size_t>(end - begin);
        return value;
    }

    /**
     * Exact 64-bit integer: the writer emits cycle and byte counters
     * via std::to_string, and a double round-trip would lose precision
     * above 2^53, silently breaking bit-identical restore.
     */
    std::uint64_t readUInt64()
    {
        skipSpace();
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        errno = 0;
        unsigned long long value = std::strtoull(begin, &end, 10);
        if (end == begin || *begin == '-' || errno == ERANGE) {
            fail();
            return 0;
        }
        pos_ += static_cast<std::size_t>(end - begin);
        return value;
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace

std::string
toJsonLine(const SweepCheckpointRecord &record)
{
    std::string out;
    out.reserve(512);
    auto doubleArray = [&out](const char *name,
                              const std::vector<double> &values) {
        out += ",\"";
        out += name;
        out += "\":[";
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (i)
                out.push_back(',');
            appendDouble(out, values[i]);
        }
        out += "]";
    };
    auto u64Array = [&out](const char *name,
                           const std::vector<std::uint64_t> &values) {
        out += ",\"";
        out += name;
        out += "\":[";
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (i)
                out.push_back(',');
            out += std::to_string(values[i]);
        }
        out += "]";
    };
    out += "{\"key\":";
    appendEscaped(out, record.key);
    out += ",\"v\":";
    out += std::to_string(record.version);
    out += ",\"status\":";
    appendEscaped(out, toString(record.status));
    out += ",\"error\":";
    appendEscaped(out, record.error);
    out += ",\"wall_seconds\":";
    appendDouble(out, record.wallSeconds);
    out += ",\"models\":[";
    for (std::size_t i = 0; i < record.models.size(); ++i) {
        if (i)
            out.push_back(',');
        appendEscaped(out, record.models[i]);
    }
    out += "]";
    doubleArray("speedups", record.speedups);
    doubleArray("slowdowns", record.slowdowns);
    out += ",\"geomean_speedup\":";
    appendDouble(out, record.geomeanSpeedup);
    out += ",\"fairness\":";
    appendDouble(out, record.fairnessValue);
    u64Array("local_cycles", record.localCycles);
    u64Array("finished_at_global", record.finishedAtGlobal);
    doubleArray("pe_utilization", record.peUtilization);
    u64Array("traffic_bytes", record.trafficBytes);
    u64Array("walk_bytes", record.walkBytes);
    u64Array("tlb_hits", record.tlbHits);
    u64Array("tlb_misses", record.tlbMisses);
    u64Array("walks", record.walks);
    out += ",\"layer_finish_local\":[";
    for (std::size_t i = 0; i < record.layerFinishLocal.size(); ++i) {
        if (i)
            out.push_back(',');
        out.push_back('[');
        const auto &layers = record.layerFinishLocal[i];
        for (std::size_t j = 0; j < layers.size(); ++j) {
            if (j)
                out.push_back(',');
            out += std::to_string(layers[j]);
        }
        out.push_back(']');
    }
    out += "],\"global_cycles\":";
    out += std::to_string(record.globalCycles);
    out += ",\"dram_energy_pj\":";
    appendDouble(out, record.dramEnergyPj);
    out += ",\"dram_row_hits\":";
    out += std::to_string(record.dramRowHits);
    out += ",\"dram_row_misses\":";
    out += std::to_string(record.dramRowMisses);
    if (record.serving) {
        // Flat serving_* keys — this reader's JSON subset has no
        // nested objects — emitted only for serving records so batch
        // lines (and the committed batch goldens) stay byte-identical.
        const ServingSummary &s = *record.serving;
        auto u64Field = [&out](const char *name, std::uint64_t value) {
            out += ",\"";
            out += name;
            out += "\":";
            out += std::to_string(value);
        };
        auto doubleField = [&out](const char *name, double value) {
            out += ",\"";
            out += name;
            out += "\":";
            appendDouble(out, value);
        };
        u64Field("serving_offered", s.offered);
        u64Field("serving_completed", s.completed);
        u64Field("serving_slo_good", s.sloGood);
        u64Field("serving_rounds", s.rounds);
        u64Field("serving_prefill_tokens", s.prefillTokens);
        u64Field("serving_decode_tokens", s.decodeTokens);
        u64Field("serving_kv_read_bytes", s.kvReadBytes);
        u64Field("serving_makespan_cycles", s.makespanCycles);
        doubleField("serving_ttft_p50", s.ttftP50);
        doubleField("serving_ttft_p99", s.ttftP99);
        doubleField("serving_ttft_mean", s.ttftMean);
        doubleField("serving_tpot_p50", s.tpotP50);
        doubleField("serving_tpot_p99", s.tpotP99);
        doubleField("serving_latency_p50", s.latencyP50);
        doubleField("serving_latency_p99", s.latencyP99);
        doubleField("serving_offered_per_mcycle", s.offeredPerMcycle);
        doubleField("serving_goodput_per_mcycle", s.goodputPerMcycle);
    }
    out += "}";
    return out;
}

bool
parseJsonLine(const std::string &line, SweepCheckpointRecord &record)
{
    JsonReader reader(line);
    if (!reader.consume('{'))
        return false;
    SweepCheckpointRecord parsed;
    parsed.version = 1; // records without "v" predate versioning
    auto readDoubleArray = [&reader](std::vector<double> &out) {
        if (!reader.consume('['))
            return false;
        bool first_item = true;
        while (reader.ok() && !reader.consume(']')) {
            if (!first_item && !reader.consume(','))
                return false;
            first_item = false;
            out.push_back(reader.readNumber());
        }
        return reader.ok();
    };
    auto readU64Array = [&reader](std::vector<std::uint64_t> &out) {
        if (!reader.consume('['))
            return false;
        bool first_item = true;
        while (reader.ok() && !reader.consume(']')) {
            if (!first_item && !reader.consume(','))
                return false;
            first_item = false;
            out.push_back(reader.readUInt64());
        }
        return reader.ok();
    };
    // Unknown field (newer writer): skip its value — string, number,
    // or arbitrarily nested array — so old readers stay
    // forward-compatible.
    std::function<void()> skipValue = [&reader, &skipValue]() {
        if (reader.peek() == '"') {
            reader.readString();
        } else if (reader.consume('[')) {
            bool first_item = true;
            while (reader.ok() && !reader.consume(']')) {
                if (!first_item && !reader.consume(',')) {
                    reader.fail();
                    return;
                }
                first_item = false;
                skipValue();
            }
        } else {
            reader.readNumber();
        }
    };
    bool saw_key = false;
    bool first = true;
    while (reader.ok() && !reader.consume('}')) {
        if (!first && !reader.consume(','))
            return false;
        first = false;
        std::string field = reader.readString();
        if (!reader.ok() || !reader.consume(':'))
            return false;
        if (field == "key") {
            parsed.key = reader.readString();
            saw_key = true;
        } else if (field == "v") {
            parsed.version =
                static_cast<std::uint32_t>(reader.readUInt64());
        } else if (field == "status") {
            if (!statusFromString(reader.readString(), parsed.status))
                return false;
        } else if (field == "error") {
            parsed.error = reader.readString();
        } else if (field == "wall_seconds") {
            parsed.wallSeconds = reader.readNumber();
        } else if (field == "geomean_speedup") {
            parsed.geomeanSpeedup = reader.readNumber();
        } else if (field == "fairness") {
            parsed.fairnessValue = reader.readNumber();
        } else if (field == "dram_energy_pj") {
            parsed.dramEnergyPj = reader.readNumber();
        } else if (field == "global_cycles") {
            parsed.globalCycles = reader.readUInt64();
        } else if (field == "dram_row_hits") {
            parsed.dramRowHits = reader.readUInt64();
        } else if (field == "dram_row_misses") {
            parsed.dramRowMisses = reader.readUInt64();
        } else if (field == "models") {
            if (!reader.consume('['))
                return false;
            while (reader.ok() && !reader.consume(']')) {
                if (!parsed.models.empty() && !reader.consume(','))
                    return false;
                parsed.models.push_back(reader.readString());
            }
        } else if (field == "speedups") {
            if (!readDoubleArray(parsed.speedups))
                return false;
        } else if (field == "slowdowns") {
            if (!readDoubleArray(parsed.slowdowns))
                return false;
        } else if (field == "pe_utilization") {
            if (!readDoubleArray(parsed.peUtilization))
                return false;
        } else if (field == "local_cycles") {
            if (!readU64Array(parsed.localCycles))
                return false;
        } else if (field == "finished_at_global") {
            if (!readU64Array(parsed.finishedAtGlobal))
                return false;
        } else if (field == "traffic_bytes") {
            if (!readU64Array(parsed.trafficBytes))
                return false;
        } else if (field == "walk_bytes") {
            if (!readU64Array(parsed.walkBytes))
                return false;
        } else if (field == "tlb_hits") {
            if (!readU64Array(parsed.tlbHits))
                return false;
        } else if (field == "tlb_misses") {
            if (!readU64Array(parsed.tlbMisses))
                return false;
        } else if (field == "walks") {
            if (!readU64Array(parsed.walks))
                return false;
        } else if (field.rfind("serving_", 0) == 0) {
            ServingSummary &s =
                parsed.serving ? *parsed.serving
                               : parsed.serving.emplace();
            if (field == "serving_offered")
                s.offered = reader.readUInt64();
            else if (field == "serving_completed")
                s.completed = reader.readUInt64();
            else if (field == "serving_slo_good")
                s.sloGood = reader.readUInt64();
            else if (field == "serving_rounds")
                s.rounds = reader.readUInt64();
            else if (field == "serving_prefill_tokens")
                s.prefillTokens = reader.readUInt64();
            else if (field == "serving_decode_tokens")
                s.decodeTokens = reader.readUInt64();
            else if (field == "serving_kv_read_bytes")
                s.kvReadBytes = reader.readUInt64();
            else if (field == "serving_makespan_cycles")
                s.makespanCycles = reader.readUInt64();
            else if (field == "serving_ttft_p50")
                s.ttftP50 = reader.readNumber();
            else if (field == "serving_ttft_p99")
                s.ttftP99 = reader.readNumber();
            else if (field == "serving_ttft_mean")
                s.ttftMean = reader.readNumber();
            else if (field == "serving_tpot_p50")
                s.tpotP50 = reader.readNumber();
            else if (field == "serving_tpot_p99")
                s.tpotP99 = reader.readNumber();
            else if (field == "serving_latency_p50")
                s.latencyP50 = reader.readNumber();
            else if (field == "serving_latency_p99")
                s.latencyP99 = reader.readNumber();
            else if (field == "serving_offered_per_mcycle")
                s.offeredPerMcycle = reader.readNumber();
            else if (field == "serving_goodput_per_mcycle")
                s.goodputPerMcycle = reader.readNumber();
            else
                skipValue(); // newer serving field: forward-compatible
        } else if (field == "layer_finish_local") {
            if (!reader.consume('['))
                return false;
            bool first_core = true;
            while (reader.ok() && !reader.consume(']')) {
                if (!first_core && !reader.consume(','))
                    return false;
                first_core = false;
                std::vector<std::uint64_t> layers;
                if (!readU64Array(layers))
                    return false;
                parsed.layerFinishLocal.push_back(std::move(layers));
            }
        } else {
            skipValue();
        }
    }
    if (!reader.ok() || !saw_key || !reader.atEnd())
        return false;
    record = std::move(parsed);
    return true;
}

namespace
{

// Live lock descriptors, so a forked worker can drop its inherited
// copies (closeCheckpointLocksInForkedChild). Registration happens on
// the thread that owns the writer — in process mode that is the
// single supervisor thread, so the mutex is never mid-acquisition at
// fork time.
std::mutex g_lock_registry_mutex;
std::vector<int> g_live_lock_fds;

void
registerLockFd(int fd)
{
    std::lock_guard<std::mutex> guard(g_lock_registry_mutex);
    g_live_lock_fds.push_back(fd);
}

void
unregisterLockFd(int fd)
{
    std::lock_guard<std::mutex> guard(g_lock_registry_mutex);
    g_live_lock_fds.erase(std::remove(g_live_lock_fds.begin(),
                                      g_live_lock_fds.end(), fd),
                          g_live_lock_fds.end());
}

} // namespace

void
closeCheckpointLocksInForkedChild()
{
    std::lock_guard<std::mutex> guard(g_lock_registry_mutex);
    for (int fd : g_live_lock_fds)
        ::close(fd);
    g_live_lock_fds.clear();
}

CheckpointLock::CheckpointLock(const std::string &checkpointPath)
    : lockPath_(checkpointPath + ".lock")
{
    fd_ = ::open(lockPath_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0)
        fatal("cannot create checkpoint lock '", lockPath_,
              "': ", std::strerror(errno));
    if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
        // Read the holder's PID for the message; the flock itself is
        // the authority, the PID is diagnosis. A PID that no longer
        // responds to kill(pid, 0) while the flock is held means the
        // lockfile content is stale but a live process (likely a
        // descendant sharing the open file description) still owns it.
        char buf[32] = {};
        ssize_t got = ::pread(fd_, buf, sizeof(buf) - 1, 0);
        long pid = got > 0 ? std::strtol(buf, nullptr, 10) : 0;
        std::string holder = "unknown process";
        if (pid > 0) {
            bool alive = ::kill(static_cast<pid_t>(pid), 0) == 0 ||
                         errno != ESRCH;
            holder = detail::concat(
                "pid ", pid,
                alive ? " (alive)"
                      : " (not running; lock held via an "
                        "inherited descriptor)");
        }
        ::close(fd_);
        fd_ = -1;
        fatal("checkpoint '", checkpointPath,
              "' is locked by another campaign (", holder,
              " holds '", lockPath_,
              "'); refusing to interleave records — wait for it or "
              "point --checkpoint elsewhere");
    }
    // Record our PID for the next contender's error message. flock()
    // dies with the process, so a kill -9 leaves only harmless stale
    // content that the next holder overwrites.
    if (::ftruncate(fd_, 0) == 0) {
        std::string pid = std::to_string(::getpid());
        pid.push_back('\n');
        (void)!::pwrite(fd_, pid.data(), pid.size(), 0);
    }
    registerLockFd(fd_);
}

CheckpointLock::~CheckpointLock()
{
    if (fd_ >= 0) {
        unregisterLockFd(fd_);
        ::close(fd_); // releases the flock
    }
}

SweepCheckpointWriter::SweepCheckpointWriter(const std::string &path)
    : path_(path), lock_(path)
{
    // If a crash tore the previous trailing line, appending right after
    // it would merge the next record into the garbage; start it on a
    // fresh line instead so only the torn record is lost.
    bool needs_newline = false;
    if (std::FILE *existing = std::fopen(path.c_str(), "rb")) {
        if (std::fseek(existing, -1, SEEK_END) == 0) {
            int last = std::fgetc(existing);
            needs_newline = last != EOF && last != '\n';
        }
        std::fclose(existing);
    }
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_)
        fatal("cannot open checkpoint file '", path, "' for appending");
    if (needs_newline)
        std::fputc('\n', file_);
}

SweepCheckpointWriter::~SweepCheckpointWriter()
{
    if (file_)
        std::fclose(file_);
}

void
SweepCheckpointWriter::append(const SweepCheckpointRecord &record)
{
    // Serialize outside the lock; write + flush as one critical
    // section so concurrent workers never tear a line.
    std::string line = toJsonLine(record);
    line.push_back('\n');
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fflush(file_) != 0) {
        fatal("cannot append to checkpoint file '", path_, "'");
    }
}

std::map<std::string, SweepCheckpointRecord>
loadSweepCheckpoint(const std::string &path)
{
    std::map<std::string, SweepCheckpointRecord> records;
    std::ifstream file(path);
    if (!file)
        return records; // no checkpoint yet: nothing completed
    std::string line;
    std::size_t lineno = 0;
    std::size_t malformed = 0;
    while (std::getline(file, line)) {
        ++lineno;
        if (trim(line).empty())
            continue;
        SweepCheckpointRecord record;
        if (parseJsonLine(line, record)) {
            records[record.key] = std::move(record);
        } else {
            ++malformed;
            warn("checkpoint '", path, "' line ", lineno,
                 ": malformed record skipped");
        }
    }
    if (malformed > 1) {
        // One torn trailing line is the expected kill signature; more
        // suggests the file is not a checkpoint at all.
        warn("checkpoint '", path, "': ", malformed,
             " malformed lines — is this really a sweep checkpoint?");
    }
    return records;
}

namespace
{

/**
 * Canonical payload for conflict detection: wallSeconds is the one
 * field expected to differ between bit-identical completions of the
 * same job, so it is zeroed before comparing.
 */
std::string
canonicalPayload(SweepCheckpointRecord record)
{
    record.wallSeconds = 0;
    return toJsonLine(record);
}

} // namespace

std::vector<SweepCheckpointRecord>
mergeSweepCheckpoints(const std::vector<std::string> &paths,
                      CheckpointMergeStats *stats)
{
    CheckpointMergeStats local;
    std::vector<SweepCheckpointRecord> merged;
    std::map<std::string, std::size_t> slotOfKey;
    for (const std::string &path : paths) {
        std::ifstream file(path);
        if (!file) {
            warn("merge: shard '", path,
                 "' is missing or unreadable; treating as empty");
            continue;
        }
        ++local.files;
        std::string line;
        std::size_t lineno = 0;
        while (std::getline(file, line)) {
            ++lineno;
            if (trim(line).empty())
                continue;
            SweepCheckpointRecord record;
            if (!parseJsonLine(line, record)) {
                ++local.malformed;
                warn("merge: shard '", path, "' line ", lineno,
                     ": malformed record skipped");
                continue;
            }
            auto found = slotOfKey.find(record.key);
            if (found == slotOfKey.end()) {
                slotOfKey.emplace(record.key, merged.size());
                merged.push_back(std::move(record));
                continue;
            }
            SweepCheckpointRecord &held = merged[found->second];
            ++local.duplicates;
            const bool heldOk = held.status == SweepStatus::Ok;
            const bool newOk = record.status == SweepStatus::Ok;
            if (heldOk && newOk &&
                canonicalPayload(held) != canonicalPayload(record)) {
                ++local.conflicts;
                warn("merge: key ", record.key,
                     " completed ok with different payloads across "
                     "shards (shard '", path, "' line ", lineno,
                     " wins as newest) — determinism bug or "
                     "mis-partitioned campaign?");
            }
            // Ok beats non-ok; within a tier the newest record wins
            // (mirrors loadSweepCheckpoint's last-occurrence-wins).
            if (newOk || !heldOk)
                held = std::move(record);
        }
    }
    local.records = merged.size();
    if (stats)
        *stats = local;
    return merged;
}

} // namespace mnpu
