/**
 * @file
 * The §4.6 co-runner performance model and mapping study.
 *
 * A multi-factor regression predicts the slowdown a workload suffers
 * from a given co-runner using only solo-profiled factors — PE
 * utilization, memory traffic per execution, and the execution-time
 * ratio — trained on randomly generated networks (DeepSniffer-style).
 * The MappingEvaluator then scores all pairings of an 8-workload set
 * onto four dual-core NPUs: oracle / worst / random / model-predicted.
 */

#ifndef MNPU_ANALYSIS_PREDICTOR_HH
#define MNPU_ANALYSIS_PREDICTOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/mixes.hh"
#include "analysis/regression.hh"

namespace mnpu
{

/** Solo-run (Ideal) profile of one workload: the predictor's inputs. */
struct SoloProfile
{
    std::string name;
    double soloCycles = 0;     //!< Ideal local cycles
    double peUtilization = 0;
    double trafficBytes = 0;   //!< DRAM bytes per execution

    /** Average bandwidth demand in bytes per cycle. */
    double bwDemand() const
    {
        return soloCycles > 0 ? trafficBytes / soloCycles : 0.0;
    }
};

class CorunPredictor
{
  public:
    /** Feature vector for "self co-running with other". */
    static std::vector<double> features(const SoloProfile &self,
                                        const SoloProfile &other);

    /**
     * Record one observed (self, other) -> slowdown(self) sample.
     * @return false (sample dropped, with a warn) when the slowdown or
     * any derived feature is non-finite — the NaN-poisoned record of a
     * crashed or timed-out mix must not poison the fit. A non-positive
     * finite slowdown is a caller bug and fatal()s.
     */
    bool addSample(const SoloProfile &self, const SoloProfile &other,
                   double observed_slowdown);

    /** Fit the regression over all recorded samples; fatal() on zero. */
    void train();

    /** Predicted slowdown of @p self when co-running with @p other. */
    double predictSlowdown(const SoloProfile &self,
                           const SoloProfile &other) const;

    bool trained() const { return model_.fitted(); }
    std::size_t sampleCount() const { return targets_.size(); }

    /** Training-set mean squared error (diagnostics). */
    double trainingMse() const;

  private:
    LinearRegression model_;
    std::vector<std::vector<double>> samples_;
    std::vector<double> targets_;
};

/** Perf/fairness outcome of one mapping of 8 workloads to 4 pairs. */
struct MappingOutcome
{
    double perf = 0; //!< geomean speedup over the 8 workloads
    double fair = 0; //!< Eq. 1 fairness over the 8 slowdowns
};

class MappingEvaluator
{
  public:
    /**
     * Record the measured dual-core slowdowns of model pair (a, b):
     * @p slowdown_a for a when paired with b, and vice versa. Symmetric
     * pairs store one entry; (a,a) stores slowdown_a twice.
     */
    void setMeasuredPair(std::uint32_t a, std::uint32_t b,
                         double slowdown_a, double slowdown_b);

    /** Measured slowdown of @p self when paired with @p other. */
    double measuredSlowdown(std::uint32_t self, std::uint32_t other) const;

    /** Outcome of one pairing of the 8-slot workload set. */
    MappingOutcome evaluate(const std::vector<std::uint32_t> &set8,
                            const Pairing &pairing) const;

    struct Study
    {
        MappingOutcome oracle;    //!< best-by-measured pairing
        MappingOutcome worst;     //!< worst-by-measured pairing
        MappingOutcome random;    //!< expectation over all pairings
        MappingOutcome predicted; //!< best-by-model pairing, measured
    };

    /**
     * Score all 105 pairings of @p set8. @p profiles and @p predictor
     * drive the "predicted" selection; both may be omitted together, in
     * which case predicted falls back to random.
     */
    Study study(const std::vector<std::uint32_t> &set8,
                const std::vector<SoloProfile> *profiles,
                const CorunPredictor *predictor) const;

  private:
    static std::uint64_t key(std::uint32_t a, std::uint32_t b)
    {
        return (static_cast<std::uint64_t>(a) << 32) | b;
    }

    std::map<std::uint64_t, double> slowdowns_; //!< (self,other) -> sd
};

} // namespace mnpu

#endif // MNPU_ANALYSIS_PREDICTOR_HH
