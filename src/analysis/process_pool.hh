/**
 * @file
 * Process-isolated sweep workers: a fork-based worker pool whose
 * supervisor survives anything a job can do — SIGSEGV, abort(),
 * runaway allocation, a hard livelock — and quarantines the job
 * instead of losing the campaign.
 *
 * Thread-mode sweeps (SweepRunner's default) contain *cooperative*
 * failures: exceptions, cycle budgets, wall-clock watchdogs. They
 * cannot contain a crash, because a worker thread that dereferences a
 * bad pointer takes the whole process — and the whole multi-hour
 * campaign — with it. Process mode trades a little fork overhead for
 * a hard fault boundary: each job attempt runs in its own forked
 * child under setrlimit() guards, reports its result over a private
 * scratch file in the checkpoint JSONL wire format, and the
 * supervisor turns any child death (signal, nonzero exit, blown
 * lease deadline) into a retry with exponential backoff and, when
 * retries are exhausted, a quarantined SweepStatus::Crashed record.
 *
 * Design notes (see DESIGN.md §11 for the full protocol):
 *  - fork() without exec(): the child IS the running binary, so
 *    registered in-memory workloads and the pre-warmed trace/Ideal
 *    caches are inherited copy-on-write for free. An exec()-style
 *    worker would need every bench/test to serialize its network
 *    definitions to disk.
 *  - The wire format is the checkpoint-v2 JSON line (toJsonLine /
 *    parseJsonLine): one hardened parser for disk and IPC alike. The
 *    child writes a `{"hb":<attempt>}` heartbeat line first — it has
 *    no "key", so the record parser naturally skips it — then the
 *    result line, then _exit()s (never exit(): static destructors of
 *    the forked image must not run twice).
 *  - The supervisor is a single-threaded poll loop (waitpid WNOHANG +
 *    short sleeps): no supervision threads means fork() never races a
 *    lock-holding sibling thread.
 */

#ifndef MNPU_ANALYSIS_PROCESS_POOL_HH
#define MNPU_ANALYSIS_PROCESS_POOL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/sweep_checkpoint.hh"

namespace mnpu
{

/** How a sweep layer runs its jobs. */
enum class IsolationMode
{
    Thread,  //!< in-process worker threads (fast; crash = campaign lost)
    Process, //!< forked worker processes (crash = job quarantined)
};

const char *toString(IsolationMode mode);

/** Parse "thread" | "process"; throws FatalError otherwise. */
IsolationMode parseIsolationMode(const std::string &text);

/**
 * Process-wide default used when SweepOptions does not pin a mode
 * (set from --isolate on the CLI/bench command line).
 */
void setIsolationDefault(IsolationMode mode);

/** Undo setIsolationDefault (test hygiene). */
void clearIsolationDefault();

/**
 * Resolve the isolation mode a sweep runs under: an explicitly
 * configured mode wins, then the process default (--isolate), then
 * the MNPU_ISOLATE environment variable, then Thread.
 */
IsolationMode
effectiveIsolationMode(const std::optional<IsolationMode> &configured);

/**
 * True when this binary is built under ASan/TSan. Sanitizers reserve
 * terabytes of shadow address space, so the RLIMIT_AS worker guard is
 * skipped under them (and rlimit-dependent tests should skip too).
 */
bool builtWithSanitizer();

/**
 * Liveness heartbeat for process-isolated workers: appends a
 * `{"hb":0}` line to this worker's scratch file (skipped by the
 * record parser by construction — it has no "key"). The supervisor's
 * lease deadline is heartbeat-aware: scratch-file growth proves the
 * worker is computing (e.g. busy fsyncing a large snapshot), so the
 * lease clock restarts instead of declaring the worker hung. No-op
 * outside a worker child. Wire it into RunBudget::heartbeat.
 */
void processPoolHeartbeat();

/** Supervision policy for one ProcessPool. */
struct ProcessPoolOptions
{
    /** Concurrent worker processes (>= 1). */
    std::size_t workers = 1;

    /** Crash retries per job before quarantine (attempts = 1 + this). */
    std::uint32_t retries = 2;

    /**
     * First crash-retry delay; doubles per subsequent crash of the
     * same job, capped at backoffCapSeconds. A systematic crasher
     * burns its retries quickly without hammering the machine.
     */
    double backoffSeconds = 0.05;
    double backoffCapSeconds = 2.0;

    /**
     * Lease deadline = graceFactor x the attempt's wall budget: a
     * worker that blows straight past its *cooperative* watchdog by
     * this factor is hung (livelocked before reaching a watchdog
     * check), so the supervisor SIGKILLs it. No wall budget (0) means
     * no deadline — the job may legitimately run for hours.
     */
    double graceFactor = 4.0;

    /** RLIMIT_AS per worker in bytes (0 = unlimited; skipped under
     * sanitizers, see builtWithSanitizer()). */
    std::uint64_t memoryBytes = 0;

    /** RLIMIT_CPU per worker in seconds (0 = unlimited). */
    std::uint32_t cpuSeconds = 0;

    /**
     * Cooperative stop: when raised, the supervisor forwards SIGTERM
     * to every live worker, reaps them, and reports all unfinished
     * jobs as cancelled.
     */
    const std::atomic<bool> *stopToken = nullptr;
};

class ProcessPool
{
  public:
    /** What supervision concluded about one job. */
    struct Outcome
    {
        /** The worker delivered a parseable result record (which may
         * itself report a contained failure — that is the *worker's*
         * verdict, not a crash). False = quarantined after crashes. */
        bool reported = false;
        SweepCheckpointRecord record; //!< valid when reported
        std::uint32_t attempts = 1;   //!< last attempt number
        std::uint32_t crashes = 0;    //!< attempts that died hard
        double backoffSeconds = 0;    //!< total retry delay slept
        double wallSeconds = 0;       //!< supervision wall clock
        std::string crashError;       //!< last crash description
        bool cancelled = false;       //!< stop token ended the job
    };

    /**
     * Runs in the forked child. Must return the job's result record;
     * an exception escaping it is a crash. @p wallBudget is the
     * cooperative budget the supervisor derived for this attempt (0 =
     * unlimited) — pass it into the job's RunBudget so the in-child
     * watchdog and the supervisor's lease deadline agree.
     */
    using Worker = std::function<SweepCheckpointRecord(
        std::size_t index, std::uint32_t attempt, double wallBudget)>;

    /** Wall budget in seconds for (index, attempt); 0 = unlimited. */
    using Budget =
        std::function<double(std::size_t index, std::uint32_t attempt)>;

    /**
     * Whether a worker-*reported* record warrants a fresh attempt
     * (e.g. the adaptive-budget timeout escalation); crashes retry on
     * the supervisor's own policy and never consult this.
     */
    using RetryReported = std::function<bool(
        std::size_t index, std::uint32_t attempt,
        const SweepCheckpointRecord &record)>;

    /** Invoked on the supervisor thread as each job finishes. */
    using Complete =
        std::function<void(std::size_t index, const Outcome &outcome)>;

    explicit ProcessPool(const ProcessPoolOptions &options);

    /**
     * Supervise @p count jobs to completion; outcomes come back in
     * index order. Throws FatalError only for supervisor-level
     * failures (fork/scratch-file exhaustion), never for anything a
     * worker does.
     */
    std::vector<Outcome> run(std::size_t count, const Worker &worker,
                             const Budget &budget = nullptr,
                             const RetryReported &retryReported = nullptr,
                             const Complete &complete = nullptr);

  private:
    ProcessPoolOptions options_;
};

} // namespace mnpu

#endif // MNPU_ANALYSIS_PROCESS_POOL_HH
