#include "analysis/predictor.hh"

#include <algorithm>
#include <cmath>

#include "analysis/metrics.hh"
#include "common/logging.hh"

namespace mnpu
{

std::vector<double>
CorunPredictor::features(const SoloProfile &self, const SoloProfile &other)
{
    double bw_self = self.bwDemand();
    double bw_other = other.bwDemand();
    double ratio =
        self.soloCycles > 0 && other.soloCycles > 0
            ? std::log(self.soloCycles / other.soloCycles)
            : 0.0;
    return {
        1.0,
        bw_self,
        bw_other,
        self.peUtilization,
        other.peUtilization,
        bw_self * bw_other, // joint bandwidth pressure
        ratio,              // execution-time ratio correction factor
    };
}

bool
CorunPredictor::addSample(const SoloProfile &self, const SoloProfile &other,
                          double observed_slowdown)
{
    // Crashed or timed-out mixes reach the predictor as NaN-poisoned
    // records (sweep_checkpoint's Failed/Crashed convention). One such
    // sample would poison the whole normal-equation fit, so reject it
    // instead of training on it; a non-positive finite slowdown is a
    // caller bug, not a crashed mix, and stays fatal.
    if (!std::isfinite(observed_slowdown)) {
        warn("predictor: rejecting non-finite slowdown sample (",
             self.name, " vs ", other.name, ")");
        return false;
    }
    if (observed_slowdown <= 0.0)
        fatal("predictor: slowdown must be positive");
    std::vector<double> row = features(self, other);
    for (double value : row) {
        if (!std::isfinite(value)) {
            warn("predictor: rejecting non-finite feature sample (",
                 self.name, " vs ", other.name, ")");
            return false;
        }
    }
    samples_.push_back(std::move(row));
    targets_.push_back(observed_slowdown);
    return true;
}

void
CorunPredictor::train()
{
    if (samples_.empty())
        fatal("predictor: no training samples");
    model_.fit(samples_, targets_);
}

double
CorunPredictor::predictSlowdown(const SoloProfile &self,
                                const SoloProfile &other) const
{
    double predicted = model_.predict(features(self, other));
    // A co-runner never speeds you up beyond Ideal; clamp to sane range.
    return std::max(predicted, 1.0);
}

double
CorunPredictor::trainingMse() const
{
    return model_.mse(samples_, targets_);
}

void
MappingEvaluator::setMeasuredPair(std::uint32_t a, std::uint32_t b,
                                  double slowdown_a, double slowdown_b)
{
    slowdowns_[key(a, b)] = slowdown_a;
    slowdowns_[key(b, a)] = slowdown_b;
}

double
MappingEvaluator::measuredSlowdown(std::uint32_t self,
                                   std::uint32_t other) const
{
    auto it = slowdowns_.find(key(self, other));
    if (it == slowdowns_.end())
        fatal("no measured slowdown for pair (", self, ", ", other, ")");
    return it->second;
}

MappingOutcome
MappingEvaluator::evaluate(const std::vector<std::uint32_t> &set8,
                           const Pairing &pairing) const
{
    mnpu_assert(set8.size() == 8, "mapping sets have 8 workloads");
    std::vector<double> slowdown_list;
    std::vector<double> speedup_list;
    slowdown_list.reserve(8);
    speedup_list.reserve(8);
    for (const auto &pair : pairing) {
        std::uint32_t a = set8[pair[0]];
        std::uint32_t b = set8[pair[1]];
        double sd_a = measuredSlowdown(a, b);
        double sd_b = measuredSlowdown(b, a);
        slowdown_list.push_back(sd_a);
        slowdown_list.push_back(sd_b);
        speedup_list.push_back(1.0 / sd_a);
        speedup_list.push_back(1.0 / sd_b);
    }
    MappingOutcome outcome;
    outcome.perf = geomean(speedup_list);
    outcome.fair = fairness(slowdown_list);
    return outcome;
}

MappingEvaluator::Study
MappingEvaluator::study(const std::vector<std::uint32_t> &set8,
                        const std::vector<SoloProfile> *profiles,
                        const CorunPredictor *predictor) const
{
    if ((profiles == nullptr) != (predictor == nullptr))
        fatal("mapping study: provide profiles and predictor together");

    const auto &pairings = allPairingsOf8();
    Study result;
    double perf_sum = 0.0;
    double fair_sum = 0.0;
    bool first = true;
    double best_predicted_perf = 0.0;

    for (const Pairing &pairing : pairings) {
        MappingOutcome outcome = evaluate(set8, pairing);
        perf_sum += outcome.perf;
        fair_sum += outcome.fair;
        if (first || outcome.perf > result.oracle.perf)
            result.oracle = outcome;
        if (first || outcome.perf < result.worst.perf)
            result.worst = outcome;

        if (predictor != nullptr) {
            std::vector<double> predicted_speedups;
            predicted_speedups.reserve(8);
            for (const auto &pair : pairing) {
                const SoloProfile &pa = (*profiles)[set8[pair[0]]];
                const SoloProfile &pb = (*profiles)[set8[pair[1]]];
                predicted_speedups.push_back(
                    1.0 / predictor->predictSlowdown(pa, pb));
                predicted_speedups.push_back(
                    1.0 / predictor->predictSlowdown(pb, pa));
            }
            double predicted_perf = geomean(predicted_speedups);
            if (first || predicted_perf > best_predicted_perf) {
                best_predicted_perf = predicted_perf;
                result.predicted = outcome;
            }
        }
        first = false;
    }
    double count = static_cast<double>(pairings.size());
    result.random.perf = perf_sum / count;
    result.random.fair = fair_sum / count;
    if (predictor == nullptr)
        result.predicted = result.random;
    return result;
}

} // namespace mnpu
