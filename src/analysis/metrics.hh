/**
 * @file
 * Evaluation metrics from §4.2 of the paper: relative speedup vs the
 * Ideal baseline, the Van Craeynest fairness metric (Eq. 1), geometric
 * means, CDFs, and box-plot summary statistics (Fig. 8).
 */

#ifndef MNPU_ANALYSIS_METRICS_HH
#define MNPU_ANALYSIS_METRICS_HH

#include <cstddef>
#include <vector>

namespace mnpu
{

/** speedup = ideal_cycles / observed_cycles (1.0 = no slowdown). */
double speedup(double ideal_cycles, double observed_cycles);

/** slowdown = observed_cycles / ideal_cycles (inverse of speedup). */
double slowdown(double ideal_cycles, double observed_cycles);

/** Geometric mean; fatal() on empty input or non-positive values. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** Population standard deviation. */
double stddev(const std::vector<double> &values);

/**
 * Eq. 1: Fairness = 1 - sigma/mu over the per-workload slowdowns of one
 * mix. 1.0 = perfectly balanced.
 */
double fairness(const std::vector<double> &slowdowns);

/** Five-number summary for box plots. */
struct BoxStats
{
    double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
};

/** Compute box statistics (linear-interpolated quartiles). */
BoxStats boxStats(std::vector<double> values);

/** One (value, cumulative fraction) point of an empirical CDF. */
struct CdfPoint
{
    double value;
    double fraction;
};

/** Empirical CDF of @p values (sorted ascending). */
std::vector<CdfPoint> cdf(std::vector<double> values);

/** Linear-interpolated quantile of an already-sorted vector. */
double quantileSorted(const std::vector<double> &sorted, double q);

} // namespace mnpu

#endif // MNPU_ANALYSIS_METRICS_HH
