#include "analysis/sweep_runner.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "common/errors.hh"
#include "common/logging.hh"

namespace mnpu
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double>(SteadyClock::now() - start)
        .count();
}

/** FNV-1a 64-bit over an incrementally fed canonical serialization. */
class JobHasher
{
  public:
    void feed(const std::string &text)
    {
        for (char c : text)
            mix(static_cast<unsigned char>(c));
        mix(0x1f); // field separator so "ab"+"c" != "a"+"bc"
    }

    template <typename T>
    void feedInt(T value)
    {
        feed(std::to_string(value));
    }

    void feedDouble(double value)
    {
        // 17 significant digits round-trip any double exactly;
        // std::to_string's fixed 6 decimals would alias close values.
        std::ostringstream stream;
        stream.precision(17);
        stream << value;
        feed(stream.str());
    }

    template <typename T>
    void feedVector(const std::optional<std::vector<T>> &values)
    {
        if (!values) {
            feed("-");
            return;
        }
        for (T value : *values)
            feedInt(value);
        feed(";");
    }

    std::string hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(16, '0');
        std::uint64_t value = hash_;
        for (int i = 15; i >= 0; --i) {
            out[static_cast<std::size_t>(i)] = digits[value & 0xf];
            value >>= 4;
        }
        return out;
    }

  private:
    void mix(unsigned char byte)
    {
        hash_ ^= byte;
        hash_ *= 0x100000001b3ULL;
    }

    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/** A failed job's outcome: models kept, metrics poisoned with NaN so
 * downstream aggregation yields NaN instead of crashing or lying. */
MixOutcome
failedOutcome(const std::vector<std::string> &models)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    MixOutcome outcome;
    outcome.models = models;
    outcome.speedups.assign(models.size(), nan);
    outcome.slowdowns.assign(models.size(), nan);
    outcome.geomeanSpeedup = nan;
    outcome.fairnessValue = nan;
    return outcome;
}

/** Rebuild a full MixOutcome — raw telemetry included — from a (v2+)
 * checkpoint record, bit-identical to the executed one. */
MixOutcome
restoredOutcome(const SweepCheckpointRecord &checkpoint)
{
    MixOutcome outcome;
    outcome.models = checkpoint.models;
    outcome.speedups = checkpoint.speedups;
    outcome.slowdowns = checkpoint.slowdowns;
    outcome.geomeanSpeedup = checkpoint.geomeanSpeedup;
    outcome.fairnessValue = checkpoint.fairnessValue;
    outcome.raw.globalCycles = checkpoint.globalCycles;
    outcome.raw.dramEnergyPj = checkpoint.dramEnergyPj;
    outcome.raw.dramRowHits = checkpoint.dramRowHits;
    outcome.raw.dramRowMisses = checkpoint.dramRowMisses;
    outcome.raw.cores.resize(checkpoint.localCycles.size());
    for (std::size_t i = 0; i < outcome.raw.cores.size(); ++i) {
        CoreResult &core = outcome.raw.cores[i];
        if (i < checkpoint.models.size())
            core.workloadName = checkpoint.models[i];
        core.localCycles = checkpoint.localCycles[i];
        if (i < checkpoint.finishedAtGlobal.size())
            core.finishedAtGlobal = checkpoint.finishedAtGlobal[i];
        if (i < checkpoint.peUtilization.size())
            core.peUtilization = checkpoint.peUtilization[i];
        if (i < checkpoint.trafficBytes.size())
            core.trafficBytes = checkpoint.trafficBytes[i];
        if (i < checkpoint.walkBytes.size())
            core.walkBytes = checkpoint.walkBytes[i];
        if (i < checkpoint.tlbHits.size())
            core.tlbHits = checkpoint.tlbHits[i];
        if (i < checkpoint.tlbMisses.size())
            core.tlbMisses = checkpoint.tlbMisses[i];
        if (i < checkpoint.walks.size())
            core.walks = checkpoint.walks[i];
        if (i < checkpoint.layerFinishLocal.size())
            core.layerFinishLocal = checkpoint.layerFinishLocal[i];
    }
    // The live components are gone, so rebuild the checkpoint-stable
    // subset of the telemetry snapshot from the restored scalars; an
    // executed run's full snapshot agrees with it metric-for-metric.
    outcome.raw.telemetry = telemetryFromResult(outcome.raw);
    return outcome;
}

} // namespace

SweepCheckpointRecord
checkpointRecordOf(const std::string &key, const SweepRecord &record)
{
    SweepCheckpointRecord checkpoint;
    checkpoint.key = key;
    checkpoint.status = record.status;
    checkpoint.error = record.error;
    checkpoint.wallSeconds = record.wallSeconds;
    checkpoint.models = record.outcome.models;
    checkpoint.speedups = record.outcome.speedups;
    checkpoint.slowdowns = record.outcome.slowdowns;
    checkpoint.geomeanSpeedup = record.outcome.geomeanSpeedup;
    checkpoint.fairnessValue = record.outcome.fairnessValue;
    const SimResult &raw = record.outcome.raw;
    checkpoint.globalCycles = raw.globalCycles;
    checkpoint.dramEnergyPj = raw.dramEnergyPj;
    checkpoint.dramRowHits = raw.dramRowHits;
    checkpoint.dramRowMisses = raw.dramRowMisses;
    checkpoint.localCycles.reserve(raw.cores.size());
    for (const auto &core : raw.cores) {
        checkpoint.localCycles.push_back(core.localCycles);
        checkpoint.finishedAtGlobal.push_back(core.finishedAtGlobal);
        checkpoint.peUtilization.push_back(core.peUtilization);
        checkpoint.trafficBytes.push_back(core.trafficBytes);
        checkpoint.walkBytes.push_back(core.walkBytes);
        checkpoint.tlbHits.push_back(core.tlbHits);
        checkpoint.tlbMisses.push_back(core.tlbMisses);
        checkpoint.walks.push_back(core.walks);
        checkpoint.layerFinishLocal.push_back(core.layerFinishLocal);
    }
    return checkpoint;
}

std::string
sweepJobKey(const SweepJob &job, const ArchConfig &arch,
            const NpuMemConfig &mem, ModelScale scale)
{
    // Everything that shapes the simulated outcome feeds the key.
    // A field left out here silently aliases two different sweeps in
    // one checkpoint file — the row-policy ablation's second sweep
    // once restored the first sweep's records exactly this way — so
    // over-include rather than under-include.
    JobHasher hasher;
    const SystemConfig &config = job.config;
    hasher.feed(toString(config.level));
    hasher.feedInt(config.idealResourceMultiplier);
    hasher.feedVector(config.dramBandwidthShares);
    hasher.feedVector(config.ptwQuota);
    hasher.feedVector(config.ptwMin);
    hasher.feedVector(config.ptwMax);
    hasher.feedInt(config.ptwStealing ? 1 : 0);
    hasher.feedInt(config.telemetryWindow);
    hasher.feedInt(config.requestTraceWindow);
    hasher.feedInt(config.maxGlobalCycles);
    // An injected fault changes the outcome, so it feeds the key —
    // but only when armed, so plain sweeps keep their historical keys.
    // checkLevel is intentionally excluded: checkers are passive
    // observers and a run is bit-identical at every level. The
    // scheduler kind is excluded for the same reason — the event
    // scheduler is proven bit-identical to per-cycle stepping (see
    // the golden/differential tests), so either may restore the
    // other's checkpoints.
    if (config.faultPlan.site != FaultSite::None) {
        hasher.feed("inject");
        hasher.feedInt(static_cast<int>(config.faultPlan.site));
        hasher.feedInt(config.faultPlan.triggerCount);
        hasher.feedInt(config.faultPlan.delayCycles);
    }
    // Fidelity is NOT passive — fast changes cycle counts within the
    // committed envelope — so it feeds the key when (and only when)
    // the run would actually resolve to fast. Feeding the *resolved*
    // kind (same fallback MultiCoreSystem applies: an armed injector
    // or any check level forces exact) rather than the requested one
    // keeps a fast-keyed record from ever holding exact-fallback
    // results; exact runs keep their historical keys.
    if (resolvedFidelityKind(config.fidelity,
                             config.faultPlan.site != FaultSite::None,
                             effectiveCheckLevel(config.checkLevel)) ==
        FidelityKind::Fast) {
        hasher.feed("fidelity-fast");
    }
    // The context's arch: dataflow and array/SPM geometry change
    // every trace.
    hasher.feed(arch.name);
    hasher.feedInt(arch.arrayRows);
    hasher.feedInt(arch.arrayCols);
    hasher.feedInt(arch.spmBytes);
    hasher.feedInt(arch.dataBytes);
    hasher.feedInt(arch.freqMhz);
    hasher.feedInt(static_cast<int>(arch.dataflow));
    hasher.feedInt(arch.dmaIssueWidth);
    hasher.feedInt(arch.dmaMaxOutstanding);
    hasher.feedInt(arch.busBytes);
    // The context overwrites config.mem, so hash the effective one —
    // with the complete DRAM timing (row policy, geometry, latencies,
    // energy), not just a summary.
    const DramTiming &timing = mem.timing;
    hasher.feed(timing.name);
    hasher.feedInt(static_cast<int>(timing.rowPolicy));
    hasher.feedInt(timing.ranks);
    hasher.feedInt(timing.bankGroups);
    hasher.feedInt(timing.banksPerGroup);
    hasher.feedInt(timing.rows);
    hasher.feedInt(timing.rowBytes);
    hasher.feedInt(timing.busBytes);
    hasher.feedInt(timing.burstLength);
    hasher.feedInt(timing.clockMhz);
    for (std::uint32_t cycles :
         {timing.tCL, timing.tCWL, timing.tRCD, timing.tRP,
          timing.tRAS, timing.tWR, timing.tRTP, timing.tCCD,
          timing.tRRD, timing.tFAW, timing.tWTR, timing.tRTW,
          timing.tREFI, timing.tRFC})
        hasher.feedInt(cycles);
    for (double energy :
         {timing.eActPrePj, timing.eReadPj, timing.eWritePj,
          timing.eRefreshPj, timing.backgroundMw})
        hasher.feedDouble(energy);
    hasher.feedInt(mem.channelsPerNpu);
    hasher.feedInt(mem.dramCapacityPerNpu);
    hasher.feedInt(mem.tlbEntriesPerNpu);
    hasher.feedInt(mem.tlbWays);
    hasher.feedInt(mem.ptwPerNpu);
    hasher.feedInt(mem.pageBytes);
    hasher.feedInt(mem.dramQueueDepth);
    hasher.feedInt(mem.translationEnabled ? 1 : 0);
    hasher.feedInt(static_cast<int>(scale));
    for (const auto &model : job.models)
        hasher.feed(model);
    return hasher.hex();
}

std::string
SweepStats::summary() const
{
    std::ostringstream stream;
    stream.precision(2);
    stream << std::fixed << runs << " runs";
    if (executed != runs)
        stream << " (" << executed << " executed)";
    stream << " in " << wallSeconds << " s on " << workers << " worker"
           << (workers == 1 ? "" : "s") << " (" << runsPerSecond
           << " runs/s executed; per-run sum " << jobSecondsSum
           << " s)";
    if (failed || timedOut || skipped || retried) {
        stream << " [" << ok << " ok";
        if (failed)
            stream << ", " << failed << " failed";
        if (timedOut)
            stream << ", " << timedOut << " timed out";
        if (skipped)
            stream << ", " << skipped << " skipped";
        if (retried)
            stream << ", " << retried << " retried";
        stream << "]";
    }
    return stream.str();
}

std::string
SweepStats::telemetrySummary() const
{
    std::ostringstream stream;
    stream.precision(3);
    stream << "simulated " << totalGlobalCycles << " global cycles, "
           << static_cast<double>(totalTrafficBytes) / (1 << 20)
           << " MiB DRAM traffic ("
           << static_cast<double>(totalWalkBytes) / (1 << 20)
           << " MiB walks), " << totalTlbMisses << " TLB misses, "
           << totalWalks << " walks, "
           << totalDramEnergyPj / 1e9 << " mJ DRAM energy";
    return stream.str();
}

SweepRunner::SweepRunner(std::size_t jobs) : pool_(jobs) {}

std::vector<SweepRecord>
SweepRunner::run(
    ExperimentContext &context, const std::vector<SweepJob> &jobs,
    const SweepOptions &options,
    const std::function<void(std::size_t, std::size_t)> &progress)
{
    const auto start = SteadyClock::now();
    const bool checkpointing = !options.checkpointPath.empty();
    const bool explicit_budget = options.jobTimeoutSeconds > 0;
    const bool adaptive_budget =
        !explicit_budget && options.budgetMultiplier > 0;

    // --- Resume: restore jobs already checkpointed ok. ---
    std::vector<std::string> keys;
    if (checkpointing || options.resume) {
        keys.reserve(jobs.size());
        for (const auto &job : jobs)
            keys.push_back(sweepJobKey(job, context.arch(),
                                       context.mem(), context.scale()));
    }
    std::map<std::string, SweepCheckpointRecord> completed;
    if (options.resume && checkpointing)
        completed = loadSweepCheckpoint(options.checkpointPath);

    std::vector<SweepRecord> records(jobs.size());
    std::vector<std::size_t> pending;
    pending.reserve(jobs.size());
    std::size_t legacy = 0;
    for (std::size_t index = 0; index < jobs.size(); ++index) {
        auto it = completed.empty() ? completed.end()
                                    : completed.find(keys[index]);
        if (it != completed.end() &&
            it->second.status == SweepStatus::Ok &&
            it->second.version >= kSweepCheckpointVersion) {
            records[index].status = SweepStatus::Skipped;
            records[index].outcome = restoredOutcome(it->second);
            records[index].wallSeconds = 0;
        } else {
            // An ok record from an older format lacks the raw
            // telemetry; restoring it would hand benches zeroed
            // counters, so re-execute instead.
            if (it != completed.end() &&
                it->second.status == SweepStatus::Ok)
                ++legacy;
            pending.push_back(index);
        }
    }
    if (legacy) {
        warn("checkpoint '", options.checkpointPath, "': ", legacy,
             " completed job(s) predate the full-telemetry format (v",
             kSweepCheckpointVersion, "); re-executing them");
    }

    std::unique_ptr<SweepCheckpointWriter> writer;
    if (checkpointing)
        writer = std::make_unique<SweepCheckpointWriter>(
            options.checkpointPath);

    const bool stopped_already =
        options.stopToken &&
        options.stopToken->load(std::memory_order_relaxed);

    // Pre-warm the shared caches: every distinct trace and Ideal
    // baseline is computed exactly once here (in parallel across
    // distinct keys), so the mix phase below touches them read-only.
    // Failures are deliberately ignored: a job whose model cannot be
    // built hits the same error again in its own runMix(), where it is
    // contained (or rethrown) per job instead of killing the sweep.
    if (!stopped_already) {
        std::vector<std::pair<std::string, std::uint32_t>> baselines;
        {
            std::set<std::pair<std::string, std::uint32_t>> unique;
            for (std::size_t index : pending) {
                const auto &job = jobs[index];
                const auto multiplier =
                    static_cast<std::uint32_t>(job.models.size());
                for (const auto &model : job.models)
                    unique.emplace(model, multiplier);
            }
            baselines.assign(unique.begin(), unique.end());
        }
        pool_.parallelForCollect(
            baselines.size(), [&](std::size_t index) {
                context.idealCycles(baselines[index].first,
                                    baselines[index].second);
            });
    }

    // --- The contained parallel phase. ---
    std::mutex controlMutex; //!< guards done counter + completed times
    std::size_t done = jobs.size() - pending.size();
    std::vector<double> completedTimes;

    auto adaptiveWallBudget = [&]() -> double {
        if (!adaptive_budget)
            return explicit_budget ? options.jobTimeoutSeconds : 0;
        std::lock_guard<std::mutex> lock(controlMutex);
        if (completedTimes.size() < 3)
            return 0; // not enough signal yet: unlimited
        std::vector<double> times = completedTimes;
        auto mid = times.begin() +
                   static_cast<std::ptrdiff_t>(times.size() / 2);
        std::nth_element(times.begin(), mid, times.end());
        return std::max(options.budgetMultiplier * *mid, 0.25);
    };

    auto finishOne = [&](std::size_t index, double wall_seconds) {
        std::lock_guard<std::mutex> lock(controlMutex);
        if (records[index].status == SweepStatus::Ok)
            completedTimes.push_back(wall_seconds);
        if (progress)
            progress(++done, jobs.size());
    };

    auto errors = pool_.parallelForCollect(
        pending.size(), [&](std::size_t pending_index) {
            const std::size_t index = pending[pending_index];
            const SweepJob &job = jobs[index];
            SweepRecord &record = records[index];
            const auto job_start = SteadyClock::now();

            double wall_budget = adaptiveWallBudget();
            std::exception_ptr failure;
            for (std::uint32_t attempt = 1;; ++attempt) {
                RunBudget budget;
                budget.maxGlobalCycles = options.jobMaxCycles;
                budget.wallClockSeconds = wall_budget;
                budget.stopToken = options.stopToken;
                record.attempts = attempt;
                try {
                    record.outcome = context.runMix(job.config,
                                                    job.models, budget);
                    record.status = SweepStatus::Ok;
                    record.error.clear();
                    break;
                } catch (const SimulationError &error) {
                    if (error.kind() == SimErrorKind::Cancelled) {
                        // Not checkpointed: a later resume re-runs it.
                        record.status = SweepStatus::Skipped;
                        record.error = detail::concat(
                            toString(error.kind()), ": ", error.what());
                        record.outcome = failedOutcome(job.models);
                        record.wallSeconds = secondsSince(job_start);
                        finishOne(index, record.wallSeconds);
                        return;
                    }
                    if (error.isBudget() && adaptive_budget &&
                        wall_budget > 0 && attempt == 1) {
                        // One escalating-budget retry: the median can
                        // undershoot genuinely heavy mixes.
                        wall_budget *= 2;
                        continue;
                    }
                    record.status = error.isBudget()
                                        ? SweepStatus::TimedOut
                                        : SweepStatus::Failed;
                    record.error = detail::concat(
                        toString(error.kind()), ": ", error.what());
                    record.outcome = failedOutcome(job.models);
                    failure = std::current_exception();
                    break;
                } catch (const std::exception &error) {
                    record.status = SweepStatus::Failed;
                    record.error = error.what();
                    record.outcome = failedOutcome(job.models);
                    failure = std::current_exception();
                    break;
                }
            }
            record.wallSeconds = secondsSince(job_start);
            if (writer)
                writer->append(checkpointRecordOf(keys[index], record));
            finishOne(index, record.wallSeconds);
            if (failure && !options.keepGoing)
                std::rethrow_exception(failure);
        });

    stats_ = SweepStats{};
    stats_.workers = pool_.jobs();
    stats_.runs = jobs.size();
    stats_.wallSeconds = secondsSince(start);
    for (const auto &record : records) {
        stats_.jobSecondsSum += record.wallSeconds;
        switch (record.status) {
          case SweepStatus::Ok:
            ++stats_.ok;
            break;
          case SweepStatus::Failed:
            ++stats_.failed;
            break;
          case SweepStatus::TimedOut:
            ++stats_.timedOut;
            break;
          case SweepStatus::Skipped:
            ++stats_.skipped;
            break;
        }
        if (record.attempts > 1)
            ++stats_.retried;
        // Aggregate telemetry: only records carrying real data (ok or
        // restored-ok; failed outcomes are NaN-poisoned and cancelled
        // skips are zeroed, contributing nothing to the sums).
        if (record.status == SweepStatus::Ok ||
            (record.status == SweepStatus::Skipped &&
             record.error.empty())) {
            const SimResult &raw = record.outcome.raw;
            stats_.totalGlobalCycles += raw.globalCycles;
            if (raw.dramEnergyPj == raw.dramEnergyPj) // skip NaN
                stats_.totalDramEnergyPj += raw.dramEnergyPj;
            for (const CoreResult &core : raw.cores) {
                stats_.totalTrafficBytes += core.trafficBytes;
                stats_.totalWalkBytes += core.walkBytes;
                stats_.totalTlbMisses += core.tlbMisses;
                stats_.totalWalks += core.walks;
            }
        }
    }
    stats_.executed = stats_.ok + stats_.failed + stats_.timedOut;
    if (stats_.wallSeconds > 0)
        stats_.runsPerSecond =
            static_cast<double>(stats_.executed) / stats_.wallSeconds;

    if (!options.keepGoing) {
        // Deterministic fail-fast: the first failing job in *input*
        // order surfaces, regardless of completion order.
        for (std::size_t pending_index = 0;
             pending_index < errors.size(); ++pending_index) {
            if (errors[pending_index])
                std::rethrow_exception(errors[pending_index]);
        }
    }
    return records;
}

} // namespace mnpu
