#include "analysis/sweep_runner.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "common/errors.hh"
#include "common/logging.hh"

namespace mnpu
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double>(SteadyClock::now() - start)
        .count();
}

/** FNV-1a 64-bit over an incrementally fed canonical serialization. */
class JobHasher
{
  public:
    void feed(const std::string &text)
    {
        for (char c : text)
            mix(static_cast<unsigned char>(c));
        mix(0x1f); // field separator so "ab"+"c" != "a"+"bc"
    }

    template <typename T>
    void feedInt(T value)
    {
        feed(std::to_string(value));
    }

    void feedDouble(double value)
    {
        // 17 significant digits round-trip any double exactly;
        // std::to_string's fixed 6 decimals would alias close values.
        std::ostringstream stream;
        stream.precision(17);
        stream << value;
        feed(stream.str());
    }

    template <typename T>
    void feedVector(const std::optional<std::vector<T>> &values)
    {
        if (!values) {
            feed("-");
            return;
        }
        for (T value : *values)
            feedInt(value);
        feed(";");
    }

    std::string hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(16, '0');
        std::uint64_t value = hash_;
        for (int i = 15; i >= 0; --i) {
            out[static_cast<std::size_t>(i)] = digits[value & 0xf];
            value >>= 4;
        }
        return out;
    }

  private:
    void mix(unsigned char byte)
    {
        hash_ ^= byte;
        hash_ *= 0x100000001b3ULL;
    }

    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/** A failed job's outcome: models kept, metrics poisoned with NaN so
 * downstream aggregation yields NaN instead of crashing or lying. */
MixOutcome
failedOutcome(const std::vector<std::string> &models)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    MixOutcome outcome;
    outcome.models = models;
    outcome.speedups.assign(models.size(), nan);
    outcome.slowdowns.assign(models.size(), nan);
    outcome.geomeanSpeedup = nan;
    outcome.fairnessValue = nan;
    return outcome;
}

/**
 * Fail-fast surfacing of a failure that happened in a worker process:
 * the original exception died with the worker, so rebuild the typed
 * SimulationError from the record's "<kind>: <message>" error string
 * (a crash quarantine reads "worker-crash: <detail>" and lands on
 * SimErrorKind::WorkerCrash); anything unrecognized was a FatalError.
 */
[[noreturn]] void
rethrowRecordError(const SweepRecord &record)
{
    for (SimErrorKind kind :
         {SimErrorKind::Deadlock, SimErrorKind::CycleBudget,
          SimErrorKind::WallClockTimeout, SimErrorKind::Cancelled,
          SimErrorKind::ProtocolViolation,
          SimErrorKind::RequestLifecycle, SimErrorKind::MmuConsistency,
          SimErrorKind::WorkerCrash}) {
        const std::string prefix = std::string(toString(kind)) + ": ";
        if (record.error.rfind(prefix, 0) == 0)
            throw SimulationError(kind,
                                  record.error.substr(prefix.size()));
    }
    throw FatalError(record.error);
}

/** Rebuild a full MixOutcome — raw telemetry included — from a (v2+)
 * checkpoint record, bit-identical to the executed one. */
MixOutcome
restoredOutcome(const SweepCheckpointRecord &checkpoint)
{
    MixOutcome outcome;
    outcome.models = checkpoint.models;
    outcome.speedups = checkpoint.speedups;
    outcome.slowdowns = checkpoint.slowdowns;
    outcome.geomeanSpeedup = checkpoint.geomeanSpeedup;
    outcome.fairnessValue = checkpoint.fairnessValue;
    outcome.raw.globalCycles = checkpoint.globalCycles;
    outcome.raw.dramEnergyPj = checkpoint.dramEnergyPj;
    outcome.raw.dramRowHits = checkpoint.dramRowHits;
    outcome.raw.dramRowMisses = checkpoint.dramRowMisses;
    outcome.raw.cores.resize(checkpoint.localCycles.size());
    for (std::size_t i = 0; i < outcome.raw.cores.size(); ++i) {
        CoreResult &core = outcome.raw.cores[i];
        if (i < checkpoint.models.size())
            core.workloadName = checkpoint.models[i];
        core.localCycles = checkpoint.localCycles[i];
        if (i < checkpoint.finishedAtGlobal.size())
            core.finishedAtGlobal = checkpoint.finishedAtGlobal[i];
        if (i < checkpoint.peUtilization.size())
            core.peUtilization = checkpoint.peUtilization[i];
        if (i < checkpoint.trafficBytes.size())
            core.trafficBytes = checkpoint.trafficBytes[i];
        if (i < checkpoint.walkBytes.size())
            core.walkBytes = checkpoint.walkBytes[i];
        if (i < checkpoint.tlbHits.size())
            core.tlbHits = checkpoint.tlbHits[i];
        if (i < checkpoint.tlbMisses.size())
            core.tlbMisses = checkpoint.tlbMisses[i];
        if (i < checkpoint.walks.size())
            core.walks = checkpoint.walks[i];
        if (i < checkpoint.layerFinishLocal.size())
            core.layerFinishLocal = checkpoint.layerFinishLocal[i];
    }
    // The live components are gone, so rebuild the checkpoint-stable
    // subset of the telemetry snapshot from the restored scalars; an
    // executed run's full snapshot agrees with it metric-for-metric.
    outcome.raw.telemetry = telemetryFromResult(outcome.raw);
    if (checkpoint.serving) {
        // Serving jobs append the serving.* schema after the scalar
        // subset — same order as the engine, so restored telemetry
        // stays bit-identical to executed telemetry.
        outcome.serving = checkpoint.serving;
        appendServingMetrics(outcome.raw.telemetry, *outcome.serving);
    }
    return outcome;
}

} // namespace

SweepCheckpointRecord
checkpointRecordOf(const std::string &key, const SweepRecord &record)
{
    SweepCheckpointRecord checkpoint;
    checkpoint.key = key;
    checkpoint.status = record.status;
    checkpoint.error = record.error;
    checkpoint.wallSeconds = record.wallSeconds;
    checkpoint.models = record.outcome.models;
    checkpoint.speedups = record.outcome.speedups;
    checkpoint.slowdowns = record.outcome.slowdowns;
    checkpoint.geomeanSpeedup = record.outcome.geomeanSpeedup;
    checkpoint.fairnessValue = record.outcome.fairnessValue;
    const SimResult &raw = record.outcome.raw;
    checkpoint.globalCycles = raw.globalCycles;
    checkpoint.dramEnergyPj = raw.dramEnergyPj;
    checkpoint.dramRowHits = raw.dramRowHits;
    checkpoint.dramRowMisses = raw.dramRowMisses;
    checkpoint.localCycles.reserve(raw.cores.size());
    for (const auto &core : raw.cores) {
        checkpoint.localCycles.push_back(core.localCycles);
        checkpoint.finishedAtGlobal.push_back(core.finishedAtGlobal);
        checkpoint.peUtilization.push_back(core.peUtilization);
        checkpoint.trafficBytes.push_back(core.trafficBytes);
        checkpoint.walkBytes.push_back(core.walkBytes);
        checkpoint.tlbHits.push_back(core.tlbHits);
        checkpoint.tlbMisses.push_back(core.tlbMisses);
        checkpoint.walks.push_back(core.walks);
        checkpoint.layerFinishLocal.push_back(core.layerFinishLocal);
    }
    checkpoint.serving = record.outcome.serving;
    return checkpoint;
}

std::string
sweepJobKey(const SweepJob &job, const ArchConfig &arch,
            const NpuMemConfig &mem, ModelScale scale)
{
    // Everything that shapes the simulated outcome feeds the key.
    // A field left out here silently aliases two different sweeps in
    // one checkpoint file — the row-policy ablation's second sweep
    // once restored the first sweep's records exactly this way — so
    // over-include rather than under-include.
    JobHasher hasher;
    const SystemConfig &config = job.config;
    hasher.feed(toString(config.level));
    hasher.feedInt(config.idealResourceMultiplier);
    hasher.feedVector(config.dramBandwidthShares);
    hasher.feedVector(config.ptwQuota);
    hasher.feedVector(config.ptwMin);
    hasher.feedVector(config.ptwMax);
    hasher.feedInt(config.ptwStealing ? 1 : 0);
    hasher.feedInt(config.telemetryWindow);
    hasher.feedInt(config.requestTraceWindow);
    hasher.feedInt(config.maxGlobalCycles);
    // An injected fault changes the outcome, so it feeds the key —
    // but only when armed *and* simulation-perturbing, so plain
    // sweeps keep their historical keys and the Worker* drill sites
    // (which crash the process, not the simulation) share clean
    // records. checkLevel is intentionally excluded: checkers are
    // passive observers and a run is bit-identical at every level.
    // The scheduler kind is excluded for the same reason — the event
    // scheduler is proven bit-identical to per-cycle stepping (see
    // the golden/differential tests), so either may restore the
    // other's checkpoints. Isolation mode and sharding are excluded
    // too: they decide where and whether a job runs, never what it
    // computes.
    if (perturbsSimulation(config.faultPlan.site)) {
        hasher.feed("inject");
        hasher.feedInt(static_cast<int>(config.faultPlan.site));
        hasher.feedInt(config.faultPlan.triggerCount);
        hasher.feedInt(config.faultPlan.delayCycles);
    }
    // Fidelity is NOT passive — fast changes cycle counts within the
    // committed envelope — so it feeds the key when (and only when)
    // the run would actually resolve to fast. Feeding the *resolved*
    // kind (same fallback MultiCoreSystem applies: an armed injector
    // or any check level forces exact) rather than the requested one
    // keeps a fast-keyed record from ever holding exact-fallback
    // results; exact runs keep their historical keys.
    const MemBackendKind backend = effectiveMemBackendKind(mem.backend);
    if (resolvedFidelityKind(config.fidelity,
                             perturbsSimulation(config.faultPlan.site),
                             effectiveCheckLevel(config.checkLevel)) ==
            FidelityKind::Fast &&
        backend != MemBackendKind::Tiered) {
        // Tiered backends force exact (mirrors MultiCoreSystem), so a
        // tiered job never takes the fast-keyed branch.
        hasher.feed("fidelity-fast");
    }
    // The context's arch: dataflow and array/SPM geometry change
    // every trace.
    hasher.feed(arch.name);
    hasher.feedInt(arch.arrayRows);
    hasher.feedInt(arch.arrayCols);
    hasher.feedInt(arch.spmBytes);
    hasher.feedInt(arch.dataBytes);
    hasher.feedInt(arch.freqMhz);
    hasher.feedInt(static_cast<int>(arch.dataflow));
    hasher.feedInt(arch.dmaIssueWidth);
    hasher.feedInt(arch.dmaMaxOutstanding);
    hasher.feedInt(arch.busBytes);
    // The context overwrites config.mem, so hash the effective one —
    // with the complete DRAM timing (row policy, geometry, latencies,
    // energy), not just a summary.
    const DramTiming &timing = mem.timing;
    hasher.feed(timing.name);
    hasher.feedInt(static_cast<int>(timing.rowPolicy));
    hasher.feedInt(timing.ranks);
    hasher.feedInt(timing.bankGroups);
    hasher.feedInt(timing.banksPerGroup);
    hasher.feedInt(timing.rows);
    hasher.feedInt(timing.rowBytes);
    hasher.feedInt(timing.busBytes);
    hasher.feedInt(timing.burstLength);
    hasher.feedInt(timing.clockMhz);
    for (std::uint32_t cycles :
         {timing.tCL, timing.tCWL, timing.tRCD, timing.tRP,
          timing.tRAS, timing.tWR, timing.tRTP, timing.tCCD,
          timing.tRRD, timing.tFAW, timing.tWTR, timing.tRTW,
          timing.tREFI, timing.tRFC})
        hasher.feedInt(cycles);
    for (double energy :
         {timing.eActPrePj, timing.eReadPj, timing.eWritePj,
          timing.eRefreshPj, timing.backgroundMw})
        hasher.feedDouble(energy);
    hasher.feedInt(mem.channelsPerNpu);
    hasher.feedInt(mem.dramCapacityPerNpu);
    hasher.feedInt(mem.tlbEntriesPerNpu);
    hasher.feedInt(mem.tlbWays);
    hasher.feedInt(mem.ptwPerNpu);
    hasher.feedInt(mem.pageBytes);
    hasher.feedInt(mem.dramQueueDepth);
    hasher.feedInt(mem.translationEnabled ? 1 : 0);
    // Memory backend and fabric: the default (plain DRAM, no fabric)
    // feeds nothing so historical checkpoints keep their keys; any
    // other backend kind or an enabled XBar changes the simulated
    // outcome and must fork the key, knobs included.
    if (backend != MemBackendKind::Dram) {
        hasher.feed("backend");
        hasher.feed(toString(backend));
        hasher.feedInt(mem.pcm.cacheLines);
        hasher.feedInt(mem.pcm.cacheHitLatency);
        hasher.feedInt(mem.pcm.writeCommitCycles);
        hasher.feedInt(mem.pcm.hitQueueDepth);
    }
    if (mem.fabric.enabled) {
        hasher.feed("fabric");
        hasher.feedInt(mem.fabric.ports);
        hasher.feedInt(mem.fabric.queueDepth);
        hasher.feedInt(mem.fabric.widthBytes);
        hasher.feedInt(mem.fabric.latencyCycles);
    }
    hasher.feedInt(static_cast<int>(scale));
    // Serving mode: every ServingConfig field is simulation-visible
    // (arrival schedule, request shapes, admission order), so the
    // whole struct feeds the key — leaving one out would alias two
    // different offered-load points in one checkpoint file. Batch jobs
    // feed nothing here, keeping their historical keys.
    if (config.serving) {
        const ServingConfig &serving = *config.serving;
        hasher.feed("serving");
        hasher.feedInt(serving.seed);
        hasher.feedDouble(serving.poissonRatePerMcycle);
        hasher.feed(serving.arrivalTrace);
        hasher.feedInt(serving.numRequests);
        hasher.feedInt(serving.meanPromptTokens);
        hasher.feedInt(serving.meanDecodeTokens);
        hasher.feedInt(serving.maxBatchPerCore);
        hasher.feedInt(serving.ttftSloCycles);
        hasher.feedInt(serving.tpotSloCycles);
    }
    for (const auto &model : job.models)
        hasher.feed(model);
    return hasher.hex();
}

std::uint32_t
shardOfSweepKey(const std::string &key, std::uint32_t shardCount)
{
    if (shardCount <= 1)
        return 0;
    // The key is FNV-1a output rendered as 16 hex digits: already
    // uniformly mixed, so a plain modulus partitions evenly.
    const std::uint64_t value = std::strtoull(key.c_str(), nullptr, 16);
    return static_cast<std::uint32_t>(value % shardCount);
}

std::string
SweepStats::summary() const
{
    std::ostringstream stream;
    stream.precision(2);
    stream << std::fixed << runs << " runs";
    if (executed != runs)
        stream << " (" << executed << " executed)";
    stream << " in " << wallSeconds << " s on " << workers << " worker"
           << (workers == 1 ? "" : "s") << " (" << runsPerSecond
           << " runs/s executed; per-run sum " << jobSecondsSum
           << " s)";
    if (failed || timedOut || skipped || retried || crashed) {
        stream << " [" << ok << " ok";
        if (failed)
            stream << ", " << failed << " failed";
        if (timedOut)
            stream << ", " << timedOut << " timed out";
        if (skipped)
            stream << ", " << skipped << " skipped";
        if (crashed)
            stream << ", " << crashed << " crashed";
        if (retried)
            stream << ", " << retried << " retried";
        stream << "]";
    }
    if (workerCrashes) {
        stream << " {" << workerCrashes << " worker crash"
               << (workerCrashes == 1 ? "" : "es") << ", "
               << workerBackoffSeconds << " s backoff}";
    }
    return stream.str();
}

std::string
SweepStats::telemetrySummary() const
{
    std::ostringstream stream;
    stream.precision(3);
    stream << "simulated " << totalGlobalCycles << " global cycles, "
           << static_cast<double>(totalTrafficBytes) / (1 << 20)
           << " MiB DRAM traffic ("
           << static_cast<double>(totalWalkBytes) / (1 << 20)
           << " MiB walks), " << totalTlbMisses << " TLB misses, "
           << totalWalks << " walks, "
           << totalDramEnergyPj / 1e9 << " mJ DRAM energy";
    return stream.str();
}

SweepRunner::SweepRunner(std::size_t jobs) : pool_(jobs) {}

std::vector<SweepRecord>
SweepRunner::run(
    ExperimentContext &context, const std::vector<SweepJob> &jobs,
    const SweepOptions &options,
    const std::function<void(std::size_t, std::size_t)> &progress)
{
    const auto start = SteadyClock::now();
    const bool checkpointing = !options.checkpointPath.empty();
    const bool explicit_budget = options.jobTimeoutSeconds > 0;
    const bool adaptive_budget =
        !explicit_budget && options.budgetMultiplier > 0;
    const bool sharding = options.shardCount > 1;
    if (sharding && options.shardIndex >= options.shardCount)
        fatal("sweep shard index ", options.shardIndex,
              " out of range for ", options.shardCount, " shards");
    const IsolationMode isolation =
        effectiveIsolationMode(options.isolation);

    // --- Resume: restore jobs already checkpointed ok. ---
    // Keys feed checkpointing, resume, sharding, and the process-mode
    // wire records (whose "key" field is mandatory).
    std::vector<std::string> keys;
    if (checkpointing || options.resume || sharding ||
        isolation == IsolationMode::Process ||
        !options.snapshotDir.empty()) {
        keys.reserve(jobs.size());
        for (const auto &job : jobs)
            keys.push_back(sweepJobKey(job, context.arch(),
                                       context.mem(), context.scale()));
    }
    std::map<std::string, SweepCheckpointRecord> completed;
    if (options.resume && checkpointing)
        completed = loadSweepCheckpoint(options.checkpointPath);

    std::vector<SweepRecord> records(jobs.size());
    std::vector<std::size_t> pending;
    pending.reserve(jobs.size());
    std::size_t legacy = 0;
    for (std::size_t index = 0; index < jobs.size(); ++index) {
        if (sharding && shardOfSweepKey(keys[index],
                                        options.shardCount) !=
                            options.shardIndex) {
            // Another host's job: skip without touching the
            // checkpoint, so a shard file only ever holds this
            // shard's records and the merged union is conflict-free.
            records[index].status = SweepStatus::Skipped;
            records[index].error = detail::concat(
                "sharded out (key belongs to shard ",
                shardOfSweepKey(keys[index], options.shardCount), "/",
                options.shardCount, ")");
            records[index].outcome = failedOutcome(jobs[index].models);
            continue;
        }
        auto it = completed.empty() ? completed.end()
                                    : completed.find(keys[index]);
        if (it != completed.end() &&
            it->second.status == SweepStatus::Ok &&
            it->second.version >= kSweepCheckpointVersion) {
            records[index].status = SweepStatus::Skipped;
            records[index].outcome = restoredOutcome(it->second);
            records[index].wallSeconds = 0;
        } else {
            // An ok record from an older format lacks the raw
            // telemetry; restoring it would hand benches zeroed
            // counters, so re-execute instead.
            if (it != completed.end() &&
                it->second.status == SweepStatus::Ok)
                ++legacy;
            pending.push_back(index);
        }
    }
    if (legacy) {
        warn("checkpoint '", options.checkpointPath, "': ", legacy,
             " completed job(s) predate the full-telemetry format (v",
             kSweepCheckpointVersion, "); re-executing them");
    }

    std::unique_ptr<SweepCheckpointWriter> writer;
    if (checkpointing)
        writer = std::make_unique<SweepCheckpointWriter>(
            options.checkpointPath);

    const bool stopped_already =
        options.stopToken &&
        options.stopToken->load(std::memory_order_relaxed);

    // Pre-warm the shared caches: every distinct trace and Ideal
    // baseline is computed exactly once here (in parallel across
    // distinct keys), so the mix phase below touches them read-only.
    // Failures are deliberately ignored: a job whose model cannot be
    // built hits the same error again in its own runMix(), where it is
    // contained (or rethrown) per job instead of killing the sweep.
    if (!stopped_already) {
        std::vector<std::pair<std::string, std::uint32_t>> baselines;
        {
            std::set<std::pair<std::string, std::uint32_t>> unique;
            for (std::size_t index : pending) {
                const auto &job = jobs[index];
                // Serving jobs have no Ideal baseline (their outcome
                // is the SLO summary, not a speedup) and their per-
                // round networks are built inside the engine, so
                // there is nothing to pre-warm.
                if (job.config.serving)
                    continue;
                const auto multiplier =
                    static_cast<std::uint32_t>(job.models.size());
                for (const auto &model : job.models)
                    unique.emplace(model, multiplier);
            }
            baselines.assign(unique.begin(), unique.end());
        }
        pool_.parallelForCollect(
            baselines.size(), [&](std::size_t index) {
                context.idealCycles(baselines[index].first,
                                    baselines[index].second);
            });
    }

    // --- The contained parallel phase. ---
    std::mutex controlMutex; //!< guards done counter + completed times
    std::size_t done = jobs.size() - pending.size();
    std::vector<double> completedTimes;

    auto adaptiveWallBudget = [&]() -> double {
        if (!adaptive_budget)
            return explicit_budget ? options.jobTimeoutSeconds : 0;
        std::lock_guard<std::mutex> lock(controlMutex);
        if (completedTimes.size() < 3)
            return 0; // not enough signal yet: unlimited
        std::vector<double> times = completedTimes;
        auto mid = times.begin() +
                   static_cast<std::ptrdiff_t>(times.size() / 2);
        std::nth_element(times.begin(), mid, times.end());
        return std::max(options.budgetMultiplier * *mid, 0.25);
    };

    auto finishOne = [&](std::size_t index, double wall_seconds) {
        std::lock_guard<std::mutex> lock(controlMutex);
        if (records[index].status == SweepStatus::Ok)
            completedTimes.push_back(wall_seconds);
        if (progress)
            progress(++done, jobs.size());
    };

    std::vector<std::exception_ptr> errors;
    std::size_t worker_crash_total = 0;
    double worker_backoff_total = 0;

    // Per-job durable snapshot (DESIGN.md §12), keyed like the
    // checkpoint so a retried or resumed job finds its own file. The
    // cadence never feeds sweepJobKey — snapshot writes are passive.
    auto snapshotPolicyFor = [&](std::size_t index) {
        SnapshotPolicy policy;
        if (options.snapshotDir.empty())
            return policy;
        policy.path =
            options.snapshotDir + "/" + keys[index] + ".snap";
        policy.everyCycles = options.snapshotEveryCycles;
        policy.everySeconds = options.snapshotEverySeconds;
        return policy;
    };

    if (isolation == IsolationMode::Process && !pending.empty()) {
        // --- Process isolation: each attempt is a forked single-job
        // worker; the supervisor survives anything the job does. ---
        ProcessPoolOptions poolOptions;
        poolOptions.workers = pool_.jobs();
        poolOptions.retries = options.workerRetries;
        poolOptions.backoffSeconds = options.workerBackoffSeconds;
        poolOptions.memoryBytes = options.workerMemoryBytes;
        poolOptions.cpuSeconds = options.workerCpuSeconds;
        poolOptions.stopToken = options.stopToken;

        ProcessPool::Worker childWorker =
            [&](std::size_t pending_index, std::uint32_t attempt,
                double wallBudget) -> SweepCheckpointRecord {
            const std::size_t index = pending[pending_index];
            const SweepJob &job = jobs[index];
            // The Worker* drill sites fire here — in the forked
            // child, before any simulation — on every attempt up to
            // triggerCount (each attempt is a fresh process, so the
            // attempt number IS the opportunity counter).
            const FaultPlan &drill = job.config.faultPlan;
            if (drill.site == FaultSite::WorkerCrash &&
                attempt <= drill.triggerCount) {
                if (drill.delayCycles >= 1 && drill.delayCycles <= 31)
                    ::raise(static_cast<int>(drill.delayCycles));
                std::abort();
            }
            if (drill.site == FaultSite::WorkerHog &&
                attempt <= drill.triggerCount) {
                // Allocate-and-touch until a rlimit ends the process;
                // the unchecked malloc result turns allocation
                // failure into SIGSEGV so the drill still dies when
                // no memory cap is set.
                for (;;) {
                    char *block =
                        static_cast<char *>(std::malloc(1 << 20));
                    std::memset(block, 0xab, 1 << 20);
                }
            }
            SystemConfig config = job.config;
            if (!perturbsSimulation(config.faultPlan.site))
                config.faultPlan = FaultPlan{};
            SweepRecord record;
            const auto job_start = SteadyClock::now();
            RunBudget budget;
            budget.maxGlobalCycles = options.jobMaxCycles;
            budget.wallClockSeconds = wallBudget;
            budget.snapshot = snapshotPolicyFor(index);
            // Liveness: the run loop beats into the scratch file so
            // the supervisor's lease extends while the job computes.
            budget.heartbeat = processPoolHeartbeat;
            if (budget.snapshot.enabled() && attempt == 1) {
                // Snapshot drills fire on the first attempt only, so
                // the retry proves the recovery path: kill → resume
                // from the snapshot; corrupt → checksum rejection →
                // from-scratch fallback. Both die by SIGKILL, which
                // the supervisor contains as an ordinary crash retry,
                // never a quarantine.
                if (drill.site == FaultSite::SnapshotKill)
                    budget.snapshot.killNth = drill.triggerCount;
                if (drill.site == FaultSite::SnapshotCorrupt)
                    budget.snapshot.corruptNth = drill.triggerCount;
            }
            // The parent's stop token is a fork-time copy that never
            // updates; the supervisor cancels via SIGTERM instead.
            try {
                record.outcome =
                    context.runMix(config, job.models, budget);
                record.status = SweepStatus::Ok;
            } catch (const SimulationError &error) {
                record.status = error.isBudget()
                                    ? SweepStatus::TimedOut
                                    : SweepStatus::Failed;
                record.error = detail::concat(toString(error.kind()),
                                              ": ", error.what());
                record.outcome = failedOutcome(job.models);
            } catch (const std::exception &error) {
                record.status = SweepStatus::Failed;
                record.error = error.what();
                record.outcome = failedOutcome(job.models);
            }
            record.wallSeconds = secondsSince(job_start);
            return checkpointRecordOf(keys[index], record);
        };

        ProcessPool::Budget attemptBudget =
            [&](std::size_t, std::uint32_t attempt) {
                double base = adaptiveWallBudget();
                if (adaptive_budget && attempt > 1 && base > 0)
                    base *= 2; // escalated retry gets a bigger budget
                return base;
            };

        ProcessPool::RetryReported retryTimeout =
            [&](std::size_t, std::uint32_t attempt,
                const SweepCheckpointRecord &record) {
                // Mirror thread mode: one escalating-budget retry of
                // an adaptive *wall-clock* timeout (a cycle-budget
                // timeout would just hit the same cap again).
                return adaptive_budget && attempt == 1 &&
                       record.status == SweepStatus::TimedOut &&
                       record.error.rfind("wall-clock-timeout", 0) == 0;
            };

        ProcessPool::Complete completeOne =
            [&](std::size_t pending_index,
                const ProcessPool::Outcome &outcome) {
                const std::size_t index = pending[pending_index];
                SweepRecord &record = records[index];
                record.attempts = outcome.attempts;
                worker_crash_total += outcome.crashes;
                worker_backoff_total += outcome.backoffSeconds;
                if (outcome.cancelled) {
                    // Not checkpointed: a later resume re-runs it.
                    record.status = SweepStatus::Skipped;
                    record.error = detail::concat(
                        toString(SimErrorKind::Cancelled),
                        ": stop requested");
                    record.outcome = failedOutcome(jobs[index].models);
                    record.wallSeconds = outcome.wallSeconds;
                    finishOne(index, record.wallSeconds);
                    return;
                }
                if (outcome.reported) {
                    // The worker's verdict, ok or contained failure,
                    // restored from the wire record.
                    record.status = outcome.record.status;
                    record.error = outcome.record.error;
                    record.wallSeconds = outcome.record.wallSeconds;
                    record.outcome =
                        record.status == SweepStatus::Ok
                            ? restoredOutcome(outcome.record)
                            : failedOutcome(jobs[index].models);
                    if (writer)
                        writer->append(outcome.record);
                    finishOne(index, record.wallSeconds);
                    return;
                }
                // Quarantine: every attempt died hard. Checkpointed
                // (durable audit trail); resume re-executes it, since
                // only ok records restore.
                record.status = SweepStatus::Crashed;
                record.error = detail::concat(
                    toString(SimErrorKind::WorkerCrash), ": ",
                    outcome.crashError);
                record.outcome = failedOutcome(jobs[index].models);
                record.wallSeconds = outcome.wallSeconds;
                if (writer)
                    writer->append(
                        checkpointRecordOf(keys[index], record));
                finishOne(index, record.wallSeconds);
            };

        ProcessPool workerPool(poolOptions);
        workerPool.run(pending.size(), childWorker, attemptBudget,
                       retryTimeout, completeOne);
    } else {
    errors = pool_.parallelForCollect(
        pending.size(), [&](std::size_t pending_index) {
            const std::size_t index = pending[pending_index];
            const SweepJob &job = jobs[index];
            // Worker* drill plans never reach the simulation: they
            // are inert in thread mode (their whole point is that
            // only process mode can contain them) and must not force
            // the exact-fidelity fallback an armed injector implies.
            SystemConfig config = job.config;
            if (!perturbsSimulation(config.faultPlan.site))
                config.faultPlan = FaultPlan{};
            SweepRecord &record = records[index];
            const auto job_start = SteadyClock::now();

            double wall_budget = adaptiveWallBudget();
            std::exception_ptr failure;
            for (std::uint32_t attempt = 1;; ++attempt) {
                RunBudget budget;
                budget.maxGlobalCycles = options.jobMaxCycles;
                budget.wallClockSeconds = wall_budget;
                budget.stopToken = options.stopToken;
                // Snapshot drills stay inert here (like the Worker*
                // sites): they SIGKILL the process, which only the
                // forked-worker mode can contain.
                budget.snapshot = snapshotPolicyFor(index);
                record.attempts = attempt;
                try {
                    record.outcome = context.runMix(config,
                                                    job.models, budget);
                    record.status = SweepStatus::Ok;
                    record.error.clear();
                    break;
                } catch (const SimulationError &error) {
                    if (error.kind() == SimErrorKind::Cancelled) {
                        // Not checkpointed: a later resume re-runs it.
                        record.status = SweepStatus::Skipped;
                        record.error = detail::concat(
                            toString(error.kind()), ": ", error.what());
                        record.outcome = failedOutcome(job.models);
                        record.wallSeconds = secondsSince(job_start);
                        finishOne(index, record.wallSeconds);
                        return;
                    }
                    if (error.isBudget() && adaptive_budget &&
                        wall_budget > 0 && attempt == 1) {
                        // One escalating-budget retry: the median can
                        // undershoot genuinely heavy mixes.
                        wall_budget *= 2;
                        continue;
                    }
                    record.status = error.isBudget()
                                        ? SweepStatus::TimedOut
                                        : SweepStatus::Failed;
                    record.error = detail::concat(
                        toString(error.kind()), ": ", error.what());
                    record.outcome = failedOutcome(job.models);
                    failure = std::current_exception();
                    break;
                } catch (const std::exception &error) {
                    record.status = SweepStatus::Failed;
                    record.error = error.what();
                    record.outcome = failedOutcome(job.models);
                    failure = std::current_exception();
                    break;
                }
            }
            record.wallSeconds = secondsSince(job_start);
            if (writer)
                writer->append(checkpointRecordOf(keys[index], record));
            finishOne(index, record.wallSeconds);
            if (failure && !options.keepGoing)
                std::rethrow_exception(failure);
        });
    }

    stats_ = SweepStats{};
    stats_.workers = pool_.jobs();
    stats_.runs = jobs.size();
    stats_.wallSeconds = secondsSince(start);
    for (const auto &record : records) {
        stats_.jobSecondsSum += record.wallSeconds;
        switch (record.status) {
          case SweepStatus::Ok:
            ++stats_.ok;
            break;
          case SweepStatus::Failed:
            ++stats_.failed;
            break;
          case SweepStatus::TimedOut:
            ++stats_.timedOut;
            break;
          case SweepStatus::Skipped:
            ++stats_.skipped;
            break;
          case SweepStatus::Crashed:
            ++stats_.crashed;
            break;
        }
        if (record.attempts > 1)
            ++stats_.retried;
        // Aggregate telemetry: only records carrying real data (ok or
        // restored-ok; failed outcomes are NaN-poisoned and cancelled
        // skips are zeroed, contributing nothing to the sums).
        if (record.status == SweepStatus::Ok ||
            (record.status == SweepStatus::Skipped &&
             record.error.empty())) {
            const SimResult &raw = record.outcome.raw;
            stats_.totalGlobalCycles += raw.globalCycles;
            if (raw.dramEnergyPj == raw.dramEnergyPj) // skip NaN
                stats_.totalDramEnergyPj += raw.dramEnergyPj;
            for (const CoreResult &core : raw.cores) {
                stats_.totalTrafficBytes += core.trafficBytes;
                stats_.totalWalkBytes += core.walkBytes;
                stats_.totalTlbMisses += core.tlbMisses;
                stats_.totalWalks += core.walks;
            }
        }
    }
    stats_.executed =
        stats_.ok + stats_.failed + stats_.timedOut + stats_.crashed;
    stats_.workerCrashes = worker_crash_total;
    stats_.workerBackoffSeconds = worker_backoff_total;
    if (stats_.wallSeconds > 0)
        stats_.runsPerSecond =
            static_cast<double>(stats_.executed) / stats_.wallSeconds;

    if (!options.keepGoing) {
        // Deterministic fail-fast: the first failing job in *input*
        // order surfaces, regardless of completion order. Thread mode
        // rethrows the original exception; process mode rebuilds it
        // from the worker's record, since the original died with the
        // worker.
        if (isolation == IsolationMode::Process) {
            for (std::size_t index : pending) {
                const SweepRecord &record = records[index];
                if (record.status == SweepStatus::Failed ||
                    record.status == SweepStatus::TimedOut ||
                    record.status == SweepStatus::Crashed)
                    rethrowRecordError(record);
            }
        }
        for (std::size_t pending_index = 0;
             pending_index < errors.size(); ++pending_index) {
            if (errors[pending_index])
                std::rethrow_exception(errors[pending_index]);
        }
    }
    return records;
}

} // namespace mnpu
