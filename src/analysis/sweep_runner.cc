#include "analysis/sweep_runner.hh"

#include <chrono>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "common/logging.hh"

namespace mnpu
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double>(SteadyClock::now() - start)
        .count();
}

} // namespace

std::string
SweepStats::summary() const
{
    std::ostringstream stream;
    stream.precision(2);
    stream << std::fixed << runs << " runs in " << wallSeconds << " s on "
           << workers << " worker" << (workers == 1 ? "" : "s") << " ("
           << runsPerSecond << " runs/s; per-run sum " << jobSecondsSum
           << " s)";
    return stream.str();
}

SweepRunner::SweepRunner(std::size_t jobs) : pool_(jobs) {}

std::vector<SweepRecord>
SweepRunner::run(
    ExperimentContext &context, const std::vector<SweepJob> &jobs,
    const std::function<void(std::size_t, std::size_t)> &progress)
{
    const auto start = SteadyClock::now();

    // Pre-warm the shared caches: every distinct trace and Ideal
    // baseline is computed exactly once here (in parallel across
    // distinct keys), so the mix phase below touches them read-only.
    std::vector<std::pair<std::string, std::uint32_t>> baselines;
    {
        std::set<std::pair<std::string, std::uint32_t>> unique;
        for (const auto &job : jobs) {
            const auto multiplier =
                static_cast<std::uint32_t>(job.models.size());
            for (const auto &model : job.models)
                unique.emplace(model, multiplier);
        }
        baselines.assign(unique.begin(), unique.end());
    }
    pool_.parallelFor(baselines.size(), [&](std::size_t index) {
        context.idealCycles(baselines[index].first,
                            baselines[index].second);
    });

    std::vector<SweepRecord> records(jobs.size());
    std::mutex progressMutex;
    std::size_t done = 0;
    pool_.parallelFor(jobs.size(), [&](std::size_t index) {
        const auto job_start = SteadyClock::now();
        records[index].outcome =
            context.runMix(jobs[index].config, jobs[index].models);
        records[index].wallSeconds = secondsSince(job_start);
        if (progress) {
            std::lock_guard<std::mutex> lock(progressMutex);
            progress(++done, jobs.size());
        }
    });

    stats_ = SweepStats{};
    stats_.workers = pool_.jobs();
    stats_.runs = jobs.size();
    stats_.wallSeconds = secondsSince(start);
    for (const auto &record : records)
        stats_.jobSecondsSum += record.wallSeconds;
    if (stats_.wallSeconds > 0)
        stats_.runsPerSecond =
            static_cast<double>(stats_.runs) / stats_.wallSeconds;
    return records;
}

} // namespace mnpu
