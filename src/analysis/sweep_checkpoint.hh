/**
 * @file
 * Crash-safe JSONL checkpointing for sweep campaigns.
 *
 * Each completed sweep job is appended to the checkpoint file as one
 * self-contained JSON line (serialized fully in memory first, then
 * written with a single append + flush, so a crash can at worst lose
 * the line being written — never corrupt earlier ones). On restart,
 * loadSweepCheckpoint() tolerates a truncated trailing line and hands
 * back the completed records keyed by the job's config+models hash, so
 * a killed 330-mix campaign resumes executing only the unfinished
 * jobs.
 *
 * The format is deliberately minimal, with an explicit "v" format
 * version (readers skip unknown fields, so newer writers stay
 * readable; records older than the current version are re-executed on
 * resume rather than restored incompletely):
 *   {"key":"<16-hex FNV-1a>","v":2,"status":"ok","error":"",
 *    "wall_seconds":1.25,"models":["net0","net1"],
 *    "speedups":[...],"slowdowns":[...],
 *    "geomean_speedup":0.91,"fairness":0.88,
 *    "local_cycles":[...],"finished_at_global":[...],
 *    "pe_utilization":[...],"traffic_bytes":[...],
 *    "walk_bytes":[...],"tlb_hits":[...],"tlb_misses":[...],
 *    "walks":[...],"layer_finish_local":[[...],[...]],
 *    "global_cycles":12345,"dram_energy_pj":1.5e9,
 *    "dram_row_hits":100,"dram_row_misses":10}
 */

#ifndef MNPU_ANALYSIS_SWEEP_CHECKPOINT_HH
#define MNPU_ANALYSIS_SWEEP_CHECKPOINT_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serving/request.hh"

namespace mnpu
{

/** Outcome class of one sweep job (first-class partial sweeps). */
enum class SweepStatus
{
    Ok,       //!< completed; metrics are valid
    Failed,   //!< threw FatalError (or another non-budget error)
    TimedOut, //!< blew its cycle or wall-clock budget (after retry)
    Skipped,  //!< not executed (already checkpointed, or cancelled)
    Crashed,  //!< isolated worker process died hard (signal, abort,
              //!< rlimit kill) and retries were exhausted; metrics
              //!< are NaN-poisoned like Failed. Only process
              //!< isolation can produce this — a thread-mode crash
              //!< takes the whole campaign with it.
};

const char *toString(SweepStatus status);

/**
 * Checkpoint format version written by this build. v2 added the full
 * raw telemetry (TLB/DRAM/traffic/energy counters, per-layer
 * finishes); v1 records carried only cycles, so resume re-executes
 * them instead of restoring zeroed counters.
 */
constexpr std::uint32_t kSweepCheckpointVersion = 2;

/** What survives a crash: one completed job's full outcome. */
struct SweepCheckpointRecord
{
    std::string key; //!< sweepJobKey() of the job this belongs to
    std::uint32_t version = kSweepCheckpointVersion;
    SweepStatus status = SweepStatus::Ok;
    std::string error; //!< failure message, empty when ok
    double wallSeconds = 0;
    std::vector<std::string> models;
    std::vector<double> speedups;
    std::vector<double> slowdowns;
    double geomeanSpeedup = 0;
    double fairnessValue = 0;
    // Raw SimResult telemetry: per-core parallel arrays (indexed like
    // models) plus the system-wide scalars, so a restored MixOutcome
    // is bit-identical to the executed one — benches that aggregate
    // raw counters (TLB miss rates, row hit rates, energy) see the
    // same numbers with and without --resume.
    std::vector<std::uint64_t> localCycles;
    std::vector<std::uint64_t> finishedAtGlobal;
    std::vector<double> peUtilization;
    std::vector<std::uint64_t> trafficBytes;
    std::vector<std::uint64_t> walkBytes;
    std::vector<std::uint64_t> tlbHits;
    std::vector<std::uint64_t> tlbMisses;
    std::vector<std::uint64_t> walks;
    std::vector<std::vector<std::uint64_t>> layerFinishLocal;
    std::uint64_t globalCycles = 0;
    double dramEnergyPj = 0;
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;

    /**
     * Engaged for serving jobs: the SLO summary behind `serving.*`.
     * Serialized as flat "serving_*" keys (the JSONL subset has no
     * nested objects) and only when engaged, so batch records — and
     * the committed batch golden fixtures — stay byte-identical.
     */
    std::optional<ServingSummary> serving;
};

/** Serialize one record as a single JSON line (no trailing newline). */
std::string toJsonLine(const SweepCheckpointRecord &record);

/**
 * Parse one JSON line. @return false (leaving @p record unspecified)
 * on malformed input — e.g. the torn tail of a killed process.
 */
bool parseJsonLine(const std::string &line, SweepCheckpointRecord &record);

/**
 * Advisory single-writer lock for a checkpoint file (and each shard
 * of one): holds an exclusive non-blocking flock() on the sidecar
 * `<path>.lock`, whose content is the holder's PID. Two campaigns
 * appending to the same checkpoint would interleave records from
 * different job sets, so the second writer fails fast with a message
 * naming the holder — including whether that PID is still alive
 * (flock itself dies with its process, so a lockfile left behind by a
 * kill -9 is harmless: the flock is free and the stale PID content is
 * simply overwritten).
 */
class CheckpointLock
{
  public:
    /**
     * Locks `<checkpointPath>.lock`; fatal() when another process
     * holds it (reporting the holder PID and its liveness) or when
     * the sidecar cannot be created.
     */
    explicit CheckpointLock(const std::string &checkpointPath);
    ~CheckpointLock();

    CheckpointLock(const CheckpointLock &) = delete;
    CheckpointLock &operator=(const CheckpointLock &) = delete;

    const std::string &lockPath() const { return lockPath_; }

  private:
    std::string lockPath_;
    int fd_ = -1;
};

/**
 * Release every live CheckpointLock descriptor in a forked worker
 * child. flock() locks belong to the *open file description*, which a
 * fork shares: a worker that inherits the supervisor's lock fd keeps
 * the flock alive after the supervisor dies (O_CLOEXEC is no help —
 * workers fork without exec), so a kill -9'd campaign would block its
 * own resume until the orphaned workers drain. The process-pool child
 * harness calls this immediately after fork; only the supervisor's
 * own descriptor then pins the lock, and it dies with the supervisor.
 */
void closeCheckpointLocksInForkedChild();

/**
 * Thread-safe appender: each append() writes one full line and
 * flushes, under a mutex, so concurrent sweep workers never interleave
 * partial records. Holds a CheckpointLock for its lifetime, so a
 * second campaign pointed at the same file fails fast instead of
 * silently mixing records.
 */
class SweepCheckpointWriter
{
  public:
    /** Opens @p path for appending; fatal() when it cannot. */
    explicit SweepCheckpointWriter(const std::string &path);
    ~SweepCheckpointWriter();

    SweepCheckpointWriter(const SweepCheckpointWriter &) = delete;
    SweepCheckpointWriter &operator=(const SweepCheckpointWriter &) =
        delete;

    void append(const SweepCheckpointRecord &record);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    CheckpointLock lock_;
    std::FILE *file_ = nullptr;
    std::mutex mutex_;
};

/**
 * Load every well-formed record of @p path, keyed by record.key (the
 * last occurrence wins, so a retried-and-recompleted job supersedes
 * its earlier entry). A missing file is an empty checkpoint, not an
 * error; malformed lines are skipped with a warn().
 */
std::map<std::string, SweepCheckpointRecord>
loadSweepCheckpoint(const std::string &path);

/** What mergeSweepCheckpoints() saw and decided. */
struct CheckpointMergeStats
{
    std::size_t files = 0;      //!< input shard files read
    std::size_t records = 0;    //!< distinct keys in the merged output
    std::size_t duplicates = 0; //!< same-key records superseded by a winner
    std::size_t malformed = 0;  //!< unparseable lines skipped
    /**
     * Same key, both records ok, payloads differing (ignoring
     * wallSeconds): two shards claim to have completed the same job
     * with different numbers — a determinism bug or a mis-partitioned
     * campaign. The newest record still wins so the merge completes,
     * but callers should surface a nonzero count loudly.
     */
    std::size_t conflicts = 0;
};

/**
 * Union the records of @p paths (shard checkpoints of one campaign)
 * into a single list, ordered by first appearance of each key.
 * Same-key resolution: an ok record beats any non-ok record (a job
 * that crashed on one shard but completed on another is complete);
 * within the same tier the newest record — later file, later line —
 * wins. Missing files are empty shards; malformed lines are skipped
 * with a warn(). Writing the result to a fresh JSONL file yields a
 * checkpoint that --resume restores bit-identically.
 */
std::vector<SweepCheckpointRecord>
mergeSweepCheckpoints(const std::vector<std::string> &paths,
                      CheckpointMergeStats *stats = nullptr);

} // namespace mnpu

#endif // MNPU_ANALYSIS_SWEEP_CHECKPOINT_HH
