/**
 * @file
 * Crash-safe JSONL checkpointing for sweep campaigns.
 *
 * Each completed sweep job is appended to the checkpoint file as one
 * self-contained JSON line (serialized fully in memory first, then
 * written with a single append + flush, so a crash can at worst lose
 * the line being written — never corrupt earlier ones). On restart,
 * loadSweepCheckpoint() tolerates a truncated trailing line and hands
 * back the completed records keyed by the job's config+models hash, so
 * a killed 330-mix campaign resumes executing only the unfinished
 * jobs.
 *
 * The format is deliberately minimal and versioned by field presence:
 *   {"key":"<16-hex FNV-1a>","status":"ok","error":"",
 *    "wall_seconds":1.25,"models":["net0","net1"],
 *    "speedups":[...],"slowdowns":[...],
 *    "geomean_speedup":0.91,"fairness":0.88,
 *    "local_cycles":[...],"global_cycles":12345}
 */

#ifndef MNPU_ANALYSIS_SWEEP_CHECKPOINT_HH
#define MNPU_ANALYSIS_SWEEP_CHECKPOINT_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mnpu
{

/** Outcome class of one sweep job (first-class partial sweeps). */
enum class SweepStatus
{
    Ok,       //!< completed; metrics are valid
    Failed,   //!< threw FatalError (or another non-budget error)
    TimedOut, //!< blew its cycle or wall-clock budget (after retry)
    Skipped,  //!< not executed (already checkpointed, or cancelled)
};

const char *toString(SweepStatus status);

/** What survives a crash: one completed job's outcome summary. */
struct SweepCheckpointRecord
{
    std::string key; //!< sweepJobKey() of the job this belongs to
    SweepStatus status = SweepStatus::Ok;
    std::string error; //!< failure message, empty when ok
    double wallSeconds = 0;
    std::vector<std::string> models;
    std::vector<double> speedups;
    std::vector<double> slowdowns;
    double geomeanSpeedup = 0;
    double fairnessValue = 0;
    std::vector<std::uint64_t> localCycles; //!< per core
    std::uint64_t globalCycles = 0;
};

/** Serialize one record as a single JSON line (no trailing newline). */
std::string toJsonLine(const SweepCheckpointRecord &record);

/**
 * Parse one JSON line. @return false (leaving @p record unspecified)
 * on malformed input — e.g. the torn tail of a killed process.
 */
bool parseJsonLine(const std::string &line, SweepCheckpointRecord &record);

/**
 * Thread-safe appender: each append() writes one full line and
 * flushes, under a mutex, so concurrent sweep workers never interleave
 * partial records.
 */
class SweepCheckpointWriter
{
  public:
    /** Opens @p path for appending; fatal() when it cannot. */
    explicit SweepCheckpointWriter(const std::string &path);
    ~SweepCheckpointWriter();

    SweepCheckpointWriter(const SweepCheckpointWriter &) = delete;
    SweepCheckpointWriter &operator=(const SweepCheckpointWriter &) =
        delete;

    void append(const SweepCheckpointRecord &record);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::mutex mutex_;
};

/**
 * Load every well-formed record of @p path, keyed by record.key (the
 * last occurrence wins, so a retried-and-recompleted job supersedes
 * its earlier entry). A missing file is an empty checkpoint, not an
 * error; malformed lines are skipped with a warn().
 */
std::map<std::string, SweepCheckpointRecord>
loadSweepCheckpoint(const std::string &path);

} // namespace mnpu

#endif // MNPU_ANALYSIS_SWEEP_CHECKPOINT_HH
