/**
 * @file
 * The shared memory-management unit of the multi-core NPU (Figure 1 of
 * the paper): per-core or shared TLBs in front of a pool of page-table
 * walkers whose walk steps are real DRAM reads.
 *
 * The walker pool supports the paper's partitioning schemes:
 *  - Static: each core owns a fixed quota of walkers (equal split or an
 *    explicit ratio such as Fig. 13's 2:14);
 *  - Shared: one first-come-first-served pool (+W sharing level);
 *  - Bounded: per-core [min,max] occupancy bounds (misc_config's "shared
 *    partition options of page table walkers").
 *
 * Misses to the same page coalesce in an MSHR, so a burst of 64-byte DMA
 * transactions touching one new page triggers exactly one walk.
 */

#ifndef MNPU_MMU_MMU_HH
#define MNPU_MMU_MMU_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/fault_injection.hh"
#include "common/request_log.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/memory_backend.hh"
#include "mmu/paging.hh"
#include "mmu/tlb.hh"

namespace mnpu
{

/**
 * How the walker pool is divided among cores:
 *  - Static: hard per-core quotas (equal split or explicit ratio);
 *  - Shared: one pool, round-robin grant arbitration, no reservations;
 *  - Bounded: per-core [min, max] occupancy bounds;
 *  - Stealing: DWS-style (Pratheek et al., HPCA'21) — static quotas,
 *    but a core may exceed its quota by stealing walkers while every
 *    other core's walk queue is empty.
 */
enum class PtwPartitionMode { Static, Shared, Bounded, Stealing };

struct MmuConfig
{
    std::uint32_t numCores = 1;
    std::uint32_t tlbEntriesPerCore = 2048;
    std::uint32_t tlbWays = 8;
    bool sharedTlb = false;       //!< one big TLB (+T) vs per-core TLBs
    std::uint32_t totalPtws = 8;  //!< walkers across the whole MMU
    PtwPartitionMode ptwMode = PtwPartitionMode::Static;
    /** Static mode per-core walker quota; empty = equal split. */
    std::vector<std::uint32_t> ptwQuota;
    /** Bounded mode per-core occupancy bounds. */
    std::vector<std::uint32_t> ptwMin;
    std::vector<std::uint32_t> ptwMax;
    std::uint32_t tlbLatency = 1;    //!< global cycles per lookup
    std::uint32_t tlbBandwidth = 32; //!< lookups per cycle per TLB
    std::uint32_t maxPendingPerCore = 4096;
    bool translationEnabled = true;  //!< false = Fig. 9/10 bypass mode
};

/**
 * Translation completion: the client tag, the physical address, and the
 * global cycle the translation finished.
 */
using MmuCallback =
    std::function<void(std::uint64_t tag, Addr paddr, Cycle when)>;

class Mmu
{
  public:
    Mmu(const MmuConfig &config, PageAllocator &allocator,
        PageTableModel &page_table, MemoryBackend &dram);

    /** Set the translation-completion callback (typically the DMA). */
    void setCallback(MmuCallback callback)
    {
        callback_ = std::move(callback);
    }

    /**
     * Request a translation. @return false when the core's pending queue
     * is full — the caller must retry later.
     */
    bool requestTranslation(CoreId core, Asid asid, Addr vaddr,
                            std::uint64_t tag, Cycle now);

    /** Outcome of one fast-fidelity batched translation. */
    struct FastXlatResult
    {
        Cycle latency = 0;       //!< modeled translation latency
        std::uint64_t pages = 0; //!< distinct pages probed
        std::uint64_t misses = 0; //!< of which TLB misses (walked)
    };

    /**
     * Fast-fidelity analytic translation of the distinct pages one
     * tile phase touches. The TLB probes and inserts are real — shared-
     * TLB capacity and inter-core conflict effects persist across
     * fidelities — and every miss still derives its radix walk path
     * (page-table nodes allocate exactly as in exact mode) and credits
     * its steps as DRAM walk traffic. Only the timing is closed-form:
     * misses drain through this core's average walker share instead of
     * being queued, each walk costing levels serial DRAM reads.
     * Counters count per distinct page here; exact mode counts per
     * transaction (before MSHR coalescing), so the fast counters are
     * smaller by the per-page transaction fan-in.
     */
    FastXlatResult fastTranslate(CoreId core, Asid asid,
                                 const std::vector<Addr> &page_vaddrs,
                                 Cycle now);

    /** Page size of the backing allocator (fast-path page chunking). */
    std::uint64_t pageBytes() const { return allocator_.pageBytes(); }

    /** Advance one global cycle; completes lookups and drives walkers. */
    void tick(Cycle now);

    /**
     * Hand a DRAM completion whose tag says "walker step" back to the
     * MMU. @p tag must satisfy isWalkTag().
     */
    void onDramCompletion(std::uint64_t tag, Cycle at);

    /** Tags of DRAM requests issued by walkers carry the top bit. */
    static bool isWalkTag(std::uint64_t tag) { return (tag >> 63) != 0; }

    bool busy() const;

    /** Conservative per-cycle bound: now + 1 whenever busy(). */
    Cycle nextTickCycle(Cycle now) const;

    /**
     * Sharp lower bound on the next cycle tick() changes state: the
     * earliest pending-lookup readyAt, or now + 1 when a ready lookup
     * was carried over the TLB bandwidth budget (or a finished walker
     * awaits release). Blocked walk activity needs no candidate here:
     * walkers free and channel queues drain only at cycles the DRAM
     * bounds already cover, and the MMU ticks after the DRAM at every
     * visited cycle.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Whether requestTranslation() for @p core would be admitted this
     * cycle (pending queue below maxPendingPerCore). Lets a core's
     * event bound report "issuable next cycle" only when the issue
     * could actually land.
     */
    bool canAcceptTranslation(CoreId core) const
    {
        return pending_[core].size() < config_.maxPendingPerCore;
    }

    /**
     * Event-scheduler gating support. poked() reports external input
     * since the last tick (an accepted translation request or a walk
     * step's DRAM completion): the cached event bound predates it, so
     * the MMU must be ticked at the next visited cycle regardless.
     */
    bool poked() const { return poked_; }

    /**
     * Whether the last tick freed pending-queue space (serviced at
     * least one lookup) — the condition that can unblock a core whose
     * requestTranslation was refused. Cleared on read.
     */
    bool consumePendingDrained()
    {
        bool drained = pendingDrained_;
        pendingDrained_ = false;
        return drained;
    }

    /**
     * Whether any walker sits in WaitIssue (its DRAM enqueue was
     * refused). Such a walker retries on every tick; the event
     * scheduler must tick the MMU whenever the DRAM reports a freed
     * queue slot or a token-bucket re-crossing.
     */
    bool hasBlockedWalks() const
    {
        for (const auto &walker : walkers_)
            if (walker.state == WalkerState::WaitIssue)
                return true;
        return false;
    }

    /** Translate without timing (also used when translation is off). */
    Addr translateFunctional(Asid asid, Addr vaddr)
    {
        return allocator_.translate(asid, vaddr);
    }

    const Tlb &tlbForCore(CoreId core) const;
    const MmuConfig &config() const { return config_; }
    const StatGroup &stats() const { return stats_; }

    /** Walkers currently active for @p core (tests/telemetry). */
    std::uint32_t walkersInFlight(CoreId core) const;

    /**
     * Integrity layer (full level): re-derive every completed
     * translation from the page table and throw
     * SimulationError{MmuConsistency} on a mismatch (a corrupted PTE
     * or stale TLB entry would otherwise silently mis-route traffic).
     */
    void enableTranslationCheck() { checkTranslations_ = true; }

    /** Attach the fault injector (pte-corrupt site). Not owned. */
    void setFaultInjector(FaultInjector *injector) { injector_ = injector; }

    /**
     * Attach the observability trace sink (Requests level): every
     * completed page walk becomes a span (walk start → last step done)
     * on the MMU process, one track per requesting core. Passive;
     * nullptr detaches; not owned.
     */
    void setTraceSink(TraceEventSink *sink)
    {
        traceSink_ = sink && sink->wants(TraceLevel::Requests) ? sink
                                                               : nullptr;
    }

    /** DRAM walk-step transactions issued on behalf of @p core. */
    std::uint64_t walkStepsIssued(CoreId core) const
    {
        return core < walkSteps_.size() ? walkSteps_[core] : 0;
    }

    /**
     * Per-core attribution of TLB lookups and walks. The legacy
     * CoreResult/`core<i>.*` view reports whole-MMU totals duplicated
     * onto every core whenever the underlying structure is shared (the
     * shared TLB's hits/misses under +T, and `walks` always) — those
     * duplicated values are pinned by the batch golden fixtures and
     * stay as they are. These accessors instead charge each event to
     * the core that requested it, so summing them over cores equals
     * the MMU totals exactly once. Aggregations that fold per-core
     * counters — the serving engine, where one core runs many
     * requests' phases back-to-back — must use these to avoid
     * double-counting shared totals per core.
     */
    std::uint64_t tlbHitsFor(CoreId core) const
    {
        return core < tlbHitsPerCore_.size() ? tlbHitsPerCore_[core] : 0;
    }
    std::uint64_t tlbMissesFor(CoreId core) const
    {
        return core < tlbMissesPerCore_.size() ? tlbMissesPerCore_[core]
                                               : 0;
    }
    std::uint64_t walksFor(CoreId core) const
    {
        return core < walksPerCore_.size() ? walksPerCore_[core] : 0;
    }

    /**
     * Write per-core request logs under @p dir (§3.2.2): tlb<i>.log
     * records every lookup (cycle, vpn, hit/miss) and tlb<i>_ptw.log
     * every walk with its start/finish cycles.
     */
    void enableRequestLog(const std::string &dir);

    /** Flush request logs to disk (call after the simulation). */
    void flushRequestLogs();

    /**
     * Snapshot the TLBs, per-core pending-lookup queues, MSHRs (sorted
     * by key for deterministic bytes; per-key attach order preserved),
     * walk queues, the walker pool (including each walker's derived
     * walk path and level cursor), the two round-robin cursors, the
     * gating flags, per-core walk-step totals, and the stats group.
     * Request logs are not serialized — a restored run logs only
     * post-restore activity (documented limitation).
     */
    void saveState(StateWriter &out) const;
    void loadState(StateReader &in);

  private:
    struct PendingXlat
    {
        Asid asid;
        Addr vaddr;
        std::uint64_t tag;
        Cycle readyAt;
    };

    struct WalkRequest
    {
        CoreId core;
        Asid asid;
        Addr vpn;
        Addr vaddr; //!< representative address for walkPath()
        Cycle enqueuedAt;
    };

    enum class WalkerState { Idle, WaitIssue, WaitDram, Finished };

    struct Walker
    {
        WalkerState state = WalkerState::Idle;
        CoreId core = kCoreInvalid;
        Asid asid = 0;
        Addr vpn = 0;
        std::vector<Addr> path;
        std::uint32_t level = 0;
        Cycle startedAt = 0;
        Cycle finishedAt = 0;
    };

    static std::uint64_t mshrKey(Asid asid, Addr vpn)
    {
        return (static_cast<std::uint64_t>(asid) << 48) | vpn;
    }
    static std::uint64_t walkTag(std::uint32_t walker_id)
    {
        return (std::uint64_t{1} << 63) | walker_id;
    }

    Tlb &tlbFor(CoreId core);
    bool canGrabWalker(CoreId core) const;
    void completeTranslation(const PendingXlat &xlat, Cycle when);
    void releaseFinishedWalkers(Cycle now);
    void processPending(Cycle now);
    void startWalks(Cycle now);
    void driveWalkers(Cycle now);

    MmuConfig config_;
    PageAllocator &allocator_;
    PageTableModel &pageTable_;
    MemoryBackend &dram_;
    MmuCallback callback_;

    std::vector<std::unique_ptr<Tlb>> tlbs_;
    std::vector<std::deque<PendingXlat>> pending_; //!< per core
    std::unordered_map<std::uint64_t, std::vector<PendingXlat>> mshrs_;
    /**
     * Per-core walk queues, FCFS within a core. Walker grants rotate
     * round-robin across cores: "dynamic sharing without any control"
     * means no reservations, not a single global FIFO that would let a
     * walk-heavy core head-block a bursty co-runner.
     */
    std::vector<std::deque<WalkRequest>> walkQueues_;
    CoreId walkRoundRobin_ = 0;
    std::vector<Walker> walkers_;
    std::vector<std::uint32_t> inFlightPerCore_;
    std::uint32_t totalInFlight_ = 0;
    std::vector<std::uint32_t> staticQuota_;
    CoreId pendingRoundRobin_ = 0;

    std::vector<RequestLog> tlbLogs_; //!< per core
    std::vector<RequestLog> ptwLogs_; //!< per core

    bool poked_ = false;
    bool pendingDrained_ = false;

    bool checkTranslations_ = false;
    FaultInjector *injector_ = nullptr;
    TraceEventSink *traceSink_ = nullptr;
    std::vector<std::uint64_t> walkSteps_; //!< per core, issued to DRAM
    /** Per-core attribution mirrors of the global counters below. */
    std::vector<std::uint64_t> tlbHitsPerCore_;
    std::vector<std::uint64_t> tlbMissesPerCore_;
    std::vector<std::uint64_t> walksPerCore_;

    StatGroup stats_;
    Counter &translations_;
    Counter &tlbHits_;
    Counter &tlbMisses_;
    Counter &walks_;
    Counter &mshrAttaches_;
    Distribution &walkLatency_;
    Distribution &walkQueueDelay_;
};

} // namespace mnpu

#endif // MNPU_MMU_MMU_HH
