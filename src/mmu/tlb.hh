/**
 * @file
 * Set-associative TLB with true-LRU replacement.
 *
 * Entries are tagged with (ASID, VPN) so a single instance can be shared
 * by several NPU cores (the paper's +DWT level); inter-core conflict
 * misses then emerge naturally from set-index collisions. The TLB models
 * timing only — the translated frame comes from the PageAllocator.
 */

#ifndef MNPU_MMU_TLB_HH
#define MNPU_MMU_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mnpu
{

class Tlb
{
  public:
    /**
     * @param entries total entries (power of two)
     * @param ways    associativity; must divide entries
     * @param name    stats group name
     */
    Tlb(std::uint32_t entries, std::uint32_t ways, const std::string &name);

    /** Probe for (asid, vpn); refreshes LRU on hit. */
    bool lookup(Asid asid, Addr vpn);

    /** Install (asid, vpn), evicting the set's LRU entry if needed. */
    void insert(Asid asid, Addr vpn);

    /** Probe without touching LRU state or stats. */
    bool contains(Asid asid, Addr vpn) const;

    /** Drop every entry belonging to @p asid. */
    void flushAsid(Asid asid);

    std::uint32_t numEntries() const { return entries_; }
    std::uint32_t numWays() const { return ways_; }
    std::uint32_t numSets() const { return sets_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }
    double hitRate() const;

    const StatGroup &stats() const { return stats_; }

    /** Snapshot the full table, LRU clock, and stats (DESIGN §12). */
    void saveState(StateWriter &out) const;
    void loadState(StateReader &in);

  private:
    struct Entry
    {
        bool valid = false;
        Asid asid = 0;
        Addr vpn = 0;
        std::uint64_t lastUse = 0;
    };

    std::size_t setIndex(Addr vpn) const
    {
        // Power-of-two set counts (the common case) use a mask; odd
        // counts (e.g. a shared TLB over 3 cores) fall back to modulo.
        if (setsIsPow2_)
            return static_cast<std::size_t>(vpn) & (sets_ - 1);
        return static_cast<std::size_t>(vpn % sets_);
    }

    std::uint32_t entries_;
    std::uint32_t ways_;
    std::uint32_t sets_;
    bool setsIsPow2_;
    std::vector<Entry> table_; //!< sets_ * ways_, set-major
    std::uint64_t useClock_ = 0;

    StatGroup stats_;
    Counter &hits_;
    Counter &misses_;
    Counter &evictions_;
};

} // namespace mnpu

#endif // MNPU_MMU_TLB_HH
