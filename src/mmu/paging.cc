#include "mmu/paging.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mnpu
{

std::uint32_t
walkLevelsForPageSize(std::uint64_t page_bytes)
{
    if (!isPowerOfTwo(page_bytes) || page_bytes < 4096)
        fatal("page size must be a power of two >= 4 KB, got ", page_bytes);
    std::uint32_t page_shift = floorLog2(page_bytes);
    std::uint32_t index_bits = page_shift - 3; // 8-byte PTEs
    std::uint32_t va_bits = 48;
    std::uint32_t vpn_bits = va_bits - page_shift;
    return static_cast<std::uint32_t>(ceilDiv(vpn_bits, index_bits));
}

PageAllocator::PageAllocator(Addr phys_base, std::uint64_t phys_bytes,
                             std::uint64_t page_bytes)
    : physBase_(phys_base), pageBytes_(page_bytes)
{
    if (!isPowerOfTwo(page_bytes) || page_bytes < 4096)
        fatal("page size must be a power of two >= 4 KB, got ", page_bytes);
    if (phys_bytes < page_bytes)
        fatal("physical pool smaller than one page");
    if (phys_base % page_bytes != 0)
        fatal("physical base must be page aligned");
    totalFrames_ = phys_bytes / page_bytes;
}

Addr
PageAllocator::translate(Asid asid, Addr vaddr)
{
    Addr page = vaddr / pageBytes_;
    auto [it, inserted] = frames_.try_emplace(key(asid, page), 0);
    if (inserted)
        it->second = allocFrame();
    return it->second + (vaddr % pageBytes_);
}

bool
PageAllocator::isMapped(Asid asid, Addr vaddr) const
{
    return frames_.count(key(asid, vaddr / pageBytes_)) != 0;
}

Addr
PageAllocator::allocFrame()
{
    if (nextFrame_ >= totalFrames_)
        fatal("physical memory exhausted after ", nextFrame_, " frames");
    return physBase_ + (nextFrame_++) * pageBytes_;
}

PageTableModel::PageTableModel(PageAllocator &allocator)
    : allocator_(allocator),
      levels_(walkLevelsForPageSize(allocator.pageBytes())),
      indexBits_(floorLog2(allocator.pageBytes()) - 3)
{
}

Addr
PageTableModel::nodeFrame(const NodeKey &node_key)
{
    auto [it, inserted] = nodes_.try_emplace(node_key, 0);
    if (inserted)
        it->second = allocator_.allocFrame();
    return it->second;
}

std::vector<Addr>
PageTableModel::walkPath(Asid asid, Addr vaddr)
{
    Addr vpn = allocator_.vpn(vaddr);
    std::uint64_t index_mask = (1ULL << indexBits_) - 1;
    std::vector<Addr> path;
    path.reserve(levels_);
    for (std::uint32_t level = 0; level < levels_; ++level) {
        // Node at `level` is identified by the VPN bits above its index.
        std::uint32_t below = (levels_ - level) * indexBits_;
        Addr prefix = below >= 64 ? 0 : (vpn >> below);
        Addr node = nodeFrame(NodeKey{asid, level, prefix});
        std::uint32_t entry_shift = (levels_ - 1 - level) * indexBits_;
        std::uint64_t index = (vpn >> entry_shift) & index_mask;
        path.push_back(node + index * 8);
    }
    return path;
}

void
PageAllocator::saveState(StateWriter &out) const
{
    out.section("PALC");
    out.u64(pageBytes_);
    out.u64(nextFrame_);
    std::vector<std::uint64_t> keys;
    keys.reserve(frames_.size());
    for (const auto &[frame_key, unused_pa] : frames_)
        keys.push_back(frame_key);
    std::sort(keys.begin(), keys.end());
    out.u64(keys.size());
    for (std::uint64_t frame_key : keys) {
        out.u64(frame_key);
        out.u64(frames_.at(frame_key));
    }
}

void
PageAllocator::loadState(StateReader &in)
{
    in.section("PALC");
    if (in.u64() != pageBytes_)
        throw SnapshotError("page allocator page-size mismatch");
    nextFrame_ = in.u64();
    if (nextFrame_ > totalFrames_)
        throw SnapshotError("page allocator frame count out of range");
    std::uint64_t n = in.u64();
    frames_.clear();
    frames_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t frame_key = in.u64();
        frames_[frame_key] = in.u64();
    }
}

void
PageTableModel::saveState(StateWriter &out) const
{
    out.section("PTBL");
    out.u32(levels_);
    std::vector<NodeKey> keys;
    keys.reserve(nodes_.size());
    for (const auto &[node_key, unused_pa] : nodes_)
        keys.push_back(node_key);
    std::sort(keys.begin(), keys.end(),
              [](const NodeKey &a, const NodeKey &b) {
                  if (a.asid != b.asid)
                      return a.asid < b.asid;
                  if (a.level != b.level)
                      return a.level < b.level;
                  return a.prefix < b.prefix;
              });
    out.u64(keys.size());
    for (const NodeKey &node_key : keys) {
        out.u32(node_key.asid);
        out.u32(node_key.level);
        out.u64(node_key.prefix);
        out.u64(nodes_.at(node_key));
    }
}

void
PageTableModel::loadState(StateReader &in)
{
    in.section("PTBL");
    if (in.u32() != levels_)
        throw SnapshotError("page table radix depth mismatch");
    std::uint64_t n = in.u64();
    nodes_.clear();
    nodes_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        NodeKey node_key{};
        node_key.asid = in.u32();
        node_key.level = in.u32();
        node_key.prefix = in.u64();
        nodes_[node_key] = in.u64();
    }
}

} // namespace mnpu
