#include "mmu/tlb.hh"

#include "common/logging.hh"

namespace mnpu
{

Tlb::Tlb(std::uint32_t entries, std::uint32_t ways, const std::string &name)
    : entries_(entries),
      ways_(ways),
      stats_(name),
      hits_(stats_.counter("hits")),
      misses_(stats_.counter("misses")),
      evictions_(stats_.counter("evictions"))
{
    if (entries == 0 || ways == 0 || entries % ways != 0)
        fatal("TLB entries (", entries, ") must be a nonzero multiple of ",
              "ways (", ways, ")");
    sets_ = entries / ways;
    setsIsPow2_ = isPowerOfTwo(sets_);
    table_.resize(entries_);
}

bool
Tlb::lookup(Asid asid, Addr vpn)
{
    Entry *base = &table_[setIndex(vpn) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &entry = base[w];
        if (entry.valid && entry.asid == asid && entry.vpn == vpn) {
            entry.lastUse = ++useClock_;
            hits_.inc();
            return true;
        }
    }
    misses_.inc();
    return false;
}

void
Tlb::insert(Asid asid, Addr vpn)
{
    Entry *base = &table_[setIndex(vpn) * ways_];
    Entry *victim = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &entry = base[w];
        if (entry.valid && entry.asid == asid && entry.vpn == vpn) {
            entry.lastUse = ++useClock_; // already present; refresh
            return;
        }
        if (!entry.valid) {
            if (victim == nullptr || victim->valid)
                victim = &entry;
        } else if (victim == nullptr ||
                   (victim->valid && entry.lastUse < victim->lastUse)) {
            victim = &entry;
        }
    }
    mnpu_assert(victim != nullptr);
    if (victim->valid)
        evictions_.inc();
    victim->valid = true;
    victim->asid = asid;
    victim->vpn = vpn;
    victim->lastUse = ++useClock_;
}

bool
Tlb::contains(Asid asid, Addr vpn) const
{
    const Entry *base = &table_[setIndex(vpn) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const Entry &entry = base[w];
        if (entry.valid && entry.asid == asid && entry.vpn == vpn)
            return true;
    }
    return false;
}

void
Tlb::flushAsid(Asid asid)
{
    for (auto &entry : table_) {
        if (entry.valid && entry.asid == asid)
            entry.valid = false;
    }
}

double
Tlb::hitRate() const
{
    std::uint64_t total = hits() + misses();
    return total == 0 ? 0.0
                      : static_cast<double>(hits()) /
                            static_cast<double>(total);
}

void
Tlb::saveState(StateWriter &out) const
{
    out.section("TLB ");
    out.u32(entries_);
    out.u32(ways_);
    out.u64(useClock_);
    for (const Entry &entry : table_) {
        out.b(entry.valid);
        out.u32(entry.asid);
        out.u64(entry.vpn);
        out.u64(entry.lastUse);
    }
    stats_.saveState(out);
}

void
Tlb::loadState(StateReader &in)
{
    in.section("TLB ");
    if (in.u32() != entries_ || in.u32() != ways_)
        throw SnapshotError("TLB geometry mismatch");
    useClock_ = in.u64();
    for (Entry &entry : table_) {
        entry.valid = in.b();
        entry.asid = in.u32();
        entry.vpn = in.u64();
        entry.lastUse = in.u64();
    }
    stats_.loadState(in);
}

} // namespace mnpu
