#include "mmu/mmu.hh"

#include <algorithm>

#include "common/errors.hh"
#include "common/logging.hh"

namespace mnpu
{

Mmu::Mmu(const MmuConfig &config, PageAllocator &allocator,
         PageTableModel &page_table, MemoryBackend &dram)
    : config_(config),
      allocator_(allocator),
      pageTable_(page_table),
      dram_(dram),
      pending_(config.numCores),
      walkQueues_(config.numCores),
      walkers_(config.totalPtws),
      inFlightPerCore_(config.numCores, 0),
      walkSteps_(config.numCores, 0),
      tlbHitsPerCore_(config.numCores, 0),
      tlbMissesPerCore_(config.numCores, 0),
      walksPerCore_(config.numCores, 0),
      stats_("mmu"),
      translations_(stats_.counter("translations")),
      tlbHits_(stats_.counter("tlb_hits")),
      tlbMisses_(stats_.counter("tlb_misses")),
      walks_(stats_.counter("walks")),
      mshrAttaches_(stats_.counter("mshr_attaches")),
      walkLatency_(stats_.distribution("walk_latency")),
      walkQueueDelay_(stats_.distribution("walk_queue_delay"))
{
    if (config.numCores == 0)
        fatal("MMU needs at least one core");
    if (config.totalPtws == 0 && config.translationEnabled)
        fatal("MMU needs at least one page-table walker");

    if (config.sharedTlb) {
        tlbs_.push_back(std::make_unique<Tlb>(
            config.tlbEntriesPerCore * config.numCores, config.tlbWays,
            "mmu.tlb_shared"));
    } else {
        for (CoreId core = 0; core < config.numCores; ++core) {
            tlbs_.push_back(std::make_unique<Tlb>(
                config.tlbEntriesPerCore, config.tlbWays,
                "mmu.tlb" + std::to_string(core)));
        }
    }

    switch (config.ptwMode) {
      case PtwPartitionMode::Static:
      case PtwPartitionMode::Stealing:
        if (config.ptwQuota.empty()) {
            staticQuota_.assign(config.numCores,
                                config.totalPtws / config.numCores);
            std::uint32_t remainder = config.totalPtws % config.numCores;
            for (std::uint32_t i = 0; i < remainder; ++i)
                ++staticQuota_[i];
        } else {
            if (config.ptwQuota.size() != config.numCores)
                fatal("ptwQuota needs one entry per core");
            staticQuota_ = config.ptwQuota;
            std::uint32_t sum = 0;
            for (auto quota : staticQuota_)
                sum += quota;
            if (sum != config.totalPtws)
                fatal("ptwQuota sums to ", sum, ", expected ",
                      config.totalPtws);
        }
        for (auto quota : staticQuota_) {
            if (quota == 0)
                fatal("static PTW quota of 0 would starve a core");
        }
        break;
      case PtwPartitionMode::Shared:
        break;
      case PtwPartitionMode::Bounded:
        if (config.ptwMin.size() != config.numCores ||
            config.ptwMax.size() != config.numCores) {
            fatal("bounded PTW mode needs per-core min and max");
        }
        {
            std::uint32_t min_sum = 0;
            for (CoreId core = 0; core < config.numCores; ++core) {
                if (config.ptwMin[core] > config.ptwMax[core])
                    fatal("PTW min > max for core ", core);
                min_sum += config.ptwMin[core];
            }
            if (min_sum > config.totalPtws)
                fatal("PTW minimum reservations exceed the pool");
        }
        break;
    }
}

Tlb &
Mmu::tlbFor(CoreId core)
{
    return config_.sharedTlb ? *tlbs_[0] : *tlbs_[core];
}

const Tlb &
Mmu::tlbForCore(CoreId core) const
{
    return config_.sharedTlb ? *tlbs_[0] : *tlbs_[core];
}

std::uint32_t
Mmu::walkersInFlight(CoreId core) const
{
    mnpu_assert(core < inFlightPerCore_.size());
    return inFlightPerCore_[core];
}

void
Mmu::enableRequestLog(const std::string &dir)
{
    tlbLogs_.resize(config_.numCores);
    ptwLogs_.resize(config_.numCores);
    for (CoreId core = 0; core < config_.numCores; ++core) {
        tlbLogs_[core].open(dir + "/tlb" + std::to_string(core) + ".log",
                            "cycle,vpn,result");
        ptwLogs_[core].open(
            dir + "/tlb" + std::to_string(core) + "_ptw.log",
            "start_cycle,finish_cycle,vpn");
    }
}

void
Mmu::flushRequestLogs()
{
    for (auto &log : tlbLogs_)
        log.flush();
    for (auto &log : ptwLogs_)
        log.flush();
}

bool
Mmu::requestTranslation(CoreId core, Asid asid, Addr vaddr,
                        std::uint64_t tag, Cycle now)
{
    mnpu_assert(core < config_.numCores, "translation from unknown core");
    mnpu_assert(!isWalkTag(tag), "client tag collides with walker tags");
    if (pending_[core].size() >= config_.maxPendingPerCore)
        return false;
    pending_[core].push_back(
        PendingXlat{asid, vaddr, tag, now + config_.tlbLatency});
    poked_ = true;
    return true;
}

Mmu::FastXlatResult
Mmu::fastTranslate(CoreId core, Asid asid,
                   const std::vector<Addr> &page_vaddrs, Cycle now)
{
    mnpu_assert(core < config_.numCores, "translation from unknown core");
    FastXlatResult result;
    result.latency = config_.tlbLatency;
    result.pages = page_vaddrs.size();
    std::uint64_t walk_steps = 0;
    for (Addr vaddr : page_vaddrs) {
        translations_.inc();
        // First-touch frame allocation must happen in every fidelity
        // (the allocator's interleaving is shared simulator state).
        allocator_.translate(asid, vaddr);
        if (!config_.translationEnabled)
            continue;
        const Addr vpn = allocator_.vpn(vaddr);
        if (tlbFor(core).lookup(asid, vpn)) {
            tlbHits_.inc();
            ++tlbHitsPerCore_[core];
            continue;
        }
        tlbMisses_.inc();
        ++tlbMissesPerCore_[core];
        ++result.misses;
        walks_.inc();
        ++walksPerCore_[core];
        walk_steps += pageTable_.walkPath(asid, vaddr).size();
        tlbFor(core).insert(asid, vpn);
    }
    if (result.misses > 0) {
        if (core < walkSteps_.size())
            walkSteps_[core] += walk_steps;
        dram_.fastWalkTraffic(core, walk_steps, now);
        // Closed-form walk latency: each walk is `levels` serial DRAM
        // reads (ACT + RD, no queueing), and this core's misses drain
        // through its average walker share in parallel.
        const std::uint64_t walkers = std::max<std::uint64_t>(
            1, config_.totalPtws / config_.numCores);
        const DramTiming &t = dram_.timing();
        const Cycle step_lat = t.tRCD + t.tCL + t.burstCycles();
        const std::uint64_t levels = ceilDiv(walk_steps, result.misses);
        result.latency +=
            ceilDiv(result.misses, walkers) * levels * step_lat;
    }
    return result;
}

void
Mmu::completeTranslation(const PendingXlat &xlat, Cycle when)
{
    translations_.inc();
    Addr paddr = allocator_.translate(xlat.asid, xlat.vaddr);
    if (injector_ && injector_->fire(FaultSite::PteCorrupt))
        paddr ^= allocator_.pageBytes(); // flip one frame bit
    if (checkTranslations_) {
        const Addr expected = allocator_.translate(xlat.asid, xlat.vaddr);
        if (paddr != expected)
            throw SimulationError(
                SimErrorKind::MmuConsistency,
                "translation check: asid " + std::to_string(xlat.asid) +
                    " vaddr " + std::to_string(xlat.vaddr) +
                    " completed with paddr " + std::to_string(paddr) +
                    " but the page table maps it to " +
                    std::to_string(expected));
    }
    if (callback_)
        callback_(xlat.tag, paddr, when);
}

bool
Mmu::canGrabWalker(CoreId core) const
{
    if (totalInFlight_ >= config_.totalPtws)
        return false;
    switch (config_.ptwMode) {
      case PtwPartitionMode::Static:
        return inFlightPerCore_[core] < staticQuota_[core];
      case PtwPartitionMode::Stealing: {
        if (inFlightPerCore_[core] < staticQuota_[core])
            return true;
        // Beyond quota: steal only while no other core has demand.
        for (CoreId other = 0; other < config_.numCores; ++other) {
            if (other != core && !walkQueues_[other].empty())
                return false;
        }
        return true;
      }
      case PtwPartitionMode::Shared:
        return true;
      case PtwPartitionMode::Bounded: {
        if (inFlightPerCore_[core] >= config_.ptwMax[core])
            return false;
        // Keep enough free walkers to honor other cores' minimums.
        std::uint32_t reserved = 0;
        for (CoreId other = 0; other < config_.numCores; ++other) {
            if (other == core)
                continue;
            if (inFlightPerCore_[other] < config_.ptwMin[other])
                reserved += config_.ptwMin[other] - inFlightPerCore_[other];
        }
        std::uint32_t free_after =
            config_.totalPtws - totalInFlight_ - 1;
        return free_after >= reserved;
      }
    }
    return false;
}

void
Mmu::releaseFinishedWalkers(Cycle now)
{
    for (std::uint32_t id = 0; id < walkers_.size(); ++id) {
        Walker &walker = walkers_[id];
        if (walker.state != WalkerState::Finished ||
            walker.finishedAt > now) {
            continue;
        }
        tlbFor(walker.core).insert(walker.asid, walker.vpn);
        walkLatency_.sample(
            static_cast<double>(walker.finishedAt - walker.startedAt));
        if (!ptwLogs_.empty()) {
            ptwLogs_[walker.core].row(walker.startedAt, walker.finishedAt,
                                      walker.vpn);
        }
        if (traceSink_) {
            traceSink_->complete(TraceEventSink::kMmuPid, walker.core,
                                 "walk", "walk", walker.startedAt,
                                 walker.finishedAt);
        }
        auto it = mshrs_.find(mshrKey(walker.asid, walker.vpn));
        mnpu_assert(it != mshrs_.end(), "walker finished with no MSHR");
        for (const PendingXlat &waiting : it->second)
            completeTranslation(waiting, walker.finishedAt);
        mshrs_.erase(it);
        mnpu_assert(inFlightPerCore_[walker.core] > 0);
        --inFlightPerCore_[walker.core];
        --totalInFlight_;
        walker.state = WalkerState::Idle;
    }
}

void
Mmu::processPending(Cycle now)
{
    // Shared TLB: one bandwidth budget round-robined across cores.
    // Private TLBs: an independent budget per core.
    // The rotation pointer advances only on ticks that serviced at
    // least one lookup: idle ticks must not perturb arbitration, or
    // the event scheduler (which skips exactly the idle ticks) would
    // arbitrate differently from the cycle scheduler.
    if (config_.sharedTlb) {
        std::uint32_t budget = config_.tlbBandwidth;
        const std::uint32_t budget0 = budget;
        CoreId start = pendingRoundRobin_;
        bool progressed = true;
        while (budget > 0 && progressed) {
            progressed = false;
            for (std::uint32_t i = 0;
                 i < config_.numCores && budget > 0; ++i) {
                CoreId core = (start + i) % config_.numCores;
                auto &queue = pending_[core];
                if (queue.empty() || queue.front().readyAt > now)
                    continue;
                PendingXlat xlat = queue.front();
                queue.pop_front();
                --budget;
                progressed = true;
                pendingDrained_ = true;
                Addr vpn = allocator_.vpn(xlat.vaddr);
                if (!config_.translationEnabled ||
                    tlbFor(core).lookup(xlat.asid, vpn)) {
                    if (config_.translationEnabled) {
                        tlbHits_.inc();
                        ++tlbHitsPerCore_[core];
                        if (!tlbLogs_.empty())
                            tlbLogs_[core].row(now, vpn, "hit");
                    }
                    completeTranslation(xlat, now);
                    continue;
                }
                tlbMisses_.inc();
                ++tlbMissesPerCore_[core];
                if (!tlbLogs_.empty())
                    tlbLogs_[core].row(now, vpn, "miss");
                auto [it, inserted] =
                    mshrs_.try_emplace(mshrKey(xlat.asid, vpn));
                it->second.push_back(xlat);
                if (inserted) {
                    walkQueues_[core].push_back(
                        WalkRequest{core, xlat.asid, vpn, xlat.vaddr, now});
                } else {
                    mshrAttaches_.inc();
                }
            }
        }
        if (budget != budget0)
            pendingRoundRobin_ = (start + 1) % config_.numCores;
        return;
    }

    CoreId start = pendingRoundRobin_;
    bool serviced = false;
    for (CoreId i = 0; i < config_.numCores; ++i) {
        CoreId core = (start + i) % config_.numCores;
        std::uint32_t budget = config_.tlbBandwidth;
        auto &queue = pending_[core];
        while (budget > 0 && !queue.empty() &&
               queue.front().readyAt <= now) {
            PendingXlat xlat = queue.front();
            queue.pop_front();
            --budget;
            serviced = true;
            pendingDrained_ = true;
            Addr vpn = allocator_.vpn(xlat.vaddr);
            if (!config_.translationEnabled ||
                tlbFor(core).lookup(xlat.asid, vpn)) {
                if (config_.translationEnabled) {
                    tlbHits_.inc();
                    ++tlbHitsPerCore_[core];
                    if (!tlbLogs_.empty())
                        tlbLogs_[core].row(now, vpn, "hit");
                }
                completeTranslation(xlat, now);
                continue;
            }
            tlbMisses_.inc();
            ++tlbMissesPerCore_[core];
            if (!tlbLogs_.empty())
                tlbLogs_[core].row(now, vpn, "miss");
            auto [it, inserted] =
                mshrs_.try_emplace(mshrKey(xlat.asid, vpn));
            it->second.push_back(xlat);
            if (inserted) {
                walkQueues_[core].push_back(
                    WalkRequest{core, xlat.asid, vpn, xlat.vaddr, now});
            } else {
                mshrAttaches_.inc();
            }
        }
    }
    if (serviced)
        pendingRoundRobin_ = (start + 1) % config_.numCores;
}

void
Mmu::startWalks(Cycle now)
{
    if (totalInFlight_ >= config_.totalPtws)
        return;
    // Round-robin grants across cores (FCFS within a core): cores take
    // turns grabbing free walkers so a walk-heavy core cannot head-block
    // a bursty co-runner, yet unclaimed walkers flow to whoever has
    // demand.
    const CoreId n = config_.numCores;
    bool granted = true;
    while (granted && totalInFlight_ < config_.totalPtws) {
        granted = false;
        for (CoreId i = 0; i < n; ++i) {
            CoreId core = (walkRoundRobin_ + i) % n;
            auto &queue = walkQueues_[core];
            if (queue.empty() || !canGrabWalker(core))
                continue;
            if (totalInFlight_ >= config_.totalPtws)
                break;
            const WalkRequest &request = queue.front();
            auto walker_it =
                std::find_if(walkers_.begin(), walkers_.end(),
                             [](const Walker &w) {
                                 return w.state == WalkerState::Idle;
                             });
            mnpu_assert(walker_it != walkers_.end(),
                        "occupancy says a walker is free but none is idle");
            Walker &walker = *walker_it;
            walker.state = WalkerState::WaitIssue;
            walker.core = request.core;
            walker.asid = request.asid;
            walker.vpn = request.vpn;
            walker.path = pageTable_.walkPath(request.asid, request.vaddr);
            walker.level = 0;
            walker.startedAt = now;
            walkQueueDelay_.sample(
                static_cast<double>(now - request.enqueuedAt));
            walks_.inc();
            ++walksPerCore_[request.core];
            ++inFlightPerCore_[request.core];
            ++totalInFlight_;
            queue.pop_front();
            granted = true;
        }
        // Rotate only after a granting pass (see processPending):
        // fruitless passes — including every tick with no demand —
        // must leave arbitration untouched so both schedulers agree.
        if (granted)
            walkRoundRobin_ = (walkRoundRobin_ + 1) % n;
    }
}

void
Mmu::driveWalkers(Cycle now)
{
    for (std::uint32_t id = 0; id < walkers_.size(); ++id) {
        Walker &walker = walkers_[id];
        if (walker.state != WalkerState::WaitIssue)
            continue;
        DramRequest request;
        request.paddr = walker.path[walker.level];
        request.op = MemOp::Read;
        request.core = walker.core;
        request.tag = walkTag(id);
        request.priority = true;
        if (dram_.tryEnqueue(request, now)) {
            walker.state = WalkerState::WaitDram;
            if (walker.core < walkSteps_.size())
                ++walkSteps_[walker.core];
        }
        // else: channel queue full; retry next tick.
    }
}

void
Mmu::tick(Cycle now)
{
    poked_ = false;
    pendingDrained_ = false;
    releaseFinishedWalkers(now);
    processPending(now);
    startWalks(now);
    driveWalkers(now);
}

void
Mmu::onDramCompletion(std::uint64_t tag, Cycle at)
{
    mnpu_assert(isWalkTag(tag));
    auto id = static_cast<std::uint32_t>(tag & 0xffffffffULL);
    mnpu_assert(id < walkers_.size());
    Walker &walker = walkers_[id];
    mnpu_assert(walker.state == WalkerState::WaitDram,
                "DRAM completion for a walker that is not waiting");
    poked_ = true;
    ++walker.level;
    if (walker.level >= walker.path.size()) {
        walker.state = WalkerState::Finished;
        walker.finishedAt = at;
    } else {
        walker.state = WalkerState::WaitIssue;
    }
}

bool
Mmu::busy() const
{
    for (const auto &queue : walkQueues_)
        if (!queue.empty())
            return true;
    if (totalInFlight_ > 0 || !mshrs_.empty())
        return true;
    for (const auto &queue : pending_)
        if (!queue.empty())
            return true;
    for (const auto &walker : walkers_)
        if (walker.state != WalkerState::Idle)
            return true;
    return false;
}

Cycle
Mmu::nextTickCycle(Cycle now) const
{
    return busy() ? now + 1 : kCycleNever;
}

Cycle
Mmu::nextEventCycle(Cycle now) const
{
    Cycle next = kCycleNever;
    for (const auto &queue : pending_) {
        if (queue.empty())
            continue;
        // readyAt is monotone within a queue, so the front is the
        // earliest. A front already ready was carried over this tick's
        // TLB bandwidth budget and will be serviced next cycle.
        Cycle ready = queue.front().readyAt;
        if (ready <= now)
            return now + 1;
        next = std::min(next, ready);
    }
    for (const auto &walker : walkers_) {
        if (walker.state == WalkerState::Finished)
            return now + 1;
    }
    return next;
}

void
Mmu::saveState(StateWriter &out) const
{
    out.section("MMU ");
    out.u64(tlbs_.size());
    for (const auto &tlb : tlbs_)
        tlb->saveState(out);

    auto put_xlat = [&out](const PendingXlat &xlat) {
        out.u32(xlat.asid);
        out.u64(xlat.vaddr);
        out.u64(xlat.tag);
        out.u64(xlat.readyAt);
    };
    out.u64(pending_.size());
    for (const auto &queue : pending_) {
        out.u64(queue.size());
        for (const PendingXlat &xlat : queue)
            put_xlat(xlat);
    }

    // MSHRs sorted by key for deterministic bytes; the per-key attach
    // vectors keep their order (completion fan-out order).
    std::vector<std::uint64_t> keys;
    keys.reserve(mshrs_.size());
    for (const auto &entry : mshrs_)
        keys.push_back(entry.first);
    std::sort(keys.begin(), keys.end());
    out.u64(keys.size());
    for (std::uint64_t key : keys) {
        out.u64(key);
        const auto &attached = mshrs_.at(key);
        out.u64(attached.size());
        for (const PendingXlat &xlat : attached)
            put_xlat(xlat);
    }

    out.u64(walkQueues_.size());
    for (const auto &queue : walkQueues_) {
        out.u64(queue.size());
        for (const WalkRequest &request : queue) {
            out.u32(request.core);
            out.u32(request.asid);
            out.u64(request.vpn);
            out.u64(request.vaddr);
            out.u64(request.enqueuedAt);
        }
    }
    out.u32(walkRoundRobin_);
    out.u64(walkers_.size());
    for (const Walker &walker : walkers_) {
        out.u8(static_cast<std::uint8_t>(walker.state));
        out.u32(walker.core);
        out.u32(walker.asid);
        out.u64(walker.vpn);
        out.u64Vec(walker.path);
        out.u32(walker.level);
        out.u64(walker.startedAt);
        out.u64(walker.finishedAt);
    }
    out.u64(inFlightPerCore_.size());
    for (std::uint32_t count : inFlightPerCore_)
        out.u32(count);
    out.u32(totalInFlight_);
    out.u32(pendingRoundRobin_);
    out.b(poked_);
    out.b(pendingDrained_);
    out.u64Vec(walkSteps_);
    out.u64Vec(tlbHitsPerCore_);
    out.u64Vec(tlbMissesPerCore_);
    out.u64Vec(walksPerCore_);
    stats_.saveState(out);
}

void
Mmu::loadState(StateReader &in)
{
    in.section("MMU ");
    if (in.u64() != tlbs_.size())
        throw SnapshotError("MMU TLB count mismatch");
    for (auto &tlb : tlbs_)
        tlb->loadState(in);

    auto get_xlat = [&in]() {
        PendingXlat xlat;
        xlat.asid = in.u32();
        xlat.vaddr = in.u64();
        xlat.tag = in.u64();
        xlat.readyAt = in.u64();
        return xlat;
    };
    if (in.u64() != pending_.size())
        throw SnapshotError("MMU pending-queue count mismatch");
    for (auto &queue : pending_) {
        queue.clear();
        std::uint64_t n = in.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            queue.push_back(get_xlat());
    }

    mshrs_.clear();
    std::uint64_t num_mshrs = in.u64();
    for (std::uint64_t m = 0; m < num_mshrs; ++m) {
        std::uint64_t key = in.u64();
        auto &attached = mshrs_[key];
        std::uint64_t n = in.u64();
        attached.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
            attached.push_back(get_xlat());
    }

    if (in.u64() != walkQueues_.size())
        throw SnapshotError("MMU walk-queue count mismatch");
    for (auto &queue : walkQueues_) {
        queue.clear();
        std::uint64_t n = in.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            WalkRequest request;
            request.core = in.u32();
            request.asid = in.u32();
            request.vpn = in.u64();
            request.vaddr = in.u64();
            request.enqueuedAt = in.u64();
            queue.push_back(request);
        }
    }
    walkRoundRobin_ = in.u32();
    if (in.u64() != walkers_.size())
        throw SnapshotError("MMU walker count mismatch");
    for (Walker &walker : walkers_) {
        std::uint8_t state = in.u8();
        if (state > static_cast<std::uint8_t>(WalkerState::Finished))
            throw SnapshotError("bad walker state in snapshot");
        walker.state = static_cast<WalkerState>(state);
        walker.core = in.u32();
        walker.asid = in.u32();
        walker.vpn = in.u64();
        walker.path = in.u64Vec();
        walker.level = in.u32();
        if (walker.state != WalkerState::Idle &&
            walker.level >= walker.path.size() &&
            walker.state != WalkerState::Finished) {
            throw SnapshotError("walker level cursor out of range");
        }
        walker.startedAt = in.u64();
        walker.finishedAt = in.u64();
    }
    if (in.u64() != inFlightPerCore_.size())
        throw SnapshotError("MMU in-flight count mismatch");
    for (std::uint32_t &count : inFlightPerCore_)
        count = in.u32();
    totalInFlight_ = in.u32();
    pendingRoundRobin_ = in.u32();
    poked_ = in.b();
    pendingDrained_ = in.b();
    walkSteps_ = in.u64Vec();
    if (walkSteps_.size() != config_.numCores)
        throw SnapshotError("MMU walk-step count mismatch");
    tlbHitsPerCore_ = in.u64Vec();
    tlbMissesPerCore_ = in.u64Vec();
    walksPerCore_ = in.u64Vec();
    if (tlbHitsPerCore_.size() != config_.numCores ||
        tlbMissesPerCore_.size() != config_.numCores ||
        walksPerCore_.size() != config_.numCores) {
        throw SnapshotError("MMU per-core attribution count mismatch");
    }
    stats_.loadState(in);
}

} // namespace mnpu
