/**
 * @file
 * Virtual-memory backing for the simulated NPUs: a physical frame
 * allocator and a lazily-built radix page-table model.
 *
 * The simulator never stores data; translation exists to model *timing*.
 * The allocator assigns distinct physical frames on first touch (so
 * co-running workloads occupy distinct banks/rows), and the page-table
 * model yields the physical addresses a walker must read at each level,
 * giving page-table walks realistic DRAM locality.
 *
 * Walk depth follows the page size: with page-sized table nodes holding
 * 8-byte entries, levels = ceil((48 - log2(page)) / log2(page/8)), which
 * reproduces the paper's §4.5 setup: 4 KB -> 4 levels, 64 KB -> 3,
 * 1 MB -> 2.
 */

#ifndef MNPU_MMU_PAGING_HH
#define MNPU_MMU_PAGING_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/snapshot.hh"
#include "common/types.hh"

namespace mnpu
{

/** Number of radix levels for a given page size (48-bit VA). */
std::uint32_t walkLevelsForPageSize(std::uint64_t page_bytes);

/**
 * First-touch physical frame allocator shared by all address spaces.
 * Frames are handed out in touch order from a single pool, so pages from
 * co-running workloads interleave in physical memory.
 */
class PageAllocator
{
  public:
    /**
     * @param phys_base   first usable physical address
     * @param phys_bytes  pool size; fatal() on exhaustion
     * @param page_bytes  page/frame size (power of two, >= 4 KB)
     */
    PageAllocator(Addr phys_base, std::uint64_t phys_bytes,
                  std::uint64_t page_bytes);

    /** Translate, allocating a frame on first touch. */
    Addr translate(Asid asid, Addr vaddr);

    /** @return true if the page holding @p vaddr is already mapped. */
    bool isMapped(Asid asid, Addr vaddr) const;

    /** Allocate a raw frame (used for page-table nodes). */
    Addr allocFrame();

    std::uint64_t pageBytes() const { return pageBytes_; }
    std::uint64_t framesAllocated() const { return nextFrame_; }
    std::uint64_t framesAvailable() const
    {
        return totalFrames_ - nextFrame_;
    }

    /** Virtual page number of @p vaddr. */
    Addr vpn(Addr vaddr) const { return vaddr / pageBytes_; }

    /**
     * Snapshot the full mapping. Frames are handed out in touch
     * order, so restoring the map and the bump pointer reproduces the
     * exact physical placement of every mapped page — the property
     * bit-identical DRAM behavior after restore depends on. The map
     * is serialized in sorted-key order for deterministic bytes
     * (lookup order never affects simulation; nothing iterates it).
     */
    void saveState(StateWriter &out) const;
    void loadState(StateReader &in);

  private:
    static std::uint64_t key(Asid asid, Addr vpn)
    {
        return (static_cast<std::uint64_t>(asid) << 48) | vpn;
    }

    Addr physBase_;
    std::uint64_t pageBytes_;
    std::uint64_t totalFrames_;
    std::uint64_t nextFrame_ = 0;
    std::unordered_map<std::uint64_t, Addr> frames_; //!< (asid,vpn) -> PA
};

/**
 * Radix page-table model: returns the per-level PTE physical addresses a
 * walker reads for a given virtual address. Table nodes are page-sized
 * and allocated lazily from the same PageAllocator pool.
 */
class PageTableModel
{
  public:
    explicit PageTableModel(PageAllocator &allocator);

    /** Radix depth for this allocator's page size. */
    std::uint32_t levels() const { return levels_; }

    /**
     * Physical addresses of the PTEs read while walking @p vaddr,
     * root first. Allocates missing interior nodes.
     */
    std::vector<Addr> walkPath(Asid asid, Addr vaddr);

    /** Interior + root nodes allocated so far (all ASIDs). */
    std::uint64_t nodesAllocated() const
    {
        return static_cast<std::uint64_t>(nodes_.size());
    }

    /** Snapshot the node map (sorted order; see PageAllocator). */
    void saveState(StateWriter &out) const;
    void loadState(StateReader &in);

  private:
    struct NodeKey
    {
        Asid asid;
        std::uint32_t level;
        Addr prefix;
        bool operator==(const NodeKey &) const = default;
    };
    struct NodeKeyHash
    {
        std::size_t operator()(const NodeKey &k) const
        {
            std::uint64_t h = k.prefix;
            h ^= (static_cast<std::uint64_t>(k.asid) << 52) ^
                 (static_cast<std::uint64_t>(k.level) << 48);
            h *= 0x9e3779b97f4a7c15ULL;
            return static_cast<std::size_t>(h ^ (h >> 32));
        }
    };

    Addr nodeFrame(const NodeKey &node_key);

    PageAllocator &allocator_;
    std::uint32_t levels_;
    std::uint32_t indexBits_;
    std::unordered_map<NodeKey, Addr, NodeKeyHash> nodes_;
};

} // namespace mnpu

#endif // MNPU_MMU_PAGING_HH
