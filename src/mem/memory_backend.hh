/**
 * @file
 * The pluggable off-chip memory API (DESIGN.md §14).
 *
 * MemoryBackend is the full contract MultiCoreSystem, NpuCore, Mmu,
 * and the integrity/snapshot/metrics layers consume from the off-chip
 * memory system. DramSystem is the first implementation; PcmBackend
 * models a slow-media tier behind a small DRAM data cache; XBar
 * decorates any backend with a modeled core→memory interconnect; and
 * TieredBackend routes requests between a hot (DRAM) and a cold (PCM)
 * tier by memory region.
 *
 * Contract invariants every implementation must keep (ratcheted by the
 * MemBackend conformance suite and the golden/differential harnesses):
 *
 *  - Admission purity: a tryEnqueue() that returns false mutates
 *    NOTHING. The anchored-token-bucket property generalizes — both
 *    schedulers' bit-identity rests on refused admissions being
 *    invisible, because the two schedulers retry at different cycles.
 *  - Event bounds never overshoot: nextEventCycle(now) is a lower
 *    bound on the next cycle the backend's observable state changes.
 *    Undershooting costs a no-op visit; overshooting breaks the event
 *    scheduler's equivalence proof.
 *  - Stat mutations only on state changes: counters may move only on
 *    events both schedulers execute identically (accepted admissions,
 *    deliveries) — never on refusals or probe calls, whose count is
 *    scheduler-dependent.
 *  - saveState/loadState round-trip bit-identically: a restored run
 *    continues byte-identical to the uninterrupted one.
 */

#ifndef MNPU_MEM_MEMORY_BACKEND_HH
#define MNPU_MEM_MEMORY_BACKEND_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/fault_injection.hh"
#include "common/integrity.hh"
#include "common/interval_tracer.hh"
#include "common/snapshot.hh"
#include "common/stats.hh"
#include "common/trace_events.hh"
#include "common/types.hh"
#include "dram/dram_channel.hh"
#include "dram/dram_timing.hh"

namespace mnpu
{

/** Which off-chip memory backend a system runs against. */
enum class MemBackendKind
{
    Dram,   //!< DramSystem (HBM2/DDR4 presets); the default
    Pcm,    //!< slow-media PcmBackend behind a DRAM data cache
    Tiered, //!< weights on PCM, activations/walks on DRAM
};

const char *toString(MemBackendKind kind);

/** Parse "hbm2"/"dram" | "pcm" | "tiered"; throws FatalError otherwise. */
MemBackendKind parseMemBackendKind(const std::string &text);

/**
 * Process-wide default used when an NpuMemConfig does not pin a
 * backend (set from --mem-backend on the CLI/bench command line).
 */
void setMemBackendDefault(MemBackendKind kind);

/** Undo setMemBackendDefault (test hygiene). */
void clearMemBackendDefault();

/**
 * Resolve the backend a system runs against: an explicitly configured
 * kind wins, then the process default (--mem-backend), then the
 * MNPU_MEM_BACKEND environment variable, then Dram.
 */
MemBackendKind
effectiveMemBackendKind(const std::optional<MemBackendKind> &configured);

/**
 * Declarative channel-partition + bandwidth-share policy, replacing
 * the overlapping setPartition / shareAllChannels / partitionByCounts
 * + setBandwidthShares entry points. Declarative matters for multi-
 * backend systems: "share all channels" resolves against each
 * backend's own channel count instead of baking one system's channel
 * indices into the caller.
 */
struct SharingPolicy
{
    enum class Channels
    {
        ShareAll, //!< every core interleaves over every channel
        ByCounts, //!< contiguous split by channelCounts (sum = total)
        Explicit, //!< explicitSets[core] lists the owned channels
        Keep,     //!< leave the current channel layout untouched
    };

    Channels channels = Channels::ShareAll;
    std::vector<std::uint32_t> channelCounts;               //!< ByCounts
    std::vector<std::vector<std::uint32_t>> explicitSets;   //!< Explicit

    /**
     * Per-core bandwidth shares (token-bucket rate caps). Disengaged
     * (nullopt) leaves the current caps untouched; an engaged empty
     * vector removes every cap (dynamic sharing).
     */
    std::optional<std::vector<std::uint32_t>> bandwidthShares;
};

/** PcmBackend knobs (see DESIGN.md §14 for what is/isn't modeled). */
struct PcmConfig
{
    /** Direct-mapped DRAM data-cache lines in front of the media. */
    std::uint32_t cacheLines = 2048;

    /** Global cycles from a read cache hit to its data delivery. */
    Cycle cacheHitLatency = 24;

    /**
     * Extra cycles a write spends committing to the media after its
     * bus transaction completes (PCM cell programming). While any
     * write is committing, read-miss admission is paused.
     */
    Cycle writeCommitCycles = 64;

    /** Outstanding cache-hit responses before admission backpressure. */
    std::uint32_t hitQueueDepth = 64;
};

/** XBar fabric knobs between cores and the memory backend. */
struct FabricConfig
{
    bool enabled = false;

    /** Crossbar ports; 0 = one port per core. Cores map core % ports. */
    std::uint32_t ports = 0;

    /** Per-port request-queue depth (1 slot reserved for walks). */
    std::uint32_t queueDepth = 16;

    /** Port data width in bytes per cycle: pacing between forwards. */
    std::uint32_t widthBytes = 32;

    /** Port traversal latency in global cycles. */
    Cycle latencyCycles = 4;
};

/** Visitor over a backend's StatGroups (metrics registration). */
using StatGroupVisitor = std::function<void(const StatGroup &)>;

/**
 * Abstract off-chip memory backend; see the file comment for the
 * contract invariants. All cycles are global cycles.
 */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    // --- Admission and progress. ---
    virtual bool tryEnqueue(const DramRequest &request, Cycle now) = 0;
    virtual bool canAccept(const DramRequest &request) const = 0;
    virtual void tick(Cycle now) = 0;
    virtual bool busy() const = 0;

    // --- Event-scheduler contract. ---
    virtual void setEventDriven(bool enabled) = 0;
    virtual bool poked() const = 0;
    virtual bool consumeRetrySignal() = 0;
    virtual Cycle nextTickCycle(Cycle now) const = 0;
    virtual Cycle nextEventCycle(Cycle now) const = 0;

    // --- Partitioning / bandwidth-share policy. ---
    virtual void applyPolicy(const SharingPolicy &policy) = 0;

    // --- Fast-fidelity analytic paths. ---
    virtual Cycle fastTransfer(CoreId core, std::uint64_t num_tx,
                               bool is_write, Cycle start) = 0;
    virtual void fastWalkTraffic(CoreId core, std::uint64_t num_steps,
                                 Cycle at) = 0;

    // --- Wiring: completions, integrity, observability. ---
    virtual void setCallback(DramCallback callback) = 0;
    virtual void setIntegrity(RequestLifecycleTracker *tracker,
                              FaultInjector *injector) = 0;
    virtual void enableProtocolChecks() = 0;
    virtual std::uint64_t protocolStreamHash() const = 0;
    virtual std::uint64_t protocolCommandsChecked() const = 0;
    virtual void setTraceSink(TraceEventSink *sink) = 0;

    // --- Telemetry and request logs. ---
    virtual void enableTelemetry(Cycle window_cycles) = 0;
    virtual void finalizeTelemetry() = 0;
    virtual bool telemetryEnabled() const = 0;
    virtual const IntervalTracer &coreTelemetry(CoreId core) const = 0;
    virtual const IntervalTracer &totalTelemetry() const = 0;
    virtual void enableRequestLog(const std::string &dir) = 0;
    virtual void flushRequestLogs() = 0;

    // --- Readouts. ---
    virtual const DramTiming &timing() const = 0;
    virtual std::uint32_t numCores() const = 0;
    virtual std::uint32_t numChannels() const = 0;
    virtual std::uint64_t coreBytes(CoreId core) const = 0;
    virtual std::uint64_t coreWalkBytes(CoreId core) const = 0;
    virtual std::uint64_t totalCounter(const std::string &stat_name) const = 0;
    virtual double peakBandwidthBytesPerSec() const = 0;
    virtual double totalEnergyPj(Cycle elapsed_cycles) const = 0;

    /**
     * Visit every StatGroup this backend owns (per-channel groups,
     * cache/fabric groups). Replaces reaching through channel(i) for
     * metrics registration; stable visiting order (the metrics schema
     * depends on it).
     */
    virtual void visitStatGroups(const StatGroupVisitor &visit) const = 0;

    // --- Snapshot/restore. ---
    virtual void saveState(StateWriter &out) const = 0;
    virtual void loadState(StateReader &in) = 0;

    /** Stable identity string ("dram", "pcm", "tiered"). */
    virtual const char *kindName() const = 0;
};

/**
 * Build a backend graph for @p kind: DramSystem for Dram, PcmBackend
 * (with DramTiming::pcm() media timing) for Pcm, hot-DRAM + cold-PCM
 * TieredBackend for Tiered — each wrapped in an XBar when
 * @p fabric.enabled. @p timing is the hot/DRAM timing; the PCM tier
 * derives its media timing from DramTiming::pcm(), which shares the
 * DRAM clock and geometry (so transaction sizes and the global clock
 * domain stay uniform across tiers).
 */
std::unique_ptr<MemoryBackend>
makeMemoryBackend(MemBackendKind kind, const DramTiming &timing,
                  std::uint32_t num_channels, std::uint32_t num_cores,
                  std::uint32_t queue_depth, const PcmConfig &pcm,
                  const FabricConfig &fabric);

} // namespace mnpu

#endif // MNPU_MEM_MEMORY_BACKEND_HH
