#include "mem/pcm_backend.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mnpu
{

PcmBackend::PcmBackend(const DramTiming &media_timing,
                       std::uint32_t num_channels, std::uint32_t num_cores,
                       std::uint32_t queue_depth, const PcmConfig &config,
                       const std::string &mapping_order,
                       const std::string &stat_prefix)
    : DramSystem(media_timing, num_channels, num_cores, queue_depth,
                 mapping_order, stat_prefix),
      config_(config),
      lineBits_(floorLog2(media_timing.transactionBytes())),
      cacheStats_(stat_prefix),
      cacheHits_(cacheStats_.counter("cache_hits")),
      cacheMisses_(cacheStats_.counter("cache_misses")),
      cacheEvictions_(cacheStats_.counter("cache_evictions")),
      writeCommits_(cacheStats_.counter("write_commits"))
{
    if (config_.cacheLines == 0)
        fatal("PCM backend needs >= 1 cache line");
    if (config_.hitQueueDepth == 0)
        fatal("PCM backend needs hit_queue_depth >= 1");
    cacheTags_.assign(config_.cacheLines, kNoTag);
}

void
PcmBackend::pendingPush(Pending entry)
{
    pending_.push_back(std::move(entry));
    std::push_heap(pending_.begin(), pending_.end(),
                   std::greater<Pending>{});
}

void
PcmBackend::pendingPop()
{
    std::pop_heap(pending_.begin(), pending_.end(),
                  std::greater<Pending>{});
    pending_.pop_back();
}

bool
PcmBackend::canAccept(const DramRequest &request) const
{
    if (request.op == MemOp::Read && cacheHit(request.paddr))
        return pending_.size() < config_.hitQueueDepth;
    if (request.op == MemOp::Read && !request.priority &&
        pendingWrites_ > 0) {
        return false; // write-pausing: media is committing a write
    }
    return DramSystem::canAccept(request);
}

bool
PcmBackend::tryEnqueue(const DramRequest &request, Cycle now)
{
    if (request.op == MemOp::Read && cacheHit(request.paddr)) {
        // Cache-hit fast path: deliver from the DRAM data cache after
        // a fixed latency, bypassing the media channels and the token
        // buckets (the cache sits in front of the shared media, so a
        // hit spends no media bandwidth). Refusals mutate nothing.
        if (pending_.size() >= config_.hitQueueDepth)
            return false;
        DramRequest accepted = request;
        accepted.enqueuedAt = now;
        if (lifecycleTracker()) {
            accepted.integrityId = lifecycleTracker()->onIssue(
                request.paddr, request.core, request.priority, now);
        }
        pendingPush(Pending{now + config_.cacheHitLatency, seq_++, false,
                            accepted});
        cacheHits_.inc();
        return true;
    }
    if (request.op == MemOp::Read && !request.priority &&
        pendingWrites_ > 0) {
        return false; // write-pausing (a pure refusal: retried later)
    }
    if (!DramSystem::tryEnqueue(request, now))
        return false;
    if (request.op == MemOp::Read) {
        // Miss: allocate the line at admission (deterministic in both
        // schedulers — admissions are sched-identical events).
        cacheMisses_.inc();
        std::size_t line = cacheIndex(request.paddr);
        if (cacheTags_[line] != kNoTag)
            cacheEvictions_.inc();
        cacheTags_[line] = lineTag(request.paddr);
    }
    return true;
}

void
PcmBackend::onCompletion(const DramRequest &request, Cycle at)
{
    if (request.op == MemOp::Write) {
        // The bus transaction is done; hold the completion while the
        // cell programs. Released by tick() through the base
        // completion path, so injected faults still apply there.
        pendingPush(Pending{at + config_.writeCommitCycles, seq_++, true,
                            request});
        ++pendingWrites_;
        writeCommits_.inc();
        return;
    }
    DramSystem::onCompletion(request, at);
}

void
PcmBackend::tick(Cycle now)
{
    bool released = false;
    while (!pending_.empty() && pending_.front().due <= now) {
        Pending entry = pending_.front();
        pendingPop();
        if (entry.writeCommit)
            --pendingWrites_;
        released = true;
        // Base completion path: injector faults, then deliver (the
        // lifecycle audit reconciles against this one delivery path).
        DramSystem::onCompletion(entry.request, now);
    }
    if (released) {
        // A freed hit-queue slot or a lifted write-pause unblocks the
        // same retries a freed channel slot does.
        raiseRetrySignal();
    }
    DramSystem::tick(now);
}

bool
PcmBackend::busy() const
{
    return !pending_.empty() || DramSystem::busy();
}

Cycle
PcmBackend::nextTickCycle(Cycle now) const
{
    Cycle next = DramSystem::nextTickCycle(now);
    if (!pending_.empty())
        next = std::min(next, std::max(pending_.front().due, now + 1));
    return next;
}

Cycle
PcmBackend::nextEventCycle(Cycle now) const
{
    // The pending heap's top due is exact, never an overshoot; the
    // write-pause lift coincides with a writeCommit entry's due, so
    // blocked read-misses are covered by the same bound.
    Cycle next = DramSystem::nextEventCycle(now);
    if (!pending_.empty())
        next = std::min(next, std::max(pending_.front().due, now + 1));
    return next;
}

void
PcmBackend::visitStatGroups(const StatGroupVisitor &visit) const
{
    visit(cacheStats_);
    DramSystem::visitStatGroups(visit);
}

void
PcmBackend::saveState(StateWriter &out) const
{
    DramSystem::saveState(out);
    out.section("PCMB");
    out.u64(seq_);
    out.u64(pendingWrites_);
    // The pending heap array verbatim: a restored heap pops in exactly
    // the order the snapshotted one would have (same rationale as the
    // channel completion heap).
    out.u64(pending_.size());
    for (const Pending &entry : pending_) {
        out.u64(entry.due);
        out.u64(entry.seq);
        out.b(entry.writeCommit);
        out.u64(entry.request.paddr);
        out.u8(entry.request.op == MemOp::Write ? 1 : 0);
        out.u32(entry.request.core);
        out.u64(entry.request.tag);
        out.b(entry.request.priority);
        out.u64(entry.request.integrityId);
        out.u64(entry.request.enqueuedAt);
        out.u8(static_cast<std::uint8_t>(entry.request.region));
    }
    out.u64Vec(cacheTags_);
    cacheStats_.saveState(out);
}

void
PcmBackend::loadState(StateReader &in)
{
    DramSystem::loadState(in);
    in.section("PCMB");
    seq_ = in.u64();
    pendingWrites_ = in.u64();
    pending_.resize(in.u64());
    for (Pending &entry : pending_) {
        entry.due = in.u64();
        entry.seq = in.u64();
        entry.writeCommit = in.b();
        entry.request.paddr = in.u64();
        entry.request.op = in.u8() != 0 ? MemOp::Write : MemOp::Read;
        entry.request.core = in.u32();
        entry.request.tag = in.u64();
        entry.request.priority = in.b();
        entry.request.integrityId = in.u64();
        entry.request.enqueuedAt = in.u64();
        entry.request.region = static_cast<MemRegion>(in.u8());
    }
    cacheTags_ = in.u64Vec();
    if (cacheTags_.size() != config_.cacheLines)
        throw SnapshotError("PCM cache geometry mismatch");
    cacheStats_.loadState(in);
}

} // namespace mnpu
