/**
 * @file
 * Crossbar fabric between the NPU cores and a memory backend
 * (DESIGN.md §14). Decorates any MemoryBackend: requests enter a
 * per-port FIFO (port = core % ports), pay a fixed traversal latency,
 * and are forwarded downstream at most one per port per cycle, paced
 * by the port's data width (a 64B transaction over a 16B-wide port
 * occupies the port 4 cycles). Responses return directly through the
 * completion callback — the fabric models the request path only (the
 * response path shares it in real crossbars, but modeling one
 * direction captures the contention the sharing study needs without
 * doubling the event machinery; documented in DESIGN §14).
 *
 * Arbitration is round-robin with the start port derived from the
 * cycle number (now % ports), never from visit counts — the rotation
 * is a pure function of simulated time, which is what keeps the two
 * schedulers bit-identical through the fabric.
 *
 * Contention is observable under the `fabric.*` stats: requests
 * enqueued/forwarded and the cycles requests waited beyond the bare
 * traversal latency. Counters move only on accepted admissions and
 * successful forwards (scheduler-identical events), never on refusals.
 */

#ifndef MNPU_MEM_XBAR_HH
#define MNPU_MEM_XBAR_HH

#include <deque>
#include <memory>
#include <vector>

#include "mem/memory_backend.hh"

namespace mnpu
{

class XBar : public MemoryBackend
{
  public:
    /**
     * @param downstream the backend behind the fabric (owned)
     * @param config     port count/width/latency/queue depth;
     *                   config.ports == 0 means one port per core
     */
    XBar(std::unique_ptr<MemoryBackend> downstream,
         const FabricConfig &config);

    bool tryEnqueue(const DramRequest &request, Cycle now) override;
    bool canAccept(const DramRequest &request) const override;
    void tick(Cycle now) override;
    bool busy() const override;

    void setEventDriven(bool enabled) override;
    bool poked() const override;
    bool consumeRetrySignal() override;
    Cycle nextTickCycle(Cycle now) const override;
    Cycle nextEventCycle(Cycle now) const override;

    void applyPolicy(const SharingPolicy &policy) override;

    Cycle fastTransfer(CoreId core, std::uint64_t num_tx, bool is_write,
                       Cycle start) override;
    void fastWalkTraffic(CoreId core, std::uint64_t num_steps,
                         Cycle at) override;

    void setCallback(DramCallback callback) override;
    void setIntegrity(RequestLifecycleTracker *tracker,
                      FaultInjector *injector) override;
    void enableProtocolChecks() override;
    std::uint64_t protocolStreamHash() const override;
    std::uint64_t protocolCommandsChecked() const override;
    void setTraceSink(TraceEventSink *sink) override;

    void enableTelemetry(Cycle window_cycles) override;
    void finalizeTelemetry() override;
    bool telemetryEnabled() const override;
    const IntervalTracer &coreTelemetry(CoreId core) const override;
    const IntervalTracer &totalTelemetry() const override;
    void enableRequestLog(const std::string &dir) override;
    void flushRequestLogs() override;

    const DramTiming &timing() const override;
    std::uint32_t numCores() const override;
    std::uint32_t numChannels() const override;
    std::uint64_t coreBytes(CoreId core) const override;
    std::uint64_t coreWalkBytes(CoreId core) const override;
    std::uint64_t totalCounter(const std::string &stat_name) const override;
    double peakBandwidthBytesPerSec() const override;
    double totalEnergyPj(Cycle elapsed_cycles) const override;
    void visitStatGroups(const StatGroupVisitor &visit) const override;

    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

    /** The fabric is transparent to identity: reports the backend's. */
    const char *kindName() const override
    {
        return downstream_->kindName();
    }

    /** The wrapped backend (deprecated dram() forwarder unwrapping). */
    const MemoryBackend &downstream() const { return *downstream_; }

    std::uint32_t numPorts() const
    {
        return static_cast<std::uint32_t>(queues_.size());
    }

  private:
    /** One slot reserved per port for walks, like the channel queues. */
    static constexpr std::uint32_t kPriorityReserve = 1;

    struct Entry
    {
        DramRequest request;
        Cycle readyAt; //!< admission cycle + traversal latency
    };

    std::size_t portOf(CoreId core) const
    {
        return static_cast<std::size_t>(core) % queues_.size();
    }

    std::unique_ptr<MemoryBackend> downstream_;
    FabricConfig config_;
    Cycle txCycles_; //!< port occupancy of one transaction (>= 1)

    std::vector<std::deque<Entry>> queues_;
    std::vector<Cycle> portFree_;     //!< port busy until (exclusive)
    std::vector<Cycle> fastPortFree_; //!< analytic-path port horizon
    bool retrySignal_ = false;

    StatGroup fabricStats_;
    Counter &enqueued_;
    Counter &forwarded_;
    Counter &waitCycles_;
};

} // namespace mnpu

#endif // MNPU_MEM_XBAR_HH
