#include "mem/memory_backend.hh"

#include <cstdlib>

#include "common/config.hh"
#include "common/logging.hh"
#include "dram/dram_system.hh"
#include "mem/pcm_backend.hh"
#include "mem/tiered_backend.hh"
#include "mem/xbar.hh"

namespace mnpu
{

namespace
{

std::optional<MemBackendKind> &
processDefault()
{
    static std::optional<MemBackendKind> kind;
    return kind;
}

} // namespace

const char *
toString(MemBackendKind kind)
{
    switch (kind) {
    case MemBackendKind::Dram:
        return "hbm2";
    case MemBackendKind::Pcm:
        return "pcm";
    case MemBackendKind::Tiered:
        return "tiered";
    }
    return "?";
}

MemBackendKind
parseMemBackendKind(const std::string &text)
{
    if (iequals(text, "hbm2") || iequals(text, "dram"))
        return MemBackendKind::Dram;
    if (iequals(text, "pcm"))
        return MemBackendKind::Pcm;
    if (iequals(text, "tiered"))
        return MemBackendKind::Tiered;
    fatal("unknown memory backend '", text,
          "' (expected hbm2, pcm, or tiered)");
}

void
setMemBackendDefault(MemBackendKind kind)
{
    processDefault() = kind;
}

void
clearMemBackendDefault()
{
    processDefault().reset();
}

MemBackendKind
effectiveMemBackendKind(const std::optional<MemBackendKind> &configured)
{
    if (configured)
        return *configured;
    if (processDefault())
        return *processDefault();
    if (const char *env = std::getenv("MNPU_MEM_BACKEND");
        env && *env != '\0') {
        return parseMemBackendKind(env);
    }
    return MemBackendKind::Dram;
}

std::unique_ptr<MemoryBackend>
makeMemoryBackend(MemBackendKind kind, const DramTiming &timing,
                  std::uint32_t num_channels, std::uint32_t num_cores,
                  std::uint32_t queue_depth, const PcmConfig &pcm,
                  const FabricConfig &fabric)
{
    std::unique_ptr<MemoryBackend> backend;
    switch (kind) {
    case MemBackendKind::Dram:
        backend = std::make_unique<DramSystem>(timing, num_channels,
                                               num_cores, queue_depth);
        break;
    case MemBackendKind::Pcm:
        backend = std::make_unique<PcmBackend>(DramTiming::pcm(),
                                               num_channels, num_cores,
                                               queue_depth, pcm);
        break;
    case MemBackendKind::Tiered:
        backend = std::make_unique<TieredBackend>(timing, num_channels,
                                                  num_cores, queue_depth,
                                                  pcm);
        break;
    }
    if (fabric.enabled)
        backend = std::make_unique<XBar>(std::move(backend), fabric);
    return backend;
}

} // namespace mnpu
