/**
 * @file
 * Slow-media PCM backend: DramSystem's channel machinery driven by the
 * DramTiming::pcm() media timing, with three pcmcsim-style behaviors
 * layered on the completion path (DESIGN.md §14):
 *
 *  - a small direct-mapped DRAM data cache in front of the media:
 *    read hits bypass the channels (and the token buckets) entirely
 *    and deliver after a fixed cacheHitLatency; read misses allocate
 *    their line at admission time;
 *  - asymmetric write commit: a write's bus transaction completes on
 *    the (already slow, tWR-scaled) channel, then the completion is
 *    held writeCommitCycles more while the cell programs;
 *  - write-pausing: while any write is committing, non-priority read
 *    misses are refused admission (the media cannot array-read mid-
 *    program). Priority (page-table-walk) reads are exempt, mirroring
 *    the channel's priority queue reserve.
 *
 * Every delivery — hit or media — goes through DramSystem's protected
 * completion path, so fault injection, the lifecycle audit, byte
 * accounting, telemetry, logs, and trace spans see PCM traffic exactly
 * as they see DRAM traffic. All MemoryBackend contract invariants
 * (admission purity, never-overshoot bounds, bit-identical snapshot
 * round-trips) are preserved; the conformance suite runs this backend
 * through the same property tests as DramSystem.
 */

#ifndef MNPU_MEM_PCM_BACKEND_HH
#define MNPU_MEM_PCM_BACKEND_HH

#include <limits>
#include <vector>

#include "dram/dram_system.hh"

namespace mnpu
{

class PcmBackend : public DramSystem
{
  public:
    /**
     * @param media_timing  the PCM array timing (DramTiming::pcm())
     * @param config        cache / write-commit knobs
     * Other parameters as DramSystem; stats default to the "pcm"
     * prefix ("pcm.ch0"…, plus the cache group "pcm").
     */
    PcmBackend(const DramTiming &media_timing, std::uint32_t num_channels,
               std::uint32_t num_cores, std::uint32_t queue_depth,
               const PcmConfig &config,
               const std::string &mapping_order = "ro-ra-bg-ba-co",
               const std::string &stat_prefix = "pcm");

    bool tryEnqueue(const DramRequest &request, Cycle now) override;
    bool canAccept(const DramRequest &request) const override;
    void tick(Cycle now) override;
    bool busy() const override;
    Cycle nextTickCycle(Cycle now) const override;
    Cycle nextEventCycle(Cycle now) const override;

    void visitStatGroups(const StatGroupVisitor &visit) const override;

    /** DramSystem state plus the cache tags and the pending heap. */
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

    const char *kindName() const override { return "pcm"; }

  protected:
    /** Holds write completions for the cell-programming commit. */
    void onCompletion(const DramRequest &request, Cycle at) override;

  private:
    /**
     * A delivery scheduled by this layer: a read cache hit waiting out
     * cacheHitLatency, or a media write waiting out its commit.
     * Kept as an explicit (due, seq) min-heap over a vector so the
     * array serializes verbatim and restores pop in identical order.
     */
    struct Pending
    {
        Cycle due;
        std::uint64_t seq;
        bool writeCommit;
        DramRequest request;
        bool operator>(const Pending &other) const
        {
            return due != other.due ? due > other.due : seq > other.seq;
        }
    };

    static constexpr std::uint64_t kNoTag =
        std::numeric_limits<std::uint64_t>::max();

    std::size_t cacheIndex(Addr paddr) const
    {
        return static_cast<std::size_t>((paddr >> lineBits_) %
                                        cacheTags_.size());
    }
    std::uint64_t lineTag(Addr paddr) const { return paddr >> lineBits_; }
    bool cacheHit(Addr paddr) const
    {
        return cacheTags_[cacheIndex(paddr)] == lineTag(paddr);
    }

    void pendingPush(Pending entry);
    void pendingPop();

    PcmConfig config_;
    std::uint32_t lineBits_; //!< log2(transactionBytes): line == tx

    std::vector<std::uint64_t> cacheTags_; //!< kNoTag = invalid line
    std::vector<Pending> pending_;         //!< min-heap by (due, seq)
    std::uint64_t seq_ = 0;
    std::uint64_t pendingWrites_ = 0; //!< writeCommit entries in pending_

    StatGroup cacheStats_;
    Counter &cacheHits_;
    Counter &cacheMisses_;
    Counter &cacheEvictions_;
    Counter &writeCommits_;
};

} // namespace mnpu

#endif // MNPU_MEM_PCM_BACKEND_HH
