/**
 * @file
 * Tiered memory backend: a hot DramSystem for activations and
 * page-table walks plus a cold PcmBackend for weights, routed by the
 * MemRegion each request carries (stamped by the core from the
 * workload's tensor map). Models the tiered-placement scenario from
 * the serving roadmap (weights are read-mostly and capacity-bound;
 * activations and walks are latency-critical).
 *
 * Aggregation rules (DESIGN.md §14):
 *  - bytes, counters, energy, bandwidth: summed across tiers;
 *  - protocol stream hash: XOR of the tiers' (order-independent, like
 *    the per-channel mix inside each tier);
 *  - timing(): the hot tier's (both tiers share clock and transaction
 *    size by construction — DramTiming::pcm() pins them);
 *  - telemetry windows and request logs: hot tier only (one file set,
 *    one series set; the cold tier's traffic still shows in counters
 *    and byte totals) — a documented limit of the tiered view;
 *  - fastTransfer: unreachable — MultiCoreSystem forces exact
 *    fidelity for tiered runs (the analytic path has no region info).
 */

#ifndef MNPU_MEM_TIERED_BACKEND_HH
#define MNPU_MEM_TIERED_BACKEND_HH

#include <memory>

#include "dram/dram_system.hh"
#include "mem/pcm_backend.hh"

namespace mnpu
{

class TieredBackend : public MemoryBackend
{
  public:
    /**
     * @param hot_timing   the DRAM tier's device timing
     * @param num_channels channels per tier (each tier gets its own)
     * @param num_cores    NPU cores
     * @param queue_depth  per-channel queue depth (both tiers)
     * @param pcm          cold-tier cache/commit knobs
     */
    TieredBackend(const DramTiming &hot_timing, std::uint32_t num_channels,
                  std::uint32_t num_cores, std::uint32_t queue_depth,
                  const PcmConfig &pcm);

    bool tryEnqueue(const DramRequest &request, Cycle now) override;
    bool canAccept(const DramRequest &request) const override;
    void tick(Cycle now) override;
    bool busy() const override;

    void setEventDriven(bool enabled) override;
    bool poked() const override;
    bool consumeRetrySignal() override;
    Cycle nextTickCycle(Cycle now) const override;
    Cycle nextEventCycle(Cycle now) const override;

    void applyPolicy(const SharingPolicy &policy) override;

    Cycle fastTransfer(CoreId core, std::uint64_t num_tx, bool is_write,
                       Cycle start) override;
    void fastWalkTraffic(CoreId core, std::uint64_t num_steps,
                         Cycle at) override;

    void setCallback(DramCallback callback) override;
    void setIntegrity(RequestLifecycleTracker *tracker,
                      FaultInjector *injector) override;
    void enableProtocolChecks() override;
    std::uint64_t protocolStreamHash() const override;
    std::uint64_t protocolCommandsChecked() const override;
    void setTraceSink(TraceEventSink *sink) override;

    void enableTelemetry(Cycle window_cycles) override;
    void finalizeTelemetry() override;
    bool telemetryEnabled() const override;
    const IntervalTracer &coreTelemetry(CoreId core) const override;
    const IntervalTracer &totalTelemetry() const override;
    void enableRequestLog(const std::string &dir) override;
    void flushRequestLogs() override;

    const DramTiming &timing() const override;
    std::uint32_t numCores() const override;
    std::uint32_t numChannels() const override;
    std::uint64_t coreBytes(CoreId core) const override;
    std::uint64_t coreWalkBytes(CoreId core) const override;
    std::uint64_t totalCounter(const std::string &stat_name) const override;
    double peakBandwidthBytesPerSec() const override;
    double totalEnergyPj(Cycle elapsed_cycles) const override;
    void visitStatGroups(const StatGroupVisitor &visit) const override;

    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

    const char *kindName() const override { return "tiered"; }

    /** The hot (DRAM) tier — the deprecated dram() forwarder target. */
    const DramSystem &hotTier() const { return *hot_; }
    /** The cold (PCM) tier. */
    const PcmBackend &coldTier() const { return *cold_; }

  private:
    MemoryBackend &tierFor(const DramRequest &request)
    {
        return request.region == MemRegion::Weight
                   ? static_cast<MemoryBackend &>(*cold_)
                   : static_cast<MemoryBackend &>(*hot_);
    }
    const MemoryBackend &tierFor(const DramRequest &request) const
    {
        return request.region == MemRegion::Weight
                   ? static_cast<const MemoryBackend &>(*cold_)
                   : static_cast<const MemoryBackend &>(*hot_);
    }

    std::unique_ptr<DramSystem> hot_;
    std::unique_ptr<PcmBackend> cold_;
};

} // namespace mnpu

#endif // MNPU_MEM_TIERED_BACKEND_HH
