#include "mem/xbar.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mnpu
{

XBar::XBar(std::unique_ptr<MemoryBackend> downstream,
           const FabricConfig &config)
    : downstream_(std::move(downstream)),
      config_(config),
      fabricStats_("fabric"),
      enqueued_(fabricStats_.counter("enqueued")),
      forwarded_(fabricStats_.counter("forwarded")),
      waitCycles_(fabricStats_.counter("wait_cycles"))
{
    mnpu_assert(downstream_ != nullptr, "XBar needs a backend");
    std::uint32_t ports =
        config_.ports != 0 ? config_.ports : downstream_->numCores();
    if (ports == 0)
        fatal("XBar needs at least one port");
    if (config_.queueDepth == 0)
        fatal("XBar needs a per-port queue depth >= 1");
    if (config_.widthBytes == 0)
        fatal("XBar needs a nonzero port width");
    txCycles_ = std::max<Cycle>(
        1, ceilDiv(downstream_->timing().transactionBytes(),
                   config_.widthBytes));
    queues_.resize(ports);
    portFree_.assign(ports, 0);
    fastPortFree_.assign(ports, 0);
}

bool
XBar::canAccept(const DramRequest &request) const
{
    const auto &queue = queues_[portOf(request.core)];
    std::uint32_t limit =
        request.priority
            ? config_.queueDepth
            : config_.queueDepth -
                  std::min<std::uint32_t>(kPriorityReserve,
                                          config_.queueDepth - 1);
    return queue.size() < limit;
}

bool
XBar::tryEnqueue(const DramRequest &request, Cycle now)
{
    if (!canAccept(request))
        return false; // pure refusal: nothing mutated
    queues_[portOf(request.core)].push_back(
        Entry{request, now + config_.latencyCycles});
    enqueued_.inc();
    return true;
}

void
XBar::tick(Cycle now)
{
    // Drain downstream first so a slot it frees this cycle is seen by
    // this cycle's forwards in both schedulers alike.
    downstream_->tick(now);
    const std::size_t ports = queues_.size();
    // Round-robin arbitration anchored on simulated time, not visit
    // count: the winner rotation is identical across schedulers.
    const std::size_t start = static_cast<std::size_t>(now % ports);
    for (std::size_t i = 0; i < ports; ++i) {
        const std::size_t p = (start + i) % ports;
        auto &queue = queues_[p];
        if (queue.empty() || queue.front().readyAt > now ||
            portFree_[p] > now) {
            continue;
        }
        // Head-of-line: a refusal downstream (full queue, starved
        // bucket) blocks the port until the downstream's own bounds /
        // retry signal re-visit it.
        if (!downstream_->tryEnqueue(queue.front().request, now))
            continue;
        waitCycles_.inc(now - queue.front().readyAt);
        queue.pop_front();
        forwarded_.inc();
        portFree_[p] = now + txCycles_; // width pacing
        retrySignal_ = true;            // a port slot was freed
    }
}

bool
XBar::busy() const
{
    return downstream_->busy() ||
           std::any_of(queues_.begin(), queues_.end(),
                       [](const auto &queue) { return !queue.empty(); });
}

void
XBar::setEventDriven(bool enabled)
{
    downstream_->setEventDriven(enabled);
}

bool
XBar::poked() const
{
    return downstream_->poked();
}

bool
XBar::consumeRetrySignal()
{
    bool signal = retrySignal_;
    retrySignal_ = false;
    return downstream_->consumeRetrySignal() || signal;
}

Cycle
XBar::nextTickCycle(Cycle now) const
{
    Cycle next = downstream_->nextTickCycle(now);
    for (const auto &queue : queues_) {
        if (!queue.empty())
            next = std::min(next, now + 1);
    }
    return next;
}

Cycle
XBar::nextEventCycle(Cycle now) const
{
    // Per port: the head forwards no earlier than max(readyAt,
    // portFree). When both are already due the head is blocked on a
    // downstream refusal; now + 1 (the max() floor) keeps the port
    // under watch until the downstream unblocks — an undershoot, never
    // an overshoot.
    Cycle next = downstream_->nextEventCycle(now);
    for (std::size_t p = 0; p < queues_.size(); ++p) {
        if (queues_[p].empty())
            continue;
        Cycle candidate =
            std::max(queues_[p].front().readyAt, portFree_[p]);
        next = std::min(next, std::max(candidate, now + 1));
    }
    return next;
}

void
XBar::applyPolicy(const SharingPolicy &policy)
{
    downstream_->applyPolicy(policy);
}

Cycle
XBar::fastTransfer(CoreId core, std::uint64_t num_tx, bool is_write,
                   Cycle start)
{
    if (num_tx == 0)
        return start;
    // Analytic port model mirroring the queued path: the batch enters
    // the port after the traversal latency, serializes behind the
    // port's previous fast batch, and occupies the port txCycles per
    // transaction — so shrinking the width lengthens every batch.
    const std::size_t p = portOf(core);
    const Cycle enter =
        std::max(start + config_.latencyCycles, fastPortFree_[p]);
    fastPortFree_[p] = enter + num_tx * txCycles_;
    const Cycle done =
        downstream_->fastTransfer(core, num_tx, is_write, enter);
    return std::max(done, fastPortFree_[p]);
}

void
XBar::fastWalkTraffic(CoreId core, std::uint64_t num_steps, Cycle at)
{
    downstream_->fastWalkTraffic(core, num_steps, at);
}

void
XBar::setCallback(DramCallback callback)
{
    downstream_->setCallback(std::move(callback));
}

void
XBar::setIntegrity(RequestLifecycleTracker *tracker,
                   FaultInjector *injector)
{
    downstream_->setIntegrity(tracker, injector);
}

void
XBar::enableProtocolChecks()
{
    downstream_->enableProtocolChecks();
}

std::uint64_t
XBar::protocolStreamHash() const
{
    return downstream_->protocolStreamHash();
}

std::uint64_t
XBar::protocolCommandsChecked() const
{
    return downstream_->protocolCommandsChecked();
}

void
XBar::setTraceSink(TraceEventSink *sink)
{
    downstream_->setTraceSink(sink);
}

void
XBar::enableTelemetry(Cycle window_cycles)
{
    downstream_->enableTelemetry(window_cycles);
}

void
XBar::finalizeTelemetry()
{
    downstream_->finalizeTelemetry();
}

bool
XBar::telemetryEnabled() const
{
    return downstream_->telemetryEnabled();
}

const IntervalTracer &
XBar::coreTelemetry(CoreId core) const
{
    return downstream_->coreTelemetry(core);
}

const IntervalTracer &
XBar::totalTelemetry() const
{
    return downstream_->totalTelemetry();
}

void
XBar::enableRequestLog(const std::string &dir)
{
    downstream_->enableRequestLog(dir);
}

void
XBar::flushRequestLogs()
{
    downstream_->flushRequestLogs();
}

const DramTiming &
XBar::timing() const
{
    return downstream_->timing();
}

std::uint32_t
XBar::numCores() const
{
    return downstream_->numCores();
}

std::uint32_t
XBar::numChannels() const
{
    return downstream_->numChannels();
}

std::uint64_t
XBar::coreBytes(CoreId core) const
{
    return downstream_->coreBytes(core);
}

std::uint64_t
XBar::coreWalkBytes(CoreId core) const
{
    return downstream_->coreWalkBytes(core);
}

std::uint64_t
XBar::totalCounter(const std::string &stat_name) const
{
    return downstream_->totalCounter(stat_name);
}

double
XBar::peakBandwidthBytesPerSec() const
{
    return downstream_->peakBandwidthBytesPerSec();
}

double
XBar::totalEnergyPj(Cycle elapsed_cycles) const
{
    return downstream_->totalEnergyPj(elapsed_cycles);
}

void
XBar::visitStatGroups(const StatGroupVisitor &visit) const
{
    visit(fabricStats_);
    downstream_->visitStatGroups(visit);
}

void
XBar::saveState(StateWriter &out) const
{
    out.section("XBAR");
    out.u64(queues_.size());
    for (const auto &queue : queues_) {
        out.u64(queue.size());
        for (const Entry &entry : queue) {
            out.u64(entry.readyAt);
            out.u64(entry.request.paddr);
            out.u8(entry.request.op == MemOp::Write ? 1 : 0);
            out.u32(entry.request.core);
            out.u64(entry.request.tag);
            out.b(entry.request.priority);
            out.u64(entry.request.integrityId);
            out.u64(entry.request.enqueuedAt);
            out.u8(static_cast<std::uint8_t>(entry.request.region));
        }
    }
    out.u64Vec(portFree_);
    out.u64Vec(fastPortFree_);
    fabricStats_.saveState(out);
    downstream_->saveState(out);
}

void
XBar::loadState(StateReader &in)
{
    in.section("XBAR");
    if (in.u64() != queues_.size())
        throw SnapshotError("XBar port-count mismatch");
    for (auto &queue : queues_) {
        queue.resize(in.u64());
        for (Entry &entry : queue) {
            entry.readyAt = in.u64();
            entry.request.paddr = in.u64();
            entry.request.op = in.u8() != 0 ? MemOp::Write : MemOp::Read;
            entry.request.core = in.u32();
            entry.request.tag = in.u64();
            entry.request.priority = in.b();
            entry.request.integrityId = in.u64();
            entry.request.enqueuedAt = in.u64();
            entry.request.region = static_cast<MemRegion>(in.u8());
        }
    }
    portFree_ = in.u64Vec();
    fastPortFree_ = in.u64Vec();
    if (portFree_.size() != queues_.size() ||
        fastPortFree_.size() != queues_.size()) {
        throw SnapshotError("XBar port-horizon count mismatch");
    }
    fabricStats_.loadState(in);
    downstream_->loadState(in);
}

} // namespace mnpu
