#include "mem/tiered_backend.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mnpu
{

TieredBackend::TieredBackend(const DramTiming &hot_timing,
                             std::uint32_t num_channels,
                             std::uint32_t num_cores,
                             std::uint32_t queue_depth, const PcmConfig &pcm)
    : hot_(std::make_unique<DramSystem>(hot_timing, num_channels, num_cores,
                                        queue_depth, "ro-ra-bg-ba-co",
                                        "dram")),
      cold_(std::make_unique<PcmBackend>(DramTiming::pcm(), num_channels,
                                         num_cores, queue_depth, pcm,
                                         "ro-ra-bg-ba-co", "pcm"))
{
    // One clock domain, one transaction size — the lifecycle audit and
    // byte accounting sum across tiers and rely on this.
    if (hot_->timing().clockMhz != cold_->timing().clockMhz ||
        hot_->timing().transactionBytes() !=
            cold_->timing().transactionBytes()) {
        fatal("tiered backend: hot and cold tiers must share clock and "
              "transaction size (hot '", hot_->timing().name, "', cold '",
              cold_->timing().name, "')");
    }
}

bool
TieredBackend::tryEnqueue(const DramRequest &request, Cycle now)
{
    return tierFor(request).tryEnqueue(request, now);
}

bool
TieredBackend::canAccept(const DramRequest &request) const
{
    return tierFor(request).canAccept(request);
}

void
TieredBackend::tick(Cycle now)
{
    hot_->tick(now);
    cold_->tick(now);
}

bool
TieredBackend::busy() const
{
    return hot_->busy() || cold_->busy();
}

void
TieredBackend::setEventDriven(bool enabled)
{
    hot_->setEventDriven(enabled);
    cold_->setEventDriven(enabled);
}

bool
TieredBackend::poked() const
{
    return hot_->poked() || cold_->poked();
}

bool
TieredBackend::consumeRetrySignal()
{
    // Consume both (no short-circuit): each tier's flag must clear.
    bool hot = hot_->consumeRetrySignal();
    bool cold = cold_->consumeRetrySignal();
    return hot || cold;
}

Cycle
TieredBackend::nextTickCycle(Cycle now) const
{
    return std::min(hot_->nextTickCycle(now), cold_->nextTickCycle(now));
}

Cycle
TieredBackend::nextEventCycle(Cycle now) const
{
    return std::min(hot_->nextEventCycle(now), cold_->nextEventCycle(now));
}

void
TieredBackend::applyPolicy(const SharingPolicy &policy)
{
    hot_->applyPolicy(policy);
    cold_->applyPolicy(policy);
}

Cycle
TieredBackend::fastTransfer(CoreId, std::uint64_t, bool, Cycle)
{
    // The analytic path has no per-request region information, so a
    // tiered run cannot model placement fast. MultiCoreSystem resolves
    // tiered runs to exact fidelity before the first transfer.
    fatal("tiered backend supports exact fidelity only");
}

void
TieredBackend::fastWalkTraffic(CoreId core, std::uint64_t num_steps,
                               Cycle at)
{
    hot_->fastWalkTraffic(core, num_steps, at); // walks live on the hot tier
}

void
TieredBackend::setCallback(DramCallback callback)
{
    hot_->setCallback(callback);
    cold_->setCallback(std::move(callback));
}

void
TieredBackend::setIntegrity(RequestLifecycleTracker *tracker,
                            FaultInjector *injector)
{
    hot_->setIntegrity(tracker, injector);
    cold_->setIntegrity(tracker, injector);
}

void
TieredBackend::enableProtocolChecks()
{
    hot_->enableProtocolChecks();
    cold_->enableProtocolChecks();
}

std::uint64_t
TieredBackend::protocolStreamHash() const
{
    return hot_->protocolStreamHash() ^ cold_->protocolStreamHash();
}

std::uint64_t
TieredBackend::protocolCommandsChecked() const
{
    return hot_->protocolCommandsChecked() +
           cold_->protocolCommandsChecked();
}

void
TieredBackend::setTraceSink(TraceEventSink *sink)
{
    hot_->setTraceSink(sink);
    cold_->setTraceSink(sink);
}

void
TieredBackend::enableTelemetry(Cycle window_cycles)
{
    // Hot tier only: one telemetry series set per system (documented).
    // Cold-tier traffic still lands in counters and byte totals.
    hot_->enableTelemetry(window_cycles);
}

void
TieredBackend::finalizeTelemetry()
{
    hot_->finalizeTelemetry();
}

bool
TieredBackend::telemetryEnabled() const
{
    return hot_->telemetryEnabled();
}

const IntervalTracer &
TieredBackend::coreTelemetry(CoreId core) const
{
    return hot_->coreTelemetry(core);
}

const IntervalTracer &
TieredBackend::totalTelemetry() const
{
    return hot_->totalTelemetry();
}

void
TieredBackend::enableRequestLog(const std::string &dir)
{
    hot_->enableRequestLog(dir); // one dram.log/dramreq.log file set
}

void
TieredBackend::flushRequestLogs()
{
    hot_->flushRequestLogs();
    cold_->flushRequestLogs();
}

const DramTiming &
TieredBackend::timing() const
{
    return hot_->timing();
}

std::uint32_t
TieredBackend::numCores() const
{
    return hot_->numCores();
}

std::uint32_t
TieredBackend::numChannels() const
{
    return hot_->numChannels() + cold_->numChannels();
}

std::uint64_t
TieredBackend::coreBytes(CoreId core) const
{
    return hot_->coreBytes(core) + cold_->coreBytes(core);
}

std::uint64_t
TieredBackend::coreWalkBytes(CoreId core) const
{
    return hot_->coreWalkBytes(core) + cold_->coreWalkBytes(core);
}

std::uint64_t
TieredBackend::totalCounter(const std::string &stat_name) const
{
    return hot_->totalCounter(stat_name) + cold_->totalCounter(stat_name);
}

double
TieredBackend::peakBandwidthBytesPerSec() const
{
    return hot_->peakBandwidthBytesPerSec() +
           cold_->peakBandwidthBytesPerSec();
}

double
TieredBackend::totalEnergyPj(Cycle elapsed_cycles) const
{
    return hot_->totalEnergyPj(elapsed_cycles) +
           cold_->totalEnergyPj(elapsed_cycles);
}

void
TieredBackend::visitStatGroups(const StatGroupVisitor &visit) const
{
    hot_->visitStatGroups(visit);
    cold_->visitStatGroups(visit);
}

void
TieredBackend::saveState(StateWriter &out) const
{
    out.section("TIER");
    hot_->saveState(out);
    cold_->saveState(out);
}

void
TieredBackend::loadState(StateReader &in)
{
    in.section("TIER");
    hot_->loadState(in);
    cold_->loadState(in);
}

} // namespace mnpu
