/**
 * @file
 * Physical-address to DRAM-coordinate decomposition within one channel.
 *
 * The channel index is chosen one level up (DramSystem) so that per-core
 * channel partitioning works; this class splits the remaining channel-
 * local address into rank / bank group / bank / row / column.
 *
 * Bit order is configurable with a DRAMsim3-style field string such as
 * "ro-ra-bg-ba-co" (most-significant first); the transaction offset bits
 * are always the lowest bits.
 */

#ifndef MNPU_DRAM_ADDRESS_MAPPING_HH
#define MNPU_DRAM_ADDRESS_MAPPING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/dram_timing.hh"

namespace mnpu
{

/** Decoded DRAM coordinates of one transaction. */
struct DramCoord
{
    std::uint32_t rank = 0;
    std::uint32_t bankGroup = 0;
    std::uint32_t bank = 0;     //!< bank within the bank group
    std::uint64_t row = 0;
    std::uint64_t column = 0;

    /** Flat bank index within the channel. */
    std::uint32_t
    flatBank(const DramTiming &t) const
    {
        return (rank * t.bankGroups + bankGroup) * t.banksPerGroup + bank;
    }
};

/** Splits channel-local physical addresses into DRAM coordinates. */
class AddressMapping
{
  public:
    /**
     * @param timing channel geometry (bit widths derive from it)
     * @param order  dash-separated fields, MSB first; fields: ro ra bg ba
     *               co. Every field must appear exactly once.
     */
    AddressMapping(const DramTiming &timing,
                   const std::string &order = "ro-ra-bg-ba-co");

    /** Decode @p addr (channel-local, byte-granular). */
    DramCoord decode(Addr addr) const;

    /** Bits consumed below the mapped fields (transaction offset). */
    std::uint32_t offsetBits() const { return offsetBits_; }

  private:
    struct Field
    {
        char kind;           // 'o' row, 'r' rank, 'g' group, 'b' bank,
                             // 'c' column
        std::uint32_t bits;
        std::uint32_t shift; // from bit offsetBits_
    };

    DramTiming timing_;
    std::string order_; //!< original field string, kept for diagnostics
    std::uint32_t offsetBits_;
    std::vector<Field> fields_;
};

} // namespace mnpu

#endif // MNPU_DRAM_ADDRESS_MAPPING_HH
