#include "dram/dram_timing.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/types.hh"

namespace mnpu
{

double
DramTiming::peakBandwidthBytesPerSec() const
{
    // DDR: two beats per clock; busBytes per beat.
    return static_cast<double>(busBytes) * 2.0 * clockMhz * 1e6;
}

void
DramTiming::validate() const
{
    if (!isPowerOfTwo(rowBytes) || !isPowerOfTwo(busBytes) ||
        !isPowerOfTwo(rows) || !isPowerOfTwo(bankGroups) ||
        !isPowerOfTwo(banksPerGroup) || !isPowerOfTwo(ranks)) {
        fatal("DRAM geometry values must be powers of two (", name, ")");
    }
    if (!isPowerOfTwo(burstLength))
        fatal("DRAM burst length must be a power of two (", name, ")");
    if (transactionBytes() > rowBytes)
        fatal("DRAM transaction larger than a row (", name, ")");
    // The background-energy path divides by the clock; a zero would
    // turn dram.energy_pj into Inf/NaN that silently poisons every
    // downstream aggregate, so reject it here with the preset named.
    if (clockMhz == 0)
        fatal("DRAM clock_mhz must be nonzero (timing preset '", name,
              "')");

    // Energy coefficients must be finite and non-negative for the same
    // reason: they multiply straight into dram.energy_pj telemetry.
    const struct
    {
        const char *field;
        double value;
    } energies[] = {
        {"energy_act_pre_pj", eActPrePj},
        {"energy_read_pj", eReadPj},
        {"energy_write_pj", eWritePj},
        {"energy_refresh_pj", eRefreshPj},
        {"background_mw", backgroundMw},
    };
    for (const auto &e : energies) {
        if (!std::isfinite(e.value) || e.value < 0)
            fatal("DRAM energy ", e.field, " must be finite and "
                  "non-negative, got ", e.value, " (timing preset '",
                  name, "')");
    }

    // Every timing must be nonzero: a zero constraint makes the state
    // machines (and the protocol checker) degenerate. Name the field so
    // a config typo like `dram.tRCD = 0` is diagnosable.
    const struct
    {
        const char *field;
        std::uint32_t value;
    } timings[] = {
        {"tCL", tCL},   {"tCWL", tCWL}, {"tRCD", tRCD},   {"tRP", tRP},
        {"tRAS", tRAS}, {"tWR", tWR},   {"tRTP", tRTP},   {"tCCD", tCCD},
        {"tRRD", tRRD}, {"tFAW", tFAW}, {"tWTR", tWTR},   {"tRTW", tRTW},
        {"tREFI", tREFI}, {"tRFC", tRFC},
    };
    for (const auto &t : timings) {
        if (t.value == 0)
            fatal("DRAM timing ", t.field, " must be nonzero (timing "
                  "preset '", name, "')");
    }
    if (tRAS < tRCD)
        fatal("DRAM tRAS (", tRAS, ") must cover tRCD (", tRCD,
              ") (timing preset '", name, "')");
    if (tRFC >= tREFI)
        fatal("DRAM tRFC (", tRFC, ") must be smaller than tREFI (",
              tREFI, ") or the device spends all its time refreshing "
              "(timing preset '", name, "')");
    if (tFAW < tCCD)
        fatal("DRAM tFAW (", tFAW, ") must be at least tCCD (", tCCD,
              ") (timing preset '", name, "')");
    if (tFAW < tRRD)
        fatal("DRAM tFAW (", tFAW, ") must be at least tRRD (", tRRD,
              ") (timing preset '", name, "')");
    if (tRFC < tRP)
        fatal("DRAM tRFC (", tRFC, ") must cover tRP (", tRP,
              "): a refresh implies an all-bank precharge (timing "
              "preset '", name, "')");
}

DramTiming
DramTiming::hbm2()
{
    DramTiming t;
    t.name = "hbm2";
    t.ranks = 1;
    t.bankGroups = 4;
    t.banksPerGroup = 4;
    t.rows = 16384;
    t.rowBytes = 2048;
    t.busBytes = 16;   // 128-bit channel
    t.burstLength = 4; // BL4 -> 64B transaction
    t.clockMhz = 1000;
    t.tCL = 14;
    t.tCWL = 4;
    t.tRCD = 14;
    t.tRP = 14;
    t.tRAS = 33;
    t.tWR = 15;
    t.tRTP = 7;
    t.tCCD = 2;
    t.tRRD = 4;
    t.tFAW = 16;
    t.tWTR = 8;
    t.tRTW = 3;
    t.tREFI = 3900;
    t.tRFC = 350;
    t.validate();
    return t;
}

DramTiming
DramTiming::ddr4()
{
    DramTiming t;
    t.name = "ddr4";
    t.ranks = 2;
    t.bankGroups = 4;
    t.banksPerGroup = 4;
    t.rows = 32768;
    t.rowBytes = 8192;
    t.busBytes = 8;    // 64-bit channel
    t.burstLength = 8; // BL8 -> 64B transaction
    t.clockMhz = 1200; // DDR4-2400
    t.tCL = 16;
    t.tCWL = 12;
    t.tRCD = 16;
    t.tRP = 16;
    t.tRAS = 39;
    t.tWR = 18;
    t.tRTP = 9;
    t.tCCD = 4;
    t.tRRD = 4;
    t.tFAW = 26;
    t.tWTR = 9;
    t.tRTW = 4;
    t.tREFI = 9360;
    t.tRFC = 420;
    t.validate();
    return t;
}

DramTiming
DramTiming::pcm()
{
    // Phase-change media behind the HBM2 bus: same clock, bus width,
    // and 64B transaction as hbm2() so a tiered system keeps one clock
    // domain and one transaction size across tiers (the lifecycle
    // audit reconciles byte totals assuming uniform transactions).
    // Array timings are the slow part: reads pay a ~4x array access,
    // writes are strongly asymmetric (cell programming, tWR ~10x),
    // and the media needs no refresh, so tREFI is pushed out to "a
    // millisecond" with tRFC at its floor (validate: tRFC >= tRP).
    DramTiming t = hbm2();
    t.name = "pcm";
    t.tCL = 60;    // slow array read
    t.tRCD = 110;  // activate (array sense) dominates read latency
    t.tRP = 30;
    t.tRAS = 160;
    t.tWR = 150;   // asymmetric write programming
    t.tWTR = 30;
    t.tRRD = 8;
    t.tFAW = 32;
    t.tREFI = 1000000; // non-volatile: effectively no refresh
    t.tRFC = 30;
    t.eActPrePj = 8000;   // array sense/restore
    t.eReadPj = 4000;
    t.eWritePj = 30000;   // RESET/SET programming energy
    t.eRefreshPj = 0;
    t.backgroundMw = 20;  // no refresh/retention power
    t.validate();
    return t;
}

DramTiming
DramTiming::preset(const std::string &preset_name)
{
    if (iequals(preset_name, "hbm2"))
        return hbm2();
    if (iequals(preset_name, "ddr4"))
        return ddr4();
    if (iequals(preset_name, "pcm"))
        return pcm();
    fatal("unknown DRAM preset '", preset_name, "'");
}

DramTiming
DramTiming::fromConfig(const ConfigFile &config, const std::string &prefix)
{
    DramTiming t = preset(config.getString(prefix + "protocol", "hbm2"));

    auto u32 = [&](const char *key, std::uint32_t current) {
        return static_cast<std::uint32_t>(
            config.getUint(prefix + key, current));
    };
    t.ranks = u32("ranks", t.ranks);
    t.bankGroups = u32("bank_groups", t.bankGroups);
    t.banksPerGroup = u32("banks_per_group", t.banksPerGroup);
    t.rows = u32("rows", t.rows);
    t.rowBytes = config.getUint(prefix + "row_bytes", t.rowBytes);
    t.busBytes = u32("bus_bytes", t.busBytes);
    t.burstLength = u32("burst_length", t.burstLength);
    t.clockMhz = config.getUint(prefix + "clock_mhz", t.clockMhz);
    t.tCL = u32("tCL", t.tCL);
    t.tCWL = u32("tCWL", t.tCWL);
    t.tRCD = u32("tRCD", t.tRCD);
    t.tRP = u32("tRP", t.tRP);
    t.tRAS = u32("tRAS", t.tRAS);
    t.tWR = u32("tWR", t.tWR);
    t.tRTP = u32("tRTP", t.tRTP);
    t.tCCD = u32("tCCD", t.tCCD);
    t.tRRD = u32("tRRD", t.tRRD);
    t.tFAW = u32("tFAW", t.tFAW);
    t.tWTR = u32("tWTR", t.tWTR);
    t.tRTW = u32("tRTW", t.tRTW);
    t.tREFI = u32("tREFI", t.tREFI);
    t.tRFC = u32("tRFC", t.tRFC);
    // Energy coefficients were previously not configurable at all —
    // the preset values always won — so a config's energy knobs were
    // silently ignored. Parse (and thus validate) them too.
    t.eActPrePj = config.getDouble(prefix + "energy_act_pre_pj",
                                   t.eActPrePj);
    t.eReadPj = config.getDouble(prefix + "energy_read_pj", t.eReadPj);
    t.eWritePj = config.getDouble(prefix + "energy_write_pj",
                                  t.eWritePj);
    t.eRefreshPj = config.getDouble(prefix + "energy_refresh_pj",
                                    t.eRefreshPj);
    t.backgroundMw = config.getDouble(prefix + "background_mw",
                                      t.backgroundMw);
    std::string policy = config.getString(prefix + "row_policy", "open");
    if (iequals(policy, "open"))
        t.rowPolicy = RowPolicy::Open;
    else if (iequals(policy, "closed"))
        t.rowPolicy = RowPolicy::Closed;
    else
        fatal("unknown row policy '", policy, "'");
    t.validate();
    return t;
}

} // namespace mnpu
