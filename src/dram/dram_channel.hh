/**
 * @file
 * One DRAM channel: per-bank state machines, all-bank refresh, and an
 * FR-FCFS (first-ready, first-come-first-served) command scheduler.
 *
 * The channel is ticked on the global (DRAM) clock. Each tick it retires
 * due completions, issues refreshes when due, and issues at most one
 * command, preferring the oldest ready row-buffer hit and otherwise
 * working on the oldest request (precharge/activate path).
 *
 * The request queue is stored struct-of-arrays: the issue and bound
 * scans touch only the small parallel arrays (flat bank, row, age,
 * priority) that decide eligibility, so a scan streams through a few
 * dense cache lines instead of striding over 80-byte AoS entries, and
 * removal is an O(1) swap-with-back instead of the old O(n) mid-deque
 * erase. FR-FCFS arrival order is preserved by an explicit monotonic
 * age per entry (selection picks the min-age eligible entry, priority
 * pass first), which the golden suites verify is bit-identical to the
 * previous in-order scan.
 */

#ifndef MNPU_DRAM_DRAM_CHANNEL_HH
#define MNPU_DRAM_DRAM_CHANNEL_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/snapshot.hh"
#include "common/stats.hh"
#include "common/trace_events.hh"
#include "common/types.hh"
#include "dram/address_mapping.hh"
#include "dram/dram_timing.hh"

namespace mnpu
{

class DramProtocolChecker;

/** One transaction presented to the DRAM system. */
struct DramRequest
{
    Addr paddr = kAddrInvalid;  //!< physical address (system-level)
    MemOp op = MemOp::Read;
    CoreId core = kCoreInvalid; //!< issuing NPU core (for stats/routing)
    std::uint64_t tag = 0;      //!< opaque client cookie
    /**
     * Latency-critical request (page-table walk steps). The scheduler
     * prefers these over bulk DMA traffic, as real memory controllers
     * do for translation fetches — a walk is 2-4 serial reads gating
     * thousands of coalesced transactions.
     */
    bool priority = false;
    /**
     * Monotonic lifecycle-audit ID assigned by the DramSystem when a
     * RequestLifecycleTracker is active; 0 = untracked.
     */
    std::uint64_t integrityId = 0;
    /**
     * Global cycle the DramSystem accepted this request (observability
     * only — stamped on the queued copy, never read by the scheduler,
     * so it cannot perturb timing).
     */
    Cycle enqueuedAt = 0;
    /**
     * Placement class (weight vs activation), stamped by the core from
     * the workload's tensor map. Only tiered backends read it; the
     * DRAM scheduler ignores it, so single-backend timing is
     * independent of the stamping.
     */
    MemRegion region = MemRegion::Activation;
};

/** Completion callback: the request and the cycle its data finished. */
using DramCallback = std::function<void(const DramRequest &, Cycle)>;

class DramChannel
{
  public:
    /**
     * @param timing       device parameters (validate()d here, so a
     *                     directly constructed channel rejects broken
     *                     timing the same way DramSystem does)
     * @param mapping      channel-local address decomposition
     * @param queue_depth  max outstanding transactions in the queue
     * @param name         stats group name (e.g. "dram.ch0")
     */
    DramChannel(const DramTiming &timing, const AddressMapping &mapping,
                std::uint32_t queue_depth, const std::string &name);

    /**
     * @return true if the transaction queue has room. A few slots are
     * reserved for priority (walk) requests so bulk DMA traffic cannot
     * lock translation fetches out of a saturated queue.
     */
    bool canAccept(bool priority) const
    {
        std::uint32_t limit =
            priority ? queueDepth_
                     : queueDepth_ - std::min<std::uint32_t>(
                                         kPriorityReserve, queueDepth_ - 1);
        return queueSize() < limit;
    }

    /**
     * Queue a transaction with channel-local address @p local_addr.
     * Caller must have checked canAccept().
     */
    void enqueue(const DramRequest &request, Addr local_addr, Cycle now);

    /**
     * Advance to global cycle @p now; fire completions via callback.
     * @return true when a queue slot was freed (a column command
     * issued), i.e. a blocked enqueuer's retry could now succeed.
     */
    bool tick(Cycle now);

    /**
     * Event-scheduler fast path: when enabled, each tick() also leaves
     * the channel's event bound in boundAfterTick(), reusing the
     * rejection conditions the issue scans already evaluated instead
     * of re-deriving them in a second nextEventCycle() pass.
     */
    void setBounding(bool on) { bounding_ = on; }

    /**
     * Bound produced by the last tick() while bounding is enabled.
     * Identical contract to nextEventCycle(): never overshoots the
     * next state change, may undershoot. A tick that issued a command
     * reports now + 1 (another command may be ready immediately).
     */
    Cycle boundAfterTick() const { return boundAfterTick_; }

    /** @return true while any transaction is queued or in flight. */
    bool busy() const
    {
        return queueSize() != 0 || !completions_.empty();
    }

    /**
     * Conservative per-cycle bound (the cycle scheduler): now + 1
     * whenever any transaction is queued, else the next completion.
     */
    Cycle nextTickCycle(Cycle now) const;

    /**
     * Sharp lower bound on the next cycle tick() changes state: the
     * earliest of the next completion, the next possible refresh on
     * any rank, and per queued request the earliest cycle its next
     * FR-FCFS command (column hit / precharge / activate) could issue.
     * Never overshoots the true next state change; may undershoot
     * (an extra visited cycle is a harmless no-op tick).
     */
    Cycle nextEventCycle(Cycle now) const;

    void setCallback(DramCallback callback)
    {
        callback_ = std::move(callback);
    }

    /**
     * Attach a protocol checker (integrity layer, full level); every
     * ACT/PRE/RD/WR/REF issued from now on is reported to it. Pass
     * nullptr to detach. The checker is not owned.
     */
    void setProtocolChecker(DramProtocolChecker *checker)
    {
        checker_ = checker;
    }

    /**
     * Attach a trace sink (observability layer, Requests level); every
     * ACT/PRE/RD/WR/REF issued from now on is emitted as an instant
     * event on the channel's command track. Same passive-observer
     * contract as setProtocolChecker(); nullptr detaches, not owned.
     */
    void setTraceSink(TraceEventSink *sink, std::uint32_t channel_index)
    {
        traceSink_ = sink;
        traceTid_ = TraceEventSink::kChannelTidBase + channel_index;
    }

    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

    /**
     * Energy consumed by this channel in picojoules: command energy
     * (ACT/PRE pairs, column reads/writes, refreshes) plus standby
     * background power integrated over @p elapsed_cycles.
     */
    double energyPj(Cycle elapsed_cycles) const;

    /**
     * Fast-fidelity bulk accounting: credit the counters for a batch
     * of transactions the analytic path modeled without queueing them
     * (row hits/misses and activates per its row-granularity model).
     * Keeps stats/energy/telemetry consistent across fidelities; the
     * bank/rank state machines are untouched.
     */
    void fastAccount(std::uint64_t num_reads, std::uint64_t num_writes,
                     std::uint64_t row_hits, std::uint64_t row_misses,
                     std::uint64_t num_activates, std::uint64_t num_bytes)
    {
        reads_.inc(num_reads);
        writes_.inc(num_writes);
        rowHits_.inc(row_hits);
        rowMisses_.inc(row_misses);
        activates_.inc(num_activates);
        bytes_.inc(num_bytes);
    }

    /**
     * Snapshot the full channel: the SoA request queue in its current
     * array order (so the swap-with-back layout and FCFS age
     * tie-breaks restore exactly), the completion heap array verbatim,
     * bank/rank state machines, the column turnaround gates, and the
     * stats group. Geometry (bank/rank counts, queue depth) is
     * cross-checked on load and throws SnapshotError on mismatch.
     */
    void saveState(StateWriter &out) const;
    void loadState(StateReader &in);

  private:
    static constexpr std::uint32_t kPriorityReserve = 4;
    /** Queue depth at/above which boundAfterIssue skips the rescan. */
    static constexpr std::size_t kSharpBoundQueueLimit = 4;
    static constexpr std::uint64_t kAgeNever =
        std::numeric_limits<std::uint64_t>::max();
    static constexpr std::size_t kNoEntry =
        std::numeric_limits<std::size_t>::max();

    struct BankState
    {
        std::int64_t openRow = -1;
        Cycle nextActivate = 0;
        Cycle nextColumn = 0;    //!< earliest read/write after ACT (tRCD)
        Cycle nextPrecharge = 0;
    };

    struct RankState
    {
        std::vector<Cycle> actWindow; //!< last tFAW-window activations
        std::size_t actPtr = 0;
        Cycle nextActivate = 0;       //!< tRRD gate
        Cycle refreshDueAt = 0;
        Cycle refreshingUntil = 0;
    };

    struct Completion
    {
        Cycle at;
        DramRequest request;
        bool operator>(const Completion &other) const
        {
            return at > other.at;
        }
    };

    // In-flight completions as an explicit binary min-heap over a
    // vector (std::push_heap/std::pop_heap with std::greater) instead
    // of std::priority_queue. The two are specified as the identical
    // heap algorithms — the retire order, including ties on `at`, is
    // unchanged (the golden fixtures pin this) — but the explicit
    // array can be serialized verbatim, so a restored heap pops in
    // exactly the order the snapshotted one would have.
    const Completion &completionsTop() const { return completions_.front(); }
    void
    completionsPush(Completion done)
    {
        completions_.push_back(std::move(done));
        std::push_heap(completions_.begin(), completions_.end(),
                       std::greater<Completion>{});
    }
    void
    completionsPop()
    {
        std::pop_heap(completions_.begin(), completions_.end(),
                      std::greater<Completion>{});
        completions_.pop_back();
    }

    std::size_t queueSize() const { return qFlat_.size(); }
    void removeAt(std::size_t i);
    bool anyHitOnBank(std::uint32_t flat_bank, std::int64_t row) const;
    void computeMinHitAges() const;

    bool rankCanActivate(const RankState &rank, Cycle now) const;
    void recordActivate(RankState &rank, Cycle now);
    void maybeRefresh(Cycle now);
    bool tryIssueColumn(Cycle now, Cycle *bound);
    bool tryIssueRowCommand(Cycle now, Cycle *bound);
    Cycle refreshFireCycle(std::uint32_t rank_index) const;
    Cycle refreshBound(Cycle now) const;
    Cycle boundAfterIssue(Cycle now) const;

    DramTiming timing_;
    AddressMapping mapping_;
    std::uint32_t queueDepth_;

    /**
     * The request queue, struct-of-arrays. Entries are unordered in
     * memory (removal swaps with the back); qAge_ carries the FCFS
     * arrival order the scheduler's tie-breaks need. The scans' hot
     * fields (flat bank, row, priority, age) live in their own dense
     * arrays; the full DramRequest is only touched at issue time.
     */
    std::vector<std::uint32_t> qFlat_;   //!< cached coord.flatBank()
    std::vector<std::uint64_t> qRow_;
    std::vector<std::uint32_t> qRank_;
    std::vector<std::uint8_t> qPriority_;
    std::vector<std::uint8_t> qWrite_;
    std::vector<std::uint64_t> qAge_;    //!< monotonic arrival order
    std::vector<Cycle> qArrival_;
    std::vector<std::uint8_t> qCausedActivate_;
    std::vector<DramRequest> qRequest_;
    std::uint64_t nextAge_ = 0;
    std::uint32_t priorityQueued_ = 0; //!< priority entries queued

    /** Per-flat-bank min age of a queued hit on the bank's open row;
     *  scratch for the scans (computeMinHitAges). */
    mutable std::vector<std::uint64_t> minHitAge_;

    std::vector<Completion> completions_; //!< min-heap by `at`

    std::vector<BankState> banks_;
    std::vector<RankState> ranks_;

    Cycle nextColumnSame_ = 0;   //!< tCCD / bus occupancy gate
    Cycle nextColumnSwitch_ = 0; //!< gate when switching read<->write
    bool lastOpWasWrite_ = false;

    bool bounding_ = false;     //!< tick() also computes boundAfterTick_
    Cycle boundAfterTick_ = 0;

    void traceCommand(const char *name, Cycle now)
    {
        if (traceSink_) {
            traceSink_->instant(TraceEventSink::kDramPid, traceTid_, "cmd",
                                name, now);
        }
    }

    DramCallback callback_;
    DramProtocolChecker *checker_ = nullptr;
    TraceEventSink *traceSink_ = nullptr;
    std::uint32_t traceTid_ = TraceEventSink::kChannelTidBase;
    StatGroup stats_;
    Counter &reads_;
    Counter &writes_;
    Counter &rowHits_;
    Counter &rowMisses_;
    Counter &bytes_;
    Counter &refreshes_;
    Counter &activates_;
    Distribution &queueLatency_;
};

} // namespace mnpu

#endif // MNPU_DRAM_DRAM_CHANNEL_HH
