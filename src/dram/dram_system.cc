#include "dram/dram_system.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace mnpu
{

DramSystem::DramSystem(const DramTiming &timing, std::uint32_t num_channels,
                       std::uint32_t num_cores, std::uint32_t queue_depth,
                       const std::string &mapping_order,
                       const std::string &stat_prefix)
    : timing_(timing),
      offsetBits_(floorLog2(timing.transactionBytes())),
      statPrefix_(stat_prefix),
      partitions_(num_cores),
      buckets_(num_cores),
      coreBytes_(num_cores, 0),
      coreWalkBytes_(num_cores, 0)
{
    if (num_channels == 0)
        fatal("DRAM system needs at least one channel");
    if (num_cores == 0)
        fatal("DRAM system needs at least one core");
    timing.validate();
    AddressMapping mapping(timing, mapping_order);
    channels_.reserve(num_channels);
    for (std::uint32_t c = 0; c < num_channels; ++c) {
        channels_.push_back(std::make_unique<DramChannel>(
            timing, mapping, queue_depth,
            statPrefix_ + ".ch" + std::to_string(c)));
        channels_.back()->setCallback(
            [this](const DramRequest &request, Cycle at) {
                onCompletion(request, at);
            });
    }
    fastBusyUntil_.assign(num_channels, 0);
    applyPolicy(SharingPolicy{});
}

void
DramSystem::applyPolicy(const SharingPolicy &policy)
{
    switch (policy.channels) {
    case SharingPolicy::Channels::ShareAll: {
        std::vector<std::uint32_t> all(channels_.size());
        std::iota(all.begin(), all.end(), 0);
        for (auto &partition : partitions_)
            partition = all;
        break;
    }
    case SharingPolicy::Channels::ByCounts: {
        const auto &counts = policy.channelCounts;
        if (counts.size() != partitions_.size())
            fatal("SharingPolicy: need one channel count per core");
        std::uint32_t total = 0;
        for (auto count : counts)
            total += count;
        if (total != channels_.size())
            fatal("SharingPolicy: counts sum to ", total,
                  " but system has ", channels_.size(), " channels");
        std::uint32_t next = 0;
        for (CoreId core = 0; core < counts.size(); ++core) {
            if (counts[core] == 0)
                fatal("SharingPolicy: core ", core,
                      " must own >= 1 channel");
            std::vector<std::uint32_t> channels(counts[core]);
            std::iota(channels.begin(), channels.end(), next);
            next += counts[core];
            partitions_[core] = std::move(channels);
        }
        break;
    }
    case SharingPolicy::Channels::Explicit: {
        const auto &sets = policy.explicitSets;
        if (sets.size() != partitions_.size())
            fatal("SharingPolicy: need one channel set per core");
        for (CoreId core = 0; core < sets.size(); ++core) {
            if (sets[core].empty())
                fatal("SharingPolicy: core ", core,
                      " must own >= 1 channel");
            for (auto channel_id : sets[core]) {
                if (channel_id >= channels_.size())
                    fatal("SharingPolicy: channel ", channel_id,
                          " out of range");
            }
        }
        partitions_ = sets;
        break;
    }
    case SharingPolicy::Channels::Keep:
        break;
    }
    if (policy.bandwidthShares)
        applyBandwidthShares(*policy.bandwidthShares);
}

void
DramSystem::setPartition(CoreId core, std::vector<std::uint32_t> channels)
{
    if (core >= partitions_.size())
        fatal("setPartition: core ", core, " out of range");
    SharingPolicy policy;
    policy.channels = SharingPolicy::Channels::Explicit;
    policy.explicitSets = partitions_;
    policy.explicitSets[core] = std::move(channels);
    applyPolicy(policy);
}

void
DramSystem::shareAllChannels()
{
    applyPolicy(SharingPolicy{});
}

void
DramSystem::partitionByCounts(const std::vector<std::uint32_t> &counts)
{
    SharingPolicy policy;
    policy.channels = SharingPolicy::Channels::ByCounts;
    policy.channelCounts = counts;
    applyPolicy(policy);
}

DramSystem::Route
DramSystem::route(const DramRequest &request) const
{
    if (request.core >= partitions_.size())
        fatal("DRAM request from unknown core ", request.core);
    const auto &set = partitions_[request.core];
    Addr tx = request.paddr >> offsetBits_;
    auto set_size = static_cast<Addr>(set.size());
    std::uint32_t channel = set[static_cast<std::size_t>(tx % set_size)];
    Addr offset_mask = (Addr{1} << offsetBits_) - 1;
    Addr local = ((tx / set_size) << offsetBits_) |
                 (request.paddr & offset_mask);
    return Route{channel, local};
}

void
DramSystem::setBandwidthShares(const std::vector<std::uint32_t> &shares)
{
    SharingPolicy policy;
    policy.channels = SharingPolicy::Channels::Keep;
    policy.bandwidthShares = shares;
    applyPolicy(policy);
}

void
DramSystem::applyBandwidthShares(const std::vector<std::uint32_t> &shares)
{
    if (shares.empty()) {
        for (auto &bucket : buckets_)
            bucket = TokenBucket{};
        return;
    }
    if (shares.size() != buckets_.size())
        fatal("bandwidth shares: need one share per core");
    std::uint64_t total = 0;
    for (auto share : shares)
        total += share;
    if (total == 0)
        fatal("setBandwidthShares: shares sum to zero");
    // Peak bytes per global (DRAM) cycle across the whole system: the
    // bus moves 2 beats/cycle (DDR) of busBytes per channel.
    double peak_per_cycle = 2.0 * timing_.busBytes *
                            static_cast<double>(channels_.size());
    for (CoreId core = 0; core < buckets_.size(); ++core) {
        TokenBucket &bucket = buckets_[core];
        if (shares[core] == 0)
            fatal("bandwidth shares: core ", core, " share must be > 0");
        bucket.enabled = true;
        bucket.ratePerCycle = peak_per_cycle *
                              static_cast<double>(shares[core]) /
                              static_cast<double>(total);
        bucket.burstCap = std::max<double>(
            bucket.ratePerCycle * 8,
            static_cast<double>(timing_.transactionBytes()));
        bucket.tokens = bucket.burstCap;
        bucket.lastRefill = 0;
    }
}

bool
DramSystem::canAccept(const DramRequest &request) const
{
    return channels_[route(request).channel]->canAccept(request.priority);
}

bool
DramSystem::tryEnqueue(const DramRequest &request, Cycle now)
{
    Route r = route(request);
    DramChannel &channel = *channels_[r.channel];
    if (!channel.canAccept(request.priority))
        return false;
    if (request.core < buckets_.size()) {
        TokenBucket &bucket = buckets_[request.core];
        if (bucket.enabled) {
            auto cost = static_cast<double>(timing_.transactionBytes());
            double avail = available(bucket, now);
            if (avail < cost)
                return false; // anchored bucket: a refusal mutates nothing
            bucket.tokens = avail - cost;
            bucket.lastRefill = now;
            // Re-observe after the spend so an upward re-crossing is
            // detected even between channel ticks (event mode).
            bucket.wasBelowCost = available(bucket, now) < cost;
        }
    }
    DramRequest accepted = request;
    accepted.enqueuedAt = now;
    if (tracker_)
        accepted.integrityId = tracker_->onIssue(request.paddr, request.core,
                                                 request.priority, now);
    channel.enqueue(accepted, r.localAddr, now);
    if (eventDriven_) {
        // The cached bound predates this enqueue; revisit the channel.
        chanPoked_[r.channel] = 1;
        anyPoked_ = true;
    }
    if (startLog_.enabled()) {
        startLog_.row(now, request.core, r.channel, request.paddr,
                      toString(request.op),
                      request.priority ? "walk" : "data");
    }
    return true;
}

Cycle
DramSystem::fastTransfer(CoreId core, std::uint64_t num_tx, bool is_write,
                         Cycle start)
{
    mnpu_assert(core < partitions_.size(), "fastTransfer: unknown core");
    if (num_tx == 0)
        return start;
    const std::uint64_t tx_bytes = timing_.transactionBytes();
    const std::uint64_t bytes = num_tx * tx_bytes;

    // Bandwidth shares: spend the whole batch against the anchored
    // bucket. The batch cannot finish before the bucket has earned its
    // full cost, so the anchor jumps to that crossing in one step.
    Cycle bucket_done = start;
    if (core < buckets_.size() && buckets_[core].enabled) {
        TokenBucket &bucket = buckets_[core];
        const double need = static_cast<double>(bytes);
        const double avail = available(bucket, start);
        if (avail < need && bucket.ratePerCycle > 0) {
            bucket_done =
                start +
                static_cast<Cycle>(
                    std::ceil((need - avail) / bucket.ratePerCycle));
        }
        bucket.tokens =
            std::max(0.0, available(bucket, bucket_done) - need);
        bucket.lastRefill = bucket_done;
    }

    const auto &set = partitions_[core];
    const auto set_size = static_cast<std::uint64_t>(set.size());
    const std::uint64_t cols_per_row =
        std::max<std::uint64_t>(1, timing_.columnsPerRow());
    const Cycle col_gap =
        std::max<Cycle>(timing_.tCCD, timing_.burstCycles());
    const Cycle data_lat =
        (is_write ? timing_.tCWL : timing_.tCL) + timing_.burstCycles();
    const std::uint64_t base = num_tx / set_size;
    const std::uint64_t rem = num_tx % set_size;
    Cycle done = bucket_done;
    for (std::uint64_t i = 0; i < set_size; ++i) {
        const std::uint64_t cnt = base + (i < rem ? 1 : 0);
        if (cnt == 0)
            continue;
        const std::uint32_t c = set[static_cast<std::size_t>(i)];
        const Cycle s = std::max(start, fastBusyUntil_[c]);
        const std::uint64_t rows = ceilDiv(cnt, cols_per_row);
        const Cycle service =
            static_cast<Cycle>(cnt) * col_gap +
            static_cast<Cycle>(rows) * (timing_.tRP + timing_.tRCD);
        fastBusyUntil_[c] = s + service;
        done = std::max(done, s + service + data_lat);
        channels_[c]->fastAccount(is_write ? 0 : cnt, is_write ? cnt : 0,
                                  cnt - rows, rows, rows, cnt * tx_bytes);
    }

    coreBytes_[core] += bytes;
    if (totalTracer_) {
        totalTracer_->record(done, bytes);
        if (core < coreTracers_.size())
            coreTracers_[core].record(done, bytes);
    }
    return done;
}

void
DramSystem::fastWalkTraffic(CoreId core, std::uint64_t num_steps, Cycle at)
{
    mnpu_assert(core < partitions_.size(), "fastWalkTraffic: unknown core");
    if (num_steps == 0)
        return;
    const std::uint64_t tx_bytes = timing_.transactionBytes();
    const std::uint64_t bytes = num_steps * tx_bytes;
    const auto &set = partitions_[core];
    const auto set_size = static_cast<std::uint64_t>(set.size());
    const std::uint64_t base = num_steps / set_size;
    const std::uint64_t rem = num_steps % set_size;
    for (std::uint64_t i = 0; i < set_size; ++i) {
        const std::uint64_t cnt = base + (i < rem ? 1 : 0);
        if (cnt == 0)
            continue;
        // Walk steps chase pointer-shaped PTE addresses: modeled as
        // all row misses.
        channels_[set[static_cast<std::size_t>(i)]]->fastAccount(
            cnt, 0, 0, cnt, cnt, cnt * tx_bytes);
    }
    coreBytes_[core] += bytes;
    coreWalkBytes_[core] += bytes;
    if (totalTracer_) {
        totalTracer_->record(at, bytes);
        if (core < coreTracers_.size())
            coreTracers_[core].record(at, bytes);
    }
}

void
DramSystem::enableRequestLog(const std::string &dir)
{
    startLog_.open(dir + "/dram.log",
                   "start_cycle,core,channel,paddr,op,kind");
    endLog_.open(dir + "/dramreq.log", "end_cycle,core,paddr,op");
}

void
DramSystem::flushRequestLogs()
{
    startLog_.flush();
    endLog_.flush();
}

void
DramSystem::setEventDriven(bool enabled)
{
    eventDriven_ = enabled;
    for (auto &channel : channels_)
        channel->setBounding(enabled);
    if (!enabled) {
        chanNext_.clear();
        chanPoked_.clear();
        anyPoked_ = false;
        retrySignal_ = false;
        return;
    }
    // Bound 0 = "due now": every channel is visited (and its real bound
    // cached) on the first event-driven tick.
    chanNext_.assign(channels_.size(), 0);
    chanPoked_.assign(channels_.size(), 0);
}

void
DramSystem::tick(Cycle now)
{
    while (!delayed_.empty()) {
        // Release the earliest due completion a dram-delay fault held.
        auto due = std::min_element(delayed_.begin(), delayed_.end(),
                                    [](const auto &a, const auto &b) {
                                        return a.at < b.at;
                                    });
        if (due->at > now)
            break;
        DramRequest request = due->request;
        delayed_.erase(due);
        deliver(request, now);
    }
    if (!eventDriven_) {
        for (auto &channel : channels_) {
            if (channel->busy())
                channel->tick(now);
        }
        return;
    }
    // Event-driven: tick only channels with due work (cached bound) or
    // a fresh enqueue; a skipped channel's tick is provably a no-op
    // (the nextEventCycle contract). Cache the recomputed bound so the
    // scheduler's bound query does not rescan untouched queues.
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        if (chanNext_[c] > now && !chanPoked_[c])
            continue;
        if (channels_[c]->tick(now))
            retrySignal_ = true;
        chanPoked_[c] = 0;
        chanNext_[c] = channels_[c]->boundAfterTick();
    }
    anyPoked_ = false;
    // A starved bucket re-crossing one transaction's cost unblocks the
    // same retries a freed queue slot does.
    auto cost = static_cast<double>(timing_.transactionBytes());
    for (auto &bucket : buckets_) {
        if (!bucket.enabled)
            continue;
        bool below = available(bucket, now) < cost;
        if (bucket.wasBelowCost && !below)
            retrySignal_ = true;
        bucket.wasBelowCost = below;
    }
}

bool
DramSystem::busy() const
{
    return !delayed_.empty() ||
           std::any_of(channels_.begin(), channels_.end(),
                       [](const auto &channel) { return channel->busy(); });
}

Cycle
DramSystem::nextTickCycle(Cycle now) const
{
    Cycle next = kCycleNever;
    for (const auto &entry : delayed_)
        next = std::min(next, std::max(entry.at, now + 1));
    for (const auto &channel : channels_)
        next = std::min(next, channel->nextTickCycle(now));
    return next;
}

Cycle
DramSystem::nextEventCycle(Cycle now) const
{
    Cycle next = kCycleNever;
    for (const auto &entry : delayed_)
        next = std::min(next, std::max(entry.at, now + 1));
    // A starved token bucket gets a closed-form refill-crossing
    // candidate: the first cycle the anchored balance reaches one
    // transaction's cost. The anchor only moves on successful spends
    // (which happen at visited cycles in both schedulers), so the
    // crossing is a pure function of state both schedulers share; the
    // ±1 adjustment loops pin T against float rounding using the exact
    // admission expression.
    auto cost = static_cast<double>(timing_.transactionBytes());
    for (const auto &bucket : buckets_) {
        if (!bucket.enabled || available(bucket, now) >= cost)
            continue;
        if (bucket.ratePerCycle <= 0 || bucket.burstCap < cost) {
            next = std::min(next, now + 1); // can never refill past cost
            continue;
        }
        double deficit = cost - bucket.tokens;
        Cycle T = bucket.lastRefill +
                  static_cast<Cycle>(
                      std::ceil(deficit / bucket.ratePerCycle));
        T = std::max(T, now + 1);
        while (available(bucket, T) < cost)
            ++T;
        while (T > now + 1 && available(bucket, T - 1) >= cost)
            --T;
        next = std::min(next, T);
    }
    if (eventDriven_) {
        // Cached per-channel bounds (maintained by tick); a channel
        // enqueued-to since its bound was cached must be revisited.
        if (anyPoked_)
            next = std::min(next, now + 1);
        for (Cycle cached : chanNext_)
            next = std::min(next, std::max(cached, now + 1));
        return next;
    }
    for (const auto &channel : channels_)
        next = std::min(next, channel->nextEventCycle(now));
    return next;
}

std::uint64_t
DramSystem::protocolStreamHash() const
{
    std::uint64_t total = 0;
    for (const auto &checker : checkers_) {
        // Order-independent mix across channels (each channel's own
        // stream is order-sensitive inside its checker hash).
        total ^= checker->streamHash();
    }
    return total;
}

void
DramSystem::setCallback(DramCallback callback)
{
    clientCallback_ = std::move(callback);
}

void
DramSystem::setIntegrity(RequestLifecycleTracker *tracker,
                         FaultInjector *injector)
{
    tracker_ = tracker;
    injector_ = injector;
}

void
DramSystem::enableProtocolChecks()
{
    checkers_.clear();
    checkers_.reserve(channels_.size());
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        checkers_.push_back(std::make_unique<DramProtocolChecker>(
            timing_, statPrefix_ + ".ch" + std::to_string(c)));
        channels_[c]->setProtocolChecker(checkers_.back().get());
    }
}

void
DramSystem::setTraceSink(TraceEventSink *sink)
{
    traceSink_ = sink && sink->wants(TraceLevel::Requests) ? sink : nullptr;
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        channels_[c]->setTraceSink(traceSink_,
                                   static_cast<std::uint32_t>(c));
    }
}

std::uint64_t
DramSystem::protocolCommandsChecked() const
{
    std::uint64_t total = 0;
    for (const auto &checker : checkers_)
        total += checker->commandsChecked();
    return total;
}

void
DramSystem::onCompletion(const DramRequest &request, Cycle at)
{
    if (injector_) {
        if (injector_->fire(FaultSite::DramDrop))
            return; // the response vanishes; the tracker must notice
        if (injector_->fire(FaultSite::DramDelay)) {
            delayed_.push_back(DelayedCompletion{
                at + injector_->plan().delayCycles, request});
            return;
        }
    }
    deliver(request, at);
    if (injector_ && injector_->fire(FaultSite::DramDup))
        deliver(request, at); // duplicated response; the tracker throws
}

void
DramSystem::deliver(const DramRequest &request, Cycle at)
{
    if (tracker_)
        tracker_->onComplete(request.integrityId, request.paddr,
                             request.core, request.priority, at);
    std::uint64_t bytes = timing_.transactionBytes();
    if (request.core < coreBytes_.size()) {
        coreBytes_[request.core] += bytes;
        if (request.priority)
            coreWalkBytes_[request.core] += bytes;
    }
    if (totalTracer_) {
        totalTracer_->record(at, bytes);
        if (request.core < coreTracers_.size())
            coreTracers_[request.core].record(at, bytes);
    }
    if (endLog_.enabled())
        endLog_.row(at, request.core, request.paddr, toString(request.op));
    if (traceSink_) {
        const char *kind = request.priority
                               ? "walk"
                               : (request.op == MemOp::Write ? "write"
                                                             : "read");
        traceSink_->complete(TraceEventSink::kDramPid, request.core,
                             "request", kind, request.enqueuedAt, at);
    }
    if (clientCallback_)
        clientCallback_(request, at);
}

void
DramSystem::enableTelemetry(Cycle window_cycles)
{
    totalTracer_.emplace(window_cycles);
    coreTracers_.clear();
    for (std::size_t core = 0; core < partitions_.size(); ++core)
        coreTracers_.emplace_back(window_cycles);
}

void
DramSystem::finalizeTelemetry()
{
    if (!totalTracer_)
        return;
    totalTracer_->finalize();
    for (auto &tracer : coreTracers_)
        tracer.finalize();
}

const IntervalTracer &
DramSystem::coreTelemetry(CoreId core) const
{
    // A recoverable error, not an assert: a bench asking for telemetry
    // it never enabled is a configuration mistake and must be
    // containable per-mix instead of aborting the whole sweep.
    if (coreTracers_.empty())
        fatal("coreTelemetry(", core,
              ") requested but telemetry was never enabled; call "
              "enableTelemetry()/SystemConfig::telemetryWindow first");
    if (core >= coreTracers_.size())
        fatal("coreTelemetry: core ", core, " out of range (system has ",
              coreTracers_.size(), " cores)");
    return coreTracers_[core];
}

const IntervalTracer &
DramSystem::totalTelemetry() const
{
    if (!totalTracer_.has_value())
        fatal("totalTelemetry() requested but telemetry was never enabled; "
              "call enableTelemetry()/SystemConfig::telemetryWindow first");
    return *totalTracer_;
}

std::uint64_t
DramSystem::coreBytes(CoreId core) const
{
    mnpu_assert(core < coreBytes_.size());
    return coreBytes_[core];
}

std::uint64_t
DramSystem::coreWalkBytes(CoreId core) const
{
    mnpu_assert(core < coreWalkBytes_.size());
    return coreWalkBytes_[core];
}

std::uint64_t
DramSystem::totalCounter(const std::string &stat_name) const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel->stats().counterValue(stat_name);
    return total;
}

void
DramSystem::visitStatGroups(const StatGroupVisitor &visit) const
{
    for (const auto &channel : channels_)
        visit(channel->stats());
}

double
DramSystem::peakBandwidthBytesPerSec() const
{
    return timing_.peakBandwidthBytesPerSec() *
           static_cast<double>(channels_.size());
}

double
DramSystem::totalEnergyPj(Cycle elapsed_cycles) const
{
    double total = 0;
    for (const auto &channel : channels_)
        total += channel->energyPj(elapsed_cycles);
    return total;
}

void
DramSystem::saveState(StateWriter &out) const
{
    out.section("DSYS");
    out.u64(channels_.size());
    out.u64(buckets_.size());
    for (const TokenBucket &bucket : buckets_) {
        out.b(bucket.enabled);
        out.d(bucket.tokens);
        out.d(bucket.ratePerCycle);
        out.d(bucket.burstCap);
        out.u64(bucket.lastRefill);
        out.b(bucket.wasBelowCost);
    }
    // Delayed completions in vector order: tick() releases them via a
    // first-minimum min_element scan, so vector order is tie-break
    // order and must restore exactly.
    out.u64(delayed_.size());
    for (const DelayedCompletion &entry : delayed_) {
        out.u64(entry.at);
        out.u64(entry.request.paddr);
        out.u8(entry.request.op == MemOp::Write ? 1 : 0);
        out.u32(entry.request.core);
        out.u64(entry.request.tag);
        out.b(entry.request.priority);
        out.u64(entry.request.integrityId);
        out.u64(entry.request.enqueuedAt);
        out.u8(static_cast<std::uint8_t>(entry.request.region));
    }
    out.u64Vec(fastBusyUntil_);
    out.u64Vec(coreBytes_);
    out.u64Vec(coreWalkBytes_);
    out.b(totalTracer_.has_value());
    if (totalTracer_) {
        totalTracer_->saveState(out);
        for (const IntervalTracer &tracer : coreTracers_)
            tracer.saveState(out);
    }
    out.b(!checkers_.empty());
    for (const auto &checker : checkers_)
        checker->saveState(out);
    for (const auto &channel : channels_)
        channel->saveState(out);
}

void
DramSystem::loadState(StateReader &in)
{
    in.section("DSYS");
    if (in.u64() != channels_.size() || in.u64() != buckets_.size())
        throw SnapshotError("DRAM system geometry mismatch");
    for (TokenBucket &bucket : buckets_) {
        bool enabled = in.b();
        if (enabled != bucket.enabled)
            throw SnapshotError("token-bucket enablement mismatch");
        bucket.tokens = in.d();
        bucket.ratePerCycle = in.d();
        bucket.burstCap = in.d();
        bucket.lastRefill = in.u64();
        bucket.wasBelowCost = in.b();
    }
    delayed_.resize(in.u64());
    for (DelayedCompletion &entry : delayed_) {
        entry.at = in.u64();
        entry.request.paddr = in.u64();
        entry.request.op = in.u8() != 0 ? MemOp::Write : MemOp::Read;
        entry.request.core = in.u32();
        entry.request.tag = in.u64();
        entry.request.priority = in.b();
        entry.request.integrityId = in.u64();
        entry.request.enqueuedAt = in.u64();
        entry.request.region = static_cast<MemRegion>(in.u8());
    }
    fastBusyUntil_ = in.u64Vec();
    if (fastBusyUntil_.size() != channels_.size())
        throw SnapshotError("fast busy-horizon count mismatch");
    std::vector<std::uint64_t> bytes = in.u64Vec();
    std::vector<std::uint64_t> walk = in.u64Vec();
    if (bytes.size() != coreBytes_.size() ||
        walk.size() != coreWalkBytes_.size()) {
        throw SnapshotError("per-core byte-total count mismatch");
    }
    coreBytes_ = std::move(bytes);
    coreWalkBytes_ = std::move(walk);
    if (in.b() != totalTracer_.has_value())
        throw SnapshotError("telemetry enablement mismatch");
    if (totalTracer_) {
        totalTracer_->loadState(in);
        for (IntervalTracer &tracer : coreTracers_)
            tracer.loadState(in);
    }
    if (in.b() != !checkers_.empty())
        throw SnapshotError("protocol-checker enablement mismatch");
    for (const auto &checker : checkers_)
        checker->loadState(in);
    for (const auto &channel : channels_)
        channel->loadState(in);
    // Re-prime the event-driven cache (if active): every channel "due
    // now" so the first post-restore tick revisits and re-caches real
    // bounds from the restored queues.
    if (eventDriven_)
        setEventDriven(true);
}

} // namespace mnpu
