#include "dram/address_mapping.hh"

#include <algorithm>

#include "common/config.hh"
#include "common/logging.hh"

namespace mnpu
{

AddressMapping::AddressMapping(const DramTiming &timing,
                               const std::string &order)
    : timing_(timing), order_(order)
{
    offsetBits_ = floorLog2(timing.transactionBytes());

    struct Spec
    {
        const char *token;
        char kind;
        std::uint32_t bits;
    };
    const Spec specs[] = {
        {"ro", 'o', floorLog2(timing.rows)},
        {"ra", 'r', floorLog2(std::max<std::uint32_t>(timing.ranks, 1))},
        {"bg", 'g', floorLog2(timing.bankGroups)},
        {"ba", 'b', floorLog2(timing.banksPerGroup)},
        {"co", 'c',
         floorLog2(static_cast<std::uint64_t>(timing.columnsPerRow()))},
    };

    std::vector<std::string> tokens;
    for (const auto &piece : split(order, '-'))
        if (!piece.empty())
            tokens.push_back(piece);
    if (tokens.size() != std::size(specs))
        fatal("address mapping '", order, "' must name all 5 fields");

    // Assign shifts from LSB: the last token sits just above the offset.
    std::uint32_t shift = 0;
    std::vector<Field> reversed;
    for (auto it = tokens.rbegin(); it != tokens.rend(); ++it) {
        const Spec *found = nullptr;
        for (const auto &spec : specs)
            if (*it == spec.token)
                found = &spec;
        if (found == nullptr)
            fatal("unknown address mapping field '", *it, "'");
        for (const auto &existing : reversed)
            if (existing.kind == found->kind)
                fatal("duplicate address mapping field '", *it, "'");
        reversed.push_back(Field{found->kind, found->bits, shift});
        shift += found->bits;
    }
    fields_.assign(reversed.rbegin(), reversed.rend());
}

DramCoord
AddressMapping::decode(Addr addr) const
{
    Addr body = addr >> offsetBits_;
    DramCoord coord;
    for (const auto &field : fields_) {
        std::uint64_t mask =
            field.bits >= 64 ? ~0ULL : ((1ULL << field.bits) - 1);
        std::uint64_t value = (body >> field.shift) & mask;
        switch (field.kind) {
          case 'o':
            coord.row = value;
            break;
          case 'r':
            coord.rank = static_cast<std::uint32_t>(value);
            break;
          case 'g':
            coord.bankGroup = static_cast<std::uint32_t>(value);
            break;
          case 'b':
            coord.bank = static_cast<std::uint32_t>(value);
            break;
          case 'c':
            coord.column = value;
            break;
          default:
            // Unreachable with a validated constructor, but if a new
            // field token is ever added without a decode case, report
            // it as a config error instead of aborting the process.
            fatal("address mapping '", order_, "': field kind '",
                  field.kind, "' has no decode rule");
        }
    }
    return coord;
}

} // namespace mnpu
