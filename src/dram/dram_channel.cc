#include "dram/dram_channel.hh"

#include <algorithm>

#include "common/integrity.hh"
#include "common/logging.hh"

namespace mnpu
{

DramChannel::DramChannel(const DramTiming &timing,
                         const AddressMapping &mapping,
                         std::uint32_t queue_depth, const std::string &name)
    : timing_(timing),
      mapping_(mapping),
      queueDepth_(queue_depth),
      banks_(timing.ranks * timing.banksPerRank()),
      ranks_(timing.ranks),
      stats_(name),
      reads_(stats_.counter("reads")),
      writes_(stats_.counter("writes")),
      rowHits_(stats_.counter("row_hits")),
      rowMisses_(stats_.counter("row_misses")),
      bytes_(stats_.counter("bytes")),
      refreshes_(stats_.counter("refreshes")),
      activates_(stats_.counter("activates")),
      queueLatency_(stats_.distribution("queue_latency"))
{
    if (queue_depth == 0)
        fatal("DRAM channel queue depth must be nonzero");
    for (auto &rank : ranks_) {
        rank.actWindow.assign(4, 0);
        rank.refreshDueAt = timing_.tREFI;
    }
}

void
DramChannel::enqueue(const DramRequest &request, Addr local_addr, Cycle now)
{
    mnpu_assert(canAccept(request.priority),
                "enqueue on a full DRAM channel queue");
    if (!busy()) {
        // Idle fast-forward may have skipped refresh slots; catch the
        // schedule up so a stale deadline does not stall the first burst.
        for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
            RankState &rank = ranks_[r];
            if (rank.refreshDueAt < now) {
                rank.refreshDueAt = now + timing_.tREFI;
                if (checker_)
                    checker_->onRefreshDeadline(r, rank.refreshDueAt);
            }
        }
    }
    QueueEntry entry;
    entry.request = request;
    entry.coord = mapping_.decode(local_addr);
    entry.flat = entry.coord.flatBank(timing_);
    entry.arrival = now;
    if (request.priority)
        ++priorityQueued_;
    queue_.push_back(entry);
}

bool
DramChannel::rankCanActivate(const RankState &rank, Cycle now) const
{
    if (now < rank.nextActivate)
        return false;
    // tFAW: the 4th-previous activation must be at least tFAW old.
    Cycle oldest = rank.actWindow[rank.actPtr];
    return oldest == 0 || now >= oldest + timing_.tFAW;
}

void
DramChannel::recordActivate(RankState &rank, Cycle now)
{
    rank.actWindow[rank.actPtr] = now;
    rank.actPtr = (rank.actPtr + 1) % rank.actWindow.size();
    rank.nextActivate = now + timing_.tRRD;
}

void
DramChannel::maybeRefresh(Cycle now)
{
    for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
        RankState &rank = ranks_[r];
        if (now < rank.refreshDueAt || now < rank.refreshingUntil)
            continue;
        // All banks of the rank must be precharge-able before REF.
        bool ready = true;
        std::uint32_t base = r * timing_.banksPerRank();
        for (std::uint32_t b = 0; b < timing_.banksPerRank(); ++b) {
            if (now < banks_[base + b].nextPrecharge) {
                ready = false;
                break;
            }
        }
        if (!ready)
            continue;
        if (checker_)
            checker_->onRefresh(r, now);
        traceCommand("REF", now);
        for (std::uint32_t b = 0; b < timing_.banksPerRank(); ++b) {
            BankState &bank = banks_[base + b];
            bank.openRow = -1;
            bank.nextActivate =
                std::max(bank.nextActivate, now + timing_.tRFC);
        }
        rank.refreshingUntil = now + timing_.tRFC;
        rank.refreshDueAt += timing_.tREFI;
        refreshes_.inc();
    }
}

bool
DramChannel::olderHitOnBank(std::size_t upto, std::uint32_t flat_bank,
                            std::int64_t row) const
{
    for (std::size_t i = 0; i < upto; ++i) {
        const QueueEntry &entry = queue_[i];
        if (entry.flat == flat_bank &&
            static_cast<std::int64_t>(entry.coord.row) == row) {
            return true;
        }
    }
    return false;
}

bool
DramChannel::tryIssueColumn(Cycle now, Cycle *bound)
{
    // Pass 0 considers only priority (walk) requests; pass 1 the rest.
    // Walk traffic is sparse, so skip the priority pass outright when
    // none is queued. With @p bound set, each rejected row-hit entry
    // contributes the earliest cycle its column could issue — the same
    // candidate nextEventCycle() derives — so a failed scan doubles as
    // the event-bound scan.
    for (int pass = priorityQueued_ == 0 ? 1 : 0; pass < 2; ++pass)
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        QueueEntry &entry = queue_[i];
        if (entry.request.priority != (pass == 0))
            continue;
        std::uint32_t flat = entry.flat;
        BankState &bank = banks_[flat];
        RankState &rank = ranks_[entry.coord.rank];
        if (bank.openRow != static_cast<std::int64_t>(entry.coord.row))
            continue;
        bool is_write = entry.request.op == MemOp::Write;
        Cycle gate =
            is_write == lastOpWasWrite_ ? nextColumnSame_ : nextColumnSwitch_;
        // An overdue refresh (now >= refreshDueAt) blocks new columns
        // so the rank can drain; the refresh candidate covers that
        // stall in the bound.
        if (now < rank.refreshingUntil || now >= rank.refreshDueAt ||
            now < bank.nextColumn || now < gate) {
            if (bound) {
                *bound = std::min(
                    *bound, std::max({bank.nextColumn, gate,
                                      rank.refreshingUntil, now + 1}));
            }
            continue;
        }

        // Issue the column command.
        if (checker_)
            checker_->onColumn(entry.coord.rank, flat, entry.coord.row,
                               entry.request.op == MemOp::Write, now);
        traceCommand(entry.request.op == MemOp::Write ? "WR" : "RD", now);
        std::uint32_t burst = timing_.burstCycles();
        Cycle bus_gap = std::max<Cycle>(timing_.tCCD, burst);
        nextColumnSame_ = now + bus_gap;
        nextColumnSwitch_ =
            now + bus_gap + (is_write ? timing_.tWTR : timing_.tRTW);
        lastOpWasWrite_ = is_write;

        Cycle done;
        if (is_write) {
            done = now + timing_.tCWL + burst;
            bank.nextPrecharge =
                std::max(bank.nextPrecharge, done + timing_.tWR);
            writes_.inc();
        } else {
            done = now + timing_.tCL + burst;
            bank.nextPrecharge =
                std::max(bank.nextPrecharge, now + timing_.tRTP);
            reads_.inc();
        }
        bytes_.inc(timing_.transactionBytes());
        if (entry.causedActivate)
            rowMisses_.inc();
        else
            rowHits_.inc();
        queueLatency_.sample(static_cast<double>(now - entry.arrival));
        completions_.push(Completion{done, entry.request});
        std::uint64_t issued_row = entry.coord.row;
        if (entry.request.priority)
            --priorityQueued_;
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));

        if (timing_.rowPolicy == RowPolicy::Closed &&
            !olderHitOnBank(queue_.size(), flat,
                            static_cast<std::int64_t>(issued_row))) {
            // Auto-precharge once no queued request wants this row.
            if (checker_)
                checker_->onAutoPrecharge(flat, bank.nextPrecharge);
            bank.openRow = -1;
            bank.nextActivate = std::max(bank.nextActivate,
                                         bank.nextPrecharge + timing_.tRP);
        }
        return true;
    }
    return false;
}

bool
DramChannel::tryIssueRowCommand(Cycle now, Cycle *bound)
{
    // With @p bound set, rejected entries contribute the earliest cycle
    // their precharge/activate could issue (mirroring nextEventCycle).
    for (int pass = priorityQueued_ == 0 ? 1 : 0; pass < 2; ++pass)
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        QueueEntry &entry = queue_[i];
        if (entry.request.priority != (pass == 0))
            continue;
        std::uint32_t flat = entry.flat;
        BankState &bank = banks_[flat];
        RankState &rank = ranks_[entry.coord.rank];
        auto row = static_cast<std::int64_t>(entry.coord.row);
        if (bank.openRow == row)
            continue; // hit; handled by the column pass
        bool rank_ok =
            now >= rank.refreshingUntil && now < rank.refreshDueAt;
        if (bank.openRow != -1) {
            // Don't close a row an older request still wants; that
            // older entry contributes its own column candidate.
            if (olderHitOnBank(i, flat, bank.openRow))
                continue;
            if (!rank_ok || now < bank.nextPrecharge) {
                if (bound) {
                    *bound = std::min(
                        *bound, std::max({bank.nextPrecharge,
                                          rank.refreshingUntil, now + 1}));
                }
                continue;
            }
            if (checker_)
                checker_->onPrecharge(flat, now);
            traceCommand("PRE", now);
            bank.openRow = -1;
            bank.nextActivate =
                std::max(bank.nextActivate, now + timing_.tRP);
            return true;
        }
        if (!rank_ok || now < bank.nextActivate ||
            !rankCanActivate(rank, now)) {
            if (bound) {
                Cycle oldest = rank.actWindow[rank.actPtr];
                Cycle faw = oldest == 0 ? 0 : oldest + timing_.tFAW;
                *bound = std::min(
                    *bound,
                    std::max({bank.nextActivate, rank.nextActivate, faw,
                              rank.refreshingUntil, now + 1}));
            }
            continue;
        }
        if (checker_)
            checker_->onActivate(entry.coord.rank, flat, entry.coord.row,
                                 now);
        traceCommand("ACT", now);
        bank.openRow = row;
        bank.nextColumn = now + timing_.tRCD;
        bank.nextPrecharge = now + timing_.tRAS;
        recordActivate(rank, now);
        activates_.inc();
        entry.causedActivate = true;
        return true;
    }
    return false;
}

Cycle
DramChannel::refreshBound(Cycle now) const
{
    // Refresh fires the first cycle a rank is due, out of its previous
    // refresh, and every bank is precharge-able. The first two terms
    // only move later via commands issued at visited cycles, so their
    // max is a safe (under-)bound; the banks' nextPrecharge would only
    // sharpen it, and scanning every bank on each bound query costs
    // more than the few extra visits near a due refresh it saves.
    Cycle next = kCycleNever;
    for (const RankState &rank : ranks_) {
        Cycle at = std::max(rank.refreshDueAt, rank.refreshingUntil);
        next = std::min(next, std::max(at, now + 1));
    }
    return next;
}

Cycle
DramChannel::boundAfterIssue(Cycle now) const
{
    // The rejection candidates gathered before an issue predate the
    // state change, so a sharp bound needs a rescan. With a deep queue
    // the channel almost certainly has a command ready within a cycle
    // or two, so the rescan saves nothing — report now + 1 and let the
    // next visit's (inevitable) issue scan double as the bound scan.
    // With a shallow queue the rescan is cheap and its sharp bound is
    // what lets idle stretches be skipped.
    if (queue_.size() >= kSharpBoundQueueLimit)
        return now + 1;
    return nextEventCycle(now);
}

bool
DramChannel::tick(Cycle now)
{
    while (!completions_.empty() && completions_.top().at <= now) {
        Completion done = completions_.top();
        completions_.pop();
        if (callback_)
            callback_(done.request, done.at);
    }
    Cycle bound = kCycleNever;
    if (!completions_.empty())
        bound = std::max(completions_.top().at, now + 1);
    if (queue_.empty()) {
        boundAfterTick_ = bound;
        return false;
    }
    maybeRefresh(now);
    Cycle *scan = bounding_ ? &bound : nullptr;
    if (tryIssueColumn(now, scan)) {
        if (bounding_)
            boundAfterTick_ = boundAfterIssue(now);
        return true; // a queue slot was freed; blocked enqueuers may retry
    }
    if (tryIssueRowCommand(now, scan)) {
        if (bounding_)
            boundAfterTick_ = boundAfterIssue(now);
        return false;
    }
    // Both scans failed: their rejection candidates are the bound.
    if (bounding_)
        boundAfterTick_ = std::min(bound, refreshBound(now));
    return false;
}

double
DramChannel::energyPj(Cycle elapsed_cycles) const
{
    double command =
        static_cast<double>(activates_.value()) * timing_.eActPrePj +
        static_cast<double>(reads_.value()) * timing_.eReadPj +
        static_cast<double>(writes_.value()) * timing_.eWritePj +
        static_cast<double>(refreshes_.value()) * timing_.eRefreshPj;
    // Background: 1 mW = 1 pJ/ns; one cycle = 1e3/clockMhz ns.
    double elapsed_ns = static_cast<double>(elapsed_cycles) * 1e3 /
                        static_cast<double>(timing_.clockMhz);
    return command + timing_.backgroundMw * elapsed_ns;
}

Cycle
DramChannel::nextTickCycle(Cycle now) const
{
    Cycle next = kCycleNever;
    if (!completions_.empty())
        next = completions_.top().at;
    if (!queue_.empty())
        next = std::min(next, now + 1);
    return next;
}

Cycle
DramChannel::nextEventCycle(Cycle now) const
{
    Cycle next = kCycleNever;
    if (!completions_.empty())
        next = std::max(completions_.top().at, now + 1);
    if (queue_.empty())
        return next; // tick() early-returns; completions are all there is

    auto consider = [&](Cycle at) {
        next = std::min(next, std::max(at, now + 1));
    };

    // One candidate per queued request: the earliest cycle whichever
    // command FR-FCFS would issue for it next could go out. The
    // "overdue refresh blocks columns" rule needs no candidate of its
    // own — the rank's refresh candidate covers that stall. No
    // candidate can clamp below now + 1, so the scan stops the moment
    // one reaches it — during busy streaming the first entry usually
    // does, making the common-case bound O(1) instead of O(queue^2)
    // (the olderHitOnBank probe).
    for (std::size_t i = 0; i < queue_.size() && next > now + 1; ++i) {
        const QueueEntry &entry = queue_[i];
        std::uint32_t flat = entry.flat;
        const BankState &bank = banks_[flat];
        const RankState &rank = ranks_[entry.coord.rank];
        if (bank.openRow == static_cast<std::int64_t>(entry.coord.row)) {
            bool is_write = entry.request.op == MemOp::Write;
            Cycle gate = is_write == lastOpWasWrite_ ? nextColumnSame_
                                                     : nextColumnSwitch_;
            consider(std::max({bank.nextColumn, gate,
                               rank.refreshingUntil}));
        } else if (bank.openRow != -1) {
            // No precharge while an older request still wants the open
            // row; that older entry contributes its own column
            // candidate, and queue order only changes at visited
            // cycles, so skipping the candidate cannot overshoot.
            if (!olderHitOnBank(i, flat, bank.openRow))
                consider(std::max(bank.nextPrecharge,
                                  rank.refreshingUntil));
        } else {
            Cycle oldest = rank.actWindow[rank.actPtr];
            Cycle faw = oldest == 0 ? 0 : oldest + timing_.tFAW;
            consider(std::max({bank.nextActivate, rank.nextActivate, faw,
                               rank.refreshingUntil}));
        }
    }
    if (next == now + 1)
        return next;

    // While the queue is busy refreshes fire on every rank, so each
    // rank contributes a candidate.
    return std::min(next, refreshBound(now));
}

} // namespace mnpu
