#include "dram/dram_channel.hh"

#include <algorithm>

#include "common/integrity.hh"
#include "common/logging.hh"

namespace mnpu
{

DramChannel::DramChannel(const DramTiming &timing,
                         const AddressMapping &mapping,
                         std::uint32_t queue_depth, const std::string &name)
    : timing_(timing),
      mapping_(mapping),
      queueDepth_(queue_depth),
      banks_(timing.ranks * timing.banksPerRank()),
      ranks_(timing.ranks),
      stats_(name),
      reads_(stats_.counter("reads")),
      writes_(stats_.counter("writes")),
      rowHits_(stats_.counter("row_hits")),
      rowMisses_(stats_.counter("row_misses")),
      bytes_(stats_.counter("bytes")),
      refreshes_(stats_.counter("refreshes")),
      activates_(stats_.counter("activates")),
      queueLatency_(stats_.distribution("queue_latency"))
{
    if (queue_depth == 0)
        fatal("DRAM channel queue depth must be nonzero");
    for (auto &rank : ranks_) {
        rank.actWindow.assign(4, 0);
        rank.refreshDueAt = timing_.tREFI;
    }
}

void
DramChannel::enqueue(const DramRequest &request, Addr local_addr, Cycle now)
{
    mnpu_assert(canAccept(request.priority),
                "enqueue on a full DRAM channel queue");
    if (!busy()) {
        // Idle fast-forward may have skipped refresh slots; catch the
        // schedule up so a stale deadline does not stall the first burst.
        for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
            RankState &rank = ranks_[r];
            if (rank.refreshDueAt < now) {
                rank.refreshDueAt = now + timing_.tREFI;
                if (checker_)
                    checker_->onRefreshDeadline(r, rank.refreshDueAt);
            }
        }
    }
    QueueEntry entry;
    entry.request = request;
    entry.coord = mapping_.decode(local_addr);
    entry.arrival = now;
    queue_.push_back(entry);
}

bool
DramChannel::rankCanActivate(const RankState &rank, Cycle now) const
{
    if (now < rank.nextActivate)
        return false;
    // tFAW: the 4th-previous activation must be at least tFAW old.
    Cycle oldest = rank.actWindow[rank.actPtr];
    return oldest == 0 || now >= oldest + timing_.tFAW;
}

void
DramChannel::recordActivate(RankState &rank, Cycle now)
{
    rank.actWindow[rank.actPtr] = now;
    rank.actPtr = (rank.actPtr + 1) % rank.actWindow.size();
    rank.nextActivate = now + timing_.tRRD;
}

void
DramChannel::maybeRefresh(Cycle now)
{
    for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
        RankState &rank = ranks_[r];
        if (now < rank.refreshDueAt || now < rank.refreshingUntil)
            continue;
        // All banks of the rank must be precharge-able before REF.
        bool ready = true;
        std::uint32_t base = r * timing_.banksPerRank();
        for (std::uint32_t b = 0; b < timing_.banksPerRank(); ++b) {
            if (now < banks_[base + b].nextPrecharge) {
                ready = false;
                break;
            }
        }
        if (!ready)
            continue;
        if (checker_)
            checker_->onRefresh(r, now);
        for (std::uint32_t b = 0; b < timing_.banksPerRank(); ++b) {
            BankState &bank = banks_[base + b];
            bank.openRow = -1;
            bank.nextActivate =
                std::max(bank.nextActivate, now + timing_.tRFC);
        }
        rank.refreshingUntil = now + timing_.tRFC;
        rank.refreshDueAt += timing_.tREFI;
        refreshes_.inc();
    }
}

bool
DramChannel::olderHitOnBank(std::size_t upto, std::uint32_t flat_bank,
                            std::int64_t row) const
{
    for (std::size_t i = 0; i < upto; ++i) {
        const QueueEntry &entry = queue_[i];
        if (entry.coord.flatBank(timing_) == flat_bank &&
            static_cast<std::int64_t>(entry.coord.row) == row) {
            return true;
        }
    }
    return false;
}

bool
DramChannel::tryIssueColumn(Cycle now)
{
    // Pass 0 considers only priority (walk) requests; pass 1 the rest.
    for (int pass = 0; pass < 2; ++pass)
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        QueueEntry &entry = queue_[i];
        if (entry.request.priority != (pass == 0))
            continue;
        std::uint32_t flat = entry.coord.flatBank(timing_);
        BankState &bank = banks_[flat];
        RankState &rank = ranks_[entry.coord.rank];
        if (now < rank.refreshingUntil)
            continue;
        // An overdue refresh blocks new columns so the rank can drain.
        if (now >= rank.refreshDueAt)
            continue;
        if (bank.openRow != static_cast<std::int64_t>(entry.coord.row))
            continue;
        if (now < bank.nextColumn)
            continue;
        bool is_write = entry.request.op == MemOp::Write;
        Cycle gate =
            is_write == lastOpWasWrite_ ? nextColumnSame_ : nextColumnSwitch_;
        if (now < gate)
            continue;

        // Issue the column command.
        if (checker_)
            checker_->onColumn(entry.coord.rank, flat, entry.coord.row,
                               entry.request.op == MemOp::Write, now);
        std::uint32_t burst = timing_.burstCycles();
        Cycle bus_gap = std::max<Cycle>(timing_.tCCD, burst);
        nextColumnSame_ = now + bus_gap;
        nextColumnSwitch_ =
            now + bus_gap + (is_write ? timing_.tWTR : timing_.tRTW);
        lastOpWasWrite_ = is_write;

        Cycle done;
        if (is_write) {
            done = now + timing_.tCWL + burst;
            bank.nextPrecharge =
                std::max(bank.nextPrecharge, done + timing_.tWR);
            writes_.inc();
        } else {
            done = now + timing_.tCL + burst;
            bank.nextPrecharge =
                std::max(bank.nextPrecharge, now + timing_.tRTP);
            reads_.inc();
        }
        bytes_.inc(timing_.transactionBytes());
        if (entry.causedActivate)
            rowMisses_.inc();
        else
            rowHits_.inc();
        queueLatency_.sample(static_cast<double>(now - entry.arrival));
        completions_.push(Completion{done, entry.request});
        std::uint64_t issued_row = entry.coord.row;
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));

        if (timing_.rowPolicy == RowPolicy::Closed &&
            !olderHitOnBank(queue_.size(), flat,
                            static_cast<std::int64_t>(issued_row))) {
            // Auto-precharge once no queued request wants this row.
            if (checker_)
                checker_->onAutoPrecharge(flat, bank.nextPrecharge);
            bank.openRow = -1;
            bank.nextActivate = std::max(bank.nextActivate,
                                         bank.nextPrecharge + timing_.tRP);
        }
        return true;
    }
    return false;
}

bool
DramChannel::tryIssueRowCommand(Cycle now)
{
    for (int pass = 0; pass < 2; ++pass)
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        QueueEntry &entry = queue_[i];
        if (entry.request.priority != (pass == 0))
            continue;
        std::uint32_t flat = entry.coord.flatBank(timing_);
        BankState &bank = banks_[flat];
        RankState &rank = ranks_[entry.coord.rank];
        if (now < rank.refreshingUntil || now >= rank.refreshDueAt)
            continue;
        auto row = static_cast<std::int64_t>(entry.coord.row);
        if (bank.openRow == row)
            continue; // hit; handled by the column pass
        if (bank.openRow != -1) {
            // Don't close a row an older request still wants.
            if (olderHitOnBank(i, flat, bank.openRow))
                continue;
            if (now < bank.nextPrecharge)
                continue;
            if (checker_)
                checker_->onPrecharge(flat, now);
            bank.openRow = -1;
            bank.nextActivate =
                std::max(bank.nextActivate, now + timing_.tRP);
            return true;
        }
        if (now < bank.nextActivate || !rankCanActivate(rank, now))
            continue;
        if (checker_)
            checker_->onActivate(entry.coord.rank, flat, entry.coord.row,
                                 now);
        bank.openRow = row;
        bank.nextColumn = now + timing_.tRCD;
        bank.nextPrecharge = now + timing_.tRAS;
        recordActivate(rank, now);
        activates_.inc();
        entry.causedActivate = true;
        return true;
    }
    return false;
}

void
DramChannel::tick(Cycle now)
{
    while (!completions_.empty() && completions_.top().at <= now) {
        Completion done = completions_.top();
        completions_.pop();
        if (callback_)
            callback_(done.request, done.at);
    }
    if (queue_.empty())
        return;
    maybeRefresh(now);
    if (!tryIssueColumn(now))
        tryIssueRowCommand(now);
}

double
DramChannel::energyPj(Cycle elapsed_cycles) const
{
    double command =
        static_cast<double>(activates_.value()) * timing_.eActPrePj +
        static_cast<double>(reads_.value()) * timing_.eReadPj +
        static_cast<double>(writes_.value()) * timing_.eWritePj +
        static_cast<double>(refreshes_.value()) * timing_.eRefreshPj;
    // Background: 1 mW = 1 pJ/ns; one cycle = 1e3/clockMhz ns.
    double elapsed_ns = static_cast<double>(elapsed_cycles) * 1e3 /
                        static_cast<double>(timing_.clockMhz);
    return command + timing_.backgroundMw * elapsed_ns;
}

Cycle
DramChannel::nextEventCycle(Cycle now) const
{
    Cycle next = kCycleNever;
    if (!completions_.empty())
        next = completions_.top().at;
    if (!queue_.empty())
        next = std::min(next, now + 1);
    return next;
}

} // namespace mnpu
