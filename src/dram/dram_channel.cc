#include "dram/dram_channel.hh"

#include <algorithm>

#include "common/integrity.hh"
#include "common/logging.hh"

namespace mnpu
{

DramChannel::DramChannel(const DramTiming &timing,
                         const AddressMapping &mapping,
                         std::uint32_t queue_depth, const std::string &name)
    : timing_(timing),
      mapping_(mapping),
      queueDepth_(queue_depth),
      minHitAge_(timing.ranks * timing.banksPerRank(), kAgeNever),
      banks_(timing.ranks * timing.banksPerRank()),
      ranks_(timing.ranks),
      stats_(name),
      reads_(stats_.counter("reads")),
      writes_(stats_.counter("writes")),
      rowHits_(stats_.counter("row_hits")),
      rowMisses_(stats_.counter("row_misses")),
      bytes_(stats_.counter("bytes")),
      refreshes_(stats_.counter("refreshes")),
      activates_(stats_.counter("activates")),
      queueLatency_(stats_.distribution("queue_latency"))
{
    // A directly constructed channel (tests, tools) must reject broken
    // timing the same way DramSystem's construction path does — the
    // energy path in particular divides by clockMhz.
    timing_.validate();
    if (queue_depth == 0)
        fatal("DRAM channel queue depth must be nonzero");
    qFlat_.reserve(queue_depth);
    qRow_.reserve(queue_depth);
    qRank_.reserve(queue_depth);
    qPriority_.reserve(queue_depth);
    qWrite_.reserve(queue_depth);
    qAge_.reserve(queue_depth);
    qArrival_.reserve(queue_depth);
    qCausedActivate_.reserve(queue_depth);
    qRequest_.reserve(queue_depth);
    for (auto &rank : ranks_) {
        rank.actWindow.assign(4, 0);
        rank.refreshDueAt = timing_.tREFI;
    }
}

void
DramChannel::enqueue(const DramRequest &request, Addr local_addr, Cycle now)
{
    mnpu_assert(canAccept(request.priority),
                "enqueue on a full DRAM channel queue");
    if (!busy()) {
        // Idle fast-forward may have skipped refresh slots; catch the
        // schedule up so a stale deadline does not stall the first burst.
        for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
            RankState &rank = ranks_[r];
            if (rank.refreshDueAt < now) {
                rank.refreshDueAt = now + timing_.tREFI;
                if (checker_)
                    checker_->onRefreshDeadline(r, rank.refreshDueAt);
            }
        }
    }
    DramCoord coord = mapping_.decode(local_addr);
    qFlat_.push_back(coord.flatBank(timing_));
    qRow_.push_back(coord.row);
    qRank_.push_back(coord.rank);
    qPriority_.push_back(request.priority ? 1 : 0);
    qWrite_.push_back(request.op == MemOp::Write ? 1 : 0);
    qAge_.push_back(nextAge_++);
    qArrival_.push_back(now);
    qCausedActivate_.push_back(0);
    qRequest_.push_back(request);
    if (request.priority)
        ++priorityQueued_;
}

void
DramChannel::removeAt(std::size_t i)
{
    std::size_t last = queueSize() - 1;
    if (i != last) {
        qFlat_[i] = qFlat_[last];
        qRow_[i] = qRow_[last];
        qRank_[i] = qRank_[last];
        qPriority_[i] = qPriority_[last];
        qWrite_[i] = qWrite_[last];
        qAge_[i] = qAge_[last];
        qArrival_[i] = qArrival_[last];
        qCausedActivate_[i] = qCausedActivate_[last];
        qRequest_[i] = std::move(qRequest_[last]);
    }
    qFlat_.pop_back();
    qRow_.pop_back();
    qRank_.pop_back();
    qPriority_.pop_back();
    qWrite_.pop_back();
    qAge_.pop_back();
    qArrival_.pop_back();
    qCausedActivate_.pop_back();
    qRequest_.pop_back();
}

bool
DramChannel::anyHitOnBank(std::uint32_t flat_bank, std::int64_t row) const
{
    for (std::size_t i = 0; i < queueSize(); ++i) {
        if (qFlat_[i] == flat_bank &&
            static_cast<std::int64_t>(qRow_[i]) == row) {
            return true;
        }
    }
    return false;
}

void
DramChannel::computeMinHitAges() const
{
    // For each bank with an open row, the age of the oldest queued hit
    // on that row. One O(queue) prepass replaces the old per-entry
    // FIFO-prefix probe (O(queue^2) worst case): under swap-with-back
    // storage "an older request" means a smaller age, not a smaller
    // index.
    std::fill(minHitAge_.begin(), minHitAge_.end(), kAgeNever);
    for (std::size_t i = 0; i < queueSize(); ++i) {
        std::uint32_t flat = qFlat_[i];
        const BankState &bank = banks_[flat];
        if (bank.openRow == static_cast<std::int64_t>(qRow_[i]))
            minHitAge_[flat] = std::min(minHitAge_[flat], qAge_[i]);
    }
}

bool
DramChannel::rankCanActivate(const RankState &rank, Cycle now) const
{
    if (now < rank.nextActivate)
        return false;
    // tFAW: the 4th-previous activation must be at least tFAW old.
    Cycle oldest = rank.actWindow[rank.actPtr];
    return oldest == 0 || now >= oldest + timing_.tFAW;
}

void
DramChannel::recordActivate(RankState &rank, Cycle now)
{
    rank.actWindow[rank.actPtr] = now;
    rank.actPtr = (rank.actPtr + 1) % rank.actWindow.size();
    rank.nextActivate = now + timing_.tRRD;
}

void
DramChannel::maybeRefresh(Cycle now)
{
    for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
        RankState &rank = ranks_[r];
        if (now < rank.refreshDueAt || now < rank.refreshingUntil)
            continue;
        // All banks of the rank must be precharge-able before REF.
        bool ready = true;
        std::uint32_t base = r * timing_.banksPerRank();
        for (std::uint32_t b = 0; b < timing_.banksPerRank(); ++b) {
            if (now < banks_[base + b].nextPrecharge) {
                ready = false;
                break;
            }
        }
        if (!ready)
            continue;
        if (checker_)
            checker_->onRefresh(r, now);
        traceCommand("REF", now);
        for (std::uint32_t b = 0; b < timing_.banksPerRank(); ++b) {
            BankState &bank = banks_[base + b];
            bank.openRow = -1;
            bank.nextActivate =
                std::max(bank.nextActivate, now + timing_.tRFC);
        }
        rank.refreshingUntil = now + timing_.tRFC;
        rank.refreshDueAt += timing_.tREFI;
        refreshes_.inc();
    }
}

Cycle
DramChannel::refreshFireCycle(std::uint32_t rank_index) const
{
    // Exact fire cycle of an overdue refresh: due, out of the previous
    // refresh, and every bank precharge-able. While the refresh is
    // overdue the rank's banks are frozen — columns are rejected
    // (now >= refreshDueAt) and PRE/ACT need now < refreshDueAt — so
    // no nextPrecharge can move and the max below is exact, letting a
    // refresh-blocked channel skip straight to the REF instead of
    // crawling to it cycle by cycle.
    const RankState &rank = ranks_[rank_index];
    Cycle at = std::max(rank.refreshDueAt, rank.refreshingUntil);
    std::uint32_t base = rank_index * timing_.banksPerRank();
    for (std::uint32_t b = 0; b < timing_.banksPerRank(); ++b)
        at = std::max(at, banks_[base + b].nextPrecharge);
    return at;
}

bool
DramChannel::tryIssueColumn(Cycle now, Cycle *bound)
{
    // Selection sweep: FR-FCFS wants the oldest ready row hit, walk
    // (priority) requests first. Under swap-with-back storage the
    // sweep tracks the min-age eligible entry per class instead of
    // returning the first hit in index order — identical choice, one
    // branch-light pass over the dense arrays. With @p bound set, each
    // rejected row-hit entry contributes the earliest cycle its column
    // could issue — the same candidate nextEventCycle() derives — so a
    // failed scan doubles as the event-bound scan.
    std::size_t best = kNoEntry;
    bool best_priority = false;
    std::uint64_t best_age = kAgeNever;
    const std::size_t n = queueSize();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t flat = qFlat_[i];
        const BankState &bank = banks_[flat];
        if (bank.openRow != static_cast<std::int64_t>(qRow_[i]))
            continue;
        const RankState &rank = ranks_[qRank_[i]];
        bool is_write = qWrite_[i] != 0;
        Cycle gate =
            is_write == lastOpWasWrite_ ? nextColumnSame_ : nextColumnSwitch_;
        if (now < rank.refreshingUntil || now >= rank.refreshDueAt ||
            now < bank.nextColumn || now < gate) {
            if (bound) {
                // An overdue refresh (now >= refreshDueAt) blocks new
                // columns so the rank can drain; its exact fire cycle
                // is the candidate (the old max of already-elapsed
                // gates degenerated to now + 1 and made the event
                // scheduler crawl through the drain).
                Cycle at = now >= rank.refreshDueAt
                               ? refreshFireCycle(qRank_[i])
                               : std::max({bank.nextColumn, gate,
                                           rank.refreshingUntil});
                *bound = std::min(*bound, std::max(at, now + 1));
            }
            continue;
        }
        bool priority = qPriority_[i] != 0;
        if (best == kNoEntry || (priority && !best_priority) ||
            (priority == best_priority && qAge_[i] < best_age)) {
            best = i;
            best_priority = priority;
            best_age = qAge_[i];
        }
    }
    if (best == kNoEntry)
        return false;

    // Issue the column command for the selected entry.
    std::uint32_t flat = qFlat_[best];
    BankState &bank = banks_[flat];
    bool is_write = qWrite_[best] != 0;
    if (checker_)
        checker_->onColumn(qRank_[best], flat, qRow_[best], is_write, now);
    traceCommand(is_write ? "WR" : "RD", now);
    std::uint32_t burst = timing_.burstCycles();
    Cycle bus_gap = std::max<Cycle>(timing_.tCCD, burst);
    nextColumnSame_ = now + bus_gap;
    nextColumnSwitch_ =
        now + bus_gap + (is_write ? timing_.tWTR : timing_.tRTW);
    lastOpWasWrite_ = is_write;

    Cycle done;
    if (is_write) {
        done = now + timing_.tCWL + burst;
        bank.nextPrecharge =
            std::max(bank.nextPrecharge, done + timing_.tWR);
        writes_.inc();
    } else {
        done = now + timing_.tCL + burst;
        bank.nextPrecharge =
            std::max(bank.nextPrecharge, now + timing_.tRTP);
        reads_.inc();
    }
    bytes_.inc(timing_.transactionBytes());
    if (qCausedActivate_[best] != 0)
        rowMisses_.inc();
    else
        rowHits_.inc();
    queueLatency_.sample(static_cast<double>(now - qArrival_[best]));
    completionsPush(Completion{done, qRequest_[best]});
    auto issued_row = static_cast<std::int64_t>(qRow_[best]);
    if (qPriority_[best] != 0)
        --priorityQueued_;
    removeAt(best);

    if (timing_.rowPolicy == RowPolicy::Closed &&
        !anyHitOnBank(flat, issued_row)) {
        // Auto-precharge once no queued request wants this row.
        if (checker_)
            checker_->onAutoPrecharge(flat, bank.nextPrecharge);
        bank.openRow = -1;
        bank.nextActivate = std::max(bank.nextActivate,
                                     bank.nextPrecharge + timing_.tRP);
    }
    return true;
}

bool
DramChannel::tryIssueRowCommand(Cycle now, Cycle *bound)
{
    // Same selection-sweep shape as tryIssueColumn: pick the min-age
    // (priority-first) entry whose precharge or activate could issue
    // now; with @p bound set, rejected entries contribute the earliest
    // cycle their row command could issue (mirroring nextEventCycle).
    computeMinHitAges();
    std::size_t best = kNoEntry;
    bool best_priority = false;
    std::uint64_t best_age = kAgeNever;
    bool best_is_precharge = false;
    const std::size_t n = queueSize();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t flat = qFlat_[i];
        const BankState &bank = banks_[flat];
        const RankState &rank = ranks_[qRank_[i]];
        auto row = static_cast<std::int64_t>(qRow_[i]);
        if (bank.openRow == row)
            continue; // hit; handled by the column pass
        bool rank_ok =
            now >= rank.refreshingUntil && now < rank.refreshDueAt;
        bool is_precharge;
        if (bank.openRow != -1) {
            // Don't close a row an older request still wants; that
            // older entry contributes its own column candidate.
            if (minHitAge_[flat] < qAge_[i])
                continue;
            if (!rank_ok || now < bank.nextPrecharge) {
                if (bound) {
                    Cycle at = now >= rank.refreshDueAt
                                   ? refreshFireCycle(qRank_[i])
                                   : std::max(bank.nextPrecharge,
                                              rank.refreshingUntil);
                    *bound = std::min(*bound, std::max(at, now + 1));
                }
                continue;
            }
            is_precharge = true;
        } else {
            if (!rank_ok || now < bank.nextActivate ||
                !rankCanActivate(rank, now)) {
                if (bound) {
                    Cycle oldest = rank.actWindow[rank.actPtr];
                    Cycle faw = oldest == 0 ? 0 : oldest + timing_.tFAW;
                    Cycle at = now >= rank.refreshDueAt
                                   ? refreshFireCycle(qRank_[i])
                                   : std::max({bank.nextActivate,
                                               rank.nextActivate, faw,
                                               rank.refreshingUntil});
                    *bound = std::min(*bound, std::max(at, now + 1));
                }
                continue;
            }
            is_precharge = false;
        }
        bool priority = qPriority_[i] != 0;
        if (best == kNoEntry || (priority && !best_priority) ||
            (priority == best_priority && qAge_[i] < best_age)) {
            best = i;
            best_priority = priority;
            best_age = qAge_[i];
            best_is_precharge = is_precharge;
        }
    }
    if (best == kNoEntry)
        return false;

    std::uint32_t flat = qFlat_[best];
    BankState &bank = banks_[flat];
    if (best_is_precharge) {
        if (checker_)
            checker_->onPrecharge(flat, now);
        traceCommand("PRE", now);
        bank.openRow = -1;
        bank.nextActivate = std::max(bank.nextActivate, now + timing_.tRP);
        return true;
    }
    RankState &rank = ranks_[qRank_[best]];
    if (checker_)
        checker_->onActivate(qRank_[best], flat, qRow_[best], now);
    traceCommand("ACT", now);
    bank.openRow = static_cast<std::int64_t>(qRow_[best]);
    bank.nextColumn = now + timing_.tRCD;
    bank.nextPrecharge = now + timing_.tRAS;
    recordActivate(rank, now);
    activates_.inc();
    qCausedActivate_[best] = 1;
    return true;
}

Cycle
DramChannel::refreshBound(Cycle now) const
{
    // Refresh fires the first cycle a rank is due, out of its previous
    // refresh, and every bank is precharge-able. For a rank that is
    // not yet due, max(due, refreshingUntil) is a safe (under-)bound —
    // those terms only move later via commands issued at visited
    // cycles. Once the refresh is overdue the banks are frozen (no
    // command can issue on the rank), so the exact fire cycle is
    // computable and is the bound; the old max of already-elapsed
    // cycles degenerated to now + 1 and crawled through the drain.
    Cycle next = kCycleNever;
    for (std::uint32_t r = 0; r < ranks_.size(); ++r) {
        const RankState &rank = ranks_[r];
        Cycle at = now >= rank.refreshDueAt
                       ? refreshFireCycle(r)
                       : std::max(rank.refreshDueAt, rank.refreshingUntil);
        next = std::min(next, std::max(at, now + 1));
    }
    return next;
}

Cycle
DramChannel::boundAfterIssue(Cycle now) const
{
    // The rejection candidates gathered before an issue predate the
    // state change, so a sharp bound needs a rescan. With a deep queue
    // the channel almost certainly has a command ready within a cycle
    // or two, so the rescan saves nothing — report now + 1 and let the
    // next visit's (inevitable) issue scan double as the bound scan.
    // With a shallow queue the rescan is cheap and its sharp bound is
    // what lets idle stretches be skipped.
    if (queueSize() >= kSharpBoundQueueLimit)
        return now + 1;
    return nextEventCycle(now);
}

bool
DramChannel::tick(Cycle now)
{
    while (!completions_.empty() && completionsTop().at <= now) {
        Completion done = completionsTop();
        completionsPop();
        if (callback_)
            callback_(done.request, done.at);
    }
    Cycle bound = kCycleNever;
    if (!completions_.empty())
        bound = std::max(completionsTop().at, now + 1);
    if (queueSize() == 0) {
        boundAfterTick_ = bound;
        return false;
    }
    maybeRefresh(now);
    Cycle *scan = bounding_ ? &bound : nullptr;
    if (tryIssueColumn(now, scan)) {
        if (bounding_)
            boundAfterTick_ = boundAfterIssue(now);
        return true; // a queue slot was freed; blocked enqueuers may retry
    }
    if (tryIssueRowCommand(now, scan)) {
        if (bounding_)
            boundAfterTick_ = boundAfterIssue(now);
        return false;
    }
    // Both scans failed: their rejection candidates are the bound.
    if (bounding_)
        boundAfterTick_ = std::min(bound, refreshBound(now));
    return false;
}

double
DramChannel::energyPj(Cycle elapsed_cycles) const
{
    double command =
        static_cast<double>(activates_.value()) * timing_.eActPrePj +
        static_cast<double>(reads_.value()) * timing_.eReadPj +
        static_cast<double>(writes_.value()) * timing_.eWritePj +
        static_cast<double>(refreshes_.value()) * timing_.eRefreshPj;
    // Background: 1 mW = 1 pJ/ns; one cycle = 1e3/clockMhz ns.
    // validate() rejects clockMhz == 0, so this cannot divide by zero.
    double elapsed_ns = static_cast<double>(elapsed_cycles) * 1e3 /
                        static_cast<double>(timing_.clockMhz);
    return command + timing_.backgroundMw * elapsed_ns;
}

Cycle
DramChannel::nextTickCycle(Cycle now) const
{
    Cycle next = kCycleNever;
    if (!completions_.empty())
        next = completionsTop().at;
    if (queueSize() != 0)
        next = std::min(next, now + 1);
    return next;
}

Cycle
DramChannel::nextEventCycle(Cycle now) const
{
    Cycle next = kCycleNever;
    if (!completions_.empty())
        next = std::max(completionsTop().at, now + 1);
    if (queueSize() == 0)
        return next; // tick() early-returns; completions are all there is

    auto consider = [&](Cycle at) {
        next = std::min(next, std::max(at, now + 1));
    };

    // One candidate per queued request: the earliest cycle whichever
    // command FR-FCFS would issue for it next could go out. A rank
    // with an overdue refresh contributes the refresh's exact fire
    // cycle instead — nothing can issue on it until the REF (itself a
    // state change) goes out. No candidate can clamp below now + 1, so
    // the scan stops the moment one reaches it — during busy streaming
    // the first entry usually does, making the common-case bound O(1).
    computeMinHitAges();
    for (std::size_t i = 0; i < queueSize() && next > now + 1; ++i) {
        std::uint32_t flat = qFlat_[i];
        const BankState &bank = banks_[flat];
        const RankState &rank = ranks_[qRank_[i]];
        if (now >= rank.refreshDueAt) {
            consider(refreshFireCycle(qRank_[i]));
            continue;
        }
        if (bank.openRow == static_cast<std::int64_t>(qRow_[i])) {
            bool is_write = qWrite_[i] != 0;
            Cycle gate = is_write == lastOpWasWrite_ ? nextColumnSame_
                                                     : nextColumnSwitch_;
            consider(std::max({bank.nextColumn, gate,
                               rank.refreshingUntil}));
        } else if (bank.openRow != -1) {
            // No precharge while an older request still wants the open
            // row; that older entry contributes its own column
            // candidate, and queue order only changes at visited
            // cycles, so skipping the candidate cannot overshoot.
            if (minHitAge_[flat] >= qAge_[i])
                consider(std::max(bank.nextPrecharge,
                                  rank.refreshingUntil));
        } else {
            Cycle oldest = rank.actWindow[rank.actPtr];
            Cycle faw = oldest == 0 ? 0 : oldest + timing_.tFAW;
            consider(std::max({bank.nextActivate, rank.nextActivate, faw,
                               rank.refreshingUntil}));
        }
    }
    if (next == now + 1)
        return next;

    // While the queue is busy refreshes fire on every rank, so each
    // rank contributes a candidate.
    return std::min(next, refreshBound(now));
}

void
DramChannel::saveState(StateWriter &out) const
{
    out.section("DCHN");
    out.u32(queueDepth_);
    out.u64(banks_.size());
    out.u64(ranks_.size());

    // The SoA queue in array order: the swap-with-back layout is part
    // of the state (scan order feeds the min-age selection's memory
    // access pattern, and ages restore the FCFS tie-breaks exactly).
    out.u64(queueSize());
    for (std::size_t i = 0; i < queueSize(); ++i) {
        out.u32(qFlat_[i]);
        out.u64(qRow_[i]);
        out.u32(qRank_[i]);
        out.u8(qPriority_[i]);
        out.u8(qWrite_[i]);
        out.u64(qAge_[i]);
        out.u64(qArrival_[i]);
        out.u8(qCausedActivate_[i]);
        const DramRequest &req = qRequest_[i];
        out.u64(req.paddr);
        out.u8(req.op == MemOp::Write ? 1 : 0);
        out.u32(req.core);
        out.u64(req.tag);
        out.b(req.priority);
        out.u64(req.integrityId);
        out.u64(req.enqueuedAt);
    }
    out.u64(nextAge_);
    out.u32(priorityQueued_);

    // Completion heap array verbatim: restoring the same array yields
    // the same heap, so equal-`at` completions pop in the same order.
    out.u64(completions_.size());
    for (const Completion &done : completions_) {
        out.u64(done.at);
        out.u64(done.request.paddr);
        out.u8(done.request.op == MemOp::Write ? 1 : 0);
        out.u32(done.request.core);
        out.u64(done.request.tag);
        out.b(done.request.priority);
        out.u64(done.request.integrityId);
        out.u64(done.request.enqueuedAt);
    }

    for (const BankState &bank : banks_) {
        out.i64(bank.openRow);
        out.u64(bank.nextActivate);
        out.u64(bank.nextColumn);
        out.u64(bank.nextPrecharge);
    }
    for (const RankState &rank : ranks_) {
        out.u64Vec(rank.actWindow);
        out.u64(rank.actPtr);
        out.u64(rank.nextActivate);
        out.u64(rank.refreshDueAt);
        out.u64(rank.refreshingUntil);
    }
    out.u64(nextColumnSame_);
    out.u64(nextColumnSwitch_);
    out.b(lastOpWasWrite_);
    out.u64(boundAfterTick_);
    stats_.saveState(out);
}

void
DramChannel::loadState(StateReader &in)
{
    in.section("DCHN");
    if (in.u32() != queueDepth_)
        throw SnapshotError("DRAM channel queue depth mismatch");
    if (in.u64() != banks_.size() || in.u64() != ranks_.size())
        throw SnapshotError("DRAM channel geometry mismatch");

    std::uint64_t n = in.u64();
    if (n > queueDepth_)
        throw SnapshotError("DRAM channel queue overflows its depth");
    qFlat_.resize(n);
    qRow_.resize(n);
    qRank_.resize(n);
    qPriority_.resize(n);
    qWrite_.resize(n);
    qAge_.resize(n);
    qArrival_.resize(n);
    qCausedActivate_.resize(n);
    qRequest_.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        qFlat_[i] = in.u32();
        if (qFlat_[i] >= banks_.size())
            throw SnapshotError("DRAM queue entry names a bad bank");
        qRow_[i] = in.u64();
        qRank_[i] = in.u32();
        if (qRank_[i] >= ranks_.size())
            throw SnapshotError("DRAM queue entry names a bad rank");
        qPriority_[i] = in.u8();
        qWrite_[i] = in.u8();
        qAge_[i] = in.u64();
        qArrival_[i] = in.u64();
        qCausedActivate_[i] = in.u8();
        DramRequest &req = qRequest_[i];
        req.paddr = in.u64();
        req.op = in.u8() != 0 ? MemOp::Write : MemOp::Read;
        req.core = in.u32();
        req.tag = in.u64();
        req.priority = in.b();
        req.integrityId = in.u64();
        req.enqueuedAt = in.u64();
    }
    nextAge_ = in.u64();
    priorityQueued_ = in.u32();

    completions_.resize(in.u64());
    for (Completion &done : completions_) {
        done.at = in.u64();
        done.request.paddr = in.u64();
        done.request.op = in.u8() != 0 ? MemOp::Write : MemOp::Read;
        done.request.core = in.u32();
        done.request.tag = in.u64();
        done.request.priority = in.b();
        done.request.integrityId = in.u64();
        done.request.enqueuedAt = in.u64();
    }

    for (BankState &bank : banks_) {
        bank.openRow = in.i64();
        bank.nextActivate = in.u64();
        bank.nextColumn = in.u64();
        bank.nextPrecharge = in.u64();
    }
    for (RankState &rank : ranks_) {
        std::vector<std::uint64_t> window = in.u64Vec();
        if (window.size() != rank.actWindow.size())
            throw SnapshotError("DRAM rank tFAW window size mismatch");
        rank.actWindow.assign(window.begin(), window.end());
        rank.actPtr = in.u64();
        if (rank.actPtr >= rank.actWindow.size())
            throw SnapshotError("DRAM rank tFAW pointer out of range");
        rank.nextActivate = in.u64();
        rank.refreshDueAt = in.u64();
        rank.refreshingUntil = in.u64();
    }
    nextColumnSame_ = in.u64();
    nextColumnSwitch_ = in.u64();
    lastOpWasWrite_ = in.b();
    boundAfterTick_ = in.u64();
    stats_.loadState(in);
}

} // namespace mnpu
