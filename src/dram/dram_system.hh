/**
 * @file
 * Multi-channel DRAM system with per-core channel partitioning — the
 * reference MemoryBackend implementation (DESIGN.md §14).
 *
 * Bandwidth sharing levels from the paper map onto channel sets:
 *  - shared (+D): every core interleaves over every channel;
 *  - static p:q:  disjoint channel subsets per core (Fig. 9's 1:7 … 7:1
 *    ratios are channel counts out of 8);
 *  - Ideal: one core owns all channels with no co-runner.
 */

#ifndef MNPU_DRAM_DRAM_SYSTEM_HH
#define MNPU_DRAM_DRAM_SYSTEM_HH

#include <memory>
#include <optional>
#include <vector>

#include "common/fault_injection.hh"
#include "common/integrity.hh"
#include "common/interval_tracer.hh"
#include "common/request_log.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram_channel.hh"
#include "mem/memory_backend.hh"

namespace mnpu
{

class DramSystem : public MemoryBackend
{
  public:
    /**
     * @param timing        per-channel device parameters
     * @param num_channels  channels in the system (need not be 2^k)
     * @param num_cores     NPU cores that may issue requests
     * @param queue_depth   per-channel transaction queue depth
     * @param mapping_order address interleaving within a channel
     * @param stat_prefix   StatGroup name prefix ("dram" → "dram.ch0"…;
     *                      tiered systems give the cold tier its own)
     */
    DramSystem(const DramTiming &timing, std::uint32_t num_channels,
               std::uint32_t num_cores, std::uint32_t queue_depth = 32,
               const std::string &mapping_order = "ro-ra-bg-ba-co",
               const std::string &stat_prefix = "dram");

    /**
     * Apply a declarative channel-partition + bandwidth-share policy.
     * The one write path for sharing configuration; the legacy
     * setPartition/shareAllChannels/partitionByCounts/
     * setBandwidthShares entry points forward here.
     */
    void applyPolicy(const SharingPolicy &policy) override;

    /**
     * Give @p core exclusive use of the listed channels.
     * @deprecated Build a SharingPolicy (Channels::Explicit) and call
     * applyPolicy() instead; kept one release as a thin forwarder.
     */
    void setPartition(CoreId core, std::vector<std::uint32_t> channels);

    /**
     * Every core interleaves across all channels (dynamic sharing).
     * @deprecated Forwarder for applyPolicy({Channels::ShareAll}).
     */
    void shareAllChannels();

    /**
     * Split channels contiguously by @p counts (must sum to total).
     * @deprecated Forwarder for applyPolicy (Channels::ByCounts).
     */
    void partitionByCounts(const std::vector<std::uint32_t> &counts);

    /**
     * Static bandwidth partitioning the mNPUsim way: the DRAM structure
     * stays fully shared ("DRAM is always shared by all NPUs"), but
     * each core's enqueue rate is capped by a token bucket at
     * @p shares[core] / sum(shares) of the system's peak bandwidth.
     * Pass an empty vector to remove all caps (dynamic sharing).
     * @deprecated Forwarder for applyPolicy (bandwidthShares engaged).
     */
    void setBandwidthShares(const std::vector<std::uint32_t> &shares);

    /**
     * Try to queue a transaction. @return false when the target channel
     * queue is full (caller retries later).
     */
    bool tryEnqueue(const DramRequest &request, Cycle now) override;

    /**
     * Fast-fidelity analytic transfer: model a batch of @p num_tx
     * bus transactions for @p core starting no earlier than @p start,
     * without queueing anything. The batch spends the anchored token
     * bucket (bandwidth shares persist across fidelities), is spread
     * evenly over the core's channel set, and each channel's share is
     * costed as a dense row-granular stream: one precharge+activate
     * per columnsPerRow transactions, max(tCCD, burst) of column-pipe
     * occupancy per transaction, serialized behind the channel's
     * previous fast batch. Counters/bytes/telemetry are credited in
     * bulk; refreshes are not modeled (a documented energy
     * under-count of the fast mode).
     * @return the global cycle the batch's last data beat completes.
     */
    Cycle fastTransfer(CoreId core, std::uint64_t num_tx, bool is_write,
                       Cycle start) override;

    /**
     * Fast-fidelity walk traffic: credit @p num_steps page-table-walk
     * reads to @p core (counters, bytes, telemetry at @p at). Pure
     * accounting — the walk latency itself is modeled closed-form by
     * Mmu::fastTranslate, not by queueing these reads.
     */
    void fastWalkTraffic(CoreId core, std::uint64_t num_steps,
                         Cycle at) override;

    /** @return true if the target channel could accept @p request now. */
    bool canAccept(const DramRequest &request) const override;

    /**
     * Advance to global cycle @p now. In the default (cycle-scheduler)
     * mode every busy channel is ticked. In event-driven mode (see
     * setEventDriven) only channels whose cached event bound is due or
     * that were enqueued-to since their last tick are ticked — a
     * channel skipped under that rule is guaranteed to no-op.
     */
    void tick(Cycle now) override;

    /**
     * Switch to event-driven per-channel ticking: tick(now) consults a
     * per-channel cached nextEventCycle and skips channels with no due
     * work, and nextEventCycle(now) returns the cached minimum instead
     * of rescanning every queue. Enqueues mark their channel dirty so
     * the next tick revisits it. Used by the event scheduler; direct
     * per-cycle users keep the default exhaustive mode.
     */
    void setEventDriven(bool enabled) override;

    /**
     * Whether any channel was enqueued-to since its last tick (event
     * mode): the system must be revisited at now + 1 regardless of the
     * cached bounds, which predate the enqueue.
     */
    bool poked() const override { return anyPoked_; }

    /**
     * Event mode: true when this tick freed a channel-queue slot or a
     * starved token bucket crossed back above one transaction's cost —
     * the two conditions under which a blocked enqueuer (a core's DMA
     * drain or a WaitIssue walker) could now succeed. Cleared on read.
     */
    bool consumeRetrySignal() override
    {
        bool signal = retrySignal_;
        retrySignal_ = false;
        return signal;
    }

    bool busy() const override;

    /**
     * Conservative per-cycle bound (the cycle scheduler): now + 1
     * whenever any channel has queued work.
     */
    Cycle nextTickCycle(Cycle now) const override;

    /**
     * Sharp lower bound on the next cycle the DRAM system (any
     * channel, a delayed fault release, or a token-bucket refill a
     * starved requester is waiting on) changes state. See
     * DramChannel::nextEventCycle for the bound contract.
     */
    Cycle nextEventCycle(Cycle now) const override;

    /**
     * FNV-1a hash over every DRAM command the protocol checkers have
     * observed, aggregated across channels (0 when checks are off).
     * Two runs with identical hashes issued the identical command
     * stream — the differential scheduler test's strongest witness.
     */
    std::uint64_t protocolStreamHash() const override;

    /** Completion callback for reads and writes (data-done cycle). */
    void setCallback(DramCallback callback) override;

    /**
     * Attach the integrity layer: @p tracker assigns every accepted
     * transaction a monotonic audit ID and is told about each
     * completion (before the client callback, so a duplicated
     * response throws instead of reaching the client); @p injector
     * may drop, duplicate, or delay completions. Either may be
     * nullptr; neither is owned.
     */
    void setIntegrity(RequestLifecycleTracker *tracker,
                      FaultInjector *injector) override;

    /**
     * Attach one DramProtocolChecker per channel (full check level);
     * every subsequent DRAM command is re-validated against the
     * timing parameters.
     */
    void enableProtocolChecks() override;

    /**
     * Attach the observability trace sink: each delivered request
     * becomes a complete span (enqueue → data-done) on the DRAM
     * process, and when the sink's level is Requests every channel also
     * emits per-command instants. Passive; nullptr detaches; not owned.
     */
    void setTraceSink(TraceEventSink *sink) override;

    /** DRAM commands validated so far (0 when protocol checks are off). */
    std::uint64_t protocolCommandsChecked() const override;

    /**
     * Start recording per-core and total traffic per @p window_cycles
     * window (Figure 12 telemetry). Bytes are attributed to the window
     * of the completion cycle.
     */
    void enableTelemetry(Cycle window_cycles) override;

    /** Flush telemetry windows; call once after simulation. */
    void finalizeTelemetry() override;

    /**
     * Write request logs under @p dir (§3.2.2): `dram.log` records the
     * start cycle of every accepted request and `dramreq.log` the end
     * cycle, both with core, channel, address, and operation.
     */
    void enableRequestLog(const std::string &dir) override;

    /** Flush request logs to disk (call after the simulation). */
    void flushRequestLogs() override;

    /** @return whether enableTelemetry() has been called. */
    bool telemetryEnabled() const override
    {
        return totalTracer_.has_value();
    }

    /**
     * Per-core traffic tracer (telemetry must be enabled).
     * @deprecated Read `dram.core<i>.bytes` from
     * SimResult::telemetry.findSeries() instead of reaching into the
     * live DRAM system; kept one release for out-of-tree callers.
     */
    const IntervalTracer &coreTelemetry(CoreId core) const override;

    /**
     * Whole-system traffic tracer (telemetry must be enabled).
     * @deprecated Read `dram.total.bytes` from
     * SimResult::telemetry.findSeries() instead; kept one release.
     */
    const IntervalTracer &totalTelemetry() const override;

    std::uint32_t numChannels() const override
    {
        return static_cast<std::uint32_t>(channels_.size());
    }
    std::uint32_t numCores() const override
    {
        return static_cast<std::uint32_t>(partitions_.size());
    }

    const DramTiming &timing() const override { return timing_; }

    /** Total bytes completed for @p core (data + walk traffic). */
    std::uint64_t coreBytes(CoreId core) const override;

    /** Bytes of page-table-walk traffic completed for @p core. */
    std::uint64_t coreWalkBytes(CoreId core) const override;

    /** Aggregate stats across channels (reads/writes/hits/misses). */
    std::uint64_t totalCounter(const std::string &stat_name) const override;

    const DramChannel &channel(std::uint32_t index) const
    {
        return *channels_[index];
    }

    /** Every per-channel StatGroup, in channel order. */
    void visitStatGroups(const StatGroupVisitor &visit) const override;

    /** Peak bandwidth of the whole system in bytes/sec. */
    double peakBandwidthBytesPerSec() const override;

    /** Total DRAM energy over @p elapsed_cycles, picojoules. */
    double totalEnergyPj(Cycle elapsed_cycles) const override;

    /**
     * Snapshot every channel, the per-core token buckets, delayed
     * (fault-held) completions, the fast-fidelity busy horizons,
     * per-core byte totals, telemetry tracers, and the per-channel
     * protocol checkers. The event-driven cache (chanNext_/chanPoked_)
     * is deliberately not serialized: setEventDriven() resets it to
     * "due now", so the first post-restore tick revisits everything
     * and skipped-channel no-op guarantees hold trivially. Request
     * logs restart empty (spans before the snapshot are not replayed).
     */
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

    const char *kindName() const override { return "dram"; }

  protected:
    /**
     * Channel-completion entry: applies injected completion faults
     * (drop/duplicate/delay), then deliver()s. Virtual so derived
     * media models (PcmBackend's write-commit hold) can interpose on
     * the completion path while keeping fault semantics.
     */
    virtual void onCompletion(const DramRequest &request, Cycle at);

    /**
     * Hand a completed request to the integrity tracker, byte/energy
     * accounting, telemetry, logs, and the client callback — the one
     * delivery path every backend-visible completion must take (the
     * lifecycle audit reconciles against it).
     */
    void deliver(const DramRequest &request, Cycle at);

    /** Integrity tracker, for derived backends' own admission paths. */
    RequestLifecycleTracker *lifecycleTracker() const { return tracker_; }

    /** Raise the blocked-enqueuer retry signal (event mode). */
    void raiseRetrySignal() { retrySignal_ = true; }

    /** Whether event-driven ticking is on (setEventDriven). */
    bool eventDrivenMode() const { return eventDriven_; }

    /** The stats-name prefix this system was built with. */
    const std::string &statPrefix() const { return statPrefix_; }

  private:
    struct Route
    {
        std::uint32_t channel;
        Addr localAddr;
    };
    Route route(const DramRequest &request) const;
    void applyBandwidthShares(const std::vector<std::uint32_t> &shares);

    /** A completion held back by an injected dram-delay fault. */
    struct DelayedCompletion
    {
        Cycle at;
        DramRequest request;
    };

    /**
     * Anchored token bucket: @c tokens is the balance at @c lastRefill
     * and the spendable amount at any later cycle is the pure function
     * available() — the anchor moves only on a successful spend. A
     * failed admission therefore mutates nothing, which makes the
     * bucket's evolution independent of how often blocked requesters
     * retry (the property both schedulers' bit-identity rests on).
     */
    struct TokenBucket
    {
        bool enabled = false;
        double tokens = 0;        //!< bytes available at lastRefill
        double ratePerCycle = 0;  //!< bytes replenished per global cycle
        double burstCap = 0;      //!< bucket capacity in bytes
        Cycle lastRefill = 0;
        /**
         * Event mode: whether available() was below one transaction's
         * cost at the last observation (a tick or a spend); an upward
         * crossing raises the retry signal.
         */
        bool wasBelowCost = false;
    };

    /** Spendable tokens at @p now; the exact admission expression. */
    static double available(const TokenBucket &bucket, Cycle now)
    {
        if (now <= bucket.lastRefill)
            return bucket.tokens;
        return std::min(bucket.burstCap,
                        bucket.tokens +
                            bucket.ratePerCycle *
                                static_cast<double>(now - bucket.lastRefill));
    }

    DramTiming timing_;
    std::uint32_t offsetBits_;
    std::string statPrefix_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    std::vector<std::vector<std::uint32_t>> partitions_; //!< per core
    std::vector<TokenBucket> buckets_;                   //!< per core
    DramCallback clientCallback_;

    // --- Event-driven ticking state (setEventDriven). ---
    bool eventDriven_ = false;
    std::vector<Cycle> chanNext_;        //!< cached per-channel bound
    std::vector<std::uint8_t> chanPoked_; //!< enqueued since last tick
    bool anyPoked_ = false;
    bool retrySignal_ = false;

    RequestLifecycleTracker *tracker_ = nullptr;
    FaultInjector *injector_ = nullptr;
    TraceEventSink *traceSink_ = nullptr;
    std::vector<std::unique_ptr<DramProtocolChecker>> checkers_;
    std::vector<DelayedCompletion> delayed_;

    /** Per-channel busy horizon of the fast-fidelity analytic path. */
    std::vector<Cycle> fastBusyUntil_;

    std::vector<std::uint64_t> coreBytes_;
    std::vector<std::uint64_t> coreWalkBytes_;
    std::vector<IntervalTracer> coreTracers_;
    std::optional<IntervalTracer> totalTracer_;
    RequestLog startLog_;
    RequestLog endLog_;
};

} // namespace mnpu

#endif // MNPU_DRAM_DRAM_SYSTEM_HH
