/**
 * @file
 * DRAM device geometry and timing parameters, plus presets.
 *
 * This is the repo's substitute for DRAMsim3's .ini device files. All
 * timing values are in DRAM command-clock cycles. The HBM2 preset is sized
 * so that one channel delivers 32 GB/s at 1 GHz (128-bit bus, DDR), i.e.
 * four channels make the paper's 128 GB/s-per-NPU budget (Table 2).
 */

#ifndef MNPU_DRAM_DRAM_TIMING_HH
#define MNPU_DRAM_DRAM_TIMING_HH

#include <cstdint>
#include <string>

#include "common/config.hh"

namespace mnpu
{

/**
 * Row-buffer management policy: open-page keeps a row active for
 * subsequent hits; closed-page auto-precharges after the last pending
 * access to the row, trading hit latency for conflict latency.
 */
enum class RowPolicy { Open, Closed };

/** Geometry + timing of one DRAM channel. */
struct DramTiming
{
    std::string name = "custom";
    RowPolicy rowPolicy = RowPolicy::Open;

    // --- geometry (per channel) ---
    std::uint32_t ranks = 1;
    std::uint32_t bankGroups = 4;
    std::uint32_t banksPerGroup = 4;
    std::uint32_t rows = 16384;
    std::uint64_t rowBytes = 2048;        //!< row-buffer (page) size
    std::uint32_t busBytes = 16;          //!< data bus width in bytes
    std::uint32_t burstLength = 4;        //!< beats per column command

    // --- frequency ---
    std::uint64_t clockMhz = 1000;        //!< command clock

    // --- timing (command-clock cycles) ---
    std::uint32_t tCL = 14;    //!< read column to data start
    std::uint32_t tCWL = 4;    //!< write column to data start
    std::uint32_t tRCD = 14;   //!< activate to column
    std::uint32_t tRP = 14;    //!< precharge to activate
    std::uint32_t tRAS = 33;   //!< activate to precharge
    std::uint32_t tWR = 15;    //!< end of write data to precharge
    std::uint32_t tRTP = 7;    //!< read to precharge
    std::uint32_t tCCD = 2;    //!< column to column (same bank group)
    std::uint32_t tRRD = 4;    //!< activate to activate (different banks)
    std::uint32_t tFAW = 16;   //!< four-activate window
    std::uint32_t tWTR = 8;    //!< write data to read command
    std::uint32_t tRTW = 3;    //!< read to write turnaround
    std::uint32_t tREFI = 3900; //!< refresh interval
    std::uint32_t tRFC = 350;  //!< refresh cycle time

    // --- energy (representative values; DRAMsim3 is "thermal-capable"
    // and this substitute provides the matching energy accounting) ---
    double eActPrePj = 1500;   //!< one ACT+PRE pair, pJ
    double eReadPj = 2000;     //!< one read column cmd incl. IO, pJ
    double eWritePj = 2000;    //!< one write column cmd incl. IO, pJ
    double eRefreshPj = 30000; //!< one all-bank refresh, pJ
    double backgroundMw = 80;  //!< standby power per channel, mW

    /** Bytes moved by one column command (one transaction). */
    std::uint64_t transactionBytes() const
    {
        return static_cast<std::uint64_t>(busBytes) * burstLength;
    }

    /** Data-bus occupancy of one transaction in clock cycles (DDR). */
    std::uint32_t burstCycles() const
    {
        std::uint32_t cycles = burstLength / 2;
        return cycles == 0 ? 1 : cycles;
    }

    /** Total banks per channel. */
    std::uint32_t banksPerRank() const { return bankGroups * banksPerGroup; }

    /** Peak bandwidth of one channel in bytes per second. */
    double peakBandwidthBytesPerSec() const;

    /** Columns (transactions) per row. */
    std::uint64_t columnsPerRow() const
    {
        return rowBytes / transactionBytes();
    }

    /** Per-channel capacity in bytes. */
    std::uint64_t channelCapacityBytes() const
    {
        return static_cast<std::uint64_t>(ranks) * banksPerRank() * rows *
               rowBytes;
    }

    /** Validate internal consistency; fatal() on nonsense. */
    void validate() const;

    /** HBM2 pseudo-channel: 128-bit bus, BL4, 1 GHz -> 32 GB/s. */
    static DramTiming hbm2();

    /** DDR4-2400-ish single channel: 64-bit bus, BL8 -> 19.2 GB/s. */
    static DramTiming ddr4();

    /**
     * Phase-change media behind the HBM2 bus: same clock/geometry as
     * hbm2() (uniform transaction size across tiers) with slow reads,
     * strongly asymmetric writes, and no refresh. The media timing of
     * PcmBackend.
     */
    static DramTiming pcm();

    /** Look up a preset by name ("hbm2", "ddr4", "pcm"); fatal() if
     *  unknown. */
    static DramTiming preset(const std::string &preset_name);

    /**
     * Build from a config file: `protocol = hbm2` selects a preset whose
     * fields individual keys (e.g. `tCL = 17`) may then override.
     */
    static DramTiming fromConfig(const ConfigFile &config,
                                 const std::string &prefix = "dram.");
};

} // namespace mnpu

#endif // MNPU_DRAM_DRAM_TIMING_HH
