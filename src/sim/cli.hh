/**
 * @file
 * The paper-style command-line front end: mNPUsim takes five kinds of
 * configuration files (§3.2.1) —
 *
 *   1. arch_config      per-core NPU compute resources (list file)
 *   2. network_config   per-core DNN topology (list file)
 *   3. dram_config      shared DRAM + level of resource sharing
 *   4. npumem_config    per-core TLB/PTW/page-size parameters (list)
 *   5. misc_config      execution mode: start cycles, iterations, PTW
 *                       partition options, trace options
 *
 * — plus a result directory. Results follow the Appendix conventions:
 * result/avg_cycle_<arch><i>_<net><i>.txt, memory_footprint_*,
 * execution_cycle_* (per layer), and utilization_*.
 */

#ifndef MNPU_SIM_CLI_HH
#define MNPU_SIM_CLI_HH

#include <string>
#include <vector>

#include "sim/multi_core_system.hh"

namespace mnpu
{

/** A fully-loaded CLI invocation, ready to construct a system. */
struct CliRun
{
    SystemConfig config;
    std::vector<CoreBinding> bindings;
    /** Per-core "<archname><i>_<netname><i>" labels for result files. */
    std::vector<std::string> coreLabels;
    /** misc_config `request_logs`: write logs under dramsim_output/. */
    bool requestLogs = false;
};

/**
 * Load the five configuration files. List files contain one entry per
 * line; network entries are either `builtin:<model>[@full|@mini]` or a
 * CSV topology path. fatal() on any inconsistency.
 */
CliRun loadCliRun(const std::string &arch_list_path,
                  const std::string &network_list_path,
                  const std::string &dram_config_path,
                  const std::string &npumem_list_path,
                  const std::string &misc_config_path);

/**
 * Write the Appendix-style result files under
 * `<result_dir>/result/`. Creates directories as needed.
 */
void writeResults(const std::string &result_dir, const CliRun &run,
                  const SimResult &result);

/** Entry point used by the mnpusim binary (argc/argv as in §7.3). */
int mnpusimMain(int argc, char **argv);

} // namespace mnpu

#endif // MNPU_SIM_CLI_HH
