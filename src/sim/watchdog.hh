/**
 * @file
 * Watchdog sampling policy for the run loop: decides on which loop
 * iterations the (comparatively expensive) wall-clock read, stop-token
 * load, and lost-response audit run.
 *
 * The historical policy — every 256th loop iteration — was sound for
 * the per-cycle scheduler, where iterations and simulated cycles
 * advance in lockstep. The event scheduler breaks that: one iteration
 * can skip millions of cycles, so an iteration-only policy could let a
 * cancelled or deadline-blown run coast through enormous simulated
 * spans between samples. The sampler therefore also fires whenever
 * simulated time has advanced by more than cycleSpan since the last
 * sample, whichever comes first.
 */

#ifndef MNPU_SIM_WATCHDOG_HH
#define MNPU_SIM_WATCHDOG_HH

#include <cstdint>

#include "common/snapshot.hh"
#include "common/types.hh"

namespace mnpu
{

struct WatchdogSampler
{
    /** Sample at least every this many loop iterations. */
    std::uint64_t iterationInterval = 256;
    /** ... and at least every this many simulated global cycles. */
    Cycle cycleSpan = Cycle{1} << 20;

    /**
     * @return true when the watchdog checks should run this iteration
     * (always true on the first call). @p iteration must be the loop
     * iteration count, @p now the current global cycle; both are
     * monotone.
     */
    bool shouldSample(std::uint64_t iteration, Cycle now)
    {
        if (primed_ && iteration - lastIteration_ < iterationInterval &&
            now - lastCycle_ < cycleSpan) {
            return false;
        }
        primed_ = true;
        lastIteration_ = iteration;
        lastCycle_ = now;
        return true;
    }

    /**
     * Snapshot the sampling phase so a restored run samples on the
     * same iterations the uninterrupted run would have (a sample
     * itself never changes simulated state, but keeping the phase
     * identical removes one gratuitous divergence source).
     */
    void
    saveState(StateWriter &out) const
    {
        out.u64(lastIteration_);
        out.u64(lastCycle_);
        out.b(primed_);
    }
    void
    loadState(StateReader &in)
    {
        lastIteration_ = in.u64();
        lastCycle_ = in.u64();
        primed_ = in.b();
    }

  private:
    std::uint64_t lastIteration_ = 0;
    Cycle lastCycle_ = 0;
    bool primed_ = false;
};

} // namespace mnpu

#endif // MNPU_SIM_WATCHDOG_HH
