/**
 * @file
 * The multi-core NPU system: instantiates cores, the shared MMU, and
 * the DRAM system according to a SystemConfig, wires completion paths,
 * and runs the global-clock event loop with idle fast-forward.
 */

#ifndef MNPU_SIM_MULTI_CORE_SYSTEM_HH
#define MNPU_SIM_MULTI_CORE_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "common/metrics_registry.hh"
#include "common/snapshot.hh"
#include "common/types.hh"
#include "core/npu_core.hh"
#include "dram/dram_system.hh"
#include "mem/memory_backend.hh"
#include "mmu/mmu.hh"
#include "sim/system_config.hh"
#include "sim/watchdog.hh"
#include "sw/trace_generator.hh"

namespace mnpu
{

/**
 * Per-core outcome of a simulation.
 *
 * The scalar counters here are also published in
 * SimResult::telemetry under `core<i>.*` names; new consumers should
 * read the snapshot (one coherent view, stable schema) and treat these
 * fields as the legacy convenience form.
 */
struct CoreResult
{
    std::string workloadName;
    Cycle localCycles = 0;       //!< end-to-end cycles in the NPU clock
    Cycle finishedAtGlobal = 0;
    double peUtilization = 0.0;
    std::uint64_t trafficBytes = 0; //!< DRAM bytes moved for this core
    std::uint64_t walkBytes = 0;    //!< of which page-table-walk reads
    std::uint64_t tlbHits = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t walks = 0;
    std::vector<Cycle> layerFinishLocal;
};

struct SimResult
{
    std::vector<CoreResult> cores;
    Cycle globalCycles = 0; //!< when the last core finished
    double dramEnergyPj = 0; //!< DRAM energy over the whole run
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;
    /**
     * Run-loop iterations (visited cycles). Scheduler-dependent by
     * design — the event scheduler's whole point is fewer of these —
     * so it is excluded from golden snapshots and checkpoints.
     */
    std::uint64_t loopIterations = 0;

    /**
     * Nonzero when this run resumed from an in-flight snapshot: the
     * global cycle / loop iteration the restored run continued from.
     * Pure accounting (proof a resumed job did not restart from
     * zero); excluded from telemetry and checkpoint records so a
     * resumed run's artifacts stay byte-identical to a clean run's.
     */
    Cycle resumedAtCycle = 0;
    std::uint64_t resumedAtIteration = 0;

    /**
     * The full metrics-registry snapshot (DESIGN.md §9 schema): every
     * component counter/gauge plus the windowed series when telemetry
     * was enabled. This is the consolidated telemetry API — consumers
     * read this instead of reaching into live components. For runs
     * restored from a checkpoint, telemetryFromResult() rebuilds the
     * stable scalar subset from the fields above.
     */
    TelemetrySnapshot telemetry;
};

/**
 * Rebuild the checkpoint-stable subset of the telemetry snapshot from
 * SimResult's scalar fields: `sim.global_cycles`, per-core `core<i>.*`
 * results, and the DRAM row/energy totals. Used when a sweep restores
 * an outcome whose live components no longer exist; an executed run's
 * full snapshot agrees with this subset metric-for-metric (the same
 * underlying reads feed both).
 */
TelemetrySnapshot telemetryFromResult(const SimResult &result);

/** One workload bound to one core. */
struct CoreBinding
{
    std::shared_ptr<const TraceGenerator> trace;
    Cycle startCycleGlobal = 0;
    std::uint32_t iterations = 1;
};

class MultiCoreSystem
{
  public:
    MultiCoreSystem(const SystemConfig &config,
                    std::vector<CoreBinding> bindings);

    /**
     * Run to completion and collect results. @p budget adds a
     * watchdog on top of the config's own maxGlobalCycles: deadlock,
     * a blown cycle budget, a wall-clock timeout, and an external
     * stop token all throw SimulationError (common/errors.hh), which
     * leaves the process — and every other run — intact.
     */
    SimResult run(const RunBudget &budget = RunBudget{});

    /**
     * The off-chip memory backend (and fabric, when configured) the
     * system was built with. This is the supported component-access
     * path: everything observable about the memory system — timing
     * echo, per-core byte counters, telemetry, stat groups — is on the
     * MemoryBackend interface.
     */
    const MemoryBackend &memory() const { return *mem_; }

    /** Backend kind the system resolved at build time. */
    MemBackendKind backendKind() const { return backendKind_; }

    /**
     * Component access after run().
     * @deprecated Reach the memory system through memory() instead;
     * this downcast forwarder exists only for legacy callers that
     * predate the MemoryBackend interface. It unwraps an XBar fabric
     * and returns a tiered backend's hot (DRAM) tier; it aborts when
     * the backend is not DRAM-based at all.
     */
    const DramSystem &dram() const;
    const Mmu &mmu() const { return *mmu_; }
    const NpuCore &core(CoreId id) const { return *cores_[id]; }
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }
    const SystemConfig &config() const { return config_; }

    /** Check level this system actually runs at (resolved at build). */
    CheckLevel checkLevel() const { return checkLevel_; }

    /** Scheduler this system actually runs with (resolved at build). */
    SchedulerKind scheduler() const { return scheduler_; }

    /**
     * Fidelity this system actually runs at (resolved at build). May
     * be Exact even when fast was requested: an armed fault injector
     * or any integrity check level forces the cycle-exact models.
     */
    FidelityKind fidelity() const { return fidelity_; }

    /** The metrics registry all components registered with (tests). */
    const MetricsRegistry &metricsRegistry() const { return registry_; }

    /**
     * Attempt to restore full in-flight simulation state from a
     * snapshot file written by an identically configured system
     * (DESIGN.md §12). Call on a freshly built system, before run();
     * run() then continues from the snapshot point and produces
     * byte-identical results to the uninterrupted run. Returns false —
     * never throws, never aborts — when the file is missing, the
     * checksum/version/magic rejects it, or the config fingerprint
     * differs. A false return after the payload passed the envelope
     * checks may leave components partially restored: discard this
     * system and build a fresh one (the documented caller contract;
     * both the CLI and the sweep runner do exactly that).
     */
    bool tryRestoreSnapshot(const std::string &path);

  private:
    bool allDone() const;
    void setupObservability();
    void buildMetricsRegistry();
    std::uint64_t configFingerprint() const;
    void saveState(StateWriter &out, Cycle now, std::uint64_t iteration,
                   std::uint64_t service_round,
                   const WatchdogSampler &sampler) const;

    SystemConfig config_;
    std::vector<CoreBinding> bindings_;
    std::unique_ptr<MemoryBackend> mem_;
    MemBackendKind backendKind_ = MemBackendKind::Dram;
    std::unique_ptr<PageAllocator> allocator_;
    std::unique_ptr<PageTableModel> pageTable_;
    std::unique_ptr<Mmu> mmu_;
    std::vector<std::unique_ptr<NpuCore>> cores_;
    CheckLevel checkLevel_ = CheckLevel::Off;
    SchedulerKind scheduler_ = SchedulerKind::Event;
    FidelityKind fidelity_ = FidelityKind::Exact;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<RequestLifecycleTracker> tracker_;

    // --- Observability layer (passive; see DESIGN.md §9). ---
    MetricsRegistry registry_;
    std::unique_ptr<TraceEventSink> traceSink_;
    /** Set at end of run(); read by registry lambdas at snapshot time. */
    Cycle finalGlobalCycles_ = 0;
    std::uint64_t finalLoopIterations_ = 0;

    // --- Snapshot/restore (tryRestoreSnapshot → run resume point). ---
    bool restored_ = false;
    Cycle resumeNow_ = 0;
    std::uint64_t resumeIteration_ = 0;
    std::uint64_t resumeServiceRound_ = 0;
    WatchdogSampler resumeSampler_;

    bool ran_ = false;
};

/**
 * Convenience: run @p trace alone on an Ideal system holding
 * @p resource_multiplier NPUs' worth of shareable resources.
 */
SimResult runIdeal(std::shared_ptr<const TraceGenerator> trace,
                   std::uint32_t resource_multiplier,
                   const NpuMemConfig &mem = NpuMemConfig::cloudNpu());

/** Convenience: co-run traces at a sharing level with default knobs. */
SimResult runMix(SharingLevel level,
                 std::vector<std::shared_ptr<const TraceGenerator>> traces,
                 const NpuMemConfig &mem = NpuMemConfig::cloudNpu());

} // namespace mnpu

#endif // MNPU_SIM_MULTI_CORE_SYSTEM_HH
