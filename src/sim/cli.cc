#include "sim/cli.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/config.hh"
#include "common/errors.hh"
#include "common/logging.hh"
#include "common/stop_signal.hh"
#include "common/thread_pool.hh"
#include "workloads/models.hh"

namespace mnpu
{

namespace
{

/** Read a list file: one non-empty, non-comment line per entry. */
std::vector<std::string>
readListFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot open list file '", path, "'");
    std::vector<std::string> entries;
    std::string line;
    while (std::getline(file, line)) {
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (!line.empty())
            entries.push_back(line);
    }
    if (entries.empty())
        fatal("list file '", path, "' has no entries");
    return entries;
}

/** Resolve a path relative to the directory of the list file. */
std::string
resolveRelative(const std::string &list_path, const std::string &entry)
{
    namespace fs = std::filesystem;
    fs::path p(entry);
    if (p.is_absolute() || fs::exists(p))
        return entry;
    fs::path base = fs::path(list_path).parent_path();
    fs::path joined = base / p;
    return joined.string();
}

Network
loadNetworkEntry(const std::string &list_path, const std::string &entry)
{
    const std::string prefix = "builtin:";
    if (entry.rfind(prefix, 0) == 0) {
        std::string spec = entry.substr(prefix.size());
        ModelScale scale = ModelScale::Mini;
        auto at = spec.find('@');
        if (at != std::string::npos) {
            std::string scale_name = spec.substr(at + 1);
            if (iequals(scale_name, "full"))
                scale = ModelScale::Full;
            else if (iequals(scale_name, "mini"))
                scale = ModelScale::Mini;
            else
                fatal("unknown model scale '", scale_name, "' in '",
                      entry, "'");
            spec = spec.substr(0, at);
        }
        return buildModel(spec, scale);
    }
    return Network::fromCsvFile(resolveRelative(list_path, entry));
}

/** Parse "a:b:c" ratio strings into a share vector. */
std::vector<std::uint32_t>
parseRatio(const std::string &text, const char *what)
{
    std::vector<std::uint32_t> shares;
    for (const auto &piece : split(text, ':')) {
        try {
            shares.push_back(
                static_cast<std::uint32_t>(std::stoul(piece)));
        } catch (const std::exception &) {
            fatal("malformed ", what, " ratio '", text, "'");
        }
    }
    return shares;
}

} // namespace

CliRun
loadCliRun(const std::string &arch_list_path,
           const std::string &network_list_path,
           const std::string &dram_config_path,
           const std::string &npumem_list_path,
           const std::string &misc_config_path)
{
    CliRun run;

    // --- per-core arch and network configs ---
    auto arch_entries = readListFile(arch_list_path);
    auto net_entries = readListFile(network_list_path);
    if (arch_entries.size() != net_entries.size()) {
        fatal("arch list (", arch_entries.size(), ") and network list (",
              net_entries.size(), ") must have one entry per core");
    }
    const auto num_cores = static_cast<std::uint32_t>(arch_entries.size());

    std::vector<ArchConfig> archs;
    for (const auto &entry : arch_entries) {
        auto config = ConfigFile::fromFile(
            resolveRelative(arch_list_path, entry));
        archs.push_back(ArchConfig::fromConfig(config));
    }

    // --- npumem: per-core memory-side parameters ---
    auto npumem_entries = readListFile(npumem_list_path);
    if (npumem_entries.size() != num_cores)
        fatal("npumem list must have one entry per core");
    NpuMemConfig mem;
    for (std::size_t i = 0; i < npumem_entries.size(); ++i) {
        auto config = ConfigFile::fromFile(
            resolveRelative(npumem_list_path, npumem_entries[i]));
        NpuMemConfig core_mem;
        core_mem.tlbEntriesPerNpu = static_cast<std::uint32_t>(
            config.getUint("tlb_entries", mem.tlbEntriesPerNpu));
        core_mem.tlbWays = static_cast<std::uint32_t>(
            config.getUint("tlb_ways", mem.tlbWays));
        core_mem.ptwPerNpu = static_cast<std::uint32_t>(
            config.getUint("ptw", mem.ptwPerNpu));
        if (config.has("page_size")) {
            core_mem.pageBytes = ConfigFile::parseSize(
                config.requireString("page_size"));
        }
        if (i == 0) {
            mem.tlbEntriesPerNpu = core_mem.tlbEntriesPerNpu;
            mem.tlbWays = core_mem.tlbWays;
            mem.ptwPerNpu = core_mem.ptwPerNpu;
            mem.pageBytes = core_mem.pageBytes;
        } else if (core_mem.tlbEntriesPerNpu != mem.tlbEntriesPerNpu ||
                   core_mem.tlbWays != mem.tlbWays ||
                   core_mem.ptwPerNpu != mem.ptwPerNpu ||
                   core_mem.pageBytes != mem.pageBytes) {
            warn("npumem config of core ", i, " differs from core 0; ",
                 "shared structures use core 0's parameters");
        }
    }

    // --- dram config: device, budgets, and the sharing level ---
    auto dram_config = ConfigFile::fromFile(dram_config_path);
    mem.timing = DramTiming::fromConfig(dram_config, "dram.");
    mem.channelsPerNpu = static_cast<std::uint32_t>(
        dram_config.getUint("channels_per_npu", mem.channelsPerNpu));
    if (dram_config.has("capacity_per_npu")) {
        mem.dramCapacityPerNpu = ConfigFile::parseSize(
            dram_config.requireString("capacity_per_npu"));
    }
    mem.dramQueueDepth = static_cast<std::uint32_t>(
        dram_config.getUint("queue_depth", mem.dramQueueDepth));
    mem.translationEnabled =
        dram_config.getBool("translation", mem.translationEnabled);

    std::string sharing = dram_config.getString("sharing", "dwt");
    if (iequals(sharing, "static"))
        run.config.level = SharingLevel::Static;
    else if (iequals(sharing, "d"))
        run.config.level = SharingLevel::ShareD;
    else if (iequals(sharing, "dw"))
        run.config.level = SharingLevel::ShareDW;
    else if (iequals(sharing, "dwt"))
        run.config.level = SharingLevel::ShareDWT;
    else if (iequals(sharing, "ideal"))
        run.config.level = SharingLevel::Ideal;
    else
        fatal("unknown sharing level '", sharing,
              "' (expected static, d, dw, dwt, or ideal)");

    if (dram_config.has("bandwidth_shares")) {
        run.config.dramBandwidthShares = parseRatio(
            dram_config.requireString("bandwidth_shares"), "bandwidth");
    }

    // --- memory backend and fabric (DESIGN.md §14) ---
    if (dram_config.has("mem_backend")) {
        mem.backend = parseMemBackendKind(
            dram_config.requireString("mem_backend"));
    }
    mem.pcm.cacheLines = static_cast<std::uint32_t>(
        dram_config.getUint("pcm.cache_lines", mem.pcm.cacheLines));
    mem.pcm.cacheHitLatency = dram_config.getUint("pcm.cache_hit_latency",
                                                  mem.pcm.cacheHitLatency);
    mem.pcm.writeCommitCycles = dram_config.getUint(
        "pcm.write_commit_cycles", mem.pcm.writeCommitCycles);
    mem.pcm.hitQueueDepth = static_cast<std::uint32_t>(
        dram_config.getUint("pcm.hit_queue_depth", mem.pcm.hitQueueDepth));
    mem.fabric.enabled =
        dram_config.getBool("fabric.enabled", mem.fabric.enabled);
    mem.fabric.ports = static_cast<std::uint32_t>(
        dram_config.getUint("fabric.ports", mem.fabric.ports));
    mem.fabric.queueDepth = static_cast<std::uint32_t>(
        dram_config.getUint("fabric.queue_depth", mem.fabric.queueDepth));
    mem.fabric.widthBytes = static_cast<std::uint32_t>(
        dram_config.getUint("fabric.width_bytes", mem.fabric.widthBytes));
    mem.fabric.latencyCycles = dram_config.getUint(
        "fabric.latency_cycles", mem.fabric.latencyCycles);

    // --- misc config: execution mode ---
    auto misc = ConfigFile::fromFile(misc_config_path);
    run.config.idealResourceMultiplier = static_cast<std::uint32_t>(
        misc.getUint("ideal_resource_multiplier",
                     run.config.level == SharingLevel::Ideal ? num_cores
                                                             : 1));
    if (run.config.level != SharingLevel::Ideal)
        run.config.idealResourceMultiplier = 1;
    if (misc.has("ptw_quota")) {
        run.config.ptwQuota =
            parseRatio(misc.requireString("ptw_quota"), "PTW quota");
    }
    if (misc.has("ptw_min") || misc.has("ptw_max")) {
        run.config.ptwMin =
            parseRatio(misc.requireString("ptw_min"), "PTW min");
        run.config.ptwMax =
            parseRatio(misc.requireString("ptw_max"), "PTW max");
    }
    run.config.telemetryWindow = misc.getUint("telemetry_window", 0);
    run.config.requestTraceWindow =
        misc.getUint("request_trace_window", 0);
    run.config.maxGlobalCycles = misc.getUint("max_cycles", 0);
    run.requestLogs = misc.getBool("request_logs", false);
    run.config.mem = mem;

    // --- bind workloads to cores ---
    // Network files are read serially (deterministic error reporting);
    // the expensive per-core trace lowering fans out over the pool.
    std::vector<Network> networks;
    networks.reserve(num_cores);
    for (std::uint32_t core = 0; core < num_cores; ++core) {
        networks.push_back(
            loadNetworkEntry(network_list_path, net_entries[core]));
    }
    std::vector<std::shared_ptr<const TraceGenerator>> traces(num_cores);
    ThreadPool pool;
    pool.parallelFor(num_cores, [&](std::size_t core) {
        traces[core] = std::make_shared<TraceGenerator>(archs[core],
                                                        networks[core]);
    });
    for (std::uint32_t core = 0; core < num_cores; ++core) {
        CoreBinding binding;
        binding.trace = std::move(traces[core]);
        binding.startCycleGlobal = misc.getUint(
            "start_cycle" + std::to_string(core),
            misc.getUint("start_cycle", 0));
        binding.iterations = static_cast<std::uint32_t>(misc.getUint(
            "iterations" + std::to_string(core),
            misc.getUint("iterations", 1)));
        run.coreLabels.push_back(archs[core].name +
                                 std::to_string(core) + "_" +
                                 networks[core].name +
                                 std::to_string(core));
        run.bindings.push_back(std::move(binding));
    }
    return run;
}

void
writeResults(const std::string &result_dir, const CliRun &run,
             const SimResult &result)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::path(result_dir) / "result";
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        fatal("cannot create result directory '", dir.string(), "': ",
              ec.message());

    auto open = [&](const std::string &prefix, const std::string &label) {
        fs::path path = dir / (prefix + "_" + label + ".txt");
        std::ofstream file(path);
        if (!file)
            fatal("cannot write '", path.string(), "'");
        return file;
    };

    for (std::size_t core = 0; core < result.cores.size(); ++core) {
        const CoreResult &cr = result.cores[core];
        const std::string &label = run.coreLabels[core];
        const TraceGenerator &trace = *run.bindings[core].trace;

        {
            auto file = open("avg_cycle", label);
            file << "# average execution cycles per iteration (NPU "
                    "clock)\n";
            file << cr.localCycles /
                        std::max<std::uint32_t>(
                            1, run.bindings[core].iterations)
                 << "\n";
        }
        {
            auto file = open("memory_footprint", label);
            file << "# virtual-address footprint in bytes\n";
            file << trace.footprintBytes() << "\n";
        }
        {
            auto file = open("execution_cycle", label);
            file << "# layer_name finish_cycle layer_cycles\n";
            Cycle previous = 0;
            for (std::size_t i = 0; i < trace.layers().size(); ++i) {
                Cycle finish = cr.layerFinishLocal[i];
                file << trace.layers()[i].name << " " << finish << " "
                     << finish - previous << "\n";
                previous = finish;
            }
        }
        {
            auto file = open("utilization", label);
            file << "# PE utilization (MACs / (PEs x active cycles))\n";
            file << cr.peUtilization << "\n";
        }
    }
}

int
mnpusimMain(int argc, char **argv)
{
    // Optional leading flags before the six positional arguments.
    RunBudget budget;
    std::optional<CheckLevel> check_level;
    std::optional<SchedulerKind> sched_kind;
    std::optional<FidelityKind> fidelity_kind;
    FaultPlan fault_plan;
    ObservabilityConfig obs;
    SnapshotPolicy snapshot;
    int first = 1;
    while (first < argc && argv[first][0] == '-') {
        std::string flag = argv[first];
        std::string value;
        bool has_inline_value = false;
        auto eq = flag.find('=');
        if (eq != std::string::npos) {
            value = flag.substr(eq + 1);
            flag = flag.substr(0, eq);
            has_inline_value = true;
        }
        auto take_value = [&](const char *name) -> bool {
            if (has_inline_value)
                return true;
            if (first + 1 < argc) {
                value = argv[first + 1];
                return true;
            }
            std::fprintf(stderr, "%s needs a value\n", name);
            return false;
        };
        if (flag == "--check") {
            if (!take_value("--check"))
                return 2;
            try {
                check_level = parseCheckLevel(value);
            } catch (const FatalError &error) {
                std::fprintf(stderr, "%s\n", error.what());
                return 2;
            }
            setCheckLevelDefault(*check_level);
            first += has_inline_value ? 1 : 2;
            continue;
        }
        if (flag == "--sched") {
            if (!take_value("--sched"))
                return 2;
            try {
                sched_kind = parseSchedulerKind(value);
            } catch (const FatalError &error) {
                std::fprintf(stderr, "%s\n", error.what());
                return 2;
            }
            setSchedulerDefault(*sched_kind);
            first += has_inline_value ? 1 : 2;
            continue;
        }
        if (flag == "--fidelity") {
            if (!take_value("--fidelity"))
                return 2;
            try {
                fidelity_kind = parseFidelityKind(value);
            } catch (const FatalError &error) {
                std::fprintf(stderr, "%s\n", error.what());
                return 2;
            }
            setFidelityDefault(*fidelity_kind);
            first += has_inline_value ? 1 : 2;
            continue;
        }
        if (flag == "--mem-backend") {
            if (!take_value("--mem-backend"))
                return 2;
            try {
                setMemBackendDefault(parseMemBackendKind(value));
            } catch (const FatalError &error) {
                std::fprintf(stderr, "%s\n", error.what());
                return 2;
            }
            first += has_inline_value ? 1 : 2;
            continue;
        }
        if (flag == "--inject") {
            if (!take_value("--inject"))
                return 2;
            try {
                fault_plan = parseFaultPlan(value);
            } catch (const FatalError &error) {
                std::fprintf(stderr, "%s\n", error.what());
                return 2;
            }
            first += has_inline_value ? 1 : 2;
            continue;
        }
        if (flag == "--snapshot") {
            if (!take_value("--snapshot"))
                return 2;
            snapshot.path = value;
            first += has_inline_value ? 1 : 2;
            continue;
        }
        if (flag == "--snapshot-every") {
            if (!take_value("--snapshot-every"))
                return 2;
            // "N" or "Nc" = every N simulated cycles; "Ns" = every N
            // wall-clock seconds (fractions allowed).
            char *end = nullptr;
            double amount = std::strtod(value.c_str(), &end);
            bool ok = end != value.c_str() && amount > 0;
            if (ok && *end == 's' && end[1] == '\0') {
                snapshot.everySeconds = amount;
            } else if (ok && (*end == '\0' ||
                              (*end == 'c' && end[1] == '\0'))) {
                snapshot.everyCycles = static_cast<Cycle>(amount);
                ok = snapshot.everyCycles > 0;
            } else {
                ok = false;
            }
            if (!ok) {
                std::fprintf(stderr,
                             "malformed --snapshot-every value '%s' "
                             "(expected N, Nc, or Ns)\n",
                             value.c_str());
                return 2;
            }
            first += has_inline_value ? 1 : 2;
            continue;
        }
        if (flag == "--trace-out") {
            if (!take_value("--trace-out"))
                return 2;
            obs.traceOutPath = value;
            first += has_inline_value ? 1 : 2;
            continue;
        }
        if (flag == "--metrics-out") {
            if (!take_value("--metrics-out"))
                return 2;
            obs.metricsOutPath = value;
            first += has_inline_value ? 1 : 2;
            continue;
        }
        if (flag == "--obs-level") {
            if (!take_value("--obs-level"))
                return 2;
            try {
                obs.traceLevel = parseTraceLevel(value);
            } catch (const FatalError &error) {
                std::fprintf(stderr, "%s\n", error.what());
                return 2;
            }
            first += has_inline_value ? 1 : 2;
            continue;
        }
        if (flag == "--jobs") {
            if (!take_value("--jobs"))
                return 2;
            char *end = nullptr;
            unsigned long jobs = std::strtoul(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0' || jobs == 0) {
                std::fprintf(stderr, "malformed --jobs value '%s'\n",
                             value.c_str());
                return 2;
            }
            setDefaultJobCount(static_cast<std::size_t>(jobs));
            first += has_inline_value ? 1 : 2;
        } else if (flag == "--job-timeout") {
            if (!take_value("--job-timeout"))
                return 2;
            char *end = nullptr;
            double seconds = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' || seconds <= 0) {
                std::fprintf(stderr,
                             "malformed --job-timeout value '%s'\n",
                             value.c_str());
                return 2;
            }
            budget.wallClockSeconds = seconds;
            first += has_inline_value ? 1 : 2;
        } else {
            break;
        }
    }
    if (argc - first != 6) {
        std::fprintf(
            stderr,
            "usage: %s [--jobs N] [--job-timeout SECONDS] "
            "[--check off|cheap|full] [--sched cycle|event] "
            "[--fidelity exact|fast] "
            "[--mem-backend hbm2|pcm|tiered] "
            "[--inject SITE[:N[:DELAY]]] "
            "[--snapshot FILE] [--snapshot-every N[c|s]] "
            "[--trace-out FILE] [--metrics-out FILE] "
            "[--obs-level off|layers|tiles|requests] "
            "<arch_config_list> "
            "<network_config_list> <dram_config> <npumem_config_list> "
            "<result_path> <misc_config>\n"
            "  --check   integrity-checker level (also: MNPU_CHECK env)\n"
            "  --sched   run-loop scheduler (also: MNPU_SCHED env):\n"
            "            event (default) skips to the next event cycle,\n"
            "            cycle steps conservatively; results are\n"
            "            bit-identical\n"
            "  --fidelity model fidelity (also: MNPU_FIDELITY env):\n"
            "            exact (default) is golden-ratcheted; fast uses\n"
            "            an analytic tile model within a committed\n"
            "            error envelope (falls back to exact under\n"
            "            --check or --inject)\n"
            "  --mem-backend off-chip memory backend (also:\n"
            "            MNPU_MEM_BACKEND env): hbm2 (default) is the\n"
            "            paper's DRAM model, pcm swaps in slow media\n"
            "            with a DRAM data cache, tiered routes weights\n"
            "            to PCM and activations to HBM2; the dram\n"
            "            config's mem_backend / pcm.* / fabric.* keys\n"
            "            override per run\n"
            "  --inject  deterministic fault: dram-drop, dram-dup,\n"
            "            dram-delay, pte-corrupt, or core-stall, fired\n"
            "            at the Nth opportunity (default 1); the\n"
            "            worker-crash / worker-hog sites drill the\n"
            "            sweep layer's --isolate process mode and are\n"
            "            inert here\n"
            "  --snapshot     durable in-flight snapshot file: written\n"
            "                 atomically on the cadence below and on the\n"
            "                 first SIGINT/SIGTERM; if the file already\n"
            "                 exists and validates, the run resumes from\n"
            "                 it bit-identically (a corrupt or stale\n"
            "                 snapshot is discarded and the run starts\n"
            "                 from scratch)\n"
            "  --snapshot-every  cadence: N or Nc = every N simulated\n"
            "                 cycles, Ns = every N wall-clock seconds\n"
            "                 detail via --obs-level (also: MNPU_TRACE,\n"
            "                 MNPU_OBS_LEVEL env)\n"
            "  --metrics-out  telemetry snapshot, .csv or .jsonl (also:\n"
            "                 MNPU_METRICS env); observers are passive —\n"
            "                 results are bit-identical either way\n"
            "exit codes: 0 success, 1 config error, 2 usage,\n"
            "            3 contained simulation error,\n"
            "            130 interrupted (SIGINT/SIGTERM: the first\n"
            "            signal cancels cooperatively, a second\n"
            "            force-exits)\n"
            "request-level serving mode (arrivals, continuous batching,\n"
            "SLO metrics) lives behind its own flag set: see\n"
            "  %s --serve --help\n",
            argc > 0 ? argv[0] : "mnpusim",
            argc > 0 ? argv[0] : "mnpusim");
        return 2;
    }
    argv += first - 1; // keep the 1-based positional indices below
    // Graceful interruption: the first SIGINT/SIGTERM raises the stop
    // token (the run cancels at its next watchdog check), a second
    // force-exits with the same code.
    installStopSignalHandlers();
    budget.stopToken = stopSignalToken();
    try {
        CliRun run = loadCliRun(argv[1], argv[2], argv[3], argv[4],
                                argv[6]);
        if (check_level)
            run.config.checkLevel = check_level;
        if (sched_kind)
            run.config.scheduler = sched_kind;
        if (fidelity_kind)
            run.config.fidelity = fidelity_kind;
        run.config.faultPlan = fault_plan;
        run.config.obs = observabilityFromEnv(obs);
        inform("simulating ", run.bindings.size(), "-core NPU at level ",
               toString(run.config.level));
        if (fault_plan.site != FaultSite::None) {
            inform("injecting fault ", toString(fault_plan.site),
                   " at opportunity ", fault_plan.triggerCount,
                   " (checks: ",
                   toString(effectiveCheckLevel(run.config.checkLevel)),
                   ")");
        }
        if (run.requestLogs) {
            run.config.requestLogDir =
                std::string(argv[5]) + "/dramsim_output";
        }
        auto buildSystem = [&run]() {
            CliRun writable = run; // bindings are shared_ptr copies
            return std::make_unique<MultiCoreSystem>(
                run.config, std::move(writable.bindings));
        };
        auto system = buildSystem();
        if (snapshot.enabled()) {
            budget.snapshot = snapshot;
            if (std::filesystem::exists(snapshot.path)) {
                if (system->tryRestoreSnapshot(snapshot.path)) {
                    inform("resuming from snapshot '", snapshot.path,
                           "'");
                } else {
                    // A rejected restore may leave components partially
                    // loaded (the documented contract): discard and
                    // build a fresh system, then run from scratch.
                    system = buildSystem();
                }
            }
        }
        SimResult result = system->run(budget);
        if (result.resumedAtCycle != 0) {
            inform("resumed at global cycle ", result.resumedAtCycle,
                   " (iteration ", result.resumedAtIteration,
                   "), not from zero");
        }
        writeResults(argv[5], run, result);
        for (std::size_t core = 0; core < result.cores.size(); ++core) {
            std::printf("core %zu (%s): %llu cycles, PE util %.2f%%\n",
                        core, run.coreLabels[core].c_str(),
                        static_cast<unsigned long long>(
                            result.cores[core].localCycles),
                        100.0 * result.cores[core].peUtilization);
        }
        return 0;
    } catch (const SimulationError &error) {
        if (error.kind() == SimErrorKind::Cancelled &&
            stopSignalRaised()) {
            std::fprintf(stderr, "interrupted: %s\n", error.what());
            return kInterruptedExitCode;
        }
        // Recoverable run failure (deadlock / budget / timeout): a
        // distinct exit code so sweep scripts can tell it from a
        // configuration mistake.
        std::fprintf(stderr, "simulation error (%s): %s\n",
                     toString(error.kind()), error.what());
        return 3;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "fatal: %s\n", error.what());
        return 1;
    }
}

} // namespace mnpu
