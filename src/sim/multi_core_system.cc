#include "sim/multi_core_system.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>

#include "common/errors.hh"
#include "common/logging.hh"
#include "mem/tiered_backend.hh"
#include "mem/xbar.hh"

namespace mnpu
{

const char *
toString(SharingLevel level)
{
    switch (level) {
      case SharingLevel::Ideal:
        return "Ideal";
      case SharingLevel::Static:
        return "Static";
      case SharingLevel::ShareD:
        return "+D";
      case SharingLevel::ShareDW:
        return "+DW";
      case SharingLevel::ShareDWT:
        return "+DWT";
    }
    return "?";
}

namespace
{

/**
 * Transactions one iteration of @p trace pushes through DRAM: the
 * same bus-aligned chunking the core's DMA cursor applies to every
 * access range (alignDown(start) .. alignUp(end) in busBytes steps).
 */
std::uint64_t
expectedDataTransactions(const TraceGenerator &trace)
{
    const Addr bus = trace.arch().busBytes;
    std::uint64_t count = 0;
    for (const auto &tile : trace.tiles()) {
        for (const auto &range : tile.reads)
            count += (alignUp(range.vaddr + range.bytes, bus) -
                      alignDown(range.vaddr, bus)) /
                     bus;
        for (const auto &range : tile.writes)
            count += (alignUp(range.vaddr + range.bytes, bus) -
                      alignDown(range.vaddr, bus)) /
                     bus;
    }
    return count;
}

} // namespace

MultiCoreSystem::MultiCoreSystem(const SystemConfig &config,
                                 std::vector<CoreBinding> bindings)
    : config_(config), bindings_(std::move(bindings))
{
    const auto num_cores = static_cast<std::uint32_t>(bindings_.size());
    if (num_cores == 0)
        fatal("system needs at least one core");
    for (const auto &binding : bindings_) {
        if (!binding.trace)
            fatal("core binding without a trace");
    }
    if (config.level == SharingLevel::Ideal) {
        if (num_cores != 1)
            fatal("Ideal runs take exactly one core (it monopolizes the ",
                  "whole resource budget)");
        if (config.idealResourceMultiplier == 0)
            fatal("idealResourceMultiplier must be >= 1");
    } else if (config.idealResourceMultiplier != 1) {
        fatal("idealResourceMultiplier only applies to Ideal runs");
    }

    const std::uint32_t total_npus =
        config.level == SharingLevel::Ideal
            ? config.idealResourceMultiplier
            : num_cores;
    const NpuMemConfig &mem = config.mem;

    // --- Off-chip memory: the structure is always shared (as in
    // mNPUsim); Static and the Fig. 9 ratio sweeps cap per-core
    // bandwidth instead. The backend kind (DRAM, PCM, tiered) and an
    // optional XBar fabric come from the mem config / process default.
    const std::uint32_t channels = mem.channelsPerNpu * total_npus;
    backendKind_ = effectiveMemBackendKind(mem.backend);
    mem_ = makeMemoryBackend(backendKind_, mem.timing, channels,
                             num_cores, mem.dramQueueDepth, mem.pcm,
                             mem.fabric);
    SharingPolicy policy; // channels default to ShareAll
    if (config.dramBandwidthShares)
        policy.bandwidthShares = *config.dramBandwidthShares;
    else if (config.level == SharingLevel::Static)
        policy.bandwidthShares = std::vector<std::uint32_t>(num_cores, 1);
    mem_->applyPolicy(policy);
    if (config.telemetryWindow != 0)
        mem_->enableTelemetry(config.telemetryWindow);

    // --- Paging: one flat physical pool sized to the device budget. ---
    std::uint64_t capacity = mem.dramCapacityPerNpu * total_npus;
    std::uint64_t device_capacity =
        mem.timing.channelCapacityBytes() * channels;
    capacity = std::min(capacity, device_capacity);
    allocator_ =
        std::make_unique<PageAllocator>(0, capacity, mem.pageBytes);
    pageTable_ = std::make_unique<PageTableModel>(*allocator_);

    // --- MMU: TLB/PTW budgets scale with the NPU count. ---
    MmuConfig mmu_config;
    mmu_config.numCores = num_cores;
    mmu_config.tlbEntriesPerCore =
        mem.tlbEntriesPerNpu *
        (config.level == SharingLevel::Ideal
             ? config.idealResourceMultiplier
             : 1);
    mmu_config.tlbWays = mem.tlbWays;
    mmu_config.sharedTlb = config.level == SharingLevel::ShareDWT;
    mmu_config.totalPtws = mem.ptwPerNpu * total_npus;
    mmu_config.translationEnabled = mem.translationEnabled;
    if (config.ptwMin || config.ptwMax) {
        if (!config.ptwMin || !config.ptwMax)
            fatal("bounded PTW sharing needs both ptwMin and ptwMax");
        mmu_config.ptwMode = PtwPartitionMode::Bounded;
        mmu_config.ptwMin = *config.ptwMin;
        mmu_config.ptwMax = *config.ptwMax;
    } else if (config.ptwStealing) {
        mmu_config.ptwMode = PtwPartitionMode::Stealing;
        if (config.ptwQuota)
            mmu_config.ptwQuota = *config.ptwQuota;
    } else if (config.ptwQuota) {
        mmu_config.ptwMode = PtwPartitionMode::Static;
        mmu_config.ptwQuota = *config.ptwQuota;
    } else if (config.level == SharingLevel::ShareDW ||
               config.level == SharingLevel::ShareDWT ||
               config.level == SharingLevel::Ideal) {
        mmu_config.ptwMode = PtwPartitionMode::Shared;
    } else {
        mmu_config.ptwMode = PtwPartitionMode::Static;
    }
    mmu_ = std::make_unique<Mmu>(mmu_config, *allocator_, *pageTable_,
                                 *mem_);
    if (!config.requestLogDir.empty()) {
        mem_->enableRequestLog(config.requestLogDir);
        mmu_->enableRequestLog(config.requestLogDir);
    }

    // --- Cores and clock domains. ---
    for (CoreId id = 0; id < num_cores; ++id) {
        const CoreBinding &binding = bindings_[id];
        CoreConfig core_config;
        core_config.id = id;
        core_config.asid = id;
        core_config.startCycleGlobal = binding.startCycleGlobal;
        core_config.iterations = binding.iterations;
        ClockDomain clock(binding.trace->arch().freqMhz,
                          mem.timing.clockMhz);
        cores_.push_back(std::make_unique<NpuCore>(
            core_config, *binding.trace, *mmu_, *mem_, clock));
        if (config.requestTraceWindow != 0)
            cores_.back()->enableRequestTrace(config.requestTraceWindow);
    }

    // --- Integrity layer (opt-in): lifecycle tracking at >= Cheap,
    // protocol + translation re-checks at Full, fault injection when a
    // plan is armed. ---
    checkLevel_ = effectiveCheckLevel(config.checkLevel);
    scheduler_ = effectiveSchedulerKind(config.scheduler);
    // Worker-process drill sites (crash/hog/snapshot) fire outside the
    // simulation; arming the in-sim injector for them would disable
    // event gating and the fast-fidelity resolution for a run whose
    // results must stay bit-identical to an undrilled one.
    if (config.faultPlan.site != FaultSite::None &&
        !firesInWorkerProcess(config.faultPlan.site)) {
        injector_ = std::make_unique<FaultInjector>(config.faultPlan);
    }

    // --- Fidelity (resolved after the fault plan so the fallback sees
    // it). Fast trades per-transaction modeling for an analytic tile
    // path, which the integrity trackers cannot audit — any check
    // level (even Cheap's transaction-count audit) or an armed
    // injector forces exact. ---
    fidelity_ = resolvedFidelityKind(config.fidelity,
                                     injector_ != nullptr, checkLevel_);
    if (fidelity_ == FidelityKind::Exact &&
        effectiveFidelityKind(config.fidelity) == FidelityKind::Fast) {
        inform("fast fidelity requested but ",
               injector_ ? "a fault injector is armed"
                         : "integrity checking is on",
               "; running exact");
    }
    if (fidelity_ == FidelityKind::Fast &&
        backendKind_ == MemBackendKind::Tiered) {
        // The analytic tile path models one bandwidth pool; a tiered
        // backend's split hot/cold service rates have no closed form.
        inform("fast fidelity requested but the tiered memory backend "
               "supports exact only; running exact");
        fidelity_ = FidelityKind::Exact;
    }
    if (fidelity_ == FidelityKind::Fast) {
        for (auto &core : cores_)
            core->setFastMode(true);
    }
    if (checkLevel_ != CheckLevel::Off) {
        tracker_ = std::make_unique<RequestLifecycleTracker>(
            capacity, mem.timing.transactionBytes(), num_cores);
        for (CoreId id = 0; id < num_cores; ++id) {
            tracker_->setExpectedDataTransactions(
                id, expectedDataTransactions(*bindings_[id].trace) *
                        bindings_[id].iterations);
        }
    }
    if (checkLevel_ == CheckLevel::Full) {
        mem_->enableProtocolChecks();
        mmu_->enableTranslationCheck();
    }
    mem_->setIntegrity(tracker_.get(), injector_.get());
    if (injector_) {
        mmu_->setFaultInjector(injector_.get());
        for (auto &core : cores_)
            core->setFaultInjector(injector_.get());
    }

    // --- Completion routing. ---
    mem_->setCallback([this](const DramRequest &request, Cycle at) {
        if (Mmu::isWalkTag(request.tag))
            mmu_->onDramCompletion(request.tag, at);
        else
            cores_[request.core]->onDramCompletion(request.tag, at);
    });
    mmu_->setCallback([this](std::uint64_t tag, Addr paddr, Cycle at) {
        cores_[NpuCore::coreOfTag(tag)]->onTranslation(tag, paddr, at);
    });

    // --- Observability layer (passive; see DESIGN.md §9): trace sink
    // attachment, windowed series, and the metrics registry. ---
    setupObservability();
    buildMetricsRegistry();
}

const DramSystem &
MultiCoreSystem::dram() const
{
    const MemoryBackend *backend = mem_.get();
    if (const auto *xbar = dynamic_cast<const XBar *>(backend))
        backend = &xbar->downstream();
    if (const auto *tiered = dynamic_cast<const TieredBackend *>(backend))
        backend = &tiered->hotTier();
    const auto *dram = dynamic_cast<const DramSystem *>(backend);
    if (!dram) {
        fatal("MultiCoreSystem::dram(): the '", backend->kindName(),
              "' backend is not DRAM-based; use memory() instead");
    }
    return *dram;
}

void
MultiCoreSystem::setupObservability()
{
    const ObservabilityConfig &obs = config_.obs;
    const auto num_cores = static_cast<CoreId>(cores_.size());
    if (obs.metricsEnabled()) {
        // The exported series ride on the same tracers Fig. 12 uses;
        // enable them on the observer's window when the run didn't
        // already ask for telemetry itself. Tracers only record — they
        // never feed back into scheduling — so this cannot change
        // simulated behavior.
        if (!mem_->telemetryEnabled())
            mem_->enableTelemetry(obs.metricsWindow);
        for (auto &core : cores_) {
            if (!core->requestTraceEnabled())
                core->enableRequestTrace(obs.metricsWindow);
        }
    }
    if (!obs.traceEnabled())
        return;
    traceSink_ = std::make_unique<TraceEventSink>(obs.traceLevel);
    for (CoreId id = 0; id < num_cores; ++id) {
        traceSink_->processName(
            id, "core" + std::to_string(id) + " (" +
                    bindings_[id].trace->networkName() + ")");
        traceSink_->threadName(id, 0, "compute");
    }
    traceSink_->processName(TraceEventSink::kDramPid, "dram");
    if (traceSink_->wants(TraceLevel::Requests)) {
        traceSink_->processName(TraceEventSink::kMmuPid, "mmu");
        for (CoreId id = 0; id < num_cores; ++id) {
            const std::string who = "core" + std::to_string(id);
            traceSink_->threadName(TraceEventSink::kDramPid, id,
                                   who + " requests");
            traceSink_->threadName(TraceEventSink::kMmuPid, id,
                                   who + " walks");
        }
        for (std::uint32_t c = 0; c < mem_->numChannels(); ++c) {
            traceSink_->threadName(
                TraceEventSink::kDramPid,
                TraceEventSink::kChannelTidBase + c,
                "ch" + std::to_string(c) + " commands");
        }
    }
    for (auto &core : cores_)
        core->setTraceSink(traceSink_.get());
    mem_->setTraceSink(traceSink_.get());
    mmu_->setTraceSink(traceSink_.get());
}

void
MultiCoreSystem::buildMetricsRegistry()
{
    // Scalars first, in a stable order (DESIGN.md §9 schema). All
    // readers are pure observations of component state; they run only
    // at snapshot time, after the simulation has finished.
    registry_.addCounter("sim.global_cycles",
                         [this] { return finalGlobalCycles_; });
    registry_.addCounter("sched.loop_iterations",
                         [this] { return finalLoopIterations_; });
    for (CoreId id = 0; id < cores_.size(); ++id) {
        const std::string prefix = "core" + std::to_string(id) + ".";
        const NpuCore *core = cores_[id].get();
        const MemoryBackend *dram = mem_.get();
        const Mmu *mmu = mmu_.get();
        registry_.addCounter(prefix + "local_cycles",
                             [core] { return core->totalLocalCycles(); });
        registry_.addCounter(prefix + "finished_at_global", [core] {
            return core->finishedAtGlobal();
        });
        registry_.addGauge(prefix + "pe_utilization",
                           [core] { return core->peUtilization(); });
        registry_.addCounter(prefix + "traffic_bytes",
                             [dram, id] { return dram->coreBytes(id); });
        registry_.addCounter(prefix + "walk_bytes", [dram, id] {
            return dram->coreWalkBytes(id);
        });
        // Mirrors CoreResult: with a shared TLB (+DWT) every core reads
        // the one shared instance, and walks is the whole-MMU total.
        registry_.addCounter(prefix + "tlb.hits", [mmu, id] {
            return mmu->tlbForCore(id).hits();
        });
        registry_.addCounter(prefix + "tlb.misses", [mmu, id] {
            return mmu->tlbForCore(id).misses();
        });
        registry_.addCounter(prefix + "walks", [mmu] {
            return mmu->stats().counterValue("walks");
        });
        registry_.addGroup(cores_[id]->stats());
    }
    registry_.addGroup(mmu_->stats());
    for (const char *stat :
         {"reads", "writes", "bytes", "row_hits", "row_misses",
          "activates", "refreshes"}) {
        const MemoryBackend *dram = mem_.get();
        std::string name = stat;
        registry_.addCounter("dram." + name, [dram, name] {
            return dram->totalCounter(name);
        });
    }
    registry_.addGauge("dram.energy_pj", [this] {
        return mem_->totalEnergyPj(finalGlobalCycles_);
    });
    // Backend-owned groups: per-channel stats for DRAM-like backends,
    // plus the PCM cache and fabric groups when those layers exist.
    mem_->visitStatGroups(
        [this](const StatGroup &group) { registry_.addGroup(group); });

    // Windowed series, present only when the tracers are enabled (the
    // run's own telemetryWindow/requestTraceWindow, or metricsOutPath).
    if (mem_->telemetryEnabled()) {
        const MemoryBackend *dram = mem_.get();
        const Cycle window = config_.telemetryWindow != 0
                                 ? config_.telemetryWindow
                                 : config_.obs.metricsWindow;
        registry_.addSeries("dram.total.bytes", window, [dram] {
            return dram->totalTelemetry().windows();
        });
        for (CoreId id = 0; id < cores_.size(); ++id) {
            registry_.addSeries(
                "dram.core" + std::to_string(id) + ".bytes", window,
                [dram, id] { return dram->coreTelemetry(id).windows(); });
        }
    }
    for (CoreId id = 0; id < cores_.size(); ++id) {
        const NpuCore *core = cores_[id].get();
        if (!core->requestTraceEnabled())
            continue;
        const Cycle window = config_.requestTraceWindow != 0
                                 ? config_.requestTraceWindow
                                 : config_.obs.metricsWindow;
        registry_.addSeries("core" + std::to_string(id) + ".requests",
                            window, [core] {
                                return core->requestTrace().windows();
                            });
    }
}

bool
MultiCoreSystem::allDone() const
{
    return std::all_of(cores_.begin(), cores_.end(),
                       [](const auto &core) { return core->done(); });
}

SimResult
MultiCoreSystem::run(const RunBudget &budget)
{
    mnpu_assert(!ran_, "MultiCoreSystem::run() called twice");
    ran_ = true;

    using WallClock = std::chrono::steady_clock;
    const bool has_deadline = budget.wallClockSeconds > 0;
    const WallClock::time_point deadline =
        has_deadline ? WallClock::now() +
                           std::chrono::duration_cast<WallClock::duration>(
                               std::chrono::duration<double>(
                                   budget.wallClockSeconds))
                     : WallClock::time_point{};
    Cycle max_cycles = config_.maxGlobalCycles;
    if (budget.maxGlobalCycles != 0) {
        max_cycles = max_cycles == 0
                         ? budget.maxGlobalCycles
                         : std::min(max_cycles, budget.maxGlobalCycles);
    }

    Cycle now = 0;
    std::uint64_t iteration = 0;
    std::uint64_t serviceRound = 0;
    WatchdogSampler sampler;
    if (restored_) {
        // Resume exactly where the snapshot was taken: the tuple was
        // captured at a loop boundary (ticks at `now` still pending,
        // `iteration` loop bodies completed), which is precisely the
        // state at the top of the while loop below.
        now = resumeNow_;
        iteration = resumeIteration_;
        serviceRound = resumeServiceRound_;
        sampler = resumeSampler_;
    }

    // --- In-flight snapshot policy (tentpole of DESIGN.md §12).
    // Snapshot writes are passive — pure const reads — so enabling
    // them cannot perturb the run. The persisted tuple is always a
    // loop boundary; see the restore block above.
    const SnapshotPolicy &snap = budget.snapshot;
    std::uint64_t snapshotsPersisted = 0;
    Cycle snapNextCycle =
        snap.enabled() && snap.everyCycles != 0 ? now + snap.everyCycles
                                                : kCycleNever;
    using WallDuration = std::chrono::duration<double>;
    WallClock::time_point snapLastWall = WallClock::now();
    WallClock::time_point heartbeatLast = snapLastWall;
    auto persistSnapshot = [&]() {
        StateWriter out;
        saveState(out, now, iteration, serviceRound, sampler);
        if (!writeSnapshotFile(snap.path, out.bytes()))
            return;
        ++snapshotsPersisted;
        // Drill hooks (snapshot-kill / snapshot-corrupt fault sites,
        // process-isolated workers only): die right after the Nth
        // snapshot persists so the supervisor's retry must resume from
        // it — after corrupting it at rest first for the corrupt
        // drill, so the retry must reject it by checksum instead.
        if (snap.corruptNth != 0 && snapshotsPersisted == snap.corruptNth) {
            corruptSnapshotAtRest(snap.path);
            ::raise(SIGKILL);
        }
        if (snap.killNth != 0 && snapshotsPersisted == snap.killNth)
            ::raise(SIGKILL);
    };

    const bool event_mode = scheduler_ == SchedulerKind::Event;
    // Per-component gating (event scheduler only): a component whose
    // cached sharp bound is in the future and that received no input
    // since its last tick is guaranteed to no-op, so its tick is
    // skipped even at visited cycles. Inputs that invalidate a cached
    // bound raise poke flags (completions, accepted translations,
    // enqueues); conditions that can unblock a refused enqueue — a
    // freed channel-queue slot or a token-bucket re-crossing — raise
    // the DRAM retry signal. Fault drills keep tick-everything
    // semantics: an armed injector fires on un-modeled schedules.
    const bool gated = event_mode && injector_ == nullptr;
    mem_->setEventDriven(gated);
    const std::size_t n = cores_.size();
    Cycle mmuNext = 0;                //!< cached MMU bound (gated mode)
    std::vector<Cycle> coreNext(n, 0); //!< cached core bounds (gated)
    while (!allDone()) {
        // Watchdog: wall clock and the stop token are sampled every
        // 256 iterations (including the first) so a livelocked run
        // still exits promptly without a syscall per event — and also
        // after any long skipped span, so the event scheduler cannot
        // coast past a cancellation between samples.
        if (sampler.shouldSample(iteration, now)) {
            if (budget.heartbeat) {
                // Liveness heartbeat for the process-pool supervisor,
                // rate-limited so busy loops don't spam it.
                const WallClock::time_point wall = WallClock::now();
                if (WallDuration(wall - heartbeatLast).count() >= 0.5) {
                    budget.heartbeat();
                    heartbeatLast = wall;
                }
            }
            if (budget.stopToken &&
                budget.stopToken->load(std::memory_order_relaxed)) {
                // First-signal durability: persist the in-flight state
                // before surfacing the cancellation, so a SIGTERM'd
                // run can later resume instead of restarting.
                if (snap.enabled() && snap.onCancel)
                    persistSnapshot();
                throw SimulationError(
                    SimErrorKind::Cancelled,
                    detail::concat("simulation cancelled at global cycle ",
                                   now));
            }
            if (has_deadline && WallClock::now() >= deadline) {
                if (snap.enabled() && snap.onCancel)
                    persistSnapshot();
                throw SimulationError(
                    SimErrorKind::WallClockTimeout,
                    detail::concat("simulation exceeded its wall-clock "
                                   "budget of ",
                                   budget.wallClockSeconds,
                                   " s at global cycle ", now));
            }
            // A dropped DRAM response leaves cores waiting while the
            // memory system drains idle — a livelock no deadlock check
            // sees. The lifecycle tracker makes it loud.
            if (tracker_ && !mem_->busy() && tracker_->outstanding() != 0)
                throw tracker_->lostResponseError(now);
        }
        ++iteration;

        // Rotate the core service order so no core gets a standing
        // first-issuer advantage into the shared MMU/DRAM queues.
        // Rotate on rounds where some core actually did work, not on
        // the loop iteration count: no-op iterations are exactly the
        // cycles the event scheduler skips, so counting them would
        // make the rotation — and therefore arbitration — depend on
        // which scheduler is running. For the same reason a gated-out
        // (provably no-op) tick and an executed no-op tick contribute
        // identically: neither counts as work.
        const std::size_t first = static_cast<std::size_t>(serviceRound % n);
        bool any_work = false;
        if (gated) {
            mem_->tick(now); // internally ticks only due channels
            const bool retry = mem_->consumeRetrySignal();
            bool mmu_freed = false;
            if (mmuNext <= now || mmu_->poked() ||
                (retry && mmu_->hasBlockedWalks())) {
                mmu_->tick(now);
                mmu_freed = mmu_->consumePendingDrained();
                mmuNext = mmu_->nextEventCycle(now);
            }
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t idx = (first + i) % n;
                NpuCore &core = *cores_[idx];
                if (coreNext[idx] <= now || core.poked() ||
                    (retry && core.dramBlocked()) ||
                    (mmu_freed && core.xlatBlocked())) {
                    any_work |= core.tick(now);
                    coreNext[idx] = core.nextEventCycle(now);
                }
            }
        } else {
            mem_->tick(now);
            mmu_->tick(now);
            for (std::size_t i = 0; i < n; ++i)
                any_work |= cores_[(first + i) % n]->tick(now);
        }
        if (any_work)
            ++serviceRound;

        if (allDone())
            break;

        // The cycle scheduler uses the conservative per-cycle bounds
        // (visit every cycle anything might happen); the event
        // scheduler uses the sharp bounds and jumps straight to the
        // earliest one. Both run the identical tick code above at
        // every visited cycle, so proving the sharp bounds never
        // overshoot proves the two schedulers bit-identical.
        Cycle next;
        if (gated) {
            // Cached bounds are valid for every component that was not
            // ticked this cycle (unchanged state) and fresh for every
            // component that was. Inputs pushed during the core phase
            // (translation requests, DRAM enqueues) postdate the
            // caches; their poke flags force a visit at now + 1.
            next = mem_->nextEventCycle(now);
            next = std::min(next, mmu_->poked() ? now + 1 : mmuNext);
            for (std::size_t i = 0; i < n; ++i)
                next = std::min(next, coreNext[i]);
        } else if (event_mode) {
            next = mem_->nextEventCycle(now);
            next = std::min(next, mmu_->nextEventCycle(now));
            for (auto &core : cores_)
                next = std::min(next, core->nextEventCycle(now));
        } else {
            next = mem_->nextTickCycle(now);
            next = std::min(next, mmu_->nextTickCycle(now));
            for (auto &core : cores_)
                next = std::min(next, core->nextTickCycle(now));
        }
        if (next == kCycleNever) {
            // No component will ever act again. Distinguish a dropped
            // response (a bug the integrity layer names precisely) from
            // a genuine resource deadlock before reporting the latter.
            if (tracker_ && !mem_->busy() && tracker_->outstanding() != 0)
                throw tracker_->lostResponseError(now);
            // Not a panic: a deadlocked *mix* is a per-run failure the
            // sweep layer can record and move past, not a reason to
            // take down the whole campaign.
            throw SimulationError(
                SimErrorKind::Deadlock,
                detail::concat("simulation deadlock at global cycle ",
                               now, " with unfinished cores"));
        }
        mnpu_assert(next > now, "time must advance");
        now = next;
        if (max_cycles != 0 && now > max_cycles) {
            // No snapshot here: a blown cycle budget would blow again
            // immediately on resume, so persisting is pointless.
            throw SimulationError(
                SimErrorKind::CycleBudget,
                detail::concat("simulation exceeded its cycle budget (",
                               max_cycles, " global cycles)"));
        }
        if (snap.enabled()) {
            // Periodic cadence, checked at the loop boundary so the
            // persisted tuple always matches the restore contract. The
            // wall cadence reads the clock only every 1024 iterations.
            if (now >= snapNextCycle) {
                persistSnapshot();
                snapNextCycle = now + snap.everyCycles;
                snapLastWall = WallClock::now();
            } else if (snap.everySeconds > 0 && (iteration & 1023) == 0) {
                const WallClock::time_point wall = WallClock::now();
                if (WallDuration(wall - snapLastWall).count() >=
                    snap.everySeconds) {
                    persistSnapshot();
                    snapLastWall = WallClock::now();
                }
            }
        }
    }

    // End-of-run leak audit: reconcile completed transaction counts
    // against the DRAM byte counters, the SW trace totals, and the
    // MMU's issued walk steps.
    if (tracker_) {
        std::vector<std::uint64_t> core_bytes, core_walk_bytes, walk_steps;
        for (CoreId id = 0; id < cores_.size(); ++id) {
            core_bytes.push_back(mem_->coreBytes(id));
            core_walk_bytes.push_back(mem_->coreWalkBytes(id));
            walk_steps.push_back(mmu_->walkStepsIssued(id));
        }
        tracker_->finalAudit(core_bytes, core_walk_bytes, walk_steps);
    }

    mem_->finalizeTelemetry();
    mem_->flushRequestLogs();
    mmu_->flushRequestLogs();
    for (auto &core : cores_)
        core->finalizeRequestTrace();

    // The run completed: its snapshot (if any) is spent. Removing it
    // keeps a later --resume of the same job from restoring a stale
    // mid-run state after the checkpoint already has the final record.
    if (snap.enabled() && snap.removeOnSuccess)
        std::remove(snap.path.c_str());

    SimResult result;
    result.loopIterations = iteration;
    if (restored_) {
        result.resumedAtCycle = resumeNow_;
        result.resumedAtIteration = resumeIteration_;
    }
    result.globalCycles = 0;
    for (CoreId id = 0; id < cores_.size(); ++id) {
        const NpuCore &core = *cores_[id];
        CoreResult core_result;
        core_result.workloadName = bindings_[id].trace->networkName();
        core_result.localCycles = core.totalLocalCycles();
        core_result.finishedAtGlobal = core.finishedAtGlobal();
        core_result.peUtilization = core.peUtilization();
        core_result.trafficBytes = mem_->coreBytes(id);
        core_result.walkBytes = mem_->coreWalkBytes(id);
        const Tlb &tlb = mmu_->tlbForCore(id);
        core_result.tlbHits = tlb.hits();
        core_result.tlbMisses = tlb.misses();
        core_result.walks = mmu_->stats().counterValue("walks");
        core_result.layerFinishLocal = core.layerFinishLocal();
        result.globalCycles =
            std::max(result.globalCycles, core.finishedAtGlobal());
        result.cores.push_back(std::move(core_result));
    }
    result.dramEnergyPj = mem_->totalEnergyPj(result.globalCycles);
    result.dramRowHits = mem_->totalCounter("row_hits");
    result.dramRowMisses = mem_->totalCounter("row_misses");

    // Materialize the consolidated telemetry view and write any
    // requested observability artifacts. This happens strictly after
    // the simulation finished, so none of it can perturb timing.
    finalGlobalCycles_ = result.globalCycles;
    finalLoopIterations_ = result.loopIterations;
    result.telemetry = registry_.snapshot();
    if (traceSink_)
        traceSink_->writeFile(config_.obs.traceOutPath);
    if (config_.obs.metricsEnabled())
        result.telemetry.writeFile(config_.obs.metricsOutPath);
    return result;
}

namespace
{

void
mixFnv(std::uint64_t &hash, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (8 * i)) & 0xff;
        hash *= 1099511628211ULL;
    }
}

void
mixFnvStr(std::uint64_t &hash, const std::string &text)
{
    mixFnv(hash, text.size());
    for (unsigned char ch : text) {
        hash ^= ch;
        hash *= 1099511628211ULL;
    }
}

} // namespace

std::uint64_t
MultiCoreSystem::configFingerprint() const
{
    // Everything that shapes the serialized component graph or the
    // simulated schedule. Restoring under a different fingerprint
    // would mis-deserialize or silently diverge, so the loader rejects
    // it (discard + from-scratch, never abort).
    std::uint64_t hash = 14695981039346656037ULL;
    mixFnv(hash, static_cast<std::uint64_t>(config_.level));
    mixFnv(hash, config_.idealResourceMultiplier);
    mixFnv(hash, cores_.size());
    mixFnv(hash, mem_->numChannels());
    mixFnv(hash, static_cast<std::uint64_t>(backendKind_));
    if (backendKind_ != MemBackendKind::Dram) {
        mixFnv(hash, config_.mem.pcm.cacheLines);
        mixFnv(hash, config_.mem.pcm.cacheHitLatency);
        mixFnv(hash, config_.mem.pcm.writeCommitCycles);
        mixFnv(hash, config_.mem.pcm.hitQueueDepth);
    }
    mixFnv(hash, config_.mem.fabric.enabled ? 1 : 0);
    if (config_.mem.fabric.enabled) {
        mixFnv(hash, config_.mem.fabric.ports);
        mixFnv(hash, config_.mem.fabric.queueDepth);
        mixFnv(hash, config_.mem.fabric.widthBytes);
        mixFnv(hash, config_.mem.fabric.latencyCycles);
    }
    mixFnv(hash, config_.mem.dramQueueDepth);
    mixFnv(hash, config_.mem.pageBytes);
    mixFnv(hash, config_.mem.dramCapacityPerNpu);
    mixFnv(hash, config_.mem.tlbEntriesPerNpu);
    mixFnv(hash, config_.mem.tlbWays);
    mixFnv(hash, config_.mem.ptwPerNpu);
    mixFnv(hash, config_.mem.translationEnabled ? 1 : 0);
    mixFnv(hash, static_cast<std::uint64_t>(checkLevel_));
    mixFnv(hash, static_cast<std::uint64_t>(scheduler_));
    mixFnv(hash, static_cast<std::uint64_t>(fidelity_));
    mixFnv(hash, config_.telemetryWindow);
    mixFnv(hash, config_.requestTraceWindow);
    mixFnv(hash, mem_->telemetryEnabled() ? 1 : 0);
    mixFnv(hash, config_.maxGlobalCycles);
    auto mix_opt_vec = [&hash](
        const std::optional<std::vector<std::uint32_t>> &values) {
        mixFnv(hash, values ? values->size() + 1 : 0);
        if (values) {
            for (std::uint32_t value : *values)
                mixFnv(hash, value);
        }
    };
    mix_opt_vec(config_.dramBandwidthShares);
    mix_opt_vec(config_.ptwQuota);
    mix_opt_vec(config_.ptwMin);
    mix_opt_vec(config_.ptwMax);
    mixFnv(hash, config_.ptwStealing ? 1 : 0);
    mixFnv(hash, config_.faultPlan.site != FaultSite::None &&
                         !firesInWorkerProcess(config_.faultPlan.site)
                     ? static_cast<std::uint64_t>(config_.faultPlan.site)
                     : 0);
    for (const CoreBinding &binding : bindings_) {
        mixFnvStr(hash, binding.trace->networkName());
        mixFnv(hash, binding.startCycleGlobal);
        mixFnv(hash, binding.iterations);
        mixFnv(hash, binding.trace->tiles().size());
        mixFnv(hash, binding.trace->arch().freqMhz);
    }
    return hash;
}

void
MultiCoreSystem::saveState(StateWriter &out, Cycle now,
                           std::uint64_t iteration,
                           std::uint64_t service_round,
                           const WatchdogSampler &sampler) const
{
    out.u64(configFingerprint());
    out.section("RUNL");
    out.u64(now);
    out.u64(iteration);
    out.u64(service_round);
    sampler.saveState(out);
    out.b(injector_ != nullptr);
    if (injector_)
        injector_->saveState(out);
    out.b(tracker_ != nullptr);
    if (tracker_)
        tracker_->saveState(out);
    allocator_->saveState(out);
    pageTable_->saveState(out);
    mmu_->saveState(out);
    mem_->saveState(out);
    out.u64(cores_.size());
    for (const auto &core : cores_)
        core->saveState(out);
    out.section("DONE");
}

bool
MultiCoreSystem::tryRestoreSnapshot(const std::string &path)
{
    mnpu_assert(!ran_, "tryRestoreSnapshot after run()");
    std::optional<std::string> payload = readSnapshotFile(path);
    if (!payload)
        return false; // missing, or envelope rejected (already warned)
    try {
        StateReader in(std::move(*payload));
        if (in.u64() != configFingerprint()) {
            warn("snapshot '", path,
                 "' was written by a differently configured system; "
                 "ignoring it and starting from scratch");
            return false;
        }
        in.section("RUNL");
        resumeNow_ = in.u64();
        resumeIteration_ = in.u64();
        resumeServiceRound_ = in.u64();
        resumeSampler_.loadState(in);
        if (in.b() != (injector_ != nullptr))
            throw SnapshotError("fault-injector enablement mismatch");
        if (injector_)
            injector_->loadState(in);
        if (in.b() != (tracker_ != nullptr))
            throw SnapshotError("lifecycle-tracker enablement mismatch");
        if (tracker_)
            tracker_->loadState(in);
        allocator_->loadState(in);
        pageTable_->loadState(in);
        mmu_->loadState(in);
        mem_->loadState(in);
        if (in.u64() != cores_.size())
            throw SnapshotError("core count mismatch");
        for (auto &core : cores_)
            core->loadState(in);
        in.section("DONE");
        if (!in.atEnd())
            throw SnapshotError("trailing bytes after the final section");
    } catch (const SnapshotError &error) {
        // Should be unreachable once the fingerprint matched (the
        // checksum already vouched for the payload bytes); honor the
        // never-abort contract anyway. Components may be partially
        // restored now — the caller must discard this system.
        warn("snapshot '", path, "' rejected mid-restore (", error.what(),
             "); discarding it");
        return false;
    }
    restored_ = true;
    return true;
}

TelemetrySnapshot
telemetryFromResult(const SimResult &result)
{
    MetricsRegistry registry;
    registry.addCounter("sim.global_cycles",
                        [&result] { return result.globalCycles; });
    for (std::size_t id = 0; id < result.cores.size(); ++id) {
        const std::string prefix = "core" + std::to_string(id) + ".";
        const CoreResult &core = result.cores[id];
        registry.addCounter(prefix + "local_cycles",
                            [&core] { return core.localCycles; });
        registry.addCounter(prefix + "finished_at_global",
                            [&core] { return core.finishedAtGlobal; });
        registry.addGauge(prefix + "pe_utilization",
                          [&core] { return core.peUtilization; });
        registry.addCounter(prefix + "traffic_bytes",
                            [&core] { return core.trafficBytes; });
        registry.addCounter(prefix + "walk_bytes",
                            [&core] { return core.walkBytes; });
        registry.addCounter(prefix + "tlb.hits",
                            [&core] { return core.tlbHits; });
        registry.addCounter(prefix + "tlb.misses",
                            [&core] { return core.tlbMisses; });
        registry.addCounter(prefix + "walks",
                            [&core] { return core.walks; });
    }
    registry.addCounter("dram.row_hits",
                        [&result] { return result.dramRowHits; });
    registry.addCounter("dram.row_misses",
                        [&result] { return result.dramRowMisses; });
    registry.addGauge("dram.energy_pj",
                      [&result] { return result.dramEnergyPj; });
    return registry.snapshot();
}

SimResult
runIdeal(std::shared_ptr<const TraceGenerator> trace,
         std::uint32_t resource_multiplier, const NpuMemConfig &mem)
{
    SystemConfig config;
    config.level = SharingLevel::Ideal;
    config.idealResourceMultiplier = resource_multiplier;
    config.mem = mem;
    std::vector<CoreBinding> bindings(1);
    bindings[0].trace = std::move(trace);
    MultiCoreSystem system(config, std::move(bindings));
    return system.run();
}

SimResult
runMix(SharingLevel level,
       std::vector<std::shared_ptr<const TraceGenerator>> traces,
       const NpuMemConfig &mem)
{
    SystemConfig config;
    config.level = level;
    config.mem = mem;
    std::vector<CoreBinding> bindings;
    bindings.reserve(traces.size());
    for (auto &trace : traces) {
        CoreBinding binding;
        binding.trace = std::move(trace);
        bindings.push_back(std::move(binding));
    }
    MultiCoreSystem system(config, std::move(bindings));
    return system.run();
}

} // namespace mnpu
