/**
 * @file
 * Whole-system configuration: the paper's sharing levels (§4.1.3) and
 * per-NPU memory-side resource budgets (Table 2), plus the partition-
 * ratio overrides used by the Fig. 9/13 sweeps.
 */

#ifndef MNPU_SIM_SYSTEM_CONFIG_HH
#define MNPU_SIM_SYSTEM_CONFIG_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/fault_injection.hh"
#include "common/fidelity.hh"
#include "common/integrity.hh"
#include "common/scheduler.hh"
#include "common/snapshot.hh"
#include "common/trace_events.hh"
#include "common/types.hh"
#include "dram/dram_timing.hh"
#include "mem/memory_backend.hh"
#include "serving/serving_config.hh"

namespace mnpu
{

/**
 * Cumulative sharing levels: Static partitions everything equally; +D
 * shares DRAM bandwidth; +DW also shares page-table walkers; +DWT also
 * shares the TLB. Ideal gives one core the whole multi-NPU resource
 * budget with no co-runner.
 */
enum class SharingLevel { Ideal, Static, ShareD, ShareDW, ShareDWT };

const char *toString(SharingLevel level);

/** Per-NPU memory-side budgets; totals scale with the core count. */
struct NpuMemConfig
{
    DramTiming timing = DramTiming::hbm2();
    std::uint32_t channelsPerNpu = 4;    //!< 4 x 32 GB/s = 128 GB/s
    std::uint64_t dramCapacityPerNpu = 4ULL << 30;
    std::uint32_t tlbEntriesPerNpu = 2048;
    std::uint32_t tlbWays = 8;
    std::uint32_t ptwPerNpu = 8;
    std::uint64_t pageBytes = 4096;
    std::uint32_t dramQueueDepth = 32;
    bool translationEnabled = true;

    /**
     * Off-chip backend kind. Unset defers to the process default
     * (--mem-backend) and then the MNPU_MEM_BACKEND environment
     * variable; see effectiveMemBackendKind(). The default (DRAM) is
     * the paper's HBM2 model and is excluded from the sweep checkpoint
     * key so historical checkpoints keep resuming; any other kind
     * feeds the key.
     */
    std::optional<MemBackendKind> backend;

    /** Slow-media knobs, used when the resolved backend is PCM/tiered. */
    PcmConfig pcm;

    /** Inter-core XBar fabric between the cores and the backend. */
    FabricConfig fabric;

    /** Table 2's cloud-scale configuration (the defaults). */
    static NpuMemConfig cloudNpu() { return NpuMemConfig{}; }
};

/**
 * Watchdog budget for one MultiCoreSystem::run(): every limit is
 * checked cooperatively inside the event loop and blowing one throws
 * SimulationError (common/errors.hh) instead of aborting, so a sweep
 * layer can contain a livelocked or runaway mix per job. Zero / null
 * fields are unlimited.
 */
struct RunBudget
{
    /** Global-cycle cap on top of SystemConfig::maxGlobalCycles. */
    Cycle maxGlobalCycles = 0;

    /** Wall-clock limit in seconds for this run (watchdog). */
    double wallClockSeconds = 0;

    /**
     * External cooperative stop token: when it becomes true the run
     * throws SimulationError(Cancelled) at the next loop check.
     */
    const std::atomic<bool> *stopToken = nullptr;

    bool unlimited() const
    {
        return maxGlobalCycles == 0 && wallClockSeconds <= 0 &&
               stopToken == nullptr;
    }

    // New members go at the end: RunBudget is aggregate-initialized
    // positionally in several call sites and tests.

    /**
     * Durable in-flight snapshot policy for this run (disabled when
     * the path is empty). Snapshot writes are passive — pure const
     * reads of simulator state — so a snapshotting run is
     * bit-identical to a non-snapshotting one; the cadence is
     * therefore excluded from the sweep checkpoint key.
     */
    SnapshotPolicy snapshot;

    /**
     * Liveness heartbeat, invoked from the run loop's watchdog samples
     * (rate-limited to roughly twice a second). Process-isolated sweep
     * workers use it to tell the supervisor "still computing" so a
     * worker busy fsyncing a large snapshot is not declared hung by
     * the lease deadline. Must be cheap and must not touch simulator
     * state.
     */
    std::function<void()> heartbeat;
};

struct SystemConfig
{
    SharingLevel level = SharingLevel::ShareDWT;
    NpuMemConfig mem;

    /**
     * Ideal runs give the single core this many NPUs' worth of every
     * shareable resource (e.g. 2 for the dual-core Ideal baseline).
     * Must be 1 unless level == Ideal.
     */
    std::uint32_t idealResourceMultiplier = 1;

    /**
     * Fig. 9: explicit static bandwidth shares (e.g. {1,7} splits the
     * shared DRAM's peak bandwidth 1:7 via per-core rate caps). The DRAM
     * structure itself stays shared, as in mNPUsim.
     */
    std::optional<std::vector<std::uint32_t>> dramBandwidthShares;

    /** Fig. 13: explicit per-core PTW quotas (static ratios). */
    std::optional<std::vector<std::uint32_t>> ptwQuota;

    /** Bounded PTW sharing (per-core min/max occupancy). */
    std::optional<std::vector<std::uint32_t>> ptwMin;
    std::optional<std::vector<std::uint32_t>> ptwMax;

    /**
     * DWS-style walker stealing: static quotas, but a core may exceed
     * its quota while every other core's walk queue is idle. Overrides
     * the level's default PTW mode.
     */
    bool ptwStealing = false;

    /** DRAM bandwidth telemetry window (0 = disabled), Fig. 12. */
    Cycle telemetryWindow = 0;

    /** Per-core DMA request-rate trace window (0 = disabled), Fig. 2b. */
    Cycle requestTraceWindow = 0;

    /**
     * Safety cap; throws SimulationError(CycleBudget) when exceeded
     * (0 = unlimited).
     */
    Cycle maxGlobalCycles = 0;

    /**
     * When non-empty, write §3.2.2 request logs (dram.log, dramreq.log,
     * tlb<i>.log, tlb<i>_ptw.log) into this directory.
     */
    std::string requestLogDir;

    /**
     * Integrity-layer level for this run. Unset defers to the process
     * default (--check) and then the MNPU_CHECK environment variable;
     * see effectiveCheckLevel(). Checkers are passive observers —
     * they never change simulated timing — so this field is excluded
     * from the sweep checkpoint key.
     */
    std::optional<CheckLevel> checkLevel;

    /**
     * Main-loop scheduler for this run. Unset defers to the process
     * default (--sched) and then the MNPU_SCHED environment variable;
     * see effectiveSchedulerKind(). Both schedulers are proven
     * bit-identical by the golden/differential suites, so — like
     * checkLevel — this field is excluded from the sweep checkpoint
     * key (sweepJobKey serializes fields explicitly; nothing to mask).
     */
    std::optional<SchedulerKind> scheduler;

    /**
     * Model fidelity for this run. Unset defers to the process
     * default (--fidelity) and then the MNPU_FIDELITY environment
     * variable; see effectiveFidelityKind(). Unlike checkLevel and
     * scheduler, fast fidelity is NOT passive — it changes simulated
     * cycle counts within a measured envelope — so when the run
     * resolves to fast (see resolvedFidelityKind()) it DOES feed the
     * sweep checkpoint key; exact stays excluded so existing
     * checkpoints keep resuming.
     */
    std::optional<FidelityKind> fidelity;

    /**
     * Deterministic fault to inject (integrity-layer drill). The
     * default plan (site None) injects nothing. Meant to be combined
     * with checkLevel >= Cheap so the perturbation is detected and
     * contained instead of silently corrupting metrics.
     */
    FaultPlan faultPlan;

    /**
     * Request-level serving mode (DESIGN.md §13). When engaged,
     * ExperimentContext::runMix dispatches the job to the serving
     * engine instead of a batch mix: the models vector then gives the
     * core count and per-core model, and the outcome carries a
     * ServingSummary. Every field of ServingConfig is simulation-
     * visible, so — unlike the passive knobs above — the whole struct
     * feeds the sweep checkpoint key when engaged (header-only
     * serving_config.hh keeps sim/ free of a serving link dependency).
     */
    std::optional<ServingConfig> serving;

    /**
     * Observability outputs (--trace-out / --metrics-out / --obs-level).
     * Like checkLevel and scheduler, observers are passive — a run
     * with tracing on is bit-identical to one with it off — so these
     * fields are excluded from the sweep checkpoint key. Environment
     * fallbacks (MNPU_TRACE/MNPU_METRICS) are resolved at CLI/bench
     * entry via observabilityFromEnv(), never here, so concurrent
     * sweep jobs cannot race on one output file.
     */
    ObservabilityConfig obs;
};

} // namespace mnpu

#endif // MNPU_SIM_SYSTEM_CONFIG_HH
