/**
 * @file
 * Configuration for the request-level LLM-serving frontend (DESIGN.md
 * §13): a seeded open-loop arrival process plus the request shape and
 * batching knobs the continuous-batching engine schedules with.
 *
 * Header-only on purpose: SystemConfig embeds an
 * std::optional<ServingConfig> so a serving job flows through
 * ExperimentContext::runMix / SweepRunner / the checkpoint layer
 * exactly like a batch mix, without sim/ linking against the serving
 * library.
 *
 * Determinism contract: every field here is simulation-visible — the
 * arrival process, request shapes, and admission order are all derived
 * from (seed, these fields) with no wall-clock or host-entropy input —
 * so every field feeds sweepJobKey() when serving is enabled.
 */

#ifndef MNPU_SERVING_SERVING_CONFIG_HH
#define MNPU_SERVING_SERVING_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mnpu
{

struct ServingConfig
{
    /** Seed for the arrival process and request-shape draws. */
    std::uint64_t seed = 1;

    /**
     * Open-loop Poisson arrival rate in requests per million global
     * cycles (the offered load axis of the goodput figure). Ignored
     * when an arrival trace is given.
     */
    double poissonRatePerMcycle = 50.0;

    /**
     * Inline arrival trace: one "arrival_cycle,prompt_tokens,
     * decode_tokens" line per request, '#' comments allowed. The CLI
     * reads --arrival trace:FILE into this field up front so a serving
     * job is self-contained (process-isolated sweep workers and
     * checkpoint keys never depend on an external file staying put).
     * Non-empty overrides the Poisson process.
     */
    std::string arrivalTrace;

    /** Number of requests the Poisson process generates. */
    std::uint32_t numRequests = 16;

    /**
     * Mean request shape for Poisson mode: per-request prompt/decode
     * lengths are drawn uniformly from [ceil(mean/2), mean] so a fixed
     * seed exercises ragged batches deterministically.
     */
    std::uint32_t meanPromptTokens = 24;
    std::uint32_t meanDecodeTokens = 6;

    /** Continuous-batching cap: resident requests per core. */
    std::uint32_t maxBatchPerCore = 4;

    /**
     * SLO thresholds in global cycles (0 = that bound is waived). A
     * request is "good" — counted into goodput — when TTFT and mean
     * TPOT both meet their bounds.
     */
    Cycle ttftSloCycles = 0;
    Cycle tpotSloCycles = 0;

    bool
    operator==(const ServingConfig &other) const
    {
        return seed == other.seed &&
               poissonRatePerMcycle == other.poissonRatePerMcycle &&
               arrivalTrace == other.arrivalTrace &&
               numRequests == other.numRequests &&
               meanPromptTokens == other.meanPromptTokens &&
               meanDecodeTokens == other.meanDecodeTokens &&
               maxBatchPerCore == other.maxBatchPerCore &&
               ttftSloCycles == other.ttftSloCycles &&
               tpotSloCycles == other.tpotSloCycles;
    }
};

} // namespace mnpu

#endif // MNPU_SERVING_SERVING_CONFIG_HH
