/**
 * @file
 * Open-loop request arrival generation: a seeded Poisson process (the
 * offered-load axis) or an explicit inline arrival trace. Both paths
 * are pure functions of the ServingConfig — no host entropy, no
 * wall clock — so the same config yields byte-identical arrivals in
 * every process, which is the root of the serving determinism
 * contract.
 */

#ifndef MNPU_SERVING_ARRIVAL_HH
#define MNPU_SERVING_ARRIVAL_HH

#include <vector>

#include "serving/request.hh"
#include "serving/serving_config.hh"

namespace mnpu
{

/**
 * Generate the arrival schedule for @p config: the inline trace when
 * present, else the seeded Poisson process. Requests come back sorted
 * by (arrivalCycle, id) with ids 0..n-1 in that order. fatal()s on a
 * malformed trace or a non-positive Poisson rate.
 */
std::vector<ServingRequest> generateArrivals(const ServingConfig &config);

/**
 * Parse an arrival trace: one "arrival_cycle,prompt_tokens,
 * decode_tokens" line per request; blank lines and '#' comments are
 * skipped. fatal()s on malformed lines, zero token counts, or an empty
 * trace.
 */
std::vector<ServingRequest> parseArrivalTrace(const std::string &text);

} // namespace mnpu

#endif // MNPU_SERVING_ARRIVAL_HH
