#include "serving/request.hh"

#include <algorithm>

namespace mnpu
{

namespace
{

/**
 * Linear-interpolated quantile over an already-sorted vector. Same
 * interpolation rule as analysis/metrics.hh quantileSorted(), inlined
 * here because the serving library sits below the analysis layer.
 * Returns 0 for an empty set (no completed requests yet).
 */
double
quantileOf(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (q <= 0.0)
        return sorted.front();
    if (q >= 1.0)
        return sorted.back();
    double position = q * static_cast<double>(sorted.size() - 1);
    auto lower = static_cast<std::size_t>(position);
    double fraction = position - static_cast<double>(lower);
    if (lower + 1 >= sorted.size())
        return sorted.back();
    return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

double
meanOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0;
    for (double value : values)
        total += value;
    return total / static_cast<double>(values.size());
}

} // namespace

ServingSummary
summarizeRequests(const std::vector<RequestRecord> &records,
                  std::uint64_t offered, std::uint64_t rounds,
                  std::uint64_t makespan_cycles, Cycle ttft_slo,
                  Cycle tpot_slo)
{
    ServingSummary summary;
    summary.offered = offered;
    summary.rounds = rounds;
    summary.makespanCycles = makespan_cycles;

    std::vector<double> ttfts, tpots, latencies;
    for (const RequestRecord &record : records) {
        if (record.tokensDone < record.decodeTokens)
            continue; // incomplete (budget/stop): excluded from SLOs
        ++summary.completed;
        summary.prefillTokens += record.promptTokens;
        summary.decodeTokens += record.decodeTokens;
        summary.kvReadBytes += record.kvReadBytes;
        ttfts.push_back(static_cast<double>(record.ttft()));
        tpots.push_back(record.tpot());
        latencies.push_back(static_cast<double>(record.latency()));
        bool ttft_ok = ttft_slo == 0 || record.ttft() <= ttft_slo;
        bool tpot_ok = tpot_slo == 0 ||
                       record.tpot() <= static_cast<double>(tpot_slo);
        if (ttft_ok && tpot_ok)
            ++summary.sloGood;
    }

    std::sort(ttfts.begin(), ttfts.end());
    std::sort(tpots.begin(), tpots.end());
    std::sort(latencies.begin(), latencies.end());
    summary.ttftP50 = quantileOf(ttfts, 0.5);
    summary.ttftP99 = quantileOf(ttfts, 0.99);
    summary.ttftMean = meanOf(ttfts);
    summary.tpotP50 = quantileOf(tpots, 0.5);
    summary.tpotP99 = quantileOf(tpots, 0.99);
    summary.latencyP50 = quantileOf(latencies, 0.5);
    summary.latencyP99 = quantileOf(latencies, 0.99);
    if (makespan_cycles > 0) {
        double mcycles = static_cast<double>(makespan_cycles) / 1e6;
        summary.offeredPerMcycle =
            static_cast<double>(summary.offered) / mcycles;
        summary.goodputPerMcycle =
            static_cast<double>(summary.sloGood) / mcycles;
    }
    return summary;
}

void
appendServingMetrics(TelemetrySnapshot &snapshot,
                     const ServingSummary &summary)
{
    auto counter = [&snapshot](const char *name, std::uint64_t value) {
        TelemetrySnapshot::Metric metric;
        metric.name = name;
        metric.isCounter = true;
        metric.counter = value;
        snapshot.metrics.push_back(std::move(metric));
    };
    auto gauge = [&snapshot](const char *name, double value) {
        TelemetrySnapshot::Metric metric;
        metric.name = name;
        metric.isCounter = false;
        metric.gauge = value;
        snapshot.metrics.push_back(std::move(metric));
    };
    counter("serving.requests.offered", summary.offered);
    counter("serving.requests.completed", summary.completed);
    counter("serving.requests.slo_good", summary.sloGood);
    counter("serving.rounds", summary.rounds);
    counter("serving.tokens.prefill", summary.prefillTokens);
    counter("serving.tokens.decode", summary.decodeTokens);
    counter("serving.kv_read_bytes", summary.kvReadBytes);
    counter("serving.makespan_cycles", summary.makespanCycles);
    gauge("serving.ttft.p50", summary.ttftP50);
    gauge("serving.ttft.p99", summary.ttftP99);
    gauge("serving.ttft.mean", summary.ttftMean);
    gauge("serving.tpot.p50", summary.tpotP50);
    gauge("serving.tpot.p99", summary.tpotP99);
    gauge("serving.latency.p50", summary.latencyP50);
    gauge("serving.latency.p99", summary.latencyP99);
    gauge("serving.offered_per_mcycle", summary.offeredPerMcycle);
    gauge("serving.goodput_per_mcycle", summary.goodputPerMcycle);
}

} // namespace mnpu
