/**
 * @file
 * `mnpusim --serve`: the request-level serving frontend's CLI. Unlike
 * the six-positional batch mode, serve mode is flag-driven:
 *
 *   mnpusim --serve --arrival poisson:RATE|trace:FILE --seed N ...
 *
 * and prints the SLO report (TTFT / TPOT / p50 / p99 / goodput) for
 * one offered-load point. @p argv[1] must be "--serve".
 */

#ifndef MNPU_SERVING_SERVING_CLI_HH
#define MNPU_SERVING_SERVING_CLI_HH

namespace mnpu
{

int servingMain(int argc, char **argv);

} // namespace mnpu

#endif // MNPU_SERVING_SERVING_CLI_HH
