#include "serving/batch_scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mnpu
{

BatchScheduler::BatchScheduler(std::uint32_t num_cores,
                               std::uint32_t max_batch_per_core)
    : maxBatchPerCore_(std::max<std::uint32_t>(1, max_batch_per_core)),
      resident_(num_cores)
{
    if (num_cores == 0)
        fatal("serving: need at least one core");
}

void
BatchScheduler::enqueue(std::uint32_t request_id)
{
    pending_.push_back(request_id);
}

std::vector<BatchScheduler::Admission>
BatchScheduler::admit()
{
    std::vector<Admission> admissions;
    while (!pending_.empty()) {
        // Least-loaded core with a free slot; lowest id breaks ties.
        std::uint32_t best = 0;
        std::size_t best_load = maxBatchPerCore_;
        for (std::uint32_t core = 0; core < resident_.size(); ++core) {
            if (resident_[core].size() < best_load) {
                best = core;
                best_load = resident_[core].size();
            }
        }
        if (best_load >= maxBatchPerCore_)
            break; // every core is full; requests wait queued
        std::uint32_t request_id = pending_.front();
        pending_.pop_front();
        resident_[best].push_back(request_id);
        admissions.push_back(Admission{request_id, best});
    }
    return admissions;
}

void
BatchScheduler::release(std::uint32_t core, std::uint32_t request_id)
{
    auto &slots = resident_[core];
    auto it = std::find(slots.begin(), slots.end(), request_id);
    mnpu_assert(it != slots.end());
    slots.erase(it);
}

bool
BatchScheduler::anyResident() const
{
    for (const auto &slots : resident_) {
        if (!slots.empty())
            return true;
    }
    return false;
}

} // namespace mnpu
