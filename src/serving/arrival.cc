#include "serving/arrival.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace mnpu
{

namespace
{

/** Uniform draw in [ceil(mean/2), mean] (and at least 1). */
std::uint32_t
drawTokens(Rng &rng, std::uint32_t mean)
{
    std::uint32_t hi = std::max<std::uint32_t>(1, mean);
    std::uint32_t lo = std::max<std::uint32_t>(1, (hi + 1) / 2);
    return static_cast<std::uint32_t>(rng.range(lo, hi));
}

std::uint64_t
parseField(const std::string &piece, const std::string &line,
           std::size_t line_no)
{
    char *end = nullptr;
    std::string text = trim(piece);
    std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') {
        fatal("arrival trace line ", line_no, ": malformed field '",
              piece, "' in '", line, "'");
    }
    return value;
}

} // namespace

std::vector<ServingRequest>
parseArrivalTrace(const std::string &text)
{
    std::vector<ServingRequest> requests;
    std::size_t line_no = 0;
    for (const auto &raw : split(text, '\n')) {
        ++line_no;
        std::string line = raw;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        auto pieces = split(line, ',');
        if (pieces.size() != 3) {
            fatal("arrival trace line ", line_no, ": expected "
                  "'arrival_cycle,prompt_tokens,decode_tokens', got '",
                  line, "'");
        }
        ServingRequest request;
        request.arrivalCycle = parseField(pieces[0], line, line_no);
        request.promptTokens = static_cast<std::uint32_t>(
            parseField(pieces[1], line, line_no));
        request.decodeTokens = static_cast<std::uint32_t>(
            parseField(pieces[2], line, line_no));
        if (request.promptTokens == 0 || request.decodeTokens == 0) {
            fatal("arrival trace line ", line_no,
                  ": token counts must be positive in '", line, "'");
        }
        requests.push_back(request);
    }
    if (requests.empty())
        fatal("arrival trace has no requests");
    std::stable_sort(requests.begin(), requests.end(),
                     [](const ServingRequest &a, const ServingRequest &b) {
                         return a.arrivalCycle < b.arrivalCycle;
                     });
    for (std::size_t i = 0; i < requests.size(); ++i)
        requests[i].id = static_cast<std::uint32_t>(i);
    return requests;
}

std::vector<ServingRequest>
generateArrivals(const ServingConfig &config)
{
    if (!config.arrivalTrace.empty())
        return parseArrivalTrace(config.arrivalTrace);
    if (config.poissonRatePerMcycle <= 0)
        fatal("serving: Poisson rate must be positive (got ",
              config.poissonRatePerMcycle, ")");
    if (config.numRequests == 0)
        fatal("serving: need at least one request");

    Rng rng(config.seed);
    // Exponential inter-arrival gaps in cycles: rate is requests per
    // million global cycles. Arrival times accumulate in double and
    // are truncated per arrival, so the schedule is a pure function of
    // (seed, rate, n) — no host state leaks in.
    const double mean_gap_cycles = 1e6 / config.poissonRatePerMcycle;
    std::vector<ServingRequest> requests;
    requests.reserve(config.numRequests);
    double now = 0.0;
    for (std::uint32_t i = 0; i < config.numRequests; ++i) {
        double gap = -std::log(1.0 - rng.uniform()) * mean_gap_cycles;
        now += gap;
        ServingRequest request;
        request.id = i;
        request.arrivalCycle = static_cast<Cycle>(now);
        request.promptTokens = drawTokens(rng, config.meanPromptTokens);
        request.decodeTokens = drawTokens(rng, config.meanDecodeTokens);
        requests.push_back(request);
    }
    return requests;
}

} // namespace mnpu
