/**
 * @file
 * The serving engine (DESIGN.md §13): drives the seeded open-loop
 * arrival process and the continuous-batching scheduler over the
 * existing MultiCoreSystem in iteration-synchronous rounds. Each round
 * lowers every core's resident phase work (one prefill pass or one
 * decode step per resident request) into a fresh per-core Network,
 * co-runs all cores under the configured sharing level, and advances
 * the serving clock by the round's global-cycle length. Token
 * timestamps, per-request byte attribution, and the SLO summary fall
 * out of the round results.
 */

#ifndef MNPU_SERVING_ENGINE_HH
#define MNPU_SERVING_ENGINE_HH

#include <cstdint>
#include <vector>

#include "serving/request.hh"
#include "sim/multi_core_system.hh"
#include "sw/arch_config.hh"
#include "workloads/models.hh"

namespace mnpu
{

struct ServingResult
{
    /**
     * Round results folded into one SimResult: per-core counters are
     * summed over rounds, globalCycles is the serving-clock makespan,
     * peUtilization is the local-cycle-weighted mean, and telemetry is
     * the checkpoint-stable scalar subset plus the `serving.*` schema.
     */
    SimResult aggregate;
    ServingSummary summary;
    std::vector<RequestRecord> requests; //!< by request id
};

/**
 * Run the serving scenario described by @p config.serving (which must
 * be engaged) on a @p num_cores system at @p config.level sharing.
 * Deterministic: the outcome is a pure function of (arch, scale,
 * config, num_cores) — see the determinism contract in DESIGN.md §13.
 *
 * @p budget is enforced on the serving clock (cycle cap, stop token)
 * and passed through to each round's watchdog (wall clock); the
 * snapshot policy is stripped — a mid-round snapshot cannot name its
 * round, so serving durability lives at the sweep-checkpoint layer.
 * Blowing the budget throws SimulationError, same as a batch run.
 */
ServingResult runServing(const ArchConfig &arch, ModelScale scale,
                         const SystemConfig &config,
                         std::uint32_t num_cores,
                         const RunBudget &budget = RunBudget{});

} // namespace mnpu

#endif // MNPU_SERVING_ENGINE_HH
