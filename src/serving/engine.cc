#include "serving/engine.hh"

#include <algorithm>
#include <memory>
#include <string>

#include "common/errors.hh"
#include "common/logging.hh"
#include "serving/arrival.hh"
#include "serving/batch_scheduler.hh"
#include "sw/network.hh"
#include "sw/trace_generator.hh"

namespace mnpu
{

namespace
{

/** Phase a resident request executes in the next round. */
enum class Phase { Prefill, Decode };

struct RequestState
{
    Phase phase = Phase::Prefill;
    std::uint32_t contextTokens = 0; //!< KV positions for decode
};

/**
 * A core with no resident request this round still needs a binding —
 * the core count sizes every shared resource budget, so dropping idle
 * cores would change the contention the busy cores see. The stub is
 * one minimal GEMM; its cycles and bytes are part of the simulated
 * system and are folded into the aggregate like any other work.
 */
std::shared_ptr<const TraceGenerator>
stubTrace(const ArchConfig &arch)
{
    Network net;
    net.name = "serve_idle";
    net.layers.push_back(Layer::gemm("idle", 1, 1, 1));
    return std::make_shared<TraceGenerator>(arch, net);
}

/** The effective serving-clock cycle cap (0 = unlimited). */
Cycle
cycleCap(const SystemConfig &config, const RunBudget &budget)
{
    Cycle cap = config.maxGlobalCycles;
    if (budget.maxGlobalCycles != 0 &&
        (cap == 0 || budget.maxGlobalCycles < cap)) {
        cap = budget.maxGlobalCycles;
    }
    return cap;
}

} // namespace

ServingResult
runServing(const ArchConfig &arch, ModelScale scale,
           const SystemConfig &config, std::uint32_t num_cores,
           const RunBudget &budget)
{
    if (!config.serving)
        fatal("runServing: config.serving is not engaged");
    if (num_cores == 0)
        fatal("runServing: need at least one core");
    const ServingConfig &serving = *config.serving;

    std::vector<ServingRequest> arrivals = generateArrivals(serving);

    ServingResult out;
    out.requests.reserve(arrivals.size());
    std::vector<RequestState> states(arrivals.size());
    for (const ServingRequest &request : arrivals) {
        RequestRecord record;
        record.id = request.id;
        record.arrivalCycle = request.arrivalCycle;
        record.promptTokens = request.promptTokens;
        record.decodeTokens = request.decodeTokens;
        out.requests.push_back(record);
    }

    BatchScheduler scheduler(num_cores, serving.maxBatchPerCore);
    auto stub = stubTrace(arch);

    // Sub-runs are plain batch runs: no serving recursion, no nested
    // cycle cap (the serving clock enforces it), and no per-round
    // request logs or observer files (one round would overwrite the
    // previous round's artifacts; serving-level outputs are written by
    // the caller from the aggregate). The snapshot policy is stripped
    // from the round budget for the reason given in the header.
    SystemConfig round_config = config;
    round_config.serving.reset();
    round_config.maxGlobalCycles = 0;
    round_config.requestLogDir.clear();
    round_config.obs = ObservabilityConfig{};
    RunBudget round_budget;
    round_budget.wallClockSeconds = budget.wallClockSeconds;
    round_budget.stopToken = budget.stopToken;
    round_budget.heartbeat = budget.heartbeat;

    const Cycle cap = cycleCap(config, budget);
    Cycle now = 0;
    std::size_t next_arrival = 0;
    std::uint64_t completed = 0;
    std::uint64_t rounds = 0;

    SimResult &aggregate = out.aggregate;
    aggregate.cores.resize(num_cores);
    std::vector<double> util_weight(num_cores, 0.0);
    for (std::uint32_t core = 0; core < num_cores; ++core)
        aggregate.cores[core].workloadName = "serving";

    while (completed < arrivals.size()) {
        if (budget.stopToken != nullptr &&
            budget.stopToken->load(std::memory_order_relaxed)) {
            throw SimulationError(SimErrorKind::Cancelled,
                                  "serving run cancelled by stop token");
        }
        if (cap != 0 && now >= cap) {
            throw SimulationError(
                SimErrorKind::CycleBudget,
                "serving clock exceeded the cycle budget (" +
                    std::to_string(now) + " >= " + std::to_string(cap) +
                    " with " +
                    std::to_string(arrivals.size() - completed) +
                    " requests unfinished)");
        }

        // Admit everything that has arrived by the serving clock.
        while (next_arrival < arrivals.size() &&
               arrivals[next_arrival].arrivalCycle <= now) {
            scheduler.enqueue(arrivals[next_arrival].id);
            ++next_arrival;
        }
        scheduler.admit();

        if (!scheduler.anyResident()) {
            // Open-loop lull: fast-forward to the next arrival.
            mnpu_assert(next_arrival < arrivals.size());
            now = arrivals[next_arrival].arrivalCycle;
            continue;
        }

        // Lower each core's resident phase work into one network and
        // remember every request's [first, last) layer range for byte
        // attribution.
        struct LayerRange
        {
            std::uint32_t requestId;
            std::size_t first, last;
        };
        std::vector<CoreBinding> bindings(num_cores);
        std::vector<std::vector<LayerRange>> ranges(num_cores);
        std::vector<std::shared_ptr<const TraceGenerator>> traces(
            num_cores);
        for (std::uint32_t core = 0; core < num_cores; ++core) {
            const auto &resident = scheduler.resident(core);
            if (resident.empty()) {
                bindings[core].trace = stub;
                continue;
            }
            Network net;
            net.name = "serve_core" + std::to_string(core);
            for (std::uint32_t id : resident) {
                RequestState &state = states[id];
                const RequestRecord &record = out.requests[id];
                std::size_t first = net.layers.size();
                std::string prefix = "r" + std::to_string(id);
                if (state.phase == Phase::Prefill) {
                    appendGpt2Prefill(net, prefix, record.promptTokens,
                                      scale);
                } else {
                    appendGpt2DecodeStep(net, prefix,
                                         state.contextTokens, scale);
                }
                ranges[core].push_back(
                    LayerRange{id, first, net.layers.size()});
            }
            traces[core] =
                std::make_shared<TraceGenerator>(arch, net);
            bindings[core].trace = traces[core];
        }

        MultiCoreSystem system(round_config, std::move(bindings));
        SimResult result = system.run(round_budget);
        ++rounds;

        // Fold the round into the aggregate. TLB and walk counts come
        // from the MMU's per-core attribution, not CoreResult: the
        // legacy per-core view duplicates shared totals onto every
        // core (the shared TLB's hits/misses under +T, `walks`
        // always), and summing those across rounds and cores would
        // double-count every shared event per core. Attributed
        // counters sum to the MMU totals exactly once.
        for (std::uint32_t core = 0; core < num_cores; ++core) {
            CoreResult &total = aggregate.cores[core];
            const CoreResult &part = result.cores[core];
            total.localCycles += part.localCycles;
            total.trafficBytes += part.trafficBytes;
            total.walkBytes += part.walkBytes;
            total.tlbHits += system.mmu().tlbHitsFor(core);
            total.tlbMisses += system.mmu().tlbMissesFor(core);
            total.walks += system.mmu().walksFor(core);
            util_weight[core] +=
                part.peUtilization * static_cast<double>(part.localCycles);
        }
        aggregate.dramEnergyPj += result.dramEnergyPj;
        aggregate.dramRowHits += result.dramRowHits;
        aggregate.dramRowMisses += result.dramRowMisses;
        aggregate.loopIterations += result.loopIterations;

        // Advance every resident request by the phase it just ran.
        // Token timestamps use the request's core finish in the global
        // clock (iteration-synchronous batching: all of a core's
        // residents step together each round).
        for (std::uint32_t core = 0; core < num_cores; ++core) {
            if (ranges[core].empty())
                continue;
            Cycle finish = now + result.cores[core].finishedAtGlobal;
            const auto &layers = traces[core]->layers();
            for (const LayerRange &range : ranges[core]) {
                RequestRecord &record = out.requests[range.requestId];
                RequestState &state = states[range.requestId];
                record.core = core;
                for (std::size_t i = range.first; i < range.last; ++i) {
                    record.attributedReadBytes += layers[i].readBytes;
                    record.attributedWriteBytes += layers[i].writeBytes;
                }
                if (state.phase == Phase::Prefill) {
                    // Prefill emits the first token and fills the KV
                    // cache with the prompt positions.
                    record.firstTokenCycle = finish;
                    record.tokensDone = 1;
                    state.phase = Phase::Decode;
                    state.contextTokens = record.promptTokens;
                } else {
                    record.kvReadBytes += gpt2KvBytesPerDecodeStep(
                        state.contextTokens, scale, arch.dataBytes);
                    ++record.tokensDone;
                    ++state.contextTokens;
                }
                if (record.tokensDone >= record.decodeTokens) {
                    record.finishCycle = finish;
                    scheduler.release(core, record.id);
                    ++completed;
                }
            }
        }

        mnpu_assert(result.globalCycles > 0);
        now += result.globalCycles;
    }

    aggregate.globalCycles = now;
    Cycle makespan = 0;
    for (const RequestRecord &record : out.requests)
        makespan = std::max(makespan, record.finishCycle);
    for (std::uint32_t core = 0; core < num_cores; ++core) {
        CoreResult &total = aggregate.cores[core];
        if (total.localCycles > 0) {
            total.peUtilization = util_weight[core] /
                static_cast<double>(total.localCycles);
        }
        total.finishedAtGlobal = now;
    }

    out.summary = summarizeRequests(out.requests, arrivals.size(),
                                    rounds, makespan,
                                    serving.ttftSloCycles,
                                    serving.tpotSloCycles);
    aggregate.telemetry = telemetryFromResult(aggregate);
    appendServingMetrics(aggregate.telemetry, out.summary);
    return out;
}

} // namespace mnpu
