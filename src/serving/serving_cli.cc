#include "serving/serving_cli.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/config.hh"
#include "common/errors.hh"
#include "common/logging.hh"
#include "common/stop_signal.hh"
#include "serving/engine.hh"
#include "sim/multi_core_system.hh"

namespace mnpu
{

namespace
{

std::string
readFileText(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot open arrival trace '", path, "'");
    std::ostringstream text;
    text << file.rdbuf();
    return text.str();
}

SharingLevel
parseServingLevel(const std::string &text)
{
    if (iequals(text, "static"))
        return SharingLevel::Static;
    if (iequals(text, "d"))
        return SharingLevel::ShareD;
    if (iequals(text, "dw"))
        return SharingLevel::ShareDW;
    if (iequals(text, "dwt"))
        return SharingLevel::ShareDWT;
    fatal("unknown sharing level '", text,
          "' (expected static, d, dw, or dwt)");
}

std::uint64_t
parseUint(const std::string &text, const char *what)
{
    char *end = nullptr;
    std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        fatal("malformed ", what, " value '", text, "'");
    return value;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --serve [--arrival poisson:RATE|trace:FILE]\n"
        "       [--seed N] [--requests N] [--cores N] [--level "
        "static|d|dw|dwt]\n"
        "       [--max-batch N] [--prompt-tokens N] [--decode-tokens N]\n"
        "       [--ttft-slo CYCLES] [--tpot-slo CYCLES]\n"
        "       [--arch mini|cloud] [--scale mini|full] [--max-cycles N]\n"
        "       [--metrics-out FILE] [--requests-out FILE]\n"
        "  --arrival   open-loop arrival process: poisson:RATE offers\n"
        "              RATE requests per million global cycles from the\n"
        "              seeded generator; trace:FILE replays an explicit\n"
        "              'arrival_cycle,prompt_tokens,decode_tokens' CSV\n"
        "  --seed      arrival-process seed; the full outcome is a pure\n"
        "              function of the flags and this seed\n"
        "  --metrics-out  telemetry snapshot incl. the serving.* schema\n"
        "                 (.csv or .jsonl)\n"
        "  --requests-out per-request trace CSV (timestamps, attributed\n"
        "                 bytes, KV stream bytes)\n"
        "exit codes: 0 success, 1 config error, 2 usage,\n"
        "            3 contained simulation error, 130 interrupted\n",
        argv0);
    return 2;
}

} // namespace

int
servingMain(int argc, char **argv)
{
    ServingConfig serving;
    SystemConfig config;
    std::uint32_t num_cores = 2;
    bool full_scale = false;
    bool cloud_arch = false;
    std::string metrics_out, requests_out;

    // argv[1] is "--serve"; everything after is name/value flags.
    int i = 2;
    auto value_of = [&](const char *name) -> std::string {
        if (i + 1 >= argc)
            fatal(name, " needs a value");
        return argv[++i];
    };
    try {
        for (; i < argc; ++i) {
            std::string flag = argv[i];
            if (flag == "--arrival") {
                std::string spec = value_of("--arrival");
                const std::string poisson = "poisson:";
                const std::string trace = "trace:";
                if (spec.rfind(poisson, 0) == 0) {
                    char *end = nullptr;
                    std::string rate = spec.substr(poisson.size());
                    serving.poissonRatePerMcycle =
                        std::strtod(rate.c_str(), &end);
                    if (end == rate.c_str() || *end != '\0' ||
                        serving.poissonRatePerMcycle <= 0) {
                        fatal("malformed --arrival rate '", rate, "'");
                    }
                    serving.arrivalTrace.clear();
                } else if (spec.rfind(trace, 0) == 0) {
                    std::string path = spec.substr(trace.size());
                    serving.arrivalTrace = readFileText(path);
                    // An empty trace string means "use Poisson" to the
                    // engine; an empty trace *file* is a config error.
                    if (trim(serving.arrivalTrace).empty())
                        fatal("arrival trace '", path, "' is empty");
                } else {
                    fatal("malformed --arrival '", spec,
                          "' (expected poisson:RATE or trace:FILE)");
                }
            } else if (flag == "--seed") {
                serving.seed = parseUint(value_of("--seed"), "--seed");
            } else if (flag == "--requests") {
                serving.numRequests = static_cast<std::uint32_t>(
                    parseUint(value_of("--requests"), "--requests"));
            } else if (flag == "--cores") {
                num_cores = static_cast<std::uint32_t>(
                    parseUint(value_of("--cores"), "--cores"));
                if (num_cores == 0)
                    fatal("--cores must be positive");
            } else if (flag == "--level") {
                config.level = parseServingLevel(value_of("--level"));
            } else if (flag == "--max-batch") {
                serving.maxBatchPerCore = static_cast<std::uint32_t>(
                    parseUint(value_of("--max-batch"), "--max-batch"));
            } else if (flag == "--prompt-tokens") {
                serving.meanPromptTokens = static_cast<std::uint32_t>(
                    parseUint(value_of("--prompt-tokens"),
                              "--prompt-tokens"));
            } else if (flag == "--decode-tokens") {
                serving.meanDecodeTokens = static_cast<std::uint32_t>(
                    parseUint(value_of("--decode-tokens"),
                              "--decode-tokens"));
            } else if (flag == "--ttft-slo") {
                serving.ttftSloCycles =
                    parseUint(value_of("--ttft-slo"), "--ttft-slo");
            } else if (flag == "--tpot-slo") {
                serving.tpotSloCycles =
                    parseUint(value_of("--tpot-slo"), "--tpot-slo");
            } else if (flag == "--arch") {
                std::string arch = value_of("--arch");
                if (iequals(arch, "cloud"))
                    cloud_arch = true;
                else if (iequals(arch, "mini"))
                    cloud_arch = false;
                else
                    fatal("unknown --arch '", arch, "'");
            } else if (flag == "--scale") {
                std::string scale = value_of("--scale");
                if (iequals(scale, "full"))
                    full_scale = true;
                else if (iequals(scale, "mini"))
                    full_scale = false;
                else
                    fatal("unknown --scale '", scale, "'");
            } else if (flag == "--max-cycles") {
                config.maxGlobalCycles =
                    parseUint(value_of("--max-cycles"), "--max-cycles");
            } else if (flag == "--metrics-out") {
                metrics_out = value_of("--metrics-out");
            } else if (flag == "--requests-out") {
                requests_out = value_of("--requests-out");
            } else if (flag == "--help" || flag == "-h") {
                return usage(argv[0]);
            } else {
                std::fprintf(stderr, "unknown serve flag '%s'\n",
                             argv[i]);
                return usage(argv[0]);
            }
        }
    } catch (const FatalError &error) {
        std::fprintf(stderr, "fatal: %s\n", error.what());
        return 1;
    }

    installStopSignalHandlers();
    RunBudget budget;
    budget.stopToken = stopSignalToken();

    try {
        config.serving = serving;
        ArchConfig arch =
            cloud_arch ? ArchConfig::cloudNpu() : ArchConfig::miniNpu();
        ModelScale scale =
            full_scale ? ModelScale::Full : ModelScale::Mini;
        inform("serving ", serving.numRequests, " GPT-2 requests on ",
               num_cores, " cores at level ", toString(config.level),
               serving.arrivalTrace.empty()
                   ? " (poisson arrivals)"
                   : " (trace arrivals)");
        ServingResult result =
            runServing(arch, scale, config, num_cores, budget);

        const ServingSummary &summary = result.summary;
        std::printf("serving: %llu offered, %llu completed, %llu "
                    "slo-good over %llu cycles (%llu rounds)\n",
                    static_cast<unsigned long long>(summary.offered),
                    static_cast<unsigned long long>(summary.completed),
                    static_cast<unsigned long long>(summary.sloGood),
                    static_cast<unsigned long long>(
                        summary.makespanCycles),
                    static_cast<unsigned long long>(summary.rounds));
        std::printf("ttft p50 %.0f p99 %.0f mean %.0f cycles\n",
                    summary.ttftP50, summary.ttftP99, summary.ttftMean);
        std::printf("tpot p50 %.0f p99 %.0f cycles/token\n",
                    summary.tpotP50, summary.tpotP99);
        std::printf("latency p50 %.0f p99 %.0f cycles\n",
                    summary.latencyP50, summary.latencyP99);
        std::printf("offered %.3f goodput %.3f requests/Mcycle\n",
                    summary.offeredPerMcycle, summary.goodputPerMcycle);

        if (!metrics_out.empty())
            result.aggregate.telemetry.writeFile(metrics_out);
        if (!requests_out.empty()) {
            std::ofstream file(requests_out);
            if (!file)
                fatal("cannot write '", requests_out, "'");
            file << "id,arrival_cycle,core,prompt_tokens,decode_tokens,"
                    "first_token_cycle,finish_cycle,ttft,tpot,latency,"
                    "read_bytes,write_bytes,kv_read_bytes\n";
            for (const RequestRecord &record : result.requests) {
                file << record.id << ',' << record.arrivalCycle << ','
                     << record.core << ',' << record.promptTokens << ','
                     << record.decodeTokens << ','
                     << record.firstTokenCycle << ','
                     << record.finishCycle << ',' << record.ttft()
                     << ',' << record.tpot() << ',' << record.latency()
                     << ',' << record.attributedReadBytes << ','
                     << record.attributedWriteBytes << ','
                     << record.kvReadBytes << '\n';
            }
        }
        return 0;
    } catch (const SimulationError &error) {
        if (error.kind() == SimErrorKind::Cancelled &&
            stopSignalRaised()) {
            std::fprintf(stderr, "interrupted: %s\n", error.what());
            return kInterruptedExitCode;
        }
        std::fprintf(stderr, "simulation error (%s): %s\n",
                     toString(error.kind()), error.what());
        return 3;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "fatal: %s\n", error.what());
        return 1;
    }
}

} // namespace mnpu
