/**
 * @file
 * Continuous-batching scheduler (iteration-level, ORCA-style): requests
 * queue FCFS on arrival and are admitted to the least-loaded core
 * (lowest core id on ties) whenever a residency slot is free; admitted
 * requests stay resident on their core — KV-cache affinity — until
 * their last decode token, and new requests join the core's batch
 * between iterations rather than waiting for the batch to drain.
 *
 * Purely deterministic: admission depends only on the arrival order
 * and the completion pattern, never on host state, and all ties break
 * toward lower ids.
 */

#ifndef MNPU_SERVING_BATCH_SCHEDULER_HH
#define MNPU_SERVING_BATCH_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <vector>

namespace mnpu
{

class BatchScheduler
{
  public:
    BatchScheduler(std::uint32_t num_cores,
                   std::uint32_t max_batch_per_core);

    /** Queue an arrived request (FCFS position = call order). */
    void enqueue(std::uint32_t request_id);

    /**
     * Admit queued requests into free residency slots. Returns the
     * (request_id, core) admissions made, in admission order.
     */
    struct Admission
    {
        std::uint32_t requestId;
        std::uint32_t core;
    };
    std::vector<Admission> admit();

    /** Release @p request_id's slot on @p core after its last token. */
    void release(std::uint32_t core, std::uint32_t request_id);

    /** Resident request ids on @p core, in admission order. */
    const std::vector<std::uint32_t> &resident(std::uint32_t core) const
    {
        return resident_[core];
    }

    bool anyResident() const;
    std::size_t pendingCount() const { return pending_.size(); }

  private:
    std::uint32_t maxBatchPerCore_;
    std::deque<std::uint32_t> pending_;
    std::vector<std::vector<std::uint32_t>> resident_;
};

} // namespace mnpu

#endif // MNPU_SERVING_BATCH_SCHEDULER_HH
