/**
 * @file
 * One NPU core: systolic-array compute driven by per-tile traces, a
 * double-buffered scratchpad pipeline, and a DMA engine that turns tile
 * access ranges into translated off-chip transactions.
 *
 * Pipeline (paper Figure 2a): while tile j computes out of one SPM half,
 * the DMA prefetches tile j+1 into the other half and drains tile j-1's
 * outputs. Loads for tile j may start only once tile j-2 has fully
 * retired (compute finished and stores drained) — that reuse rule is
 * what produces the bursty, front-loaded memory traffic the paper
 * studies.
 */

#ifndef MNPU_CORE_NPU_CORE_HH
#define MNPU_CORE_NPU_CORE_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock_domain.hh"
#include "common/interval_tracer.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/memory_backend.hh"
#include "mmu/mmu.hh"
#include "sw/trace_generator.hh"

namespace mnpu
{

/** Per-core execution-mode settings (the paper's misc_config). */
struct CoreConfig
{
    CoreId id = 0;
    Asid asid = 0;
    Cycle startCycleGlobal = 0; //!< execution initiation time
    std::uint32_t iterations = 1;
};

class NpuCore
{
  public:
    /**
     * @param trace must outlive the core (typically owned by the system)
     */
    NpuCore(const CoreConfig &config, const TraceGenerator &trace,
            Mmu &mmu, MemoryBackend &dram, const ClockDomain &clock);

    /**
     * Advance to global cycle @p now. @return true when the tick
     * changed simulated state (issued, computed, retired, started or
     * finished anything) — pure bookkeeping such as a DMA budget
     * refresh does not count. The run loop keys its core service
     * rotation off this, so skipped no-op cycles cannot perturb
     * arbitration.
     */
    bool tick(Cycle now);

    bool done() const { return done_; }

    /**
     * Conservative per-cycle bound (the cycle scheduler): now + 1
     * whenever the core might do anything.
     */
    Cycle nextTickCycle(Cycle now) const;

    /**
     * Sharp lower bound on the next cycle tick() changes state. Only
     * self-timed events need candidates here (tile compute finish,
     * the DMA budget refresh at the next local-cycle boundary, start
     * cycle); everything gated on the memory system — DRAM
     * completions, translation completions, channel-queue space —
     * is covered by the DRAM/MMU bounds, because those components
     * tick before the cores at every visited cycle.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Attach the fault injector (core-stall site: the pipeline freezes
     * forever so the run-loop watchdog budget must catch it). Not
     * owned.
     */
    void setFaultInjector(FaultInjector *injector) { injector_ = injector; }

    /**
     * Switch this core to the fast (analytic) fidelity. Must be set
     * before the first tick and never changed mid-run. Each tile's
     * load/store phase completes in one closed-form step (see
     * fastMemoryPhase) instead of per-transaction issue/translate/
     * queue/complete round trips, so the core advances in a handful of
     * events per tile. The exact path's per-transaction state
     * (inflightTx_, dramReady_, DMA budgets) is bypassed entirely;
     * compute timing, the double-buffer reuse rule, and layer/tile
     * span recording reuse the exact code unchanged. The resolved
     * fidelity is decided by resolvedFidelityKind() — never enable
     * this with a fault injector or integrity checks armed.
     */
    void setFastMode(bool on) { fastMode_ = on; }

    /** Translation completed for one of this core's transactions. */
    void onTranslation(std::uint64_t tag, Addr paddr, Cycle at);

    /** DRAM data transfer completed for one of this core's txns. */
    void onDramCompletion(std::uint64_t tag, Cycle at);

    /**
     * Event-scheduler gating support: external input (a translation or
     * DRAM completion) since the last tick — the cached event bound
     * predates it, so the core must be ticked this cycle.
     */
    bool poked() const { return poked_; }

    /** Blocked pushing into a full/starved DRAM channel queue. */
    bool dramBlocked() const { return dramBlocked_; }

    /** Blocked on a full MMU pending queue. */
    bool xlatBlocked() const { return xlatBlocked_; }

    // --- results ---
    /** End-to-end local cycles (finish - start), valid once done(). */
    Cycle totalLocalCycles() const;
    Cycle finishedAtGlobal() const { return finishedAtGlobal_; }

    /** Per-layer local finish cycle of the last iteration. */
    const std::vector<Cycle> &layerFinishLocal() const
    {
        return layerFinishLocal_;
    }

    /** MACs retired / (PEs x active local cycles), valid once done(). */
    double peUtilization() const;

    /** Count DMA transactions accepted by DRAM per window (Fig. 2b). */
    void enableRequestTrace(Cycle window_cycles);

    /** @return whether enableRequestTrace() has been called. */
    bool requestTraceEnabled() const { return requestTracer_.has_value(); }

    /**
     * Per-window accepted-request counts.
     * @deprecated Read the `core<i>.requests` series from
     * SimResult::telemetry.findSeries() instead of reaching into the
     * live core; kept one release for out-of-tree callers.
     */
    const IntervalTracer &requestTrace() const;

    /**
     * Attach the observability trace sink (Layers level and up): layer
     * and tile compute windows become complete spans on this core's
     * process. Spans are emitted at compute start/finish — event
     * boundaries — so the event scheduler's cycle skipping never
     * changes what is recorded. Passive; nullptr detaches; not owned.
     */
    void setTraceSink(TraceEventSink *sink)
    {
        traceSink_ = sink && sink->wants(TraceLevel::Layers) ? sink
                                                             : nullptr;
    }

    /** Close the in-progress trace window (end of simulation). */
    void finalizeRequestTrace();

    const CoreConfig &config() const { return config_; }
    const TraceGenerator &trace() const { return trace_; }
    const StatGroup &stats() const { return stats_; }

    /** Tag helpers: core data tags carry the core id in bits 48..62. */
    static std::uint64_t makeTag(CoreId core, std::uint64_t seq)
    {
        return (static_cast<std::uint64_t>(core) << 48) |
               (seq & ((std::uint64_t{1} << 48) - 1));
    }
    static CoreId coreOfTag(std::uint64_t tag)
    {
        return static_cast<CoreId>((tag >> 48) & 0x7fff);
    }

    /**
     * Snapshot the full pipeline: per-tile state, the four tile
     * cursors and both range cursors, in-flight transactions (sorted
     * by tag), translated-but-unqueued requests, DMA issue budget,
     * fast-fidelity horizons, blocked/poked flags, layer span
     * bookkeeping, the request tracer (if enabled), and stats.
     */
    void saveState(StateWriter &out) const;
    void loadState(StateReader &in);

  private:
    struct TileState
    {
        bool loadsIssued = false;  //!< all read txns handed to the MMU
        std::uint32_t loadsOutstanding = 0;
        bool computeStarted = false;
        bool computeDone = false;
        Cycle computeDoneLocal = 0;
        bool storesIssued = false;
        std::uint32_t storesOutstanding = 0;
        /**
         * Fast fidelity only: global cycle the phase's batched
         * transfer completes. The outstanding counters are then used
         * as a 1-while-in-flight marker so loadsDone()/retired() keep
         * their exact-mode meaning.
         */
        Cycle loadsDoneAt = 0;
        Cycle storesDoneAt = 0;

        bool loadsDone() const
        {
            return loadsIssued && loadsOutstanding == 0;
        }
        bool retired() const
        {
            return computeDone && storesIssued && storesOutstanding == 0;
        }
    };

    /** Walks the 64-byte transactions of a tile's range list. */
    struct RangeCursor
    {
        std::size_t rangeIdx = 0;
        Addr next = 0;   //!< next transaction address (aligned)
        Addr end = 0;    //!< end of current range (aligned up)
        bool primed = false;
    };

    struct TxInfo
    {
        std::uint32_t tile;
        MemOp op;
        /** Placement class from the tensor map (tiered routing). */
        MemRegion region = MemRegion::Activation;
    };

    bool cursorNext(RangeCursor &cursor,
                    const std::vector<AccessRange> &ranges, Addr &out);
    bool bufferFreeForLoad(std::uint32_t tile) const;
    bool issueTransactions(Cycle now);
    bool updateCompute(Cycle now);
    bool startIterationIfNeeded(Cycle now);
    bool checkDone(Cycle now);
    bool hasIssuableTx() const;

    // --- fast (analytic) fidelity ---
    bool fastTick(Cycle now);
    bool completeFastPhases(Cycle now);
    bool issueFastPhases(Cycle now);
    Cycle fastMemoryPhase(const std::vector<AccessRange> &ranges,
                          MemOp op, Cycle now);
    Cycle fastNextEventCycle(Cycle now) const;

    CoreConfig config_;
    const TraceGenerator &trace_;
    Mmu &mmu_;
    MemoryBackend &dram_;
    ClockDomain clock_;

    bool started_ = false;
    bool done_ = false;
    bool stalled_ = false; //!< frozen by an injected core-stall fault
    FaultInjector *injector_ = nullptr;
    Cycle startedAtGlobal_ = 0;
    Cycle finishedAtGlobal_ = 0;
    std::uint32_t iteration_ = 0;

    std::vector<TileState> tiles_;
    std::uint32_t loadTile_ = 0;    //!< next tile to feed load txns from
    std::uint32_t computeTile_ = 0; //!< next tile to compute
    std::uint32_t storeTile_ = 0;   //!< next tile to feed store txns from
    std::uint32_t retireTile_ = 0;  //!< first not-fully-retired tile
    RangeCursor loadCursor_;
    RangeCursor storeCursor_;
    Cycle computeFreeLocal_ = 0;

    std::uint64_t nextSeq_ = 0;
    std::unordered_map<std::uint64_t, TxInfo> inflightTx_;
    std::deque<DramRequest> dramReady_; //!< translated, awaiting DRAM
    std::uint32_t xlatOutstanding_ = 0;

    Cycle lastLocalSeen_ = 0;
    std::uint64_t issueBudget_ = 0;
    bool budgetPrimed_ = false;

    bool fastMode_ = false;
    /**
     * Fast fidelity: global cycle the DMA issue port frees up — phase
     * issue serialization (ceil(tx / dmaIssueWidth) local cycles per
     * phase) carried across phases.
     */
    Cycle fastDmaFreeGlobal_ = 0;

    /**
     * Blocked-episode flags: the retry counters count transitions into
     * a blocked state (one per episode), not per-cycle retries — a
     * per-cycle count would depend on how many cycles the scheduler
     * visits while blocked, which is exactly what the two schedulers
     * legitimately disagree on.
     */
    bool dramBlocked_ = false;
    bool xlatBlocked_ = false;
    bool poked_ = false; //!< completion delivered since the last tick

    std::vector<Cycle> layerFinishLocal_;
    std::size_t nextLayerToFinish_ = 0;

    std::optional<IntervalTracer> requestTracer_;
    TraceEventSink *traceSink_ = nullptr;
    /** Local cycle the first tile of each layer started computing
     *  (observability only; reset per iteration). */
    std::vector<Cycle> layerStartLocal_;

    StatGroup stats_;
    Counter &readTx_;
    Counter &writeTx_;
    Counter &xlatRetries_;
    Counter &dramRetries_;
};

} // namespace mnpu

#endif // MNPU_CORE_NPU_CORE_HH
