#include "core/npu_core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mnpu
{

NpuCore::NpuCore(const CoreConfig &config, const TraceGenerator &trace,
                 Mmu &mmu, MemoryBackend &dram, const ClockDomain &clock)
    : config_(config),
      trace_(trace),
      mmu_(mmu),
      dram_(dram),
      clock_(clock),
      tiles_(trace.tiles().size()),
      layerFinishLocal_(trace.layers().size(), 0),
      layerStartLocal_(trace.layers().size(), 0),
      stats_("core" + std::to_string(config.id)),
      readTx_(stats_.counter("read_tx")),
      writeTx_(stats_.counter("write_tx")),
      xlatRetries_(stats_.counter("xlat_retries")),
      dramRetries_(stats_.counter("dram_retries"))
{
    if (config.iterations == 0)
        fatal("core ", config.id, ": iterations must be >= 1");
}

bool
NpuCore::cursorNext(RangeCursor &cursor,
                    const std::vector<AccessRange> &ranges, Addr &out)
{
    const Addr bus = trace_.arch().busBytes;
    while (true) {
        if (!cursor.primed) {
            if (cursor.rangeIdx >= ranges.size())
                return false;
            const AccessRange &range = ranges[cursor.rangeIdx];
            cursor.next = alignDown(range.vaddr, bus);
            cursor.end = alignUp(range.vaddr + range.bytes, bus);
            cursor.primed = true;
        }
        if (cursor.next < cursor.end) {
            out = cursor.next;
            cursor.next += bus;
            if (cursor.next >= cursor.end) {
                ++cursor.rangeIdx;
                cursor.primed = false;
            }
            return true;
        }
        ++cursor.rangeIdx;
        cursor.primed = false;
    }
}

bool
NpuCore::bufferFreeForLoad(std::uint32_t tile) const
{
    // Double buffering: tile j reuses the half that tile j-2 occupied.
    return tile < retireTile_ + 2;
}

bool
NpuCore::startIterationIfNeeded(Cycle now)
{
    if (started_ && retireTile_ < tiles_.size())
        return false;
    if (!started_) {
        started_ = true;
        startedAtGlobal_ = now;
    } else {
        // Previous iteration fully retired.
        ++iteration_;
        if (iteration_ >= config_.iterations)
            return false;
    }
    std::fill(tiles_.begin(), tiles_.end(), TileState{});
    loadTile_ = 0;
    computeTile_ = 0;
    storeTile_ = 0;
    retireTile_ = 0;
    loadCursor_ = RangeCursor{};
    storeCursor_ = RangeCursor{};
    nextLayerToFinish_ = 0;
    std::fill(layerStartLocal_.begin(), layerStartLocal_.end(), 0);
    return true;
}

bool
NpuCore::hasIssuableTx() const
{
    // Conservative mirror of issueTransactions' entry conditions: true
    // whenever its next iteration would mutate state — issue a
    // transaction, or mark an exhausted tile's stores/loads as issued
    // and advance the tile pointers (also budget-gated bookkeeping).
    if (storeTile_ < tiles_.size() && tiles_[storeTile_].computeDone &&
        !tiles_[storeTile_].storesIssued) {
        return true;
    }
    return loadTile_ < tiles_.size() && bufferFreeForLoad(loadTile_);
}

bool
NpuCore::issueTransactions(Cycle now)
{
    const auto &tile_traces = trace_.tiles();
    const std::uint32_t max_out = trace_.arch().dmaMaxOutstanding;
    std::uint64_t &budget = issueBudget_;
    bool work = false;

    while (budget > 0) {
        if (static_cast<std::uint32_t>(inflightTx_.size()) >= max_out)
            break;

        // Stores drain first: they free SPM halves for the next loads.
        bool issued = false;
        while (storeTile_ < tiles_.size() &&
               tiles_[storeTile_].computeDone &&
               !tiles_[storeTile_].storesIssued) {
            Addr vaddr = 0;
            RangeCursor probe = storeCursor_;
            if (cursorNext(probe, tile_traces[storeTile_].writes,
                           vaddr)) {
                std::uint64_t tag = makeTag(config_.id, nextSeq_);
                if (!mmu_.requestTranslation(config_.id, config_.asid,
                                             vaddr, tag, now)) {
                    // MMU queue full; the probe cursor and sequence
                    // number are not committed, so the same address
                    // is retried once the MMU drains.
                    if (!xlatBlocked_) {
                        xlatBlocked_ = true;
                        xlatRetries_.inc();
                        work = true;
                    }
                    return work;
                }
                xlatBlocked_ = false;
                storeCursor_ = probe;
                ++nextSeq_;
                // Stores are activation/output traffic by construction
                // (C tensors); no tensor-map lookup needed.
                inflightTx_.emplace(
                    tag, TxInfo{storeTile_, MemOp::Write,
                                MemRegion::Activation});
                ++tiles_[storeTile_].storesOutstanding;
                ++xlatOutstanding_;
                writeTx_.inc();
                --budget;
                issued = true;
                work = true;
                break;
            }
            tiles_[storeTile_].storesIssued = true;
            ++storeTile_;
            storeCursor_ = RangeCursor{};
            work = true;
        }
        if (issued)
            continue;

        // Then prefetch loads for the next tile whose half is free.
        if (loadTile_ < tiles_.size() && bufferFreeForLoad(loadTile_)) {
            Addr vaddr = 0;
            RangeCursor probe = loadCursor_;
            if (cursorNext(probe, tile_traces[loadTile_].reads, vaddr)) {
                std::uint64_t tag = makeTag(config_.id, nextSeq_);
                if (!mmu_.requestTranslation(config_.id, config_.asid,
                                             vaddr, tag, now)) {
                    if (!xlatBlocked_) {
                        xlatBlocked_ = true;
                        xlatRetries_.inc();
                        work = true;
                    }
                    return work;
                }
                xlatBlocked_ = false;
                loadCursor_ = probe;
                ++nextSeq_;
                inflightTx_.emplace(tag,
                                    TxInfo{loadTile_, MemOp::Read,
                                           trace_.regionOf(vaddr)});
                ++tiles_[loadTile_].loadsOutstanding;
                ++xlatOutstanding_;
                readTx_.inc();
                --budget;
                work = true;
                continue;
            }
            tiles_[loadTile_].loadsIssued = true;
            ++loadTile_;
            loadCursor_ = RangeCursor{};
            work = true;
            continue;
        }
        break; // nothing issuable this cycle
    }
    return work;
}

bool
NpuCore::updateCompute(Cycle now)
{
    const Cycle local = clock_.toLocalFloor(now);
    const auto &tile_traces = trace_.tiles();

    bool work = false;
    bool progressed = true;
    while (progressed) {
        progressed = false;
        if (computeTile_ < tiles_.size()) {
            TileState &tile = tiles_[computeTile_];
            if (tile.computeStarted && !tile.computeDone &&
                local >= tile.computeDoneLocal) {
                tile.computeDone = true;
                // Record layer completion at the compute-done cycle.
                const std::uint32_t layer =
                    tile_traces[computeTile_].layerIndex;
                const LayerTrace &layer_trace = trace_.layers()[layer];
                if (computeTile_ + 1 ==
                    layer_trace.firstTile + layer_trace.tileCount) {
                    layerFinishLocal_[layer] = tile.computeDoneLocal;
                    if (traceSink_) {
                        traceSink_->complete(
                            config_.id, 0, "layer", layer_trace.name,
                            clock_.toGlobal(layerStartLocal_[layer]),
                            clock_.toGlobal(tile.computeDoneLocal));
                    }
                }
                ++computeTile_;
                progressed = true;
            } else if (!tile.computeStarted && tile.loadsDone()) {
                Cycle start = std::max(local, computeFreeLocal_);
                Cycle cycles = std::max<Cycle>(
                    1, tile_traces[computeTile_].computeCycles);
                tile.computeStarted = true;
                tile.computeDoneLocal = start + cycles;
                // The compute window is fully determined here, so the
                // span can be emitted at this event boundary (no
                // per-cycle sampling — cycle skipping never misses it).
                const std::uint32_t layer =
                    tile_traces[computeTile_].layerIndex;
                if (computeTile_ == trace_.layers()[layer].firstTile)
                    layerStartLocal_[layer] = start;
                if (traceSink_ && traceSink_->wants(TraceLevel::Tiles)) {
                    traceSink_->complete(
                        config_.id, 0, "tile",
                        "tile " + std::to_string(computeTile_),
                        clock_.toGlobal(start),
                        clock_.toGlobal(tile.computeDoneLocal));
                }
                computeFreeLocal_ = tile.computeDoneLocal;
                progressed = true;
                work = true;
                if (local >= tile.computeDoneLocal)
                    continue; // completes within this cycle window
            }
        }
        // Tiles with no writes become storesIssued in the issue pass;
        // retire any fully finished prefix.
        while (retireTile_ < tiles_.size() &&
               tiles_[retireTile_].retired()) {
            ++retireTile_;
            progressed = true;
        }
        work |= progressed;
    }
    return work;
}

bool
NpuCore::checkDone(Cycle now)
{
    if (retireTile_ < tiles_.size())
        return false;
    if (iteration_ + 1 >= config_.iterations) {
        if (!done_) {
            done_ = true;
            finishedAtGlobal_ = now;
            return true;
        }
        return false;
    }
    return startIterationIfNeeded(now);
}

bool
NpuCore::tick(Cycle now)
{
    if (fastMode_)
        return fastTick(now);
    poked_ = false;
    if (done_ || now < config_.startCycleGlobal)
        return false;
    if (stalled_)
        return false;
    if (injector_ && injector_->fire(FaultSite::CoreStall)) {
        // Freeze forever; only the watchdog budget can end the run.
        stalled_ = true;
        return true;
    }
    bool work = false;
    if (!started_)
        work |= startIterationIfNeeded(now);
    if (done_)
        return work;

    // Refresh the DMA issue budget once per *local* cycle: unspent
    // budget carries across global ticks within the same local cycle
    // but does not accumulate across local cycles (a DMA port issues
    // at most dmaIssueWidth transactions per core clock). The refresh
    // is reconstructed as of tr — the first global cycle that attained
    // the current local cycle — so a scheduler that skipped tr (no
    // work happened there) computes the exact budget the per-cycle
    // scheduler was carrying: the span (tr, now] lies within one local
    // cycle, and skipped cycles spend nothing.
    const Cycle local = clock_.toLocalFloor(now);
    const std::uint64_t width = trace_.arch().dmaIssueWidth;
    if (!budgetPrimed_ || local > lastLocalSeen_) {
        Cycle locals_per_global = std::max<Cycle>(
            1, ceilDiv(clock_.localMhz(), clock_.globalMhz()));
        Cycle delta = Cycle{1};
        if (budgetPrimed_) {
            const Cycle tr = clock_.toGlobal(local);
            delta = local - clock_.toLocalFloor(tr - 1);
        }
        issueBudget_ = width * std::min<Cycle>(
            std::max<Cycle>(delta, 1), locals_per_global);
        lastLocalSeen_ = local;
        budgetPrimed_ = true;
    }

    // Push already-translated transactions into DRAM.
    while (!dramReady_.empty()) {
        if (!dram_.tryEnqueue(dramReady_.front(), now)) {
            if (!dramBlocked_) {
                dramBlocked_ = true;
                dramRetries_.inc();
                work = true;
            }
            break;
        }
        dramBlocked_ = false;
        if (requestTracer_)
            requestTracer_->record(now, 1);
        dramReady_.pop_front();
        work = true;
    }

    work |= updateCompute(now);
    work |= issueTransactions(now);
    work |= updateCompute(now);
    work |= checkDone(now);
    return work;
}

void
NpuCore::onTranslation(std::uint64_t tag, Addr paddr, Cycle)
{
    auto it = inflightTx_.find(tag);
    mnpu_assert(it != inflightTx_.end(), "translation for unknown tag");
    mnpu_assert(xlatOutstanding_ > 0);
    poked_ = true;
    --xlatOutstanding_;
    DramRequest request;
    request.paddr = paddr;
    request.op = it->second.op;
    request.core = config_.id;
    request.tag = tag;
    request.region = it->second.region;
    dramReady_.push_back(request);
}

void
NpuCore::onDramCompletion(std::uint64_t tag, Cycle)
{
    auto it = inflightTx_.find(tag);
    mnpu_assert(it != inflightTx_.end(), "DRAM completion for unknown tag");
    poked_ = true;
    TileState &tile = tiles_[it->second.tile];
    if (it->second.op == MemOp::Read) {
        mnpu_assert(tile.loadsOutstanding > 0);
        --tile.loadsOutstanding;
    } else {
        mnpu_assert(tile.storesOutstanding > 0);
        --tile.storesOutstanding;
    }
    inflightTx_.erase(it);
}

Cycle
NpuCore::nextTickCycle(Cycle now) const
{
    // The fast model is event-complete (every state change happens at
    // a precomputed doneAt), so the sharp bound is safe for the cycle
    // scheduler too.
    if (fastMode_)
        return fastNextEventCycle(now);
    if (done_)
        return kCycleNever;
    if (stalled_)
        return now + 1; // livelock by design; the watchdog ends the run
    if (!started_)
        return std::max(now + 1, config_.startCycleGlobal);
    // Waiting on the memory system: the MMU/DRAM next-event covers us,
    // but issue opportunities may appear each cycle.
    if (!dramReady_.empty() || !inflightTx_.empty())
        return now + 1;
    if (computeTile_ < tiles_.size()) {
        const TileState &tile = tiles_[computeTile_];
        if (tile.computeStarted && !tile.computeDone) {
            // Pure compute: fast-forward to completion, unless DMA work
            // could proceed meanwhile.
            if (loadTile_ < tiles_.size() &&
                bufferFreeForLoad(loadTile_)) {
                return now + 1;
            }
            return std::max(now + 1,
                            clock_.toGlobal(tile.computeDoneLocal));
        }
    }
    return now + 1;
}

Cycle
NpuCore::nextEventCycle(Cycle now) const
{
    if (fastMode_)
        return fastNextEventCycle(now);
    if (done_)
        return kCycleNever;
    if (stalled_)
        return now + 1; // livelock by design; the watchdog ends the run
    if (!started_)
        return std::max(now + 1, config_.startCycleGlobal);

    Cycle next = kCycleNever;
    auto consider = [&](Cycle at) {
        next = std::min(next, std::max(at, now + 1));
    };

    // Self-timed: the running tile finishes computing at a known local
    // cycle regardless of the memory system.
    if (computeTile_ < tiles_.size()) {
        const TileState &tile = tiles_[computeTile_];
        if (tile.computeStarted && !tile.computeDone)
            consider(clock_.toGlobal(tile.computeDoneLocal));
    }

    // DMA issue: only when a transaction is actually issuable. Pending
    // DRAM pushes (dramReady_) and outstanding completions (inflightTx_)
    // need no candidate — they advance only at cycles the DRAM/MMU
    // bounds already visit, and those components tick before us.
    if (inflightTx_.size() < trace_.arch().dmaMaxOutstanding &&
        hasIssuableTx()) {
        if (issueBudget_ == 0) {
            // Budget refreshes at the first global cycle of the next
            // local cycle.
            consider(clock_.toGlobal(lastLocalSeen_ + 1));
        } else if (mmu_.canAcceptTranslation(config_.id)) {
            consider(now + 1);
        } else if (!xlatBlocked_) {
            // First failed attempt against a full MMU queue is itself a
            // state change (the retry counter's episode transition) and
            // must land exactly where the per-cycle scheduler lands it.
            consider(now + 1);
        }
        // else: blocked on a full MMU queue mid-episode; the MMU bound
        // covers the cycle its pending queue next drains.
    }
    return next;
}

// --- Fast (analytic) fidelity -------------------------------------------
//
// One tile phase (all loads of a tile, or all its stores) advances in a
// single closed-form step instead of per-transaction round trips:
//
//   tx           = bus-aligned transaction count over the phase's ranges
//   xlat         = Mmu::fastTranslate over the distinct pages touched
//   start        = max(now + xlat.latency, dmaFree)       [issue serializes]
//   issue        = toGlobal(ceil(tx / dmaIssueWidth))     [port width]
//   done         = max(DramSystem::fastTransfer(tx, start), start + issue)
//   dmaFree      = start + issue
//
// Compute timing, the double-buffer reuse rule (loads for tile j only
// after tile j-2 retired), retirement, and layer recording all reuse the
// exact engine's updateCompute()/checkDone() unchanged — only the memory
// phases are replaced. Phase completions settle at their precomputed
// doneAt cycles, so the event bound below is exhaustive: every state
// change of the fast model happens at a cycle it reports.

bool
NpuCore::completeFastPhases(Cycle now)
{
    const auto n = static_cast<std::uint32_t>(tiles_.size());
    bool work = false;
    for (std::uint32_t t = retireTile_; t < std::min(loadTile_, n); ++t) {
        TileState &tile = tiles_[t];
        if (tile.loadsIssued && tile.loadsOutstanding > 0 &&
            now >= tile.loadsDoneAt) {
            tile.loadsOutstanding = 0;
            work = true;
        }
    }
    for (std::uint32_t t = retireTile_; t < std::min(storeTile_, n); ++t) {
        TileState &tile = tiles_[t];
        if (tile.storesIssued && tile.storesOutstanding > 0 &&
            now >= tile.storesDoneAt) {
            tile.storesOutstanding = 0;
            work = true;
        }
    }
    return work;
}

Cycle
NpuCore::fastMemoryPhase(const std::vector<AccessRange> &ranges, MemOp op,
                         Cycle now)
{
    const Addr bus = trace_.arch().busBytes;
    const std::uint64_t page_bytes = mmu_.pageBytes();
    std::uint64_t tx = 0;
    std::vector<Addr> pages;
    Addr last_page = kAddrInvalid;
    for (const AccessRange &range : ranges) {
        if (range.bytes == 0)
            continue;
        const Addr lo = alignDown(range.vaddr, bus);
        const Addr hi = alignUp(range.vaddr + range.bytes, bus);
        tx += (hi - lo) / bus;
        const Addr first = lo / page_bytes;
        const Addr last = (hi - 1) / page_bytes;
        for (Addr p = first; p <= last; ++p) {
            if (p == last_page)
                continue; // consecutive-page dedupe across ranges
            last_page = p;
            pages.push_back(p * page_bytes);
        }
    }
    if (tx == 0)
        return now;

    Mmu::FastXlatResult xlat =
        mmu_.fastTranslate(config_.id, config_.asid, pages, now);
    const Cycle start =
        std::max(now + xlat.latency, fastDmaFreeGlobal_);
    const std::uint64_t width =
        std::max<std::uint64_t>(1, trace_.arch().dmaIssueWidth);
    const Cycle issue_globals =
        std::max<Cycle>(1, clock_.toGlobal(ceilDiv(tx, width)));
    const Cycle dram_done =
        dram_.fastTransfer(config_.id, tx, op == MemOp::Write, start);
    fastDmaFreeGlobal_ = start + issue_globals;
    if (op == MemOp::Write)
        writeTx_.inc(tx);
    else
        readTx_.inc(tx);
    // Batch acceptance recorded at issue start; start is nondecreasing
    // across phases (it never precedes the DMA-free horizon).
    if (requestTracer_)
        requestTracer_->record(start, tx);
    return std::max(dram_done, fastDmaFreeGlobal_);
}

bool
NpuCore::issueFastPhases(Cycle now)
{
    const auto &tile_traces = trace_.tiles();
    bool work = false;
    // Stores drain first: they free SPM halves for the next loads
    // (mirrors the exact engine's priority).
    while (storeTile_ < tiles_.size() &&
           tiles_[storeTile_].computeDone &&
           !tiles_[storeTile_].storesIssued) {
        TileState &tile = tiles_[storeTile_];
        const Cycle done = fastMemoryPhase(
            tile_traces[storeTile_].writes, MemOp::Write, now);
        tile.storesIssued = true;
        if (done > now) {
            tile.storesOutstanding = 1;
            tile.storesDoneAt = done;
        }
        ++storeTile_;
        work = true;
    }
    while (loadTile_ < tiles_.size() && bufferFreeForLoad(loadTile_)) {
        TileState &tile = tiles_[loadTile_];
        const Cycle done = fastMemoryPhase(
            tile_traces[loadTile_].reads, MemOp::Read, now);
        tile.loadsIssued = true;
        if (done > now) {
            tile.loadsOutstanding = 1;
            tile.loadsDoneAt = done;
        }
        ++loadTile_;
        work = true;
    }
    return work;
}

bool
NpuCore::fastTick(Cycle now)
{
    poked_ = false;
    if (done_ || now < config_.startCycleGlobal)
        return false;
    bool work = false;
    if (!started_)
        work |= startIterationIfNeeded(now);
    if (done_)
        return work;
    work |= completeFastPhases(now);
    work |= updateCompute(now);
    work |= issueFastPhases(now);
    work |= updateCompute(now);
    work |= checkDone(now);
    return work;
}

Cycle
NpuCore::fastNextEventCycle(Cycle now) const
{
    if (done_)
        return kCycleNever;
    if (!started_)
        return std::max(now + 1, config_.startCycleGlobal);

    Cycle next = kCycleNever;
    auto consider = [&](Cycle at) {
        next = std::min(next, std::max(at, now + 1));
    };
    if (computeTile_ < tiles_.size()) {
        const TileState &tile = tiles_[computeTile_];
        if (tile.computeStarted && !tile.computeDone)
            consider(clock_.toGlobal(tile.computeDoneLocal));
    }
    const auto n = static_cast<std::uint32_t>(tiles_.size());
    for (std::uint32_t t = retireTile_; t < std::min(loadTile_, n); ++t) {
        const TileState &tile = tiles_[t];
        if (tile.loadsIssued && tile.loadsOutstanding > 0)
            consider(tile.loadsDoneAt);
    }
    for (std::uint32_t t = retireTile_; t < std::min(storeTile_, n); ++t) {
        const TileState &tile = tiles_[t];
        if (tile.storesIssued && tile.storesOutstanding > 0)
            consider(tile.storesDoneAt);
    }
    // Safety net: an issuable-but-unissued phase can only appear when
    // one of the events above lands (issueFastPhases drains every
    // issuable phase within each tick), but a now+1 candidate while
    // one exists is cheap and keeps the bound trivially conservative.
    if ((storeTile_ < n && tiles_[storeTile_].computeDone &&
         !tiles_[storeTile_].storesIssued) ||
        (loadTile_ < n && bufferFreeForLoad(loadTile_))) {
        consider(now + 1);
    }
    return next;
}

Cycle
NpuCore::totalLocalCycles() const
{
    mnpu_assert(done_, "totalLocalCycles before completion");
    return clock_.toLocalFloor(finishedAtGlobal_) -
           clock_.toLocalFloor(startedAtGlobal_);
}

double
NpuCore::peUtilization() const
{
    Cycle cycles = totalLocalCycles();
    if (cycles == 0)
        return 0.0;
    double pes = static_cast<double>(trace_.arch().arrayRows) *
                 trace_.arch().arrayCols;
    double macs = static_cast<double>(trace_.totalMacs()) *
                  config_.iterations;
    return macs / (pes * static_cast<double>(cycles));
}

void
NpuCore::enableRequestTrace(Cycle window_cycles)
{
    requestTracer_.emplace(window_cycles);
}

const IntervalTracer &
NpuCore::requestTrace() const
{
    mnpu_assert(requestTracer_.has_value(), "request trace not enabled");
    return *requestTracer_;
}

void
NpuCore::finalizeRequestTrace()
{
    if (requestTracer_)
        requestTracer_->finalize();
}

void
NpuCore::saveState(StateWriter &out) const
{
    out.section("CORE");
    out.b(started_);
    out.b(done_);
    out.b(stalled_);
    out.u64(startedAtGlobal_);
    out.u64(finishedAtGlobal_);
    out.u32(iteration_);

    out.u64(tiles_.size());
    for (const TileState &tile : tiles_) {
        out.b(tile.loadsIssued);
        out.u32(tile.loadsOutstanding);
        out.b(tile.computeStarted);
        out.b(tile.computeDone);
        out.u64(tile.computeDoneLocal);
        out.b(tile.storesIssued);
        out.u32(tile.storesOutstanding);
        out.u64(tile.loadsDoneAt);
        out.u64(tile.storesDoneAt);
    }
    out.u32(loadTile_);
    out.u32(computeTile_);
    out.u32(storeTile_);
    out.u32(retireTile_);
    auto put_cursor = [&out](const RangeCursor &cursor) {
        out.u64(cursor.rangeIdx);
        out.u64(cursor.next);
        out.u64(cursor.end);
        out.b(cursor.primed);
    };
    put_cursor(loadCursor_);
    put_cursor(storeCursor_);
    out.u64(computeFreeLocal_);

    out.u64(nextSeq_);
    // In-flight transactions sorted by tag for deterministic bytes
    // (the map is lookup-only; iteration order never reaches timing).
    std::vector<std::uint64_t> tags;
    tags.reserve(inflightTx_.size());
    for (const auto &entry : inflightTx_)
        tags.push_back(entry.first);
    std::sort(tags.begin(), tags.end());
    out.u64(tags.size());
    for (std::uint64_t tag : tags) {
        const TxInfo &info = inflightTx_.at(tag);
        out.u64(tag);
        out.u32(info.tile);
        out.u8(info.op == MemOp::Write ? 1 : 0);
        out.u8(static_cast<std::uint8_t>(info.region));
    }
    out.u64(dramReady_.size());
    for (const DramRequest &request : dramReady_) {
        out.u64(request.paddr);
        out.u8(request.op == MemOp::Write ? 1 : 0);
        out.u32(request.core);
        out.u64(request.tag);
        out.b(request.priority);
        out.u64(request.integrityId);
        out.u64(request.enqueuedAt);
        out.u8(static_cast<std::uint8_t>(request.region));
    }
    out.u32(xlatOutstanding_);
    out.u64(lastLocalSeen_);
    out.u64(issueBudget_);
    out.b(budgetPrimed_);
    out.u64(fastDmaFreeGlobal_);
    out.b(dramBlocked_);
    out.b(xlatBlocked_);
    out.b(poked_);
    out.u64Vec(layerFinishLocal_);
    out.u64(nextLayerToFinish_);
    out.u64Vec(layerStartLocal_);
    out.b(requestTracer_.has_value());
    if (requestTracer_)
        requestTracer_->saveState(out);
    stats_.saveState(out);
}

void
NpuCore::loadState(StateReader &in)
{
    in.section("CORE");
    started_ = in.b();
    done_ = in.b();
    stalled_ = in.b();
    startedAtGlobal_ = in.u64();
    finishedAtGlobal_ = in.u64();
    iteration_ = in.u32();

    if (in.u64() != tiles_.size())
        throw SnapshotError("core tile count mismatch");
    for (TileState &tile : tiles_) {
        tile.loadsIssued = in.b();
        tile.loadsOutstanding = in.u32();
        tile.computeStarted = in.b();
        tile.computeDone = in.b();
        tile.computeDoneLocal = in.u64();
        tile.storesIssued = in.b();
        tile.storesOutstanding = in.u32();
        tile.loadsDoneAt = in.u64();
        tile.storesDoneAt = in.u64();
    }
    loadTile_ = in.u32();
    computeTile_ = in.u32();
    storeTile_ = in.u32();
    retireTile_ = in.u32();
    auto get_cursor = [&in](RangeCursor &cursor) {
        cursor.rangeIdx = in.u64();
        cursor.next = in.u64();
        cursor.end = in.u64();
        cursor.primed = in.b();
    };
    get_cursor(loadCursor_);
    get_cursor(storeCursor_);
    computeFreeLocal_ = in.u64();

    nextSeq_ = in.u64();
    inflightTx_.clear();
    std::uint64_t num_tx = in.u64();
    for (std::uint64_t i = 0; i < num_tx; ++i) {
        std::uint64_t tag = in.u64();
        TxInfo info;
        info.tile = in.u32();
        info.op = in.u8() != 0 ? MemOp::Write : MemOp::Read;
        info.region = static_cast<MemRegion>(in.u8());
        inflightTx_.emplace(tag, info);
    }
    dramReady_.clear();
    std::uint64_t num_ready = in.u64();
    for (std::uint64_t i = 0; i < num_ready; ++i) {
        DramRequest request;
        request.paddr = in.u64();
        request.op = in.u8() != 0 ? MemOp::Write : MemOp::Read;
        request.core = in.u32();
        request.tag = in.u64();
        request.priority = in.b();
        request.integrityId = in.u64();
        request.enqueuedAt = in.u64();
        request.region = static_cast<MemRegion>(in.u8());
        dramReady_.push_back(request);
    }
    xlatOutstanding_ = in.u32();
    lastLocalSeen_ = in.u64();
    issueBudget_ = in.u64();
    budgetPrimed_ = in.b();
    fastDmaFreeGlobal_ = in.u64();
    dramBlocked_ = in.b();
    xlatBlocked_ = in.b();
    poked_ = in.b();
    layerFinishLocal_ = in.u64Vec();
    nextLayerToFinish_ = in.u64();
    layerStartLocal_ = in.u64Vec();
    if (in.b() != requestTracer_.has_value())
        throw SnapshotError("request-trace enablement mismatch");
    if (requestTracer_)
        requestTracer_->loadState(in);
    stats_.loadState(in);
}

} // namespace mnpu
