#include "core/npu_core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mnpu
{

NpuCore::NpuCore(const CoreConfig &config, const TraceGenerator &trace,
                 Mmu &mmu, DramSystem &dram, const ClockDomain &clock)
    : config_(config),
      trace_(trace),
      mmu_(mmu),
      dram_(dram),
      clock_(clock),
      tiles_(trace.tiles().size()),
      layerFinishLocal_(trace.layers().size(), 0),
      stats_("core" + std::to_string(config.id)),
      readTx_(stats_.counter("read_tx")),
      writeTx_(stats_.counter("write_tx")),
      xlatRetries_(stats_.counter("xlat_retries")),
      dramRetries_(stats_.counter("dram_retries"))
{
    if (config.iterations == 0)
        fatal("core ", config.id, ": iterations must be >= 1");
}

bool
NpuCore::cursorNext(RangeCursor &cursor,
                    const std::vector<AccessRange> &ranges, Addr &out)
{
    const Addr bus = trace_.arch().busBytes;
    while (true) {
        if (!cursor.primed) {
            if (cursor.rangeIdx >= ranges.size())
                return false;
            const AccessRange &range = ranges[cursor.rangeIdx];
            cursor.next = alignDown(range.vaddr, bus);
            cursor.end = alignUp(range.vaddr + range.bytes, bus);
            cursor.primed = true;
        }
        if (cursor.next < cursor.end) {
            out = cursor.next;
            cursor.next += bus;
            if (cursor.next >= cursor.end) {
                ++cursor.rangeIdx;
                cursor.primed = false;
            }
            return true;
        }
        ++cursor.rangeIdx;
        cursor.primed = false;
    }
}

bool
NpuCore::bufferFreeForLoad(std::uint32_t tile) const
{
    // Double buffering: tile j reuses the half that tile j-2 occupied.
    return tile < retireTile_ + 2;
}

void
NpuCore::startIterationIfNeeded(Cycle now)
{
    if (started_ && retireTile_ < tiles_.size())
        return;
    if (!started_) {
        started_ = true;
        startedAtGlobal_ = now;
    } else {
        // Previous iteration fully retired.
        ++iteration_;
        if (iteration_ >= config_.iterations)
            return;
    }
    std::fill(tiles_.begin(), tiles_.end(), TileState{});
    loadTile_ = 0;
    computeTile_ = 0;
    storeTile_ = 0;
    retireTile_ = 0;
    loadCursor_ = RangeCursor{};
    storeCursor_ = RangeCursor{};
    nextLayerToFinish_ = 0;
}

void
NpuCore::issueTransactions(Cycle now)
{
    const auto &tile_traces = trace_.tiles();
    const std::uint32_t max_out = trace_.arch().dmaMaxOutstanding;
    std::uint64_t &budget = issueBudget_;

    while (budget > 0) {
        if (static_cast<std::uint32_t>(inflightTx_.size()) >= max_out)
            break;

        // Stores drain first: they free SPM halves for the next loads.
        bool issued = false;
        while (storeTile_ < tiles_.size() &&
               tiles_[storeTile_].computeDone &&
               !tiles_[storeTile_].storesIssued) {
            Addr vaddr = 0;
            if (cursorNext(storeCursor_, tile_traces[storeTile_].writes,
                           vaddr)) {
                std::uint64_t tag = makeTag(config_.id, nextSeq_++);
                if (!mmu_.requestTranslation(config_.id, config_.asid,
                                             vaddr, tag, now)) {
                    xlatRetries_.inc();
                    return; // MMU queue full; retry next cycle
                }
                inflightTx_.emplace(tag, TxInfo{storeTile_, MemOp::Write});
                ++tiles_[storeTile_].storesOutstanding;
                ++xlatOutstanding_;
                writeTx_.inc();
                --budget;
                issued = true;
                break;
            }
            tiles_[storeTile_].storesIssued = true;
            ++storeTile_;
            storeCursor_ = RangeCursor{};
        }
        if (issued)
            continue;

        // Then prefetch loads for the next tile whose half is free.
        if (loadTile_ < tiles_.size() && bufferFreeForLoad(loadTile_)) {
            Addr vaddr = 0;
            if (cursorNext(loadCursor_, tile_traces[loadTile_].reads,
                           vaddr)) {
                std::uint64_t tag = makeTag(config_.id, nextSeq_++);
                if (!mmu_.requestTranslation(config_.id, config_.asid,
                                             vaddr, tag, now)) {
                    xlatRetries_.inc();
                    return;
                }
                inflightTx_.emplace(tag, TxInfo{loadTile_, MemOp::Read});
                ++tiles_[loadTile_].loadsOutstanding;
                ++xlatOutstanding_;
                readTx_.inc();
                --budget;
                continue;
            }
            tiles_[loadTile_].loadsIssued = true;
            ++loadTile_;
            loadCursor_ = RangeCursor{};
            continue;
        }
        break; // nothing issuable this cycle
    }
}

void
NpuCore::updateCompute(Cycle now)
{
    const Cycle local = clock_.toLocalFloor(now);
    const auto &tile_traces = trace_.tiles();

    bool progressed = true;
    while (progressed) {
        progressed = false;
        if (computeTile_ < tiles_.size()) {
            TileState &tile = tiles_[computeTile_];
            if (tile.computeStarted && !tile.computeDone &&
                local >= tile.computeDoneLocal) {
                tile.computeDone = true;
                // Record layer completion at the compute-done cycle.
                const std::uint32_t layer =
                    tile_traces[computeTile_].layerIndex;
                const LayerTrace &layer_trace = trace_.layers()[layer];
                if (computeTile_ + 1 ==
                    layer_trace.firstTile + layer_trace.tileCount) {
                    layerFinishLocal_[layer] = tile.computeDoneLocal;
                }
                ++computeTile_;
                progressed = true;
            } else if (!tile.computeStarted && tile.loadsDone()) {
                Cycle start = std::max(local, computeFreeLocal_);
                Cycle cycles = std::max<Cycle>(
                    1, tile_traces[computeTile_].computeCycles);
                tile.computeStarted = true;
                tile.computeDoneLocal = start + cycles;
                computeFreeLocal_ = tile.computeDoneLocal;
                progressed = true;
                if (local >= tile.computeDoneLocal)
                    continue; // completes within this cycle window
            }
        }
        // Tiles with no writes become storesIssued in the issue pass;
        // retire any fully finished prefix.
        while (retireTile_ < tiles_.size() &&
               tiles_[retireTile_].retired()) {
            ++retireTile_;
            progressed = true;
        }
    }
}

void
NpuCore::checkDone(Cycle now)
{
    if (retireTile_ < tiles_.size())
        return;
    if (iteration_ + 1 >= config_.iterations) {
        if (!done_) {
            done_ = true;
            finishedAtGlobal_ = now;
        }
        return;
    }
    startIterationIfNeeded(now);
}

void
NpuCore::tick(Cycle now)
{
    if (done_ || now < config_.startCycleGlobal)
        return;
    if (stalled_)
        return;
    if (injector_ && injector_->fire(FaultSite::CoreStall)) {
        // Freeze forever; only the watchdog budget can end the run.
        stalled_ = true;
        return;
    }
    if (!started_)
        startIterationIfNeeded(now);
    if (done_)
        return;

    // Refresh the DMA issue budget once per *local* cycle: unspent
    // budget carries across global ticks within the same local cycle
    // but does not accumulate across local cycles (a DMA port issues
    // at most dmaIssueWidth transactions per core clock).
    const Cycle local = clock_.toLocalFloor(now);
    const std::uint64_t width = trace_.arch().dmaIssueWidth;
    if (!budgetPrimed_ || local > lastLocalSeen_) {
        Cycle locals_per_global = std::max<Cycle>(
            1, ceilDiv(clock_.localMhz(), clock_.globalMhz()));
        Cycle delta =
            budgetPrimed_ ? local - lastLocalSeen_ : Cycle{1};
        issueBudget_ = width * std::min<Cycle>(
            std::max<Cycle>(delta, 1), locals_per_global);
        lastLocalSeen_ = local;
        budgetPrimed_ = true;
    }

    // Push already-translated transactions into DRAM.
    while (!dramReady_.empty()) {
        if (!dram_.tryEnqueue(dramReady_.front(), now)) {
            dramRetries_.inc();
            break;
        }
        if (requestTracer_)
            requestTracer_->record(now, 1);
        dramReady_.pop_front();
    }

    updateCompute(now);
    issueTransactions(now);
    updateCompute(now);
    checkDone(now);
}

void
NpuCore::onTranslation(std::uint64_t tag, Addr paddr, Cycle)
{
    auto it = inflightTx_.find(tag);
    mnpu_assert(it != inflightTx_.end(), "translation for unknown tag");
    mnpu_assert(xlatOutstanding_ > 0);
    --xlatOutstanding_;
    DramRequest request;
    request.paddr = paddr;
    request.op = it->second.op;
    request.core = config_.id;
    request.tag = tag;
    dramReady_.push_back(request);
}

void
NpuCore::onDramCompletion(std::uint64_t tag, Cycle)
{
    auto it = inflightTx_.find(tag);
    mnpu_assert(it != inflightTx_.end(), "DRAM completion for unknown tag");
    TileState &tile = tiles_[it->second.tile];
    if (it->second.op == MemOp::Read) {
        mnpu_assert(tile.loadsOutstanding > 0);
        --tile.loadsOutstanding;
    } else {
        mnpu_assert(tile.storesOutstanding > 0);
        --tile.storesOutstanding;
    }
    inflightTx_.erase(it);
}

Cycle
NpuCore::nextEventCycle(Cycle now) const
{
    if (done_)
        return kCycleNever;
    if (stalled_)
        return now + 1; // livelock by design; the watchdog ends the run
    if (!started_)
        return std::max(now + 1, config_.startCycleGlobal);
    // Waiting on the memory system: the MMU/DRAM next-event covers us,
    // but issue opportunities may appear each cycle.
    if (!dramReady_.empty() || !inflightTx_.empty())
        return now + 1;
    if (computeTile_ < tiles_.size()) {
        const TileState &tile = tiles_[computeTile_];
        if (tile.computeStarted && !tile.computeDone) {
            // Pure compute: fast-forward to completion, unless DMA work
            // could proceed meanwhile.
            if (loadTile_ < tiles_.size() &&
                bufferFreeForLoad(loadTile_)) {
                return now + 1;
            }
            return std::max(now + 1,
                            clock_.toGlobal(tile.computeDoneLocal));
        }
    }
    return now + 1;
}

Cycle
NpuCore::totalLocalCycles() const
{
    mnpu_assert(done_, "totalLocalCycles before completion");
    return clock_.toLocalFloor(finishedAtGlobal_) -
           clock_.toLocalFloor(startedAtGlobal_);
}

double
NpuCore::peUtilization() const
{
    Cycle cycles = totalLocalCycles();
    if (cycles == 0)
        return 0.0;
    double pes = static_cast<double>(trace_.arch().arrayRows) *
                 trace_.arch().arrayCols;
    double macs = static_cast<double>(trace_.totalMacs()) *
                  config_.iterations;
    return macs / (pes * static_cast<double>(cycles));
}

void
NpuCore::enableRequestTrace(Cycle window_cycles)
{
    requestTracer_.emplace(window_cycles);
}

const IntervalTracer &
NpuCore::requestTrace() const
{
    mnpu_assert(requestTracer_.has_value(), "request trace not enabled");
    return *requestTracer_;
}

void
NpuCore::finalizeRequestTrace()
{
    if (requestTracer_)
        requestTracer_->finalize();
}

} // namespace mnpu
