/**
 * @file
 * Tests for the ThreadPool and the parallel SweepRunner: the central
 * determinism guarantee (the same sweep run serially and with jobs=4
 * produces bit-identical SimResults per mix), per-job fault
 * containment, watchdog budgets, and crash-safe checkpoint/resume.
 * The CI TSan job re-builds the suite with -fsanitize=thread and runs
 * these suites (--gtest_filter=ThreadPool*:SweepRunner*:
 * SweepCheckpoint*:ExperimentContext*:Logging*) to catch races in the
 * shared ExperimentContext caches and the checkpoint writer under
 * real interleaving.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>
#include <vector>

#include "analysis/mixes.hh"
#include "analysis/sweep_checkpoint.hh"
#include "analysis/sweep_runner.hh"
#include "common/errors.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sw/network.hh"
#include "workloads/models.hh"

namespace mnpu
{
namespace
{

// --- ThreadPool ---

TEST(ThreadPoolTest, InlineModeRunsInOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::vector<std::size_t> order;
    pool.parallelFor(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    constexpr std::size_t count = 1000;
    std::vector<std::atomic<int>> hits(count);
    pool.parallelFor(count, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(64, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 64u * 63u / 2);
    }
}

TEST(ThreadPoolTest, PropagatesFirstException)
{
    for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool pool(jobs);
        EXPECT_THROW(pool.parallelFor(16,
                                      [](std::size_t i) {
                                          if (i % 2 == 1)
                                              fatal("boom at ", i);
                                      }),
                     FatalError);
        // The pool must stay usable after a failed batch.
        std::atomic<std::size_t> ran{0};
        pool.parallelFor(8, [&](std::size_t) { ++ran; });
        EXPECT_EQ(ran.load(), 8u);
    }
}

TEST(ThreadPoolTest, CollectModeRunsEveryTaskAndKeepsEachException)
{
    for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool pool(jobs);
        std::vector<std::atomic<int>> hits(16);
        auto errors = pool.parallelForCollect(16, [&](std::size_t i) {
            ++hits[i];
            if (i % 3 == 0)
                fatal("boom at ", i);
        });
        ASSERT_EQ(errors.size(), 16u);
        for (std::size_t i = 0; i < errors.size(); ++i) {
            // Every index ran exactly once, failures included.
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
            if (i % 3 == 0) {
                ASSERT_TRUE(errors[i]) << "index " << i;
                try {
                    std::rethrow_exception(errors[i]);
                } catch (const FatalError &error) {
                    EXPECT_NE(std::string(error.what()).find(
                                  std::to_string(i)),
                              std::string::npos);
                }
            } else {
                EXPECT_FALSE(errors[i]) << "index " << i;
            }
        }
        // The pool must stay usable after a collected batch.
        std::atomic<std::size_t> ran{0};
        pool.parallelFor(8, [&](std::size_t) { ++ran; });
        EXPECT_EQ(ran.load(), 8u);
    }
}

TEST(ThreadPoolTest, DefaultJobCountHonorsOverride)
{
    setDefaultJobCount(3);
    EXPECT_EQ(defaultJobCount(), 3u);
    ThreadPool pool;
    EXPECT_EQ(pool.jobs(), 3u);
    setDefaultJobCount(0);
    EXPECT_GE(defaultJobCount(), 1u);
}

// --- SweepRunner determinism ---

ArchConfig
sweepArch()
{
    ArchConfig arch;
    arch.name = "tiny";
    arch.arrayRows = 16;
    arch.arrayCols = 16;
    arch.spmBytes = 64 << 10;
    arch.dataBytes = 1;
    arch.freqMhz = 1000;
    arch.validate();
    return arch;
}

NpuMemConfig
sweepMem()
{
    NpuMemConfig mem;
    mem.channelsPerNpu = 2;
    mem.dramCapacityPerNpu = 64ULL << 20;
    mem.tlbEntriesPerNpu = 64;
    mem.tlbWays = 8;
    mem.ptwPerNpu = 4;
    return mem;
}

/** Distinct tiny GEMM networks so the mixes are heterogeneous. */
Network
sweepNetwork(std::uint32_t index)
{
    Network net;
    net.name = "net" + std::to_string(index);
    const std::uint64_t m = 128 + 64 * index;
    net.layers.push_back(Layer::gemm("g0", m, 128, 192));
    net.layers.push_back(Layer::gemm("g1", 128, m, 128));
    return net;
}

/** The context holds a mutex, so it is registered in place, not returned. */
void
registerSweepNetworks(ExperimentContext &context)
{
    for (std::uint32_t i = 0; i < 3; ++i)
        context.registerNetwork(sweepNetwork(i));
}

std::vector<SweepJob>
dualSweepJobs()
{
    std::vector<SweepJob> jobs;
    for (SharingLevel level :
         {SharingLevel::Static, SharingLevel::ShareDWT}) {
        for (const auto &mix : enumerateMultisets(3, 2)) {
            SweepJob job;
            job.config.level = level;
            job.models = {"net" + std::to_string(mix[0]),
                          "net" + std::to_string(mix[1])};
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

TEST(SweepRunnerTest, ParallelMatchesSerialBitIdentical)
{
    auto jobs = dualSweepJobs();
    ASSERT_EQ(jobs.size(), 12u); // M(3,2) = 6 mixes x 2 levels

    ExperimentContext serial_context(sweepArch(), sweepMem());
    registerSweepNetworks(serial_context);
    SweepRunner serial_runner(1);
    auto serial = serial_runner.run(serial_context, jobs);

    ExperimentContext parallel_context(sweepArch(), sweepMem());
    registerSweepNetworks(parallel_context);
    SweepRunner parallel_runner(4);
    EXPECT_EQ(parallel_runner.workers(), 4u);
    auto parallel = parallel_runner.run(parallel_context, jobs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const SimResult &a = serial[i].outcome.raw;
        const SimResult &b = parallel[i].outcome.raw;
        ASSERT_EQ(a.cores.size(), b.cores.size()) << "mix " << i;
        EXPECT_EQ(a.globalCycles, b.globalCycles) << "mix " << i;
        for (std::size_t c = 0; c < a.cores.size(); ++c) {
            EXPECT_EQ(a.cores[c].localCycles, b.cores[c].localCycles)
                << "mix " << i << " core " << c;
            EXPECT_EQ(a.cores[c].trafficBytes, b.cores[c].trafficBytes)
                << "mix " << i << " core " << c;
            EXPECT_EQ(a.cores[c].tlbHits, b.cores[c].tlbHits)
                << "mix " << i << " core " << c;
            EXPECT_EQ(a.cores[c].tlbMisses, b.cores[c].tlbMisses)
                << "mix " << i << " core " << c;
        }
        EXPECT_DOUBLE_EQ(serial[i].outcome.geomeanSpeedup,
                         parallel[i].outcome.geomeanSpeedup)
            << "mix " << i;
        EXPECT_DOUBLE_EQ(serial[i].outcome.fairnessValue,
                         parallel[i].outcome.fairnessValue)
            << "mix " << i;
    }

    const SweepStats &stats = parallel_runner.lastStats();
    EXPECT_EQ(stats.runs, jobs.size());
    EXPECT_EQ(stats.workers, 4u);
    EXPECT_GT(stats.wallSeconds, 0.0);
    EXPECT_GT(stats.runsPerSecond, 0.0);
    for (const auto &record : parallel)
        EXPECT_GT(record.wallSeconds, 0.0);
    EXPECT_FALSE(stats.summary().empty());
}

TEST(SweepRunnerTest, SharedContextServesConcurrentMixes)
{
    // All workers hammer one context's caches at once: the same mix at
    // the same level must come out identical from every worker.
    ExperimentContext context(sweepArch(), sweepMem());
    registerSweepNetworks(context);
    std::vector<SweepJob> jobs;
    for (int i = 0; i < 8; ++i) {
        SweepJob job;
        job.config.level = SharingLevel::ShareDWT;
        job.models = {"net0", "net1"};
        jobs.push_back(std::move(job));
    }
    SweepRunner runner(4);
    auto records = runner.run(context, jobs);
    ASSERT_EQ(records.size(), 8u);
    for (std::size_t i = 1; i < records.size(); ++i) {
        EXPECT_EQ(records[0].outcome.raw.cores[0].localCycles,
                  records[i].outcome.raw.cores[0].localCycles);
        EXPECT_EQ(records[0].outcome.raw.cores[1].trafficBytes,
                  records[i].outcome.raw.cores[1].trafficBytes);
    }
}

TEST(SweepRunnerTest, MapReturnsInInputOrder)
{
    SweepRunner runner(4);
    auto squares = runner.map<std::size_t>(
        100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(SweepRunnerTest, ProgressReportsEveryCompletion)
{
    ExperimentContext context(sweepArch(), sweepMem());
    registerSweepNetworks(context);
    auto jobs = dualSweepJobs();
    SweepRunner runner(2);
    std::vector<std::size_t> seen;
    runner.run(context, jobs,
               [&](std::size_t done, std::size_t total) {
                   EXPECT_EQ(total, jobs.size());
                   seen.push_back(done);
               });
    // Called under a lock with a monotonically increasing counter.
    std::vector<std::size_t> expected(jobs.size());
    std::iota(expected.begin(), expected.end(), 1);
    EXPECT_EQ(seen, expected);
}

// --- SweepRunner fault containment ---

/** Unique checkpoint path under the test temp dir, cleared up front. */
std::string
tempCheckpointPath(const char *name)
{
    std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

/** Good, FatalError (unknown model), cycle-budget blowout, good. */
std::vector<SweepJob>
containmentJobs()
{
    std::vector<SweepJob> jobs(4);
    jobs[0].models = {"net0", "net1"};
    jobs[1].models = {"no-such-model", "net0"};
    jobs[2].models = {"net0", "net2"};
    jobs[2].config.maxGlobalCycles = 10;
    jobs[3].config.level = SharingLevel::ShareDWT;
    jobs[3].models = {"net1", "net2"};
    return jobs;
}

TEST(SweepRunnerTest, KeepGoingContainsFailuresAndKeepsSurvivorsIdentical)
{
    auto jobs = containmentJobs();
    ExperimentContext context(sweepArch(), sweepMem());
    registerSweepNetworks(context);
    SweepRunner runner(4);
    SweepOptions options;
    options.keepGoing = true;
    auto records = runner.run(context, jobs, options);
    ASSERT_EQ(records.size(), 4u);

    EXPECT_EQ(records[0].status, SweepStatus::Ok);
    EXPECT_EQ(records[1].status, SweepStatus::Failed);
    EXPECT_EQ(records[2].status, SweepStatus::TimedOut);
    EXPECT_EQ(records[3].status, SweepStatus::Ok);
    EXPECT_NE(records[1].error.find("unknown model"), std::string::npos);
    EXPECT_NE(records[2].error.find("cycle-budget"), std::string::npos);

    // Failed metrics are NaN-poisoned but sized to the mix, so benches
    // indexing per-slot metrics read NaN instead of off the end.
    for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
        ASSERT_EQ(records[i].outcome.speedups.size(), 2u) << "mix " << i;
        EXPECT_TRUE(std::isnan(records[i].outcome.speedups[0]));
        EXPECT_TRUE(std::isnan(records[i].outcome.geomeanSpeedup));
        EXPECT_TRUE(std::isnan(records[i].outcome.fairnessValue));
    }

    const SweepStats &stats = runner.lastStats();
    EXPECT_EQ(stats.ok, 2u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.timedOut, 1u);
    EXPECT_EQ(stats.skipped, 0u);
    EXPECT_NE(stats.summary().find("1 failed"), std::string::npos);
    EXPECT_NE(stats.summary().find("1 timed out"), std::string::npos);

    // The survivors are bit-identical to a clean serial sweep that
    // never contained the poisoned jobs.
    ExperimentContext clean_context(sweepArch(), sweepMem());
    registerSweepNetworks(clean_context);
    SweepRunner clean_runner(1);
    auto clean = clean_runner.run(clean_context, {jobs[0], jobs[3]});
    const std::size_t survivors[2] = {0, 3};
    for (std::size_t s = 0; s < 2; ++s) {
        const SimResult &a = records[survivors[s]].outcome.raw;
        const SimResult &b = clean[s].outcome.raw;
        ASSERT_EQ(a.cores.size(), b.cores.size()) << "survivor " << s;
        EXPECT_EQ(a.globalCycles, b.globalCycles) << "survivor " << s;
        for (std::size_t c = 0; c < a.cores.size(); ++c) {
            EXPECT_EQ(a.cores[c].localCycles, b.cores[c].localCycles)
                << "survivor " << s << " core " << c;
            EXPECT_EQ(a.cores[c].trafficBytes, b.cores[c].trafficBytes)
                << "survivor " << s << " core " << c;
        }
        EXPECT_DOUBLE_EQ(records[survivors[s]].outcome.geomeanSpeedup,
                         clean[s].outcome.geomeanSpeedup)
            << "survivor " << s;
    }
}

TEST(SweepRunnerTest, FailFastRethrowsFirstFailureInInputOrder)
{
    auto jobs = containmentJobs();
    ExperimentContext context(sweepArch(), sweepMem());
    registerSweepNetworks(context);
    SweepRunner runner(4);
    // Default options: the first failing job in *input* order surfaces
    // — the FatalError mix (index 1), not the cycle-budget one (index
    // 2) — regardless of which worker finished first.
    try {
        runner.run(context, jobs, SweepOptions{});
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("unknown model"),
                  std::string::npos);
    }
}

TEST(SweepRunnerTest, CheckpointResumeExecutesOnlyUnfinishedJobs)
{
    const std::string path = tempCheckpointPath("mnpu_ckpt_resume.jsonl");
    auto jobs = dualSweepJobs();
    SweepOptions options;
    options.checkpointPath = path;
    options.resume = true;

    // Reference: a clean serial run of the full list.
    ExperimentContext reference_context(sweepArch(), sweepMem());
    registerSweepNetworks(reference_context);
    SweepRunner reference_runner(1);
    auto reference = reference_runner.run(reference_context, jobs);

    // Phase 1: a "killed" sweep — only the first 5 jobs completed.
    std::vector<SweepJob> first(jobs.begin(), jobs.begin() + 5);
    ExperimentContext context1(sweepArch(), sweepMem());
    registerSweepNetworks(context1);
    SweepRunner runner1(2);
    runner1.run(context1, first, options);

    // The kill signature: a torn trailing line with no newline.
    {
        std::ofstream torn(path, std::ios::app);
        torn << "{\"key\":\"dead";
    }

    // Phase 2: resume over the full list — the checkpointed jobs come
    // back Skipped with restored metrics; only the rest execute.
    ExperimentContext context2(sweepArch(), sweepMem());
    registerSweepNetworks(context2);
    SweepRunner runner2(2);
    std::vector<std::size_t> seen;
    auto records =
        runner2.run(context2, jobs, options,
                    [&](std::size_t done, std::size_t total) {
                        EXPECT_EQ(total, jobs.size());
                        seen.push_back(done);
                    });
    ASSERT_EQ(records.size(), jobs.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].status,
                  i < 5 ? SweepStatus::Skipped : SweepStatus::Ok)
            << "mix " << i;
        // Restored or re-executed, the metrics match the clean run.
        EXPECT_DOUBLE_EQ(records[i].outcome.geomeanSpeedup,
                         reference[i].outcome.geomeanSpeedup)
            << "mix " << i;
        EXPECT_DOUBLE_EQ(records[i].outcome.fairnessValue,
                         reference[i].outcome.fairnessValue)
            << "mix " << i;
        ASSERT_EQ(records[i].outcome.speedups.size(),
                  reference[i].outcome.speedups.size());
        for (std::size_t m = 0; m < records[i].outcome.speedups.size();
             ++m) {
            EXPECT_DOUBLE_EQ(records[i].outcome.speedups[m],
                             reference[i].outcome.speedups[m])
                << "mix " << i << " slot " << m;
        }
        // Restored records must carry the complete raw telemetry, not
        // just cycles: benches aggregate these counters through
        // runJobs(), and a resumed bench output must stay
        // bit-identical to a clean run.
        const SimResult &a = records[i].outcome.raw;
        const SimResult &b = reference[i].outcome.raw;
        EXPECT_EQ(a.globalCycles, b.globalCycles) << "mix " << i;
        EXPECT_EQ(a.dramRowHits, b.dramRowHits) << "mix " << i;
        EXPECT_EQ(a.dramRowMisses, b.dramRowMisses) << "mix " << i;
        EXPECT_DOUBLE_EQ(a.dramEnergyPj, b.dramEnergyPj) << "mix " << i;
        ASSERT_EQ(a.cores.size(), b.cores.size()) << "mix " << i;
        for (std::size_t c = 0; c < a.cores.size(); ++c) {
            const CoreResult &ca = a.cores[c];
            const CoreResult &cb = b.cores[c];
            EXPECT_EQ(ca.localCycles, cb.localCycles)
                << "mix " << i << " core " << c;
            EXPECT_EQ(ca.finishedAtGlobal, cb.finishedAtGlobal)
                << "mix " << i << " core " << c;
            EXPECT_DOUBLE_EQ(ca.peUtilization, cb.peUtilization)
                << "mix " << i << " core " << c;
            EXPECT_EQ(ca.trafficBytes, cb.trafficBytes)
                << "mix " << i << " core " << c;
            EXPECT_EQ(ca.walkBytes, cb.walkBytes)
                << "mix " << i << " core " << c;
            EXPECT_EQ(ca.tlbHits, cb.tlbHits)
                << "mix " << i << " core " << c;
            EXPECT_EQ(ca.tlbMisses, cb.tlbMisses)
                << "mix " << i << " core " << c;
            EXPECT_EQ(ca.walks, cb.walks)
                << "mix " << i << " core " << c;
            EXPECT_EQ(ca.layerFinishLocal, cb.layerFinishLocal)
                << "mix " << i << " core " << c;
        }
    }
    EXPECT_EQ(runner2.lastStats().skipped, 5u);
    EXPECT_EQ(runner2.lastStats().ok, jobs.size() - 5);
    // Throughput counts only executed jobs: a mostly-restored resume
    // must not report inflated runs/s.
    EXPECT_EQ(runner2.lastStats().executed, jobs.size() - 5);
    // Progress counts restored jobs as already done: the first callback
    // reports 6/12, the last 12/12.
    ASSERT_EQ(seen.size(), jobs.size() - 5);
    EXPECT_EQ(seen.front(), 6u);
    EXPECT_EQ(seen.back(), jobs.size());

    // Phase 3: everything is checkpointed now — nothing re-executes.
    ExperimentContext context3(sweepArch(), sweepMem());
    registerSweepNetworks(context3);
    SweepRunner runner3(2);
    auto all_skipped = runner3.run(context3, jobs, options);
    for (const auto &record : all_skipped)
        EXPECT_EQ(record.status, SweepStatus::Skipped);
    EXPECT_EQ(runner3.lastStats().skipped, jobs.size());
    EXPECT_EQ(runner3.lastStats().executed, 0u);
    EXPECT_EQ(runner3.lastStats().runsPerSecond, 0.0);
    std::remove(path.c_str());
}

TEST(SweepRunnerTest, ResumeReexecutesLegacyRecordsWithoutTelemetry)
{
    const std::string path = tempCheckpointPath("mnpu_ckpt_legacy.jsonl");
    SweepJob job;
    job.models = {"net0", "net1"};
    ExperimentContext context(sweepArch(), sweepMem());
    registerSweepNetworks(context);
    const std::string key = sweepJobKey(job, context.arch(),
                                        context.mem(), context.scale());

    // A v1 (pre-telemetry) ok record for this exact job: it carries
    // cycles but no raw counters, so restoring it would hand benches
    // zeros for TLB/DRAM/traffic aggregates.
    {
        std::ofstream file(path);
        file << "{\"key\":\"" << key
             << "\",\"status\":\"ok\",\"error\":\"\","
             << "\"wall_seconds\":1,\"models\":[\"net0\",\"net1\"],"
             << "\"speedups\":[1,1],\"slowdowns\":[1,1],"
             << "\"geomean_speedup\":1,\"fairness\":1,"
             << "\"local_cycles\":[1,1],\"global_cycles\":1}\n";
    }

    SweepOptions options;
    options.checkpointPath = path;
    options.resume = true;
    SweepRunner runner(1);
    auto records = runner.run(context, {job}, options);
    ASSERT_EQ(records.size(), 1u);
    // Re-executed (Ok), not restored (Skipped): real telemetry, not
    // the legacy record's zeroed counters.
    EXPECT_EQ(records[0].status, SweepStatus::Ok);
    ASSERT_EQ(records[0].outcome.raw.cores.size(), 2u);
    EXPECT_GT(records[0].outcome.raw.cores[0].trafficBytes, 0u);

    // The re-execution appended a v2 record (last one wins), so a
    // second resume restores with telemetry intact.
    SweepRunner runner2(1);
    auto again = runner2.run(context, {job}, options);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].status, SweepStatus::Skipped);
    EXPECT_EQ(again[0].outcome.raw.cores[0].trafficBytes,
              records[0].outcome.raw.cores[0].trafficBytes);
    EXPECT_EQ(again[0].outcome.raw.cores[1].tlbMisses,
              records[0].outcome.raw.cores[1].tlbMisses);
    std::remove(path.c_str());
}

TEST(SweepRunnerTest, ResumeDoesNotAliasDifferentContexts)
{
    // Two ablation arms sharing one checkpoint file (as the per-figure
    // benches do): the same job under a different context — here the
    // DRAM row policy — is a different simulation and must execute,
    // not restore the other arm's record.
    const std::string path = tempCheckpointPath("mnpu_ckpt_alias.jsonl");
    SweepJob job;
    job.models = {"net0", "net1"};
    SweepOptions options;
    options.checkpointPath = path;
    options.resume = true;

    ExperimentContext open_context(sweepArch(), sweepMem());
    registerSweepNetworks(open_context);
    SweepRunner runner(1);
    auto first = runner.run(open_context, {job}, options);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].status, SweepStatus::Ok);

    NpuMemConfig closed_mem = sweepMem();
    closed_mem.timing.rowPolicy = RowPolicy::Closed;
    ExperimentContext closed_context(sweepArch(), closed_mem);
    registerSweepNetworks(closed_context);
    auto second = runner.run(closed_context, {job}, options);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].status, SweepStatus::Ok);

    // Both arms are checkpointed under distinct keys: re-running each
    // context restores its own record.
    auto first_again = runner.run(open_context, {job}, options);
    auto second_again = runner.run(closed_context, {job}, options);
    EXPECT_EQ(first_again[0].status, SweepStatus::Skipped);
    EXPECT_EQ(second_again[0].status, SweepStatus::Skipped);
    EXPECT_EQ(first_again[0].outcome.raw.dramRowHits,
              first[0].outcome.raw.dramRowHits);
    EXPECT_EQ(second_again[0].outcome.raw.dramRowHits,
              second[0].outcome.raw.dramRowHits);
    std::remove(path.c_str());
}

TEST(SweepRunnerTest, PresetStopTokenCancelsWithoutCheckpointing)
{
    const std::string path = tempCheckpointPath("mnpu_ckpt_cancel.jsonl");
    auto jobs = dualSweepJobs();
    ExperimentContext context(sweepArch(), sweepMem());
    registerSweepNetworks(context);
    SweepRunner runner(2);
    std::atomic<bool> stop{true};
    SweepOptions options;
    options.checkpointPath = path;
    options.stopToken = &stop;
    auto records = runner.run(context, jobs, options);
    ASSERT_EQ(records.size(), jobs.size());
    for (const auto &record : records) {
        EXPECT_EQ(record.status, SweepStatus::Skipped);
        EXPECT_NE(record.error.find("cancelled"), std::string::npos);
    }
    EXPECT_EQ(runner.lastStats().skipped, jobs.size());
    // Cancelled jobs are never checkpointed: a later resume re-runs
    // them instead of trusting metrics that were never computed.
    EXPECT_TRUE(loadSweepCheckpoint(path).empty());
    std::remove(path.c_str());
}

// --- Checkpoint serialization ---

TEST(SweepCheckpointTest, JsonLineRoundTripsIncludingNanAndEscapes)
{
    SweepCheckpointRecord record;
    record.key = "00deadbeef00cafe";
    record.status = SweepStatus::Failed;
    record.error = "bad \"model\" \\ name\nwith\tcontrol\x01 bytes";
    record.wallSeconds = 1.25;
    record.models = {"net0", "weird\"name"};
    record.speedups = {0.5, std::numeric_limits<double>::quiet_NaN()};
    record.slowdowns = {2.0, 1.0 / 3.0};
    record.geomeanSpeedup = std::numeric_limits<double>::quiet_NaN();
    record.fairnessValue = 0.875;
    // Above 2^53: a double round-trip would silently lose precision,
    // so integer counters must survive exactly.
    record.localCycles = {(1ULL << 53) + 1, 42ULL};
    record.globalCycles = (1ULL << 62) + 12345ULL;
    record.finishedAtGlobal = {(1ULL << 53) + 3, 40ULL};
    record.peUtilization = {0.625, 1.0 / 7.0};
    record.trafficBytes = {1ULL << 40, 2048ULL};
    record.walkBytes = {4096ULL, 0ULL};
    record.tlbHits = {100ULL, 200ULL};
    record.tlbMisses = {7ULL, (1ULL << 60) + 9};
    record.walks = {5ULL, 6ULL};
    record.layerFinishLocal = {{1ULL, 2ULL, (1ULL << 55) + 1}, {}};
    record.dramEnergyPj = 1.5e12;
    record.dramRowHits = 1234ULL;
    record.dramRowMisses = (1ULL << 54) + 5;

    SweepCheckpointRecord parsed;
    ASSERT_TRUE(parseJsonLine(toJsonLine(record), parsed));
    EXPECT_EQ(parsed.key, record.key);
    EXPECT_EQ(parsed.version, kSweepCheckpointVersion);
    EXPECT_EQ(parsed.status, SweepStatus::Failed);
    EXPECT_EQ(parsed.error, record.error);
    EXPECT_DOUBLE_EQ(parsed.wallSeconds, 1.25);
    EXPECT_EQ(parsed.models, record.models);
    ASSERT_EQ(parsed.speedups.size(), 2u);
    EXPECT_DOUBLE_EQ(parsed.speedups[0], 0.5);
    EXPECT_TRUE(std::isnan(parsed.speedups[1])); // null -> NaN
    ASSERT_EQ(parsed.slowdowns.size(), 2u);
    EXPECT_DOUBLE_EQ(parsed.slowdowns[1], 1.0 / 3.0);
    EXPECT_TRUE(std::isnan(parsed.geomeanSpeedup));
    EXPECT_DOUBLE_EQ(parsed.fairnessValue, 0.875);
    EXPECT_EQ(parsed.localCycles, record.localCycles);
    EXPECT_EQ(parsed.globalCycles, record.globalCycles);
    EXPECT_EQ(parsed.finishedAtGlobal, record.finishedAtGlobal);
    ASSERT_EQ(parsed.peUtilization.size(), 2u);
    EXPECT_DOUBLE_EQ(parsed.peUtilization[0], 0.625);
    EXPECT_DOUBLE_EQ(parsed.peUtilization[1], 1.0 / 7.0);
    EXPECT_EQ(parsed.trafficBytes, record.trafficBytes);
    EXPECT_EQ(parsed.walkBytes, record.walkBytes);
    EXPECT_EQ(parsed.tlbHits, record.tlbHits);
    EXPECT_EQ(parsed.tlbMisses, record.tlbMisses);
    EXPECT_EQ(parsed.walks, record.walks);
    EXPECT_EQ(parsed.layerFinishLocal, record.layerFinishLocal);
    EXPECT_DOUBLE_EQ(parsed.dramEnergyPj, 1.5e12);
    EXPECT_EQ(parsed.dramRowHits, record.dramRowHits);
    EXPECT_EQ(parsed.dramRowMisses, record.dramRowMisses);
}

TEST(SweepCheckpointTest, ParseValidatesUnicodeEscapes)
{
    SweepCheckpointRecord record;
    // Non-hex digits after \u must reject the line, not inject NUL.
    EXPECT_FALSE(parseJsonLine(
        "{\"key\":\"k\",\"error\":\"\\uZZZZ\"}", record));
    // Code points above 0xFF would need UTF-8 encoding the reader
    // does not do; the writer never emits them.
    EXPECT_FALSE(parseJsonLine(
        "{\"key\":\"k\",\"error\":\"\\u0100\"}", record));
    ASSERT_TRUE(parseJsonLine(
        "{\"key\":\"k\",\"error\":\"\\u0001\"}", record));
    EXPECT_EQ(record.error, std::string(1, '\x01'));
}

TEST(SweepCheckpointTest, VersionDefaultsToLegacyWhenAbsent)
{
    SweepCheckpointRecord record;
    ASSERT_TRUE(parseJsonLine("{\"key\":\"k1\",\"status\":\"ok\"}",
                              record));
    EXPECT_EQ(record.version, 1u);
    ASSERT_TRUE(parseJsonLine(
        "{\"key\":\"k2\",\"v\":2,\"status\":\"ok\"}", record));
    EXPECT_EQ(record.version, 2u);
}

TEST(SweepCheckpointTest, ParseRejectsTornAndForeignLines)
{
    SweepCheckpointRecord record;
    EXPECT_FALSE(parseJsonLine("", record));
    EXPECT_FALSE(parseJsonLine("{\"key\":\"abc", record)); // torn tail
    EXPECT_FALSE(parseJsonLine("{\"status\":\"ok\"}", record)); // no key
    EXPECT_FALSE(parseJsonLine("not json at all", record));
    // Unknown fields from a newer writer are skipped, not fatal.
    EXPECT_TRUE(parseJsonLine(
        "{\"key\":\"k1\",\"future_field\":[1,2,3],\"status\":\"ok\"}",
        record));
    EXPECT_EQ(record.key, "k1");
    EXPECT_EQ(record.status, SweepStatus::Ok);
}

TEST(SweepCheckpointTest, JobKeyDiscriminatesConfigMemArchAndModels)
{
    const ArchConfig arch = sweepArch();
    const NpuMemConfig mem = sweepMem();
    const ModelScale scale = ModelScale::Mini;
    SweepJob job;
    job.models = {"net0", "net1"};
    auto key = [&](const SweepJob &j, const ArchConfig &a,
                   const NpuMemConfig &m, ModelScale s) {
        return sweepJobKey(j, a, m, s);
    };
    const std::string base = key(job, arch, mem, scale);
    EXPECT_EQ(base.size(), 16u);
    EXPECT_EQ(key(job, arch, mem, scale), base); // stable across calls

    SweepJob other = job;
    other.config.level = SharingLevel::Static; // default is ShareDWT
    EXPECT_NE(key(other, arch, mem, scale), base);

    other = job;
    other.models = {"net1", "net0"}; // order = core assignment
    EXPECT_NE(key(other, arch, mem, scale), base);

    other = job;
    other.config.maxGlobalCycles = 10;
    EXPECT_NE(key(other, arch, mem, scale), base);

    NpuMemConfig other_mem = mem;
    other_mem.pageBytes *= 2;
    EXPECT_NE(key(job, arch, other_mem, scale), base);

    // Context-level knobs benches ablate across sweeps must
    // discriminate too, or different ablation arms alias in one
    // checkpoint file (the row-policy bench once restored the open-
    // policy sweep's records for the closed-policy sweep).
    other_mem = mem;
    other_mem.timing.rowPolicy = RowPolicy::Closed;
    EXPECT_NE(key(job, arch, other_mem, scale), base);

    other_mem = mem;
    other_mem.timing.tCL += 1;
    EXPECT_NE(key(job, arch, other_mem, scale), base);

    ArchConfig other_arch = arch;
    other_arch.dataflow = Dataflow::WeightStationary;
    EXPECT_NE(key(job, other_arch, mem, scale), base);

    other_arch = arch;
    other_arch.spmBytes *= 2;
    EXPECT_NE(key(job, other_arch, mem, scale), base);

    EXPECT_NE(key(job, arch, mem, ModelScale::Full), base);
}

// --- ExperimentContext cache keying (the '#' collision bugfix) ---

TEST(ExperimentContextTest, HashInNetworkNameDoesNotCollide)
{
    // The Ideal cache used to be keyed "model#multiplier", which made
    // registered network names containing '#' ambiguous against the
    // separator; the (name, multiplier) pair key cannot collide. Two
    // different tiny networks named "a" and "a#1" must keep distinct
    // baselines.
    ExperimentContext context(sweepArch(), sweepMem());
    Network plain = sweepNetwork(0);
    plain.name = "a";
    Network hashed = sweepNetwork(2);
    hashed.name = "a#1";
    context.registerNetwork(plain);
    context.registerNetwork(hashed);
    double plain_cycles = context.idealCycles("a", 1);
    double hashed_cycles = context.idealCycles("a#1", 1);
    EXPECT_NE(hashed_cycles, plain_cycles);

    // A fresh context computes the same values: the cache entries are
    // keyed independently, not overwriting each other.
    ExperimentContext fresh(sweepArch(), sweepMem());
    fresh.registerNetwork(plain);
    fresh.registerNetwork(hashed);
    EXPECT_EQ(fresh.idealCycles("a#1", 1), hashed_cycles);
    EXPECT_EQ(fresh.idealCycles("a", 1), plain_cycles);
}

} // namespace
} // namespace mnpu
