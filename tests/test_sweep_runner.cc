/**
 * @file
 * Tests for the ThreadPool and the parallel SweepRunner, including the
 * central determinism guarantee: the same sweep run serially and with
 * jobs=4 produces bit-identical SimResults per mix. The CI TSan job
 * re-builds the suite with -fsanitize=thread and runs exactly these
 * tests (--gtest_filter=ThreadPool*:SweepRunner*:ExperimentContext*)
 * to catch races in the shared ExperimentContext caches under real
 * interleaving.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "analysis/mixes.hh"
#include "analysis/sweep_runner.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sw/network.hh"
#include "workloads/models.hh"

namespace mnpu
{
namespace
{

// --- ThreadPool ---

TEST(ThreadPoolTest, InlineModeRunsInOrder)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);
    std::vector<std::size_t> order;
    pool.parallelFor(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    constexpr std::size_t count = 1000;
    std::vector<std::atomic<int>> hits(count);
    pool.parallelFor(count, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(64, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 64u * 63u / 2);
    }
}

TEST(ThreadPoolTest, PropagatesFirstException)
{
    for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool pool(jobs);
        EXPECT_THROW(pool.parallelFor(16,
                                      [](std::size_t i) {
                                          if (i % 2 == 1)
                                              fatal("boom at ", i);
                                      }),
                     FatalError);
        // The pool must stay usable after a failed batch.
        std::atomic<std::size_t> ran{0};
        pool.parallelFor(8, [&](std::size_t) { ++ran; });
        EXPECT_EQ(ran.load(), 8u);
    }
}

TEST(ThreadPoolTest, DefaultJobCountHonorsOverride)
{
    setDefaultJobCount(3);
    EXPECT_EQ(defaultJobCount(), 3u);
    ThreadPool pool;
    EXPECT_EQ(pool.jobs(), 3u);
    setDefaultJobCount(0);
    EXPECT_GE(defaultJobCount(), 1u);
}

// --- SweepRunner determinism ---

ArchConfig
sweepArch()
{
    ArchConfig arch;
    arch.name = "tiny";
    arch.arrayRows = 16;
    arch.arrayCols = 16;
    arch.spmBytes = 64 << 10;
    arch.dataBytes = 1;
    arch.freqMhz = 1000;
    arch.validate();
    return arch;
}

NpuMemConfig
sweepMem()
{
    NpuMemConfig mem;
    mem.channelsPerNpu = 2;
    mem.dramCapacityPerNpu = 64ULL << 20;
    mem.tlbEntriesPerNpu = 64;
    mem.tlbWays = 8;
    mem.ptwPerNpu = 4;
    return mem;
}

/** Distinct tiny GEMM networks so the mixes are heterogeneous. */
Network
sweepNetwork(std::uint32_t index)
{
    Network net;
    net.name = "net" + std::to_string(index);
    const std::uint64_t m = 128 + 64 * index;
    net.layers.push_back(Layer::gemm("g0", m, 128, 192));
    net.layers.push_back(Layer::gemm("g1", 128, m, 128));
    return net;
}

/** The context holds a mutex, so it is registered in place, not returned. */
void
registerSweepNetworks(ExperimentContext &context)
{
    for (std::uint32_t i = 0; i < 3; ++i)
        context.registerNetwork(sweepNetwork(i));
}

std::vector<SweepJob>
dualSweepJobs()
{
    std::vector<SweepJob> jobs;
    for (SharingLevel level :
         {SharingLevel::Static, SharingLevel::ShareDWT}) {
        for (const auto &mix : enumerateMultisets(3, 2)) {
            SweepJob job;
            job.config.level = level;
            job.models = {"net" + std::to_string(mix[0]),
                          "net" + std::to_string(mix[1])};
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

TEST(SweepRunnerTest, ParallelMatchesSerialBitIdentical)
{
    auto jobs = dualSweepJobs();
    ASSERT_EQ(jobs.size(), 12u); // M(3,2) = 6 mixes x 2 levels

    ExperimentContext serial_context(sweepArch(), sweepMem());
    registerSweepNetworks(serial_context);
    SweepRunner serial_runner(1);
    auto serial = serial_runner.run(serial_context, jobs);

    ExperimentContext parallel_context(sweepArch(), sweepMem());
    registerSweepNetworks(parallel_context);
    SweepRunner parallel_runner(4);
    EXPECT_EQ(parallel_runner.workers(), 4u);
    auto parallel = parallel_runner.run(parallel_context, jobs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const SimResult &a = serial[i].outcome.raw;
        const SimResult &b = parallel[i].outcome.raw;
        ASSERT_EQ(a.cores.size(), b.cores.size()) << "mix " << i;
        EXPECT_EQ(a.globalCycles, b.globalCycles) << "mix " << i;
        for (std::size_t c = 0; c < a.cores.size(); ++c) {
            EXPECT_EQ(a.cores[c].localCycles, b.cores[c].localCycles)
                << "mix " << i << " core " << c;
            EXPECT_EQ(a.cores[c].trafficBytes, b.cores[c].trafficBytes)
                << "mix " << i << " core " << c;
            EXPECT_EQ(a.cores[c].tlbHits, b.cores[c].tlbHits)
                << "mix " << i << " core " << c;
            EXPECT_EQ(a.cores[c].tlbMisses, b.cores[c].tlbMisses)
                << "mix " << i << " core " << c;
        }
        EXPECT_DOUBLE_EQ(serial[i].outcome.geomeanSpeedup,
                         parallel[i].outcome.geomeanSpeedup)
            << "mix " << i;
        EXPECT_DOUBLE_EQ(serial[i].outcome.fairnessValue,
                         parallel[i].outcome.fairnessValue)
            << "mix " << i;
    }

    const SweepStats &stats = parallel_runner.lastStats();
    EXPECT_EQ(stats.runs, jobs.size());
    EXPECT_EQ(stats.workers, 4u);
    EXPECT_GT(stats.wallSeconds, 0.0);
    EXPECT_GT(stats.runsPerSecond, 0.0);
    for (const auto &record : parallel)
        EXPECT_GT(record.wallSeconds, 0.0);
    EXPECT_FALSE(stats.summary().empty());
}

TEST(SweepRunnerTest, SharedContextServesConcurrentMixes)
{
    // All workers hammer one context's caches at once: the same mix at
    // the same level must come out identical from every worker.
    ExperimentContext context(sweepArch(), sweepMem());
    registerSweepNetworks(context);
    std::vector<SweepJob> jobs;
    for (int i = 0; i < 8; ++i) {
        SweepJob job;
        job.config.level = SharingLevel::ShareDWT;
        job.models = {"net0", "net1"};
        jobs.push_back(std::move(job));
    }
    SweepRunner runner(4);
    auto records = runner.run(context, jobs);
    ASSERT_EQ(records.size(), 8u);
    for (std::size_t i = 1; i < records.size(); ++i) {
        EXPECT_EQ(records[0].outcome.raw.cores[0].localCycles,
                  records[i].outcome.raw.cores[0].localCycles);
        EXPECT_EQ(records[0].outcome.raw.cores[1].trafficBytes,
                  records[i].outcome.raw.cores[1].trafficBytes);
    }
}

TEST(SweepRunnerTest, MapReturnsInInputOrder)
{
    SweepRunner runner(4);
    auto squares = runner.map<std::size_t>(
        100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(SweepRunnerTest, ProgressReportsEveryCompletion)
{
    ExperimentContext context(sweepArch(), sweepMem());
    registerSweepNetworks(context);
    auto jobs = dualSweepJobs();
    SweepRunner runner(2);
    std::vector<std::size_t> seen;
    runner.run(context, jobs,
               [&](std::size_t done, std::size_t total) {
                   EXPECT_EQ(total, jobs.size());
                   seen.push_back(done);
               });
    // Called under a lock with a monotonically increasing counter.
    std::vector<std::size_t> expected(jobs.size());
    std::iota(expected.begin(), expected.end(), 1);
    EXPECT_EQ(seen, expected);
}

// --- ExperimentContext cache keying (the '#' collision bugfix) ---

TEST(ExperimentContextTest, HashInNetworkNameDoesNotCollide)
{
    // The Ideal cache used to be keyed "model#multiplier", which made
    // registered network names containing '#' ambiguous against the
    // separator; the (name, multiplier) pair key cannot collide. Two
    // different tiny networks named "a" and "a#1" must keep distinct
    // baselines.
    ExperimentContext context(sweepArch(), sweepMem());
    Network plain = sweepNetwork(0);
    plain.name = "a";
    Network hashed = sweepNetwork(2);
    hashed.name = "a#1";
    context.registerNetwork(plain);
    context.registerNetwork(hashed);
    double plain_cycles = context.idealCycles("a", 1);
    double hashed_cycles = context.idealCycles("a#1", 1);
    EXPECT_NE(hashed_cycles, plain_cycles);

    // A fresh context computes the same values: the cache entries are
    // keyed independently, not overwriting each other.
    ExperimentContext fresh(sweepArch(), sweepMem());
    fresh.registerNetwork(plain);
    fresh.registerNetwork(hashed);
    EXPECT_EQ(fresh.idealCycles("a#1", 1), hashed_cycles);
    EXPECT_EQ(fresh.idealCycles("a", 1), plain_cycles);
}

} // namespace
} // namespace mnpu
