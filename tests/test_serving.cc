/**
 * @file
 * Tests for the request-level serving subsystem (DESIGN.md §13): the
 * seeded arrival generator, the continuous-batching scheduler, the
 * GPT-2 serving phase builders, the engine's per-request accounting
 * (the back-to-back attribution regression), the `serving.*` metric
 * schema, the flat `serving_*` checkpoint codec, and the seeded
 * determinism contract — byte-identical telemetry across reruns,
 * --jobs values, and thread vs process isolation; different seeds
 * differ. The CI TSan job reruns the Serving* and BatchScheduler*
 * suites under -fsanitize=thread.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "analysis/sweep_checkpoint.hh"
#include "analysis/sweep_runner.hh"
#include "common/errors.hh"
#include "common/logging.hh"
#include "serving/arrival.hh"
#include "serving/batch_scheduler.hh"
#include "serving/engine.hh"
#include "serving/request.hh"
#include "sim/multi_core_system.hh"
#include "sw/arch_config.hh"
#include "sw/network.hh"
#include "sw/trace_generator.hh"
#include "workloads/models.hh"

namespace mnpu
{
namespace
{

/** Small serving scenario shared by the engine-level tests. */
ServingConfig
tinyServing(std::uint64_t seed)
{
    ServingConfig serving;
    serving.seed = seed;
    serving.poissonRatePerMcycle = 40.0;
    serving.numRequests = 3;
    serving.meanPromptTokens = 6;
    serving.meanDecodeTokens = 2;
    serving.maxBatchPerCore = 2;
    return serving;
}

// --- Arrival generation ---

TEST(ServingArrivalTest, PoissonIsSeededSortedAndShaped)
{
    ServingConfig config;
    config.seed = 7;
    config.poissonRatePerMcycle = 50.0;
    config.numRequests = 16;
    config.meanPromptTokens = 24;
    config.meanDecodeTokens = 6;

    auto first = generateArrivals(config);
    auto second = generateArrivals(config);
    ASSERT_EQ(first.size(), 16u);
    ASSERT_EQ(second.size(), 16u);
    for (std::size_t i = 0; i < first.size(); ++i) {
        // Byte-identical across repeated generation: same cycles, ids,
        // and request shapes.
        EXPECT_EQ(first[i].id, second[i].id) << "request " << i;
        EXPECT_EQ(first[i].arrivalCycle, second[i].arrivalCycle);
        EXPECT_EQ(first[i].promptTokens, second[i].promptTokens);
        EXPECT_EQ(first[i].decodeTokens, second[i].decodeTokens);

        // Sorted by (arrivalCycle, id) with dense ids.
        EXPECT_EQ(first[i].id, static_cast<std::uint32_t>(i));
        if (i > 0)
            EXPECT_GE(first[i].arrivalCycle, first[i - 1].arrivalCycle);

        // Shapes are drawn uniformly from [ceil(mean/2), mean].
        EXPECT_GE(first[i].promptTokens, 12u);
        EXPECT_LE(first[i].promptTokens, 24u);
        EXPECT_GE(first[i].decodeTokens, 3u);
        EXPECT_LE(first[i].decodeTokens, 6u);
    }

    // A different seed draws a different schedule.
    ServingConfig reseeded = config;
    reseeded.seed = 8;
    auto other = generateArrivals(reseeded);
    bool differs = false;
    for (std::size_t i = 0; i < other.size(); ++i) {
        differs = differs ||
                  other[i].arrivalCycle != first[i].arrivalCycle ||
                  other[i].promptTokens != first[i].promptTokens ||
                  other[i].decodeTokens != first[i].decodeTokens;
    }
    EXPECT_TRUE(differs);
}

TEST(ServingArrivalTest, TraceParsesCommentsAndSortsByArrival)
{
    // Out of order on purpose: ids are assigned after sorting.
    auto requests = parseArrivalTrace("# demo trace\n"
                                      "\n"
                                      "500,8,4\n"
                                      "  # indented comment\n"
                                      "100,2,1\n"
                                      "500,3,2\n");
    ASSERT_EQ(requests.size(), 3u);
    EXPECT_EQ(requests[0].arrivalCycle, 100u);
    EXPECT_EQ(requests[0].promptTokens, 2u);
    EXPECT_EQ(requests[0].decodeTokens, 1u);
    EXPECT_EQ(requests[1].arrivalCycle, 500u);
    EXPECT_EQ(requests[2].arrivalCycle, 500u);
    for (std::size_t i = 0; i < requests.size(); ++i)
        EXPECT_EQ(requests[i].id, static_cast<std::uint32_t>(i));
}

TEST(ServingArrivalTest, TraceRejectsMalformedInput)
{
    EXPECT_THROW(parseArrivalTrace(""), FatalError);
    EXPECT_THROW(parseArrivalTrace("# only comments\n"), FatalError);
    EXPECT_THROW(parseArrivalTrace("100,2\n"), FatalError);
    EXPECT_THROW(parseArrivalTrace("abc,2,1\n"), FatalError);
    EXPECT_THROW(parseArrivalTrace("100,0,1\n"), FatalError);
    EXPECT_THROW(parseArrivalTrace("100,2,0\n"), FatalError);
}

TEST(ServingArrivalTest, TraceOverridesPoissonAndBadRateIsFatal)
{
    ServingConfig config;
    config.poissonRatePerMcycle = 50.0;
    config.numRequests = 16;
    config.arrivalTrace = "10,4,2\n20,3,1\n";
    auto requests = generateArrivals(config);
    ASSERT_EQ(requests.size(), 2u);
    EXPECT_EQ(requests[0].arrivalCycle, 10u);

    ServingConfig bad;
    bad.poissonRatePerMcycle = 0.0;
    EXPECT_THROW(generateArrivals(bad), FatalError);
}

// --- Continuous-batching scheduler ---

TEST(BatchSchedulerTest, AdmitsLeastLoadedWithLowestIdTieBreak)
{
    BatchScheduler scheduler(2, 2);
    EXPECT_FALSE(scheduler.anyResident());
    for (std::uint32_t id = 0; id < 5; ++id)
        scheduler.enqueue(id);

    auto admissions = scheduler.admit();
    ASSERT_EQ(admissions.size(), 4u);
    // Ties break toward the lower core id, FCFS over requests.
    EXPECT_EQ(admissions[0].requestId, 0u);
    EXPECT_EQ(admissions[0].core, 0u);
    EXPECT_EQ(admissions[1].requestId, 1u);
    EXPECT_EQ(admissions[1].core, 1u);
    EXPECT_EQ(admissions[2].requestId, 2u);
    EXPECT_EQ(admissions[2].core, 0u);
    EXPECT_EQ(admissions[3].requestId, 3u);
    EXPECT_EQ(admissions[3].core, 1u);
    EXPECT_EQ(scheduler.pendingCount(), 1u);
    EXPECT_TRUE(scheduler.anyResident());
    EXPECT_EQ(scheduler.resident(0),
              (std::vector<std::uint32_t>{0, 2}));
    EXPECT_EQ(scheduler.resident(1),
              (std::vector<std::uint32_t>{1, 3}));

    // Full cores admit nothing.
    EXPECT_TRUE(scheduler.admit().empty());

    // A released slot is refilled from the FCFS queue between
    // iterations (continuous batching), keeping admission order.
    scheduler.release(0, 0);
    EXPECT_EQ(scheduler.resident(0), (std::vector<std::uint32_t>{2}));
    auto refill = scheduler.admit();
    ASSERT_EQ(refill.size(), 1u);
    EXPECT_EQ(refill[0].requestId, 4u);
    EXPECT_EQ(refill[0].core, 0u);
    EXPECT_EQ(scheduler.pendingCount(), 0u);
    EXPECT_EQ(scheduler.resident(0),
              (std::vector<std::uint32_t>{2, 4}));
}

// --- GPT-2 serving phases ---

TEST(ServingWorkloadTest, Gpt2PhasesShareWeightsButNotKvCache)
{
    Network net;
    appendGpt2Prefill(net, "r0", 6, ModelScale::Mini);
    const std::size_t prefill_layers = net.layers.size();
    // Mini GPT-2 is 2 blocks x 6 GEMMs + lm_head.
    EXPECT_EQ(prefill_layers, 13u);
    appendGpt2DecodeStep(net, "r1", 6, ModelScale::Mini);
    EXPECT_EQ(net.layers.size(), 2 * prefill_layers);

    for (std::size_t i = 0; i < net.layers.size(); ++i) {
        const Layer &layer = net.layers[i];
        const bool is_kv =
            layer.name.find("_scores") != std::string::npos ||
            layer.name.find("_ctx") != std::string::npos;
        if (is_kv) {
            // Attention reads this request's own KV tensors.
            EXPECT_TRUE(layer.weightTag.empty()) << layer.name;
        } else {
            // Model weights carry request-independent tags, so
            // co-batched requests address one shared tensor.
            EXPECT_EQ(layer.weightTag.rfind("gpt2w_", 0), 0u)
                << layer.name;
        }
        // Decode steps are single-token (M = 1).
        if (i >= prefill_layers)
            EXPECT_EQ(layer.gemmM, 1u) << layer.name;
    }

    // The two requests' weight layers carry identical tag sequences.
    for (std::size_t i = 0; i < prefill_layers; ++i) {
        EXPECT_EQ(net.layers[i].weightTag,
                  net.layers[prefill_layers + i].weightTag);
    }
}

TEST(ServingWorkloadTest, KvBytesScaleWithContextAndDataBytes)
{
    // 2 tensors x blocks x ctx x d x dataBytes; Mini is 2 blocks of
    // d = 768.
    EXPECT_EQ(gpt2KvBytesPerDecodeStep(1, ModelScale::Mini, 1),
              2ull * 2 * 1 * 768);
    EXPECT_EQ(gpt2KvBytesPerDecodeStep(8, ModelScale::Mini, 1),
              4u * gpt2KvBytesPerDecodeStep(2, ModelScale::Mini, 1));
    EXPECT_EQ(gpt2KvBytesPerDecodeStep(8, ModelScale::Mini, 2),
              2u * gpt2KvBytesPerDecodeStep(8, ModelScale::Mini, 1));
    EXPECT_GT(gpt2KvBytesPerDecodeStep(8, ModelScale::Full, 1),
              gpt2KvBytesPerDecodeStep(8, ModelScale::Mini, 1));
}

// --- Engine: completion, timestamps, SLO summary ---

TEST(ServingEngineTest, CompletesEveryRequestWithOrderedTimestamps)
{
    SystemConfig config;
    config.level = SharingLevel::ShareDWT;
    config.mem = NpuMemConfig::cloudNpu();
    config.serving = ServingConfig{};
    config.serving->arrivalTrace = "0,4,2\n2000,3,1\n";
    config.serving->maxBatchPerCore = 2;

    ServingResult result = runServing(ArchConfig::miniNpu(),
                                      ModelScale::Mini, config, 2);
    ASSERT_EQ(result.requests.size(), 2u);
    for (const RequestRecord &record : result.requests) {
        EXPECT_EQ(record.tokensDone, record.decodeTokens);
        EXPECT_GT(record.firstTokenCycle, record.arrivalCycle);
        EXPECT_GE(record.finishCycle, record.firstTokenCycle);
        EXPECT_GT(record.attributedReadBytes, 0u);
        EXPECT_GT(record.attributedWriteBytes, 0u);
    }
    // One decode step at context 4 for request 0; request 1 finishes
    // at its prefill (decodeTokens == 1), streaming no KV bytes.
    EXPECT_EQ(result.requests[0].kvReadBytes,
              gpt2KvBytesPerDecodeStep(4, ModelScale::Mini,
                                       ArchConfig::miniNpu().dataBytes));
    EXPECT_EQ(result.requests[1].kvReadBytes, 0u);

    const ServingSummary &summary = result.summary;
    EXPECT_EQ(summary.offered, 2u);
    EXPECT_EQ(summary.completed, 2u);
    EXPECT_GT(summary.rounds, 0u);
    EXPECT_EQ(summary.prefillTokens, 7u);
    EXPECT_EQ(summary.decodeTokens, 3u);
    Cycle makespan = 0;
    for (const RequestRecord &record : result.requests)
        makespan = std::max(makespan, record.finishCycle);
    EXPECT_EQ(summary.makespanCycles, makespan);
    EXPECT_GE(result.aggregate.globalCycles, makespan);
    EXPECT_GT(summary.offeredPerMcycle, 0.0);

    // The aggregate telemetry ends with the serving.* schema.
    bool found = false;
    for (const auto &metric : result.aggregate.telemetry.metrics)
        found = found || metric.name == "serving.goodput_per_mcycle";
    EXPECT_TRUE(found);
}

// --- Satellite 2 regression: per-request accounting ---

/** Planned DMA bytes (read + write) of @p net on the serving arch. */
std::pair<std::uint64_t, std::uint64_t>
plannedBytes(const Network &net)
{
    TraceGenerator trace(ArchConfig::miniNpu(), net);
    std::uint64_t reads = 0, writes = 0;
    for (const auto &layer : trace.layers()) {
        reads += layer.readBytes;
        writes += layer.writeBytes;
    }
    return {reads, writes};
}

TEST(ServingAttributionTest, PerRequestBytesMatchPlannedPhaseSums)
{
    // One request alone on one core: its attribution must equal the
    // planned bytes of its own phases — the prefill pass plus decode
    // steps at contexts P and P+1 — reconstructed independently here.
    SystemConfig config;
    config.level = SharingLevel::ShareDWT;
    config.mem = NpuMemConfig::cloudNpu();
    config.serving = ServingConfig{};
    config.serving->arrivalTrace = "0,5,3\n";
    config.serving->maxBatchPerCore = 1;

    ServingResult result = runServing(ArchConfig::miniNpu(),
                                      ModelScale::Mini, config, 1);
    ASSERT_EQ(result.requests.size(), 1u);
    const RequestRecord &record = result.requests[0];
    EXPECT_EQ(record.core, 0u);
    EXPECT_EQ(record.tokensDone, 3u);

    std::uint64_t reads = 0, writes = 0;
    {
        Network net;
        appendGpt2Prefill(net, "r0", 5, ModelScale::Mini);
        auto [r, w] = plannedBytes(net);
        reads += r;
        writes += w;
    }
    for (std::uint32_t ctx : {5u, 6u}) {
        Network net;
        net.name = "serve_core0";
        appendGpt2DecodeStep(net, "r0", ctx, ModelScale::Mini);
        auto [r, w] = plannedBytes(net);
        reads += r;
        writes += w;
    }
    EXPECT_EQ(record.attributedReadBytes, reads);
    EXPECT_EQ(record.attributedWriteBytes, writes);
    EXPECT_EQ(record.kvReadBytes,
              gpt2KvBytesPerDecodeStep(5, ModelScale::Mini, 1) +
                  gpt2KvBytesPerDecodeStep(6, ModelScale::Mini, 1));
}

TEST(ServingAttributionTest, BackToBackPhasesKeepDataBytesAdditive)
{
    // One core running two requests' decode steps back-to-back must
    // account exactly the sum of the two run alone — no double count
    // from shared weight tags or retained DRAM/TLB state. Walk bytes
    // are excluded: translation traffic legitimately depends on TLB
    // history across phases.
    Network a, b, ab;
    appendGpt2DecodeStep(a, "a", 8, ModelScale::Mini);
    appendGpt2DecodeStep(b, "b", 12, ModelScale::Mini);
    appendGpt2DecodeStep(ab, "a", 8, ModelScale::Mini);
    appendGpt2DecodeStep(ab, "b", 12, ModelScale::Mini);

    const ArchConfig arch = ArchConfig::miniNpu();
    auto dataBytesOf = [&arch](const Network &net, SharingLevel level) {
        SimResult result = runMix(
            level, {std::make_shared<TraceGenerator>(arch, net)});
        return result.cores[0].trafficBytes - result.cores[0].walkBytes;
    };
    for (SharingLevel level :
         {SharingLevel::Static, SharingLevel::ShareDWT}) {
        EXPECT_EQ(dataBytesOf(ab, level),
                  dataBytesOf(a, level) + dataBytesOf(b, level))
            << toString(level);
    }
}

TEST(ServingAttributionTest, MmuPerCoreCountersSumToTotalsOnce)
{
    // The legacy CoreResult view duplicates whole-MMU walk totals (and
    // shared-TLB hit/miss totals under +T) onto every core — pinned by
    // the batch goldens. The attributed counters the serving engine
    // folds must instead partition each total exactly once.
    Network a, b;
    appendGpt2DecodeStep(a, "a", 8, ModelScale::Mini);
    appendGpt2DecodeStep(b, "b", 12, ModelScale::Mini);
    const ArchConfig arch = ArchConfig::miniNpu();

    for (SharingLevel level :
         {SharingLevel::Static, SharingLevel::ShareDWT}) {
        SystemConfig config;
        config.level = level;
        config.mem = NpuMemConfig::cloudNpu();
        std::vector<CoreBinding> bindings(2);
        bindings[0].trace = std::make_shared<TraceGenerator>(arch, a);
        bindings[1].trace = std::make_shared<TraceGenerator>(arch, b);
        MultiCoreSystem system(config, std::move(bindings));
        SimResult result = system.run();
        const Mmu &mmu = system.mmu();

        // Legacy duplication: both cores report the whole-MMU total.
        EXPECT_GT(result.cores[0].walks, 0u);
        EXPECT_EQ(result.cores[0].walks, result.cores[1].walks);

        // Attribution partitions it: non-trivially on both cores.
        EXPECT_EQ(mmu.walksFor(0) + mmu.walksFor(1),
                  result.cores[0].walks)
            << toString(level);
        EXPECT_GT(mmu.walksFor(0), 0u);
        EXPECT_GT(mmu.walksFor(1), 0u);

        if (level == SharingLevel::ShareDWT) {
            // Shared TLB: per-core results duplicate the totals.
            EXPECT_EQ(result.cores[0].tlbHits, result.cores[1].tlbHits);
            EXPECT_EQ(mmu.tlbHitsFor(0) + mmu.tlbHitsFor(1),
                      result.cores[0].tlbHits);
            EXPECT_EQ(mmu.tlbMissesFor(0) + mmu.tlbMissesFor(1),
                      result.cores[0].tlbMisses);
        } else {
            // Private TLBs: attribution equals the per-core counts.
            for (std::uint32_t core = 0; core < 2; ++core) {
                EXPECT_EQ(mmu.tlbHitsFor(core),
                          result.cores[core].tlbHits);
                EXPECT_EQ(mmu.tlbMissesFor(core),
                          result.cores[core].tlbMisses);
            }
        }
        // Out-of-range cores read zero instead of crashing.
        EXPECT_EQ(mmu.walksFor(99), 0u);
        EXPECT_EQ(mmu.tlbHitsFor(99), 0u);
    }
}

// --- Seeded determinism across --jobs and isolation modes ---

/** Serving jobs at two sharing levels with the given arrival seed. */
std::vector<SweepJob>
servingJobs(std::uint64_t seed)
{
    std::vector<SweepJob> jobs;
    for (SharingLevel level :
         {SharingLevel::Static, SharingLevel::ShareDWT}) {
        SweepJob job;
        job.config.level = level;
        job.config.serving = tinyServing(seed);
        job.models = {"gpt2", "gpt2"};
        jobs.push_back(std::move(job));
    }
    return jobs;
}

/**
 * Canonical serialization of a record's simulated payload (including
 * the flat serving_* fields): wall clock and status are normalized so
 * fingerprints match iff every metric is bit-identical.
 */
std::string
servingFingerprint(const SweepRecord &record)
{
    SweepRecord canon = record;
    canon.wallSeconds = 0;
    canon.status = SweepStatus::Ok;
    canon.error.clear();
    canon.attempts = 1;
    return toJsonLine(checkpointRecordOf("fingerprint", canon));
}

std::vector<std::string>
runServingSweep(const std::vector<SweepJob> &jobs, std::size_t workers,
                IsolationMode isolation)
{
    ExperimentContext context(ArchConfig::miniNpu(),
                              NpuMemConfig::cloudNpu(),
                              ModelScale::Mini);
    SweepRunner runner(workers);
    SweepOptions options;
    options.isolation = isolation;
    auto records = runner.run(context, jobs, options);
    std::vector<std::string> fingerprints;
    for (const SweepRecord &record : records) {
        EXPECT_EQ(record.status, SweepStatus::Ok);
        EXPECT_TRUE(record.outcome.serving.has_value());
        if (record.outcome.serving) {
            EXPECT_EQ(record.outcome.serving->completed,
                      record.outcome.serving->offered);
        }
        fingerprints.push_back(servingFingerprint(record));
    }
    return fingerprints;
}

TEST(ServingDeterminismTest, ByteIdenticalAcrossRerunsJobsAndIsolation)
{
    const auto jobs = servingJobs(5);
    const auto baseline = runServingSweep(jobs, 1, IsolationMode::Thread);
    ASSERT_EQ(baseline.size(), jobs.size());
    // The serving_* fields are part of the fingerprint, and the two
    // sharing levels genuinely differ.
    EXPECT_NE(baseline[0].find("\"serving_offered\":3"),
              std::string::npos);
    EXPECT_NE(baseline[0], baseline[1]);

    // Same seed: byte-identical across a rerun, across --jobs, and
    // across thread vs process isolation.
    EXPECT_EQ(runServingSweep(jobs, 1, IsolationMode::Thread), baseline);
    EXPECT_EQ(runServingSweep(jobs, 4, IsolationMode::Thread), baseline);
    EXPECT_EQ(runServingSweep(jobs, 2, IsolationMode::Process),
              baseline);

    // A different seed changes the arrival schedule and the outcome.
    const auto reseeded =
        runServingSweep(servingJobs(6), 1, IsolationMode::Thread);
    ASSERT_EQ(reseeded.size(), baseline.size());
    EXPECT_NE(reseeded[0], baseline[0]);
    EXPECT_NE(reseeded[1], baseline[1]);
}

TEST(ServingDeterminismTest, JobKeySeparatesServingConfigs)
{
    const ArchConfig arch = ArchConfig::miniNpu();
    const NpuMemConfig mem = NpuMemConfig::cloudNpu();
    SweepJob batch;
    batch.models = {"gpt2", "gpt2"};
    SweepJob serving = batch;
    serving.config.serving = tinyServing(5);
    SweepJob serving_same = batch;
    serving_same.config.serving = tinyServing(5);
    SweepJob serving_reseeded = batch;
    serving_reseeded.config.serving = tinyServing(6);

    auto key = [&](const SweepJob &job) {
        return sweepJobKey(job, arch, mem, ModelScale::Mini);
    };
    EXPECT_NE(key(batch), key(serving));
    EXPECT_EQ(key(serving), key(serving_same));
    EXPECT_NE(key(serving), key(serving_reseeded));
}

// --- serving.* schema and serving_* checkpoint codec ---

TEST(ServingMetricsTest, SchemaIsStableCountersThenGauges)
{
    ServingSummary summary;
    summary.offered = 4;
    summary.completed = 3;
    TelemetrySnapshot snapshot;
    appendServingMetrics(snapshot, summary);

    const std::vector<std::pair<std::string, bool>> expected = {
        {"serving.requests.offered", true},
        {"serving.requests.completed", true},
        {"serving.requests.slo_good", true},
        {"serving.rounds", true},
        {"serving.tokens.prefill", true},
        {"serving.tokens.decode", true},
        {"serving.kv_read_bytes", true},
        {"serving.makespan_cycles", true},
        {"serving.ttft.p50", false},
        {"serving.ttft.p99", false},
        {"serving.ttft.mean", false},
        {"serving.tpot.p50", false},
        {"serving.tpot.p99", false},
        {"serving.latency.p50", false},
        {"serving.latency.p99", false},
        {"serving.offered_per_mcycle", false},
        {"serving.goodput_per_mcycle", false},
    };
    ASSERT_EQ(snapshot.metrics.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(snapshot.metrics[i].name, expected[i].first) << i;
        EXPECT_EQ(snapshot.metrics[i].isCounter, expected[i].second)
            << expected[i].first;
    }
    EXPECT_EQ(snapshot.metrics[0].counter, 4u);
    EXPECT_EQ(snapshot.metrics[1].counter, 3u);
}

TEST(ServingMetricsTest, SummaryComputesSloQuantilesAndGoodput)
{
    std::vector<RequestRecord> records(2);
    records[0].promptTokens = 4;
    records[0].decodeTokens = 2;
    records[0].tokensDone = 2;
    records[0].arrivalCycle = 0;
    records[0].firstTokenCycle = 100; // TTFT 100
    records[0].finishCycle = 150;     // TPOT 50
    records[0].kvReadBytes = 64;
    records[1].promptTokens = 3;
    records[1].decodeTokens = 1;
    records[1].tokensDone = 1;
    records[1].arrivalCycle = 50;
    records[1].firstTokenCycle = 350; // TTFT 300
    records[1].finishCycle = 350;

    // TTFT SLO of 200 admits only the first request.
    ServingSummary summary =
        summarizeRequests(records, 2, 7, 1000, 200, 0);
    EXPECT_EQ(summary.offered, 2u);
    EXPECT_EQ(summary.completed, 2u);
    EXPECT_EQ(summary.sloGood, 1u);
    EXPECT_EQ(summary.rounds, 7u);
    EXPECT_EQ(summary.prefillTokens, 7u);
    EXPECT_EQ(summary.decodeTokens, 3u);
    EXPECT_EQ(summary.kvReadBytes, 64u);
    EXPECT_DOUBLE_EQ(summary.ttftP50, 200.0);
    EXPECT_DOUBLE_EQ(summary.ttftMean, 200.0);
    EXPECT_DOUBLE_EQ(summary.ttftP99, 298.0);
    EXPECT_DOUBLE_EQ(summary.latencyP50, 225.0);
    EXPECT_DOUBLE_EQ(summary.offeredPerMcycle, 2.0 / 1e-3);
    EXPECT_DOUBLE_EQ(summary.goodputPerMcycle, 1.0 / 1e-3);

    // An incomplete request (budget/stop) is excluded from the SLO
    // basis but still counted as offered.
    records[1].tokensDone = 0;
    summary = summarizeRequests(records, 2, 7, 1000, 200, 0);
    EXPECT_EQ(summary.completed, 1u);
    EXPECT_DOUBLE_EQ(summary.ttftMean, 100.0);
}

TEST(ServingCheckpointTest, ServingFieldsRoundTripAndStayOptIn)
{
    SweepCheckpointRecord record;
    record.key = "0123456789abcdef";
    record.models = {"gpt2", "gpt2"};
    ServingSummary summary;
    summary.offered = 3;
    summary.completed = 3;
    summary.sloGood = 2;
    summary.rounds = 9;
    summary.prefillTokens = 17;
    summary.decodeTokens = 6;
    summary.kvReadBytes = 12288;
    summary.makespanCycles = 123456;
    summary.ttftP50 = 1002.5;
    summary.ttftP99 = 2004.25;
    summary.ttftMean = 1400.125;
    summary.tpotP50 = 310.5;
    summary.tpotP99 = 420.75;
    summary.latencyP50 = 2100.5;
    summary.latencyP99 = 3200.25;
    summary.offeredPerMcycle = 24.3125;
    summary.goodputPerMcycle = 16.203125;
    record.serving = summary;

    const std::string line = toJsonLine(record);
    EXPECT_NE(line.find("\"serving_offered\":3"), std::string::npos);
    EXPECT_NE(line.find("\"serving_goodput_per_mcycle\":"),
              std::string::npos);

    SweepCheckpointRecord parsed;
    ASSERT_TRUE(parseJsonLine(line, parsed));
    ASSERT_TRUE(parsed.serving.has_value());
    EXPECT_TRUE(*parsed.serving == summary);
    // The round trip is byte-stable (the determinism fingerprints and
    // golden fixtures depend on it).
    EXPECT_EQ(toJsonLine(parsed), line);

    // Batch records carry no serving_* keys at all, keeping the
    // committed batch golden fixtures byte-identical.
    SweepCheckpointRecord batch;
    batch.key = "0123456789abcdef";
    batch.models = {"ds2", "gpt2"};
    const std::string batch_line = toJsonLine(batch);
    EXPECT_EQ(batch_line.find("serving_"), std::string::npos);
    SweepCheckpointRecord batch_parsed;
    ASSERT_TRUE(parseJsonLine(batch_line, batch_parsed));
    EXPECT_FALSE(batch_parsed.serving.has_value());
}

} // namespace
} // namespace mnpu
