/**
 * @file
 * Unit and property tests for the MMU substrate: the page allocator,
 * the radix page-table model, the TLB, and the MMU front-end with its
 * walker-pool partitioning modes.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/logging.hh"
#include "dram/dram_system.hh"
#include "mmu/mmu.hh"
#include "mmu/paging.hh"
#include "mmu/tlb.hh"

namespace mnpu
{
namespace
{

// --- paging ---

TEST(PagingTest, WalkLevelsByPageSize)
{
    EXPECT_EQ(walkLevelsForPageSize(4096), 4u);       // 4 KB
    EXPECT_EQ(walkLevelsForPageSize(64 << 10), 3u);   // 64 KB
    EXPECT_EQ(walkLevelsForPageSize(1 << 20), 2u);    // 1 MB
    EXPECT_EQ(walkLevelsForPageSize(2 << 20), 2u);    // 2 MB
    EXPECT_THROW(walkLevelsForPageSize(2048), FatalError);
    EXPECT_THROW(walkLevelsForPageSize(5000), FatalError);
}

TEST(PageAllocatorTest, FirstTouchDistinctFrames)
{
    PageAllocator allocator(0, 1 << 20, 4096);
    std::set<Addr> frames;
    for (Addr page = 0; page < 10; ++page) {
        Addr pa = allocator.translate(0, page * 4096);
        EXPECT_EQ(pa % 4096, 0u);
        EXPECT_TRUE(frames.insert(pa).second);
    }
    EXPECT_EQ(allocator.framesAllocated(), 10u);
}

TEST(PageAllocatorTest, StableMappingAndOffsets)
{
    PageAllocator allocator(0, 1 << 20, 4096);
    Addr first = allocator.translate(0, 0x1234);
    EXPECT_EQ(first % 4096, 0x234u);
    EXPECT_EQ(allocator.translate(0, 0x1234), first);
    EXPECT_EQ(allocator.translate(0, 0x1000), first - 0x234);
}

TEST(PageAllocatorTest, AsidsAreIsolated)
{
    PageAllocator allocator(0, 1 << 20, 4096);
    Addr a = allocator.translate(0, 0);
    Addr b = allocator.translate(1, 0);
    EXPECT_NE(a, b);
    EXPECT_TRUE(allocator.isMapped(0, 0));
    EXPECT_FALSE(allocator.isMapped(2, 0));
}

TEST(PageAllocatorTest, ExhaustionIsFatal)
{
    PageAllocator allocator(0, 4 * 4096, 4096);
    for (Addr page = 0; page < 4; ++page)
        allocator.translate(0, page * 4096);
    EXPECT_EQ(allocator.framesAvailable(), 0u);
    EXPECT_THROW(allocator.translate(0, 100 * 4096), FatalError);
}

TEST(PageAllocatorTest, ConstructionValidation)
{
    EXPECT_THROW(PageAllocator(0, 1 << 20, 1000), FatalError);
    EXPECT_THROW(PageAllocator(0, 100, 4096), FatalError);
    EXPECT_THROW(PageAllocator(123, 1 << 20, 4096), FatalError);
}

TEST(PageTableModelTest, PathDepthMatchesPageSize)
{
    for (std::uint64_t page : {4096ull, 64ull << 10, 1ull << 20}) {
        PageAllocator allocator(0, 64ULL << 20, page);
        PageTableModel table(allocator);
        auto path = table.walkPath(0, 0);
        EXPECT_EQ(path.size(), walkLevelsForPageSize(page));
        EXPECT_EQ(path.size(), table.levels());
    }
}

TEST(PageTableModelTest, SamePageSamePath)
{
    PageAllocator allocator(0, 64ULL << 20, 4096);
    PageTableModel table(allocator);
    auto a = table.walkPath(0, 0x1000);
    auto b = table.walkPath(0, 0x1fff);
    EXPECT_EQ(a, b);
}

TEST(PageTableModelTest, AdjacentPagesShareUpperLevels)
{
    PageAllocator allocator(0, 64ULL << 20, 4096);
    PageTableModel table(allocator);
    auto a = table.walkPath(0, 0x0000);
    auto b = table.walkPath(0, 0x1000);
    ASSERT_EQ(a.size(), 4u);
    // Upper three levels identical, leaf entries adjacent.
    for (int level = 0; level < 3; ++level)
        EXPECT_EQ(a[level], b[level]);
    EXPECT_EQ(b[3], a[3] + 8);
}

TEST(PageTableModelTest, DistinctAsidsDistinctRoots)
{
    PageAllocator allocator(0, 64ULL << 20, 4096);
    PageTableModel table(allocator);
    auto a = table.walkPath(0, 0);
    auto b = table.walkPath(1, 0);
    EXPECT_NE(a[0], b[0]);
}

TEST(PageTableModelTest, NodesAllocatedLazily)
{
    PageAllocator allocator(0, 64ULL << 20, 4096);
    PageTableModel table(allocator);
    EXPECT_EQ(table.nodesAllocated(), 0u);
    table.walkPath(0, 0);
    std::uint64_t after_first = table.nodesAllocated();
    EXPECT_EQ(after_first, 4u); // one node per level
    table.walkPath(0, 0x1000);  // same nodes
    EXPECT_EQ(table.nodesAllocated(), after_first);
    // A distant address allocates fresh lower-level nodes.
    table.walkPath(0, 1ULL << 40);
    EXPECT_GT(table.nodesAllocated(), after_first);
}

// --- TLB ---

TEST(TlbTest, HitAfterInsertMissBefore)
{
    Tlb tlb(64, 8, "t");
    EXPECT_FALSE(tlb.lookup(0, 5));
    tlb.insert(0, 5);
    EXPECT_TRUE(tlb.lookup(0, 5));
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_DOUBLE_EQ(tlb.hitRate(), 0.5);
}

TEST(TlbTest, AsidTagPreventsCrossHits)
{
    Tlb tlb(64, 8, "t");
    tlb.insert(0, 5);
    EXPECT_FALSE(tlb.lookup(1, 5));
    EXPECT_TRUE(tlb.lookup(0, 5));
}

TEST(TlbTest, LruEvictsLeastRecentlyUsed)
{
    Tlb tlb(8, 8, "t"); // one set of 8 ways
    for (Addr vpn = 0; vpn < 8; ++vpn)
        tlb.insert(0, vpn * tlb.numSets()); // all in set 0
    tlb.lookup(0, 0); // refresh vpn 0
    tlb.insert(0, 8 * tlb.numSets()); // evicts vpn 1 (LRU)
    EXPECT_TRUE(tlb.contains(0, 0));
    EXPECT_FALSE(tlb.contains(0, 1 * tlb.numSets()));
    EXPECT_EQ(tlb.evictions(), 1u);
}

TEST(TlbTest, ConflictMissesWithLowAssociativity)
{
    Tlb direct(64, 1, "d");
    // Two VPNs mapping to the same set thrash a direct-mapped TLB.
    Addr a = 0, b = direct.numSets();
    direct.insert(0, a);
    direct.insert(0, b);
    EXPECT_FALSE(direct.contains(0, a));

    Tlb assoc(64, 2, "a");
    assoc.insert(0, 0);
    assoc.insert(0, assoc.numSets());
    EXPECT_TRUE(assoc.contains(0, 0));
    EXPECT_TRUE(assoc.contains(0, assoc.numSets()));
}

TEST(TlbTest, InsertIsIdempotent)
{
    Tlb tlb(8, 8, "t");
    tlb.insert(0, 3);
    tlb.insert(0, 3);
    EXPECT_EQ(tlb.evictions(), 0u);
    int present = 0;
    for (Addr vpn = 0; vpn < 8; ++vpn)
        present += tlb.contains(0, vpn * tlb.numSets() + 3) ? 1 : 0;
    EXPECT_EQ(present, 1);
}

TEST(TlbTest, FlushAsidRemovesOnlyThatAsid)
{
    Tlb tlb(64, 8, "t");
    tlb.insert(0, 1);
    tlb.insert(1, 1);
    tlb.flushAsid(0);
    EXPECT_FALSE(tlb.contains(0, 1));
    EXPECT_TRUE(tlb.contains(1, 1));
}

TEST(TlbTest, ConstructionValidation)
{
    EXPECT_THROW(Tlb(0, 8, "t"), FatalError);
    EXPECT_THROW(Tlb(64, 0, "t"), FatalError);
    EXPECT_THROW(Tlb(65, 8, "t"), FatalError);  // not divisible
    EXPECT_NO_THROW(Tlb(24, 8, "t"));           // 3 sets: modulo index
}

class TlbCapacityTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(TlbCapacityTest, FullCapacityRetainedUnderSequentialFill)
{
    std::uint32_t ways = GetParam();
    Tlb tlb(256, ways, "t");
    // Sequential VPNs spread evenly over sets: all 256 must be held.
    for (Addr vpn = 0; vpn < 256; ++vpn)
        tlb.insert(7, vpn);
    for (Addr vpn = 0; vpn < 256; ++vpn)
        EXPECT_TRUE(tlb.contains(7, vpn)) << "vpn " << vpn;
    EXPECT_EQ(tlb.evictions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Ways, TlbCapacityTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(TlbTest, SharedTlbCrossCoreConflicts)
{
    // Two ASIDs hammering the same set indices in a low-associativity
    // shared TLB evict each other; the 8-way paper configuration holds
    // both working sets.
    for (auto [ways, expect_conflicts] :
         std::initializer_list<std::pair<std::uint32_t, bool>>{
             {1, true}, {8, false}}) {
        Tlb tlb(64, ways, "shared");
        std::uint32_t sets = tlb.numSets();
        // Each ASID installs `ways/2 + 1`-deep same-set footprints when
        // possible; for 1-way this always conflicts.
        for (Addr i = 0; i < 4; ++i) {
            tlb.insert(0, i * sets);
            tlb.insert(1, i * sets);
        }
        bool lost = false;
        for (Addr i = 0; i < 4; ++i)
            lost = lost || !tlb.contains(0, i * sets) ||
                   !tlb.contains(1, i * sets);
        EXPECT_EQ(lost, expect_conflicts) << ways << " ways";
    }
}

// --- MMU front-end with a real DRAM behind it ---

struct MmuHarness
{
    DramSystem dram{DramTiming::hbm2(), 2, 2, 32};
    PageAllocator allocator{0, 256ULL << 20, 4096};
    PageTableModel pageTable{allocator};
    std::unique_ptr<Mmu> mmu;
    std::map<std::uint64_t, Addr> translated;
    Cycle now = 0;

    explicit MmuHarness(MmuConfig config = {})
    {
        config.numCores = 2;
        mmu = std::make_unique<Mmu>(config, allocator, pageTable, dram);
        dram.setCallback([this](const DramRequest &request, Cycle at) {
            if (Mmu::isWalkTag(request.tag))
                mmu->onDramCompletion(request.tag, at);
        });
        mmu->setCallback(
            [this](std::uint64_t tag, Addr paddr, Cycle) {
                translated[tag] = paddr;
            });
    }

    void
    runCycles(Cycle count)
    {
        for (Cycle c = 0; c < count; ++c) {
            dram.tick(now);
            mmu->tick(now);
            ++now;
        }
    }

    void
    runUntilIdle(Cycle limit = 200000)
    {
        while ((mmu->busy() || dram.busy()) && now < limit) {
            dram.tick(now);
            mmu->tick(now);
            ++now;
        }
        ASSERT_FALSE(mmu->busy()) << "MMU did not drain";
    }
};

TEST(MmuTest, TranslationCompletesViaWalk)
{
    MmuHarness h;
    ASSERT_TRUE(h.mmu->requestTranslation(0, 0, 0x12345, 1, h.now));
    h.runUntilIdle();
    ASSERT_TRUE(h.translated.count(1));
    EXPECT_EQ(h.translated[1] % 4096, 0x345u);
    EXPECT_EQ(h.mmu->stats().counterValue("walks"), 1u);
    EXPECT_EQ(h.mmu->stats().counterValue("tlb_misses"), 1u);
}

TEST(MmuTest, SecondAccessHitsTlbWithoutWalk)
{
    MmuHarness h;
    h.mmu->requestTranslation(0, 0, 0x1000, 1, h.now);
    h.runUntilIdle();
    h.mmu->requestTranslation(0, 0, 0x1040, 2, h.now);
    h.runUntilIdle();
    EXPECT_EQ(h.mmu->stats().counterValue("walks"), 1u);
    EXPECT_EQ(h.mmu->stats().counterValue("tlb_hits"), 1u);
    EXPECT_EQ(h.translated[2] - h.translated[1], 0x40u);
}

TEST(MmuTest, MshrCoalescesSamePageMisses)
{
    MmuHarness h;
    for (std::uint64_t i = 0; i < 16; ++i)
        h.mmu->requestTranslation(0, 0, 0x4000 + i * 64, i, h.now);
    h.runUntilIdle();
    EXPECT_EQ(h.translated.size(), 16u);
    EXPECT_EQ(h.mmu->stats().counterValue("walks"), 1u);
    EXPECT_EQ(h.mmu->stats().counterValue("mshr_attaches"), 15u);
}

TEST(MmuTest, TranslationDisabledBypassesEverything)
{
    MmuConfig config;
    config.translationEnabled = false;
    MmuHarness h(config);
    h.mmu->requestTranslation(0, 0, 0x9999, 1, h.now);
    h.runUntilIdle();
    EXPECT_EQ(h.translated.size(), 1u);
    EXPECT_EQ(h.mmu->stats().counterValue("walks"), 0u);
}

TEST(MmuTest, LargerPagesWalkFewerLevels)
{
    std::map<std::uint64_t, std::uint64_t> reads_by_page;
    for (std::uint64_t page : {4096ull, 64ull << 10, 1ull << 20}) {
        DramSystem dram(DramTiming::hbm2(), 2, 2, 32);
        PageAllocator allocator(0, 256ULL << 20, page);
        PageTableModel table(allocator);
        MmuConfig config;
        config.numCores = 2;
        Mmu mmu(config, allocator, table, dram);
        dram.setCallback([&](const DramRequest &request, Cycle at) {
            if (Mmu::isWalkTag(request.tag))
                mmu.onDramCompletion(request.tag, at);
        });
        mmu.setCallback([](std::uint64_t, Addr, Cycle) {});
        Cycle now = 0;
        mmu.requestTranslation(0, 0, 0, 1, now);
        while (mmu.busy() && now < 100000) {
            dram.tick(now);
            mmu.tick(now);
            ++now;
        }
        reads_by_page[page] = dram.totalCounter("reads");
    }
    EXPECT_EQ(reads_by_page[4096], 4u);
    EXPECT_EQ(reads_by_page[64 << 10], 3u);
    EXPECT_EQ(reads_by_page[1 << 20], 2u);
}

TEST(MmuTest, StaticQuotaCapsPerCoreWalkers)
{
    MmuConfig config;
    config.totalPtws = 8;
    config.ptwMode = PtwPartitionMode::Static;
    MmuHarness h(config); // equal split: 4 each
    // Core 0 floods 32 distinct pages; core 1 idle.
    for (std::uint64_t i = 0; i < 32; ++i)
        h.mmu->requestTranslation(0, 0, i << 12, i, h.now);
    std::uint32_t max_seen = 0;
    for (Cycle c = 0; c < 2000 && h.mmu->busy(); ++c) {
        h.runCycles(1);
        max_seen = std::max(max_seen, h.mmu->walkersInFlight(0));
    }
    EXPECT_LE(max_seen, 4u);
    EXPECT_GT(max_seen, 0u);
}

TEST(MmuTest, SharedModeLetsOneCoreUseAllWalkers)
{
    MmuConfig config;
    config.totalPtws = 8;
    config.ptwMode = PtwPartitionMode::Shared;
    MmuHarness h(config);
    for (std::uint64_t i = 0; i < 32; ++i)
        h.mmu->requestTranslation(0, 0, i << 12, i, h.now);
    std::uint32_t max_seen = 0;
    for (Cycle c = 0; c < 2000 && h.mmu->busy(); ++c) {
        h.runCycles(1);
        max_seen = std::max(max_seen, h.mmu->walkersInFlight(0));
    }
    EXPECT_GT(max_seen, 4u);
    EXPECT_LE(max_seen, 8u);
}

TEST(MmuTest, RatioQuotaRespected)
{
    MmuConfig config;
    config.totalPtws = 16;
    config.ptwMode = PtwPartitionMode::Static;
    config.ptwQuota = {2, 14};
    MmuHarness h(config);
    for (std::uint64_t i = 0; i < 32; ++i) {
        h.mmu->requestTranslation(0, 0, i << 12, i, h.now);
        h.mmu->requestTranslation(1, 1, i << 12, 100 + i, h.now);
    }
    std::uint32_t max0 = 0, max1 = 0;
    for (Cycle c = 0; c < 4000 && h.mmu->busy(); ++c) {
        h.runCycles(1);
        max0 = std::max(max0, h.mmu->walkersInFlight(0));
        max1 = std::max(max1, h.mmu->walkersInFlight(1));
    }
    EXPECT_LE(max0, 2u);
    EXPECT_LE(max1, 14u);
    EXPECT_GT(max1, 2u);
}

TEST(MmuTest, BoundedModeHonorsMinReservation)
{
    MmuConfig config;
    config.totalPtws = 8;
    config.ptwMode = PtwPartitionMode::Bounded;
    config.ptwMin = {2, 2};
    config.ptwMax = {8, 8};
    MmuHarness h(config);
    // Core 0 floods; must never exceed 8 - reserved(2) = 6 while core 1
    // has no demand... reservation only binds when core 1 is below min,
    // which it always is here (0 in flight).
    for (std::uint64_t i = 0; i < 32; ++i)
        h.mmu->requestTranslation(0, 0, i << 12, i, h.now);
    std::uint32_t max0 = 0;
    for (Cycle c = 0; c < 4000 && h.mmu->busy(); ++c) {
        h.runCycles(1);
        max0 = std::max(max0, h.mmu->walkersInFlight(0));
    }
    EXPECT_LE(max0, 6u);
}

TEST(MmuTest, StealingExceedsQuotaOnlyWhenOthersIdle)
{
    MmuConfig config;
    config.totalPtws = 8;
    config.ptwMode = PtwPartitionMode::Stealing;
    {
        // Alone: core 0 may exceed its quota of 4 and use all 8.
        MmuHarness h(config);
        for (std::uint64_t i = 0; i < 32; ++i)
            h.mmu->requestTranslation(0, 0, i << 12, i, h.now);
        std::uint32_t max_seen = 0;
        for (Cycle c = 0; c < 2000 && h.mmu->busy(); ++c) {
            h.runCycles(1);
            max_seen = std::max(max_seen, h.mmu->walkersInFlight(0));
        }
        EXPECT_GT(max_seen, 4u);
    }
    {
        // With a competing core, the quota binds (modulo in-flight
        // steals drained before core 1's queue appeared).
        MmuHarness h(config);
        for (std::uint64_t i = 0; i < 32; ++i) {
            h.mmu->requestTranslation(0, 0, i << 12, i, h.now);
            h.mmu->requestTranslation(1, 1, i << 12, 100 + i, h.now);
        }
        h.runCycles(200); // let the pools settle under contention
        std::uint32_t max_seen = 0;
        for (Cycle c = 0; c < 2000 && h.mmu->busy(); ++c) {
            h.runCycles(1);
            if (h.mmu->walkersInFlight(1) > 0) // core 1 has demand
                max_seen =
                    std::max(max_seen, h.mmu->walkersInFlight(0));
        }
        EXPECT_GT(max_seen, 0u);
    }
}

TEST(MmuTest, BoundedModeValidation)
{
    MmuConfig config;
    config.numCores = 2;
    config.totalPtws = 8;
    config.ptwMode = PtwPartitionMode::Bounded;
    config.ptwMin = {5, 5}; // over-reserved
    config.ptwMax = {8, 8};
    DramSystem dram(DramTiming::hbm2(), 2, 2, 32);
    PageAllocator allocator(0, 64ULL << 20, 4096);
    PageTableModel table(allocator);
    EXPECT_THROW(Mmu(config, allocator, table, dram), FatalError);

    config.ptwMin = {2, 9}; // min > max
    config.ptwMax = {8, 8};
    EXPECT_THROW(Mmu(config, allocator, table, dram), FatalError);
}

TEST(MmuTest, QuotaValidation)
{
    MmuConfig config;
    config.numCores = 2;
    config.totalPtws = 16;
    config.ptwMode = PtwPartitionMode::Static;
    DramSystem dram(DramTiming::hbm2(), 2, 2, 32);
    PageAllocator allocator(0, 64ULL << 20, 4096);
    PageTableModel table(allocator);
    config.ptwQuota = {8, 9}; // sums to 17
    EXPECT_THROW(Mmu(config, allocator, table, dram), FatalError);
    config.ptwQuota = {0, 16}; // starves core 0
    EXPECT_THROW(Mmu(config, allocator, table, dram), FatalError);
}

TEST(MmuTest, BackpressureWhenPendingFull)
{
    MmuConfig config;
    config.maxPendingPerCore = 4;
    MmuHarness h(config);
    int accepted = 0;
    for (std::uint64_t i = 0; i < 10; ++i) {
        if (h.mmu->requestTranslation(0, 0, i << 12, i, h.now))
            ++accepted;
    }
    EXPECT_EQ(accepted, 4);
    h.runUntilIdle();
    EXPECT_EQ(h.translated.size(), 4u);
}

TEST(MmuTest, ManyPagesAllTranslateExactlyOnceEach)
{
    MmuHarness h;
    const std::uint64_t pages = 300;
    std::uint64_t tag = 0;
    std::uint64_t submitted = 0;
    while (submitted < pages || h.mmu->busy()) {
        while (submitted < pages &&
               h.mmu->requestTranslation(
                   0, 0, submitted << 12, tag++, h.now)) {
            ++submitted;
        }
        h.runCycles(1);
        ASSERT_LT(h.now, 500000u) << "MMU stuck";
    }
    h.runUntilIdle();
    EXPECT_EQ(h.translated.size(), pages);
    EXPECT_EQ(h.mmu->stats().counterValue("walks"), pages);
    // Distinct pages map to distinct frames.
    std::set<Addr> frames;
    for (const auto &[t, pa] : h.translated)
        EXPECT_TRUE(frames.insert(pa & ~Addr{4095}).second);
}

} // namespace
} // namespace mnpu
