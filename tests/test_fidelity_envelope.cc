/**
 * @file
 * Fast-fidelity ratchet tests.
 *
 * The --fidelity fast path trades per-transaction simulation for a
 * closed-form tile model, so unlike the scheduler choice it is NOT
 * bit-identical to exact. These tests hold the two halves of that
 * contract:
 *
 *  - exact stays the golden-ratcheted ground truth: explicitly pinning
 *    FidelityKind::Exact reproduces every committed fixture byte-for-
 *    byte under BOTH schedulers (i.e. PR-introduced fast-path code is
 *    provably dead when exact is selected);
 *  - fast stays inside the committed error envelope
 *    (tests/golden/fidelity_envelope.json): per golden mix, the
 *    relative cycle deviation (global and per-core local) against the
 *    committed exact fixture must not exceed the envelope bound.
 *
 * Plus the checkpoint-identity rules: a job that resolves to fast gets
 * a different sweepJobKey than exact (so fast results can never alias
 * exact checkpoints), an armed integrity check forces the key back to
 * exact's, and a fast job round-trips through checkpoint resume with
 * its own metrics restored bit-identically.
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/golden.hh"
#include "analysis/sweep_runner.hh"
#include "common/fidelity.hh"
#include "sw/arch_config.hh"

#ifndef MNPU_GOLDEN_DIR
#define MNPU_GOLDEN_DIR "tests/golden"
#endif

namespace mnpu
{
namespace
{

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::string{};
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Committed envelope rows keyed by case name (loaded once). */
const std::map<std::string, FidelityEnvelopeEntry> &
committedEnvelope()
{
    static const std::map<std::string, FidelityEnvelopeEntry> rows = [] {
        std::map<std::string, FidelityEnvelopeEntry> parsed;
        std::ifstream in(fidelityEnvelopePath(MNPU_GOLDEN_DIR));
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            FidelityEnvelopeEntry entry;
            if (parseFidelityEnvelopeLine(line, entry))
                parsed[entry.name] = entry;
        }
        return parsed;
    }();
    return rows;
}

/** The committed exact record of a case (already validated by
 *  test_golden_trace; reused here so the fast runs don't need their
 *  own exact reference simulations). */
SweepCheckpointRecord
committedExactRecord(const std::string &name)
{
    std::string text =
        readFileOrEmpty(goldenFixturePath(MNPU_GOLDEN_DIR, name));
    SweepCheckpointRecord record;
    EXPECT_FALSE(text.empty()) << "missing golden fixture for " << name;
    if (!text.empty()) {
        EXPECT_TRUE(
            parseJsonLine(text.substr(0, text.find('\n')), record))
            << "unparseable golden fixture for " << name;
    }
    return record;
}

double
relDev(std::uint64_t exact, std::uint64_t fast)
{
    if (exact == 0)
        return fast == 0 ? 0.0 : 1.0;
    double de = static_cast<double>(exact);
    double df = static_cast<double>(fast);
    return (df > de ? df - de : de - df) / de;
}

class FidelityEnvelope : public testing::TestWithParam<GoldenCase>
{
};

// Explicitly pinning Exact must reproduce the committed fixture
// byte-for-byte under both schedulers: selecting exact keeps every
// fast-path branch dead, and the envelope machinery cannot perturb
// the ground truth it ratchets against.
TEST_P(FidelityEnvelope, ExactIsBitIdenticalUnderBothSchedulers)
{
    const GoldenCase &golden = GetParam();
    std::string committed =
        readFileOrEmpty(goldenFixturePath(MNPU_GOLDEN_DIR, golden.name));
    ASSERT_FALSE(committed.empty())
        << "missing golden fixture for " << golden.name;

    for (SchedulerKind sched :
         {SchedulerKind::Cycle, SchedulerKind::Event}) {
        SweepCheckpointRecord actual =
            runGoldenCase(golden, sched, {}, FidelityKind::Exact);
        EXPECT_EQ(committed, goldenFixtureText(actual))
            << "exact fidelity diverged from the committed fixture for "
            << golden.name << " under the " << toString(sched)
            << " scheduler";
    }
}

// Fast must stay inside the committed per-mix error envelope: the
// relative deviation of global cycles and every core's local cycles
// against the committed exact fixture is bounded by the envelope row.
// Both schedulers are held to the same bound — the fast model is
// event-complete, so scheduler choice must not change its answer
// beyond the envelope either.
TEST_P(FidelityEnvelope, FastStaysWithinCommittedEnvelope)
{
    const GoldenCase &golden = GetParam();
    const auto &rows = committedEnvelope();
    auto it = rows.find(golden.name);
    ASSERT_NE(it, rows.end())
        << "no envelope row for " << golden.name
        << " — regenerate with `update_golden --envelope "
           "--update-golden` and commit the result";
    const FidelityEnvelopeEntry &entry = it->second;

    SweepCheckpointRecord exact = committedExactRecord(golden.name);

    // The envelope was measured against these fixtures; if the exact
    // cycles moved, the envelope is stale and must be regenerated
    // alongside the fixtures.
    EXPECT_EQ(entry.exactCycles, exact.globalCycles)
        << "envelope row for " << golden.name
        << " was measured against a different exact fixture; "
           "regenerate with `update_golden --envelope --update-golden`";

    for (SchedulerKind sched :
         {SchedulerKind::Cycle, SchedulerKind::Event}) {
        SweepCheckpointRecord fast =
            runGoldenCase(golden, sched, {}, FidelityKind::Fast);
        double dev = relDev(exact.globalCycles, fast.globalCycles);
        ASSERT_EQ(exact.localCycles.size(), fast.localCycles.size());
        for (std::size_t i = 0; i < exact.localCycles.size(); ++i) {
            double d = relDev(exact.localCycles[i], fast.localCycles[i]);
            dev = dev > d ? dev : d;
        }
        EXPECT_LE(dev, entry.bound + 1e-9)
            << "fast fidelity drifted outside the committed envelope "
            << "for " << golden.name << " under the " << toString(sched)
            << " scheduler (measured " << dev << ", bound "
            << entry.bound << "); if the fast model intentionally "
            << "changed, regenerate with `update_golden --envelope "
            << "--update-golden` and review the deviation diff";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, FidelityEnvelope, testing::ValuesIn(goldenCases()),
    [](const testing::TestParamInfo<GoldenCase> &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(FidelityEnvelopeFile, CoversExactlyTheGoldenCases)
{
    const auto &rows = committedEnvelope();
    EXPECT_EQ(rows.size(), goldenCases().size());
    for (const GoldenCase &golden : goldenCases()) {
        EXPECT_EQ(rows.count(golden.name), 1u)
            << "no envelope row for " << golden.name;
    }
    // Bounds are sane: floored at 5% and never below the measured
    // deviation they were derived from.
    for (const auto &[name, entry] : rows) {
        EXPECT_GE(entry.bound, 0.05) << name;
        EXPECT_GE(entry.bound + 1e-9, entry.deviation) << name;
    }
}

TEST(FidelityEnvelopeFile, LineRoundTrips)
{
    FidelityEnvelopeEntry entry;
    entry.name = "some-case";
    entry.exactCycles = 123456;
    entry.fastCycles = 120000;
    entry.deviation = 0.027995;
    entry.bound = 0.05;
    FidelityEnvelopeEntry parsed;
    ASSERT_TRUE(
        parseFidelityEnvelopeLine(fidelityEnvelopeLine(entry), parsed));
    EXPECT_EQ(parsed.name, entry.name);
    EXPECT_EQ(parsed.exactCycles, entry.exactCycles);
    EXPECT_EQ(parsed.fastCycles, entry.fastCycles);
    EXPECT_DOUBLE_EQ(parsed.deviation, entry.deviation);
    EXPECT_DOUBLE_EQ(parsed.bound, entry.bound);
    EXPECT_FALSE(parseFidelityEnvelopeLine("{\"not\":\"it\"}", parsed));
}

// --- checkpoint identity ---

TEST(FidelitySweepKey, FastFeedsTheKeyOnlyWhenItActuallyRuns)
{
    ArchConfig arch = ArchConfig::miniNpu();
    NpuMemConfig mem = NpuMemConfig::cloudNpu();

    SweepJob exact_job;
    exact_job.config.fidelity = FidelityKind::Exact;
    // Pin the check level: an unset one resolves through MNPU_CHECK,
    // and under MNPU_CHECK=full every fast request falls back to
    // exact — the key divergence below only exists with checks off.
    exact_job.config.checkLevel = CheckLevel::Off;
    exact_job.models = {"res", "ncf"};

    SweepJob fast_job = exact_job;
    fast_job.config.fidelity = FidelityKind::Fast;

    const std::string exact_key =
        sweepJobKey(exact_job, arch, mem, ModelScale::Mini);
    const std::string fast_key =
        sweepJobKey(fast_job, arch, mem, ModelScale::Mini);
    // Fast changes results, so it must never share exact's key.
    EXPECT_NE(exact_key, fast_key);

    // An unset fidelity resolves through the process default (and
    // MNPU_FIDELITY): absent those it keeps the historical
    // (pre-fidelity) exact key, and under an env-selected fast it
    // lands on the fast key — never on some third value.
    SweepJob default_job = exact_job;
    default_job.config.fidelity.reset();
    const bool default_is_fast =
        effectiveFidelityKind(std::nullopt) == FidelityKind::Fast;
    EXPECT_EQ(sweepJobKey(default_job, arch, mem, ModelScale::Mini),
              default_is_fast ? fast_key : exact_key);

    // Any armed integrity check forces the exact fallback, and the
    // key follows the RESOLVED fidelity: a fast request under --check
    // produces exact results and must land on exact's key, or a later
    // genuine fast run would restore exact-fallback numbers.
    for (CheckLevel level : {CheckLevel::Cheap, CheckLevel::Full}) {
        SweepJob checked_fast = fast_job;
        checked_fast.config.checkLevel = level;
        SweepJob checked_exact = exact_job;
        checked_exact.config.checkLevel = level;
        EXPECT_EQ(
            sweepJobKey(checked_fast, arch, mem, ModelScale::Mini),
            exact_key)
            << "check level " << toString(level);
        // checkLevel itself stays excluded from the key (passive).
        EXPECT_EQ(
            sweepJobKey(checked_exact, arch, mem, ModelScale::Mini),
            exact_key)
            << "check level " << toString(level);
    }
}

// A fast job round-trips through the v2 checkpoint: after a first
// sweep writes the checkpoint, a resumed sweep restores BOTH the fast
// and the exact record bit-identically to their own first-run values
// — the two jobs live under different keys, so neither can alias the
// other's results.
TEST(FidelitySweepKey, FastResumeRoundTripsWithoutAliasingExact)
{
    const std::string path =
        ::testing::TempDir() + "mnpu_ckpt_fidelity.jsonl";
    std::remove(path.c_str());

    NpuMemConfig mem = NpuMemConfig::cloudNpu();
    mem.timing = DramTiming::preset("hbm2");

    std::vector<SweepJob> jobs(2);
    jobs[0].config.fidelity = FidelityKind::Exact;
    jobs[0].models = {"alex", "ncf"};
    jobs[1].config.fidelity = FidelityKind::Fast;
    jobs[1].models = {"alex", "ncf"};
    // Pin checks off so the fast job really runs fast even when the
    // suite executes under MNPU_CHECK=full (where an unset level
    // would force the exact fallback and both records would agree).
    for (SweepJob &job : jobs)
        job.config.checkLevel = CheckLevel::Off;

    SweepOptions options;
    options.checkpointPath = path;
    options.resume = true;

    ExperimentContext first_context(ArchConfig::miniNpu(), mem,
                                    ModelScale::Mini);
    SweepRunner runner(2);
    auto first = runner.run(first_context, jobs, options);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0].status, SweepStatus::Ok);
    EXPECT_EQ(first[1].status, SweepStatus::Ok);
    // The analytic model genuinely diverges on this mix — if the two
    // records agreed, the aliasing assertions below would be vacuous.
    EXPECT_NE(first[0].outcome.raw.globalCycles,
              first[1].outcome.raw.globalCycles);

    ExperimentContext resumed_context(ArchConfig::miniNpu(), mem,
                                      ModelScale::Mini);
    auto resumed = runner.run(resumed_context, jobs, options);
    ASSERT_EQ(resumed.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(resumed[i].status, SweepStatus::Skipped)
            << "job " << i << " re-executed instead of restoring";
        EXPECT_EQ(resumed[i].outcome.raw.globalCycles,
                  first[i].outcome.raw.globalCycles)
            << "job " << i;
        ASSERT_EQ(resumed[i].outcome.raw.cores.size(),
                  first[i].outcome.raw.cores.size());
        for (std::size_t c = 0;
             c < first[i].outcome.raw.cores.size(); ++c) {
            EXPECT_EQ(resumed[i].outcome.raw.cores[c].localCycles,
                      first[i].outcome.raw.cores[c].localCycles)
                << "job " << i << " core " << c;
            EXPECT_EQ(resumed[i].outcome.raw.cores[c].trafficBytes,
                      first[i].outcome.raw.cores[c].trafficBytes)
                << "job " << i << " core " << c;
        }
    }

    std::remove(path.c_str());
}

} // namespace
} // namespace mnpu
