/**
 * @file
 * Tests for the analysis library: metrics (including the paper's Eq. 1
 * fairness), mix enumeration, linear regression, the co-runner
 * predictor, and the mapping evaluator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "analysis/metrics.hh"
#include "analysis/mixes.hh"
#include "analysis/predictor.hh"
#include "analysis/regression.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace mnpu
{
namespace
{

// --- metrics ---

TEST(MetricsTest, SpeedupSlowdownInverse)
{
    EXPECT_DOUBLE_EQ(speedup(100, 200), 0.5);
    EXPECT_DOUBLE_EQ(slowdown(100, 200), 2.0);
    EXPECT_THROW(speedup(0, 1), FatalError);
    EXPECT_THROW(speedup(1, -2), FatalError);
}

TEST(MetricsTest, GeomeanKnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_THROW(geomean({}), FatalError);
    EXPECT_THROW(geomean({1.0, 0.0}), FatalError);
}

TEST(MetricsTest, FairnessEquationOne)
{
    // Equal slowdowns: sigma = 0 -> fairness = 1.
    EXPECT_DOUBLE_EQ(fairness({2.0, 2.0}), 1.0);
    // slowdowns {1, 3}: mu = 2, sigma = 1 -> fairness = 0.5.
    EXPECT_DOUBLE_EQ(fairness({1.0, 3.0}), 0.5);
    // More imbalance -> lower fairness.
    EXPECT_GT(fairness({1.0, 1.2}), fairness({1.0, 2.0}));
}

TEST(MetricsTest, BoxStatsQuartiles)
{
    BoxStats stats = boxStats({1, 2, 3, 4, 5});
    EXPECT_DOUBLE_EQ(stats.min, 1);
    EXPECT_DOUBLE_EQ(stats.q1, 2);
    EXPECT_DOUBLE_EQ(stats.median, 3);
    EXPECT_DOUBLE_EQ(stats.q3, 4);
    EXPECT_DOUBLE_EQ(stats.max, 5);
    BoxStats single = boxStats({7});
    EXPECT_DOUBLE_EQ(single.min, 7);
    EXPECT_DOUBLE_EQ(single.max, 7);
    EXPECT_THROW(boxStats({}), FatalError);
}

TEST(MetricsTest, CdfMonotoneEndsAtOne)
{
    auto points = cdf({3.0, 1.0, 2.0});
    ASSERT_EQ(points.size(), 3u);
    EXPECT_DOUBLE_EQ(points[0].value, 1.0);
    EXPECT_DOUBLE_EQ(points.back().value, 3.0);
    EXPECT_DOUBLE_EQ(points.back().fraction, 1.0);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GE(points[i].value, points[i - 1].value);
        EXPECT_GT(points[i].fraction, points[i - 1].fraction);
    }
}

TEST(MetricsTest, QuantileInterpolates)
{
    std::vector<double> sorted = {0, 10};
    EXPECT_DOUBLE_EQ(quantileSorted(sorted, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantileSorted(sorted, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(quantileSorted(sorted, 1.0), 10.0);
}

// --- mixes ---

TEST(MixesTest, PaperMixCounts)
{
    EXPECT_EQ(multisetCount(8, 2), 36u);
    EXPECT_EQ(multisetCount(8, 4), 330u);
    EXPECT_EQ(multisetCount(8, 8), 6435u);
    EXPECT_EQ(enumerateMultisets(8, 2).size(), 36u);
    EXPECT_EQ(enumerateMultisets(8, 4).size(), 330u);
    EXPECT_EQ(enumerateMultisets(8, 8).size(), 6435u);
    // The closed form and the enumeration must agree exactly.
    EXPECT_EQ(multisetCount(8, 2), enumerateMultisets(8, 2).size());
    EXPECT_EQ(multisetCount(8, 4), enumerateMultisets(8, 4).size());
    EXPECT_EQ(multisetCount(8, 8), enumerateMultisets(8, 8).size());
}

TEST(MixesTest, MultisetCountOverflowIsFatal)
{
    // C(n+k-1, k) for these exceeds uint64_t; the guard must diagnose
    // instead of silently wrapping.
    EXPECT_THROW(multisetCount(1u << 30, 8), FatalError);
    EXPECT_THROW(multisetCount(5000, 64), FatalError);
    // Large but representable values still work: C(64, 63) = 64.
    EXPECT_EQ(multisetCount(2, 63), 64u);
}

TEST(MixesTest, MultisetsSortedAndUnique)
{
    auto mixes = enumerateMultisets(5, 3);
    EXPECT_EQ(mixes.size(), multisetCount(5, 3));
    std::set<std::vector<std::uint32_t>> seen;
    for (const auto &mix : mixes) {
        ASSERT_EQ(mix.size(), 3u);
        for (std::size_t i = 1; i < mix.size(); ++i)
            EXPECT_LE(mix[i - 1], mix[i]);
        EXPECT_TRUE(seen.insert(mix).second);
    }
}

TEST(MixesTest, PairingsOf8CoverAllSlots)
{
    const auto &pairings = allPairingsOf8();
    EXPECT_EQ(pairings.size(), 105u);
    std::set<std::array<std::array<std::uint32_t, 2>, 4>> unique;
    for (const auto &pairing : pairings) {
        std::set<std::uint32_t> slots;
        for (const auto &pair : pairing) {
            EXPECT_LT(pair[0], pair[1]); // normalized order
            slots.insert(pair[0]);
            slots.insert(pair[1]);
        }
        EXPECT_EQ(slots.size(), 8u); // perfect matching
        EXPECT_TRUE(unique.insert(pairing).second);
    }
}

// --- regression ---

TEST(RegressionTest, RecoversExactLinearFunction)
{
    // y = 3 + 2a - b
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    Rng rng(17);
    for (int i = 0; i < 50; ++i) {
        double a = rng.uniform() * 10;
        double b = rng.uniform() * 5;
        x.push_back({1.0, a, b});
        y.push_back(3 + 2 * a - b);
    }
    LinearRegression model;
    model.fit(x, y);
    EXPECT_NEAR(model.weights()[0], 3.0, 1e-4);
    EXPECT_NEAR(model.weights()[1], 2.0, 1e-4);
    EXPECT_NEAR(model.weights()[2], -1.0, 1e-4);
    EXPECT_NEAR(model.predict({1.0, 4.0, 2.0}), 9.0, 1e-4);
    EXPECT_LT(model.mse(x, y), 1e-6);
}

TEST(RegressionTest, ValidationErrors)
{
    LinearRegression model;
    EXPECT_THROW(model.fit({}, {}), FatalError);
    EXPECT_THROW(model.fit({{1.0}}, {1.0, 2.0}), FatalError);
    EXPECT_THROW(model.fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}), FatalError);
    EXPECT_THROW(model.predict({1.0}), FatalError);
}

TEST(RegressionTest, SolverRejectsSingular)
{
    // Two identical equations with inconsistent third column.
    std::vector<std::vector<double>> a = {{1, 1}, {2, 2}};
    EXPECT_THROW(solveLinearSystem(a, {1, 3}), FatalError);
    auto w = solveLinearSystem({{2, 0}, {0, 4}}, {4, 8});
    EXPECT_DOUBLE_EQ(w[0], 2.0);
    EXPECT_DOUBLE_EQ(w[1], 2.0);
}

// --- predictor + mapping ---

SoloProfile
profile(const std::string &name, double cycles, double pe, double bytes)
{
    SoloProfile p;
    p.name = name;
    p.soloCycles = cycles;
    p.peUtilization = pe;
    p.trafficBytes = bytes;
    return p;
}

TEST(PredictorTest, LearnsBandwidthAdditiveSlowdown)
{
    // Synthetic law: slowdown = 1 + bw_self * bw_other.
    std::vector<SoloProfile> profiles;
    for (int i = 0; i < 6; ++i) {
        profiles.push_back(profile("p" + std::to_string(i), 1e6,
                                   0.1 * (i + 1), 1e6 * 20 * (i + 1)));
    }
    CorunPredictor predictor;
    for (const auto &a : profiles) {
        for (const auto &b : profiles) {
            double sd = 1.0 + a.bwDemand() * b.bwDemand() / 1000.0;
            predictor.addSample(a, b, sd);
        }
    }
    predictor.train();
    EXPECT_LT(predictor.trainingMse(), 1e-3);
    // Heavier co-runner predicted to hurt more.
    double light = predictor.predictSlowdown(profiles[2], profiles[0]);
    double heavy = predictor.predictSlowdown(profiles[2], profiles[5]);
    EXPECT_GT(heavy, light);
}

TEST(PredictorTest, ClampsToAtLeastOne)
{
    CorunPredictor predictor;
    SoloProfile a = profile("a", 1e6, 0.5, 1e6);
    predictor.addSample(a, a, 1.0);
    predictor.addSample(a, a, 1.0);
    predictor.train();
    EXPECT_GE(predictor.predictSlowdown(a, a), 1.0);
}

TEST(PredictorTest, ZeroSampleTrainIsFatal)
{
    CorunPredictor predictor;
    EXPECT_THROW(predictor.train(), FatalError);
    EXPECT_FALSE(predictor.trained());
}

TEST(PredictorTest, SingleProfileTrainsAndPredicts)
{
    // Every sample derived from one solo profile: the feature rows are
    // all identical, so only the ridge term keeps the normal equations
    // well-posed. The fit must still land and the prediction must stay
    // finite and close to the one observed slowdown.
    CorunPredictor predictor;
    SoloProfile a = profile("solo", 2e6, 0.4, 4e7);
    ASSERT_TRUE(predictor.addSample(a, a, 1.3));
    predictor.train();
    double predicted = predictor.predictSlowdown(a, a);
    EXPECT_TRUE(std::isfinite(predicted));
    EXPECT_NEAR(predicted, 1.3, 1e-3);
}

TEST(PredictorTest, RejectsNanPoisonedSamples)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    CorunPredictor predictor;
    SoloProfile a = profile("a", 1e6, 0.5, 1e6);
    SoloProfile crashed = profile("crashed", nan, nan, nan);
    // A crashed mix reaches the predictor as NaN-poisoned records: a
    // NaN slowdown, or a NaN-poisoned solo profile on either side.
    EXPECT_FALSE(predictor.addSample(a, a, nan));
    EXPECT_FALSE(predictor.addSample(crashed, a, 1.5));
    EXPECT_FALSE(predictor.addSample(a, crashed, 1.5));
    EXPECT_EQ(predictor.sampleCount(), 0u);
    // Good samples still train after rejections.
    EXPECT_TRUE(predictor.addSample(a, a, 1.25));
    EXPECT_EQ(predictor.sampleCount(), 1u);
    predictor.train();
    EXPECT_TRUE(std::isfinite(predictor.predictSlowdown(a, a)));
    // A non-positive finite slowdown is caller misuse, not a crash.
    EXPECT_THROW(predictor.addSample(a, a, 0.0), FatalError);
    EXPECT_THROW(predictor.addSample(a, a, -1.0), FatalError);
}

TEST(MappingEvaluatorTest, EvaluateComputesPaperMetrics)
{
    MappingEvaluator evaluator;
    // Two models: 0 is heavy, 1 is light.
    evaluator.setMeasuredPair(0, 0, 2.0, 2.0);
    evaluator.setMeasuredPair(1, 1, 1.0, 1.0);
    evaluator.setMeasuredPair(0, 1, 1.5, 1.2);

    std::vector<std::uint32_t> set8 = {0, 0, 0, 0, 1, 1, 1, 1};
    // Pairing all heavy-with-heavy / light-with-light:
    Pairing segregated = {{{0, 1}, {2, 3}, {4, 5}, {6, 7}}};
    MappingOutcome seg = evaluator.evaluate(set8, segregated);
    // Pairing heavy-with-light everywhere:
    Pairing mixed = {{{0, 4}, {1, 5}, {2, 6}, {3, 7}}};
    MappingOutcome mix = evaluator.evaluate(set8, mixed);

    // Mixed pairing: all slowdowns 1.5 / 1.2 -> geomean speedup
    // 1/sqrt(1.8); segregated: half at 2.0, half at 1.0.
    EXPECT_NEAR(seg.perf, 1.0 / std::sqrt(2.0), 1e-9);
    EXPECT_NEAR(mix.perf, 1.0 / std::sqrt(1.5 * 1.2), 1e-9);
    EXPECT_GT(mix.perf, seg.perf);
    EXPECT_GT(mix.fair, seg.fair);
}

TEST(MappingEvaluatorTest, StudyOrdersOracleRandomWorst)
{
    MappingEvaluator evaluator;
    Rng rng(23);
    for (std::uint32_t a = 0; a < 8; ++a) {
        for (std::uint32_t b = a; b < 8; ++b) {
            double sd_a = 1.0 + rng.uniform();
            double sd_b = 1.0 + rng.uniform();
            evaluator.setMeasuredPair(a, b, sd_a, sd_b);
        }
    }
    std::vector<std::uint32_t> set8 = {0, 1, 2, 3, 4, 5, 6, 7};
    auto study = evaluator.study(set8, nullptr, nullptr);
    EXPECT_GE(study.oracle.perf, study.random.perf);
    EXPECT_GE(study.random.perf, study.worst.perf);
    // Without a predictor, predicted falls back to random.
    EXPECT_DOUBLE_EQ(study.predicted.perf, study.random.perf);
}

TEST(MappingEvaluatorTest, PerfectPredictorMatchesOracle)
{
    MappingEvaluator evaluator;
    std::vector<SoloProfile> profiles;
    // Build profiles whose bwDemand product drives a synthetic law,
    // then check that a predictor trained on that exact law picks the
    // oracle mapping.
    for (int i = 0; i < 8; ++i) {
        profiles.push_back(profile("m" + std::to_string(i), 1e6,
                                   0.1, 1e6 * (5 + 10.0 * i)));
    }
    CorunPredictor predictor;
    for (std::uint32_t a = 0; a < 8; ++a) {
        for (std::uint32_t b = 0; b < 8; ++b) {
            double sd = 1.0 + profiles[a].bwDemand() *
                                  profiles[b].bwDemand() / 2000.0;
            evaluator.setMeasuredPair(
                a, b, sd,
                1.0 + profiles[b].bwDemand() * profiles[a].bwDemand() /
                          2000.0);
            predictor.addSample(profiles[a], profiles[b], sd);
        }
    }
    predictor.train();
    std::vector<std::uint32_t> set8 = {0, 1, 2, 3, 4, 5, 6, 7};
    auto study = evaluator.study(set8, &profiles, &predictor);
    EXPECT_NEAR(study.predicted.perf, study.oracle.perf, 1e-9);
}

TEST(MappingEvaluatorTest, MissingPairFatal)
{
    MappingEvaluator evaluator;
    evaluator.setMeasuredPair(0, 1, 1.1, 1.2);
    EXPECT_DOUBLE_EQ(evaluator.measuredSlowdown(0, 1), 1.1);
    EXPECT_DOUBLE_EQ(evaluator.measuredSlowdown(1, 0), 1.2);
    EXPECT_THROW(evaluator.measuredSlowdown(0, 2), FatalError);
}

} // namespace
} // namespace mnpu
